"""Decoder interface and result types shared by MWPM and greedy decoders."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.decoding.weights import NORTH


@dataclass(frozen=True)
class Match:
    """One matching decision.

    ``a`` is an index into the active-node array; ``b`` is either another
    index or a boundary identifier (``NORTH`` / ``SOUTH``).
    """

    a: int
    b: int

    @property
    def to_boundary(self) -> bool:
        return self.b < 0


@dataclass
class DecodeResult:
    """Outcome of decoding one syndrome volume.

    Attributes:
        matches: the perfect matching over active nodes.
        correction_cut_parity: parity of correction paths crossing the
            north-boundary cut (= number of NORTH matches mod 2).
        weight: total matching weight (sum of matched distances).
    """

    matches: list[Match]
    correction_cut_parity: int
    weight: float

    @classmethod
    def from_matches(cls, matches: list[Match],
                     weight: float) -> "DecodeResult":
        north = sum(1 for m in matches if m.b == NORTH)
        return cls(matches, north & 1, weight)

    def covers_all(self, num_nodes: int) -> bool:
        """True iff every active node appears in exactly one match."""
        seen: set[int] = set()
        for match in self.matches:
            if match.a in seen:
                return False
            seen.add(match.a)
            if not match.to_boundary:
                if match.b in seen:
                    return False
                seen.add(match.b)
        return len(seen) == num_nodes


class Decoder(Protocol):
    """Anything that can match an active-node array."""

    def decode(self, nodes: np.ndarray) -> DecodeResult:
        """Match all nodes to each other or to a boundary."""
        ...
