"""Aaronson--Gottesman stabilizer tableau simulator.

Implements the CHP algorithm [PRA 70, 052328 (2004)]: an ``n``-qubit
stabilizer state is represented by ``2n`` rows (``n`` destabilizers then
``n`` stabilizers), each a Pauli stored as binary X/Z vectors plus a sign
bit.  Supported operations: H, S, X, Y, Z, CX, CZ, single-qubit Z- and
X-basis measurement (with deterministic-outcome detection), and expectation
queries for arbitrary Pauli observables.

This simulator is the verification substrate for the surface-code layer:
it lets tests check that stabilizer maps, logical operators, syndrome
extraction circuits, and the ``op_expand`` code deformation behave as
quantum mechanics demands on small code instances.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.stab.pauli import Pauli


class StabilizerSimulator:
    """A stabilizer-state simulator over ``num_qubits`` qubits.

    The state starts in ``|0...0>``.  Rows ``0..n-1`` of the tableau are
    destabilizers, rows ``n..2n-1`` are stabilizers.  ``r`` holds the sign
    bit of each row (0 for ``+``, 1 for ``-``).
    """

    def __init__(self, num_qubits: int, rng: Optional[np.random.Generator] = None):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        self.num_qubits = num_qubits
        n = num_qubits
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        # Destabilizer i = X_i, stabilizer i = Z_i.
        for i in range(n):
            self.x[i, i] = 1
            self.z[n + i, i] = 1
        # reprolint: disable=RL001 -- rng=None is the caller's explicit
        # opt-out of reproducibility (didactic tableau; not campaign-run)
        self.rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    # Clifford gates
    # ------------------------------------------------------------------
    def h(self, q: int) -> None:
        """Hadamard on qubit ``q``: X <-> Z."""
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def s(self, q: int) -> None:
        """Phase gate on qubit ``q``: X -> Y, Z -> Z."""
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def x_gate(self, q: int) -> None:
        """Pauli X on qubit ``q`` (flips signs of rows with Z there)."""
        self.r ^= self.z[:, q]

    def z_gate(self, q: int) -> None:
        """Pauli Z on qubit ``q`` (flips signs of rows with X there)."""
        self.r ^= self.x[:, q]

    def y_gate(self, q: int) -> None:
        """Pauli Y on qubit ``q``."""
        self.r ^= self.x[:, q] ^ self.z[:, q]

    def cx(self, control: int, target: int) -> None:
        """Controlled-X with the given control and target."""
        if control == target:
            raise ValueError("control and target must differ")
        xc, zc = self.x[:, control], self.z[:, control]
        xt, zt = self.x[:, target], self.z[:, target]
        self.r ^= xc & zt & (xt ^ zc ^ 1)
        self.x[:, target] = xt ^ xc
        self.z[:, control] = zc ^ zt

    def cz(self, a: int, b: int) -> None:
        """Controlled-Z between qubits ``a`` and ``b``."""
        self.h(b)
        self.cx(a, b)
        self.h(b)

    def apply_pauli(self, pauli: Pauli) -> None:
        """Apply an n-qubit Pauli (as an error/frame update) to the state."""
        if pauli.num_qubits != self.num_qubits:
            raise ValueError("operator size mismatch")
        for q in pauli.support():
            has_x, has_z = bool(pauli.x[q]), bool(pauli.z[q])
            if has_x and has_z:
                self.y_gate(q)
            elif has_x:
                self.x_gate(q)
            else:
                self.z_gate(q)

    # ------------------------------------------------------------------
    # Row arithmetic (CHP `rowsum`)
    # ------------------------------------------------------------------
    def _g(self, x1, z1, x2, z2):
        """Exponent contribution of multiplying single-qubit Paulis.

        Returns, element-wise, the power of ``i`` picked up when the
        (x1, z1) Pauli is multiplied by the (x2, z2) Pauli, per CHP.
        """
        x1 = x1.astype(np.int8)
        z1 = z1.astype(np.int8)
        x2 = x2.astype(np.int8)
        z2 = z2.astype(np.int8)
        # Case analysis from Aaronson-Gottesman:
        out = np.zeros_like(x1)
        both = (x1 == 1) & (z1 == 1)
        only_x = (x1 == 1) & (z1 == 0)
        only_z = (x1 == 0) & (z1 == 1)
        out[both] = (z2 - x2)[both]
        out[only_x] = (z2 * (2 * x2 - 1))[only_x]
        out[only_z] = (x2 * (1 - 2 * z2))[only_z]
        return out

    def _rowsum(self, h: int, i: int) -> None:
        """Row h <- row h * row i, with correct sign tracking."""
        g_sum = int(np.sum(self._g(self.x[i], self.z[i], self.x[h], self.z[h])))
        total = 2 * int(self.r[h]) + 2 * int(self.r[i]) + g_sum
        self.r[h] = (total % 4) // 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def measure_z(self, q: int, forced: Optional[int] = None) -> int:
        """Measure qubit ``q`` in the Z basis; returns 0 or 1.

        ``forced`` pins the outcome of a *random* measurement (useful for
        deterministic tests); forcing a deterministic measurement to the
        wrong value raises ``ValueError``.
        """
        n = self.num_qubits
        stab_rows = np.nonzero(self.x[n:, q])[0]
        if stab_rows.size > 0:
            # Outcome is random.
            p = int(stab_rows[0]) + n
            for h in range(2 * n):
                if h != p and self.x[h, q]:
                    self._rowsum(h, p)
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, q] = 1
            if forced is None:
                outcome = int(self.rng.integers(0, 2))
            else:
                outcome = int(forced) & 1
            self.r[p] = outcome
            return outcome
        # Outcome is deterministic: accumulate into scratch row.
        scratch_x = np.zeros(n, dtype=np.uint8)
        scratch_z = np.zeros(n, dtype=np.uint8)
        scratch_r = 0
        for i in range(n):
            if self.x[i, q]:
                g_sum = int(np.sum(self._g(self.x[i + n], self.z[i + n],
                                           scratch_x, scratch_z)))
                total = 2 * scratch_r + 2 * int(self.r[i + n]) + g_sum
                scratch_r = (total % 4) // 2
                scratch_x ^= self.x[i + n]
                scratch_z ^= self.z[i + n]
        outcome = int(scratch_r)
        if forced is not None and (int(forced) & 1) != outcome:
            raise ValueError(
                f"measurement of qubit {q} is deterministic ({outcome}); "
                f"cannot force {forced}"
            )
        return outcome

    def measure_x(self, q: int, forced: Optional[int] = None) -> int:
        """Measure qubit ``q`` in the X basis."""
        self.h(q)
        outcome = self.measure_z(q, forced=forced)
        self.h(q)
        return outcome

    def measure_pauli(self, pauli: Pauli, forced: Optional[int] = None) -> int:
        """Measure an arbitrary Pauli observable.

        Implemented by mapping the observable onto a fresh interpretation:
        we conjugate so that the observable becomes Z on its first support
        qubit, using an ancilla-free textbook circuit of CX/H/S gates, then
        measure and un-conjugate.
        """
        if pauli.num_qubits != self.num_qubits:
            raise ValueError("operator size mismatch")
        support = pauli.support()
        if not support:
            # Identity observable: outcome is fixed by the phase.
            return 0 if pauli.phase == 0 else 1
        undo: list[tuple[str, tuple[int, ...]]] = []

        def do(gate: str, *qubits: int) -> None:
            getattr(self, gate)(*qubits)
            undo.append((gate, qubits))

        # Rotate each support qubit so the observable acts as Z there.
        for q in support:
            has_x, has_z = bool(pauli.x[q]), bool(pauli.z[q])
            if has_x and has_z:  # Y -> Z via S^dagger then H: use S;S;S then H
                do("s", q)
                do("s", q)
                do("s", q)
                do("h", q)
            elif has_x:  # X -> Z via H
                do("h", q)
        # Fold all support onto the first qubit with CX chains.
        root = support[0]
        for q in support[1:]:
            do("cx", q, root)
        outcome = self.measure_z(root, forced=forced)
        # Undo the basis changes (all gates used are self-inverse except S,
        # which we undo by applying it three more times).
        for gate, qubits in reversed(undo):
            if gate == "s":
                for _ in range(3):
                    getattr(self, gate)(*qubits)
            else:
                getattr(self, gate)(*qubits)
        if pauli.phase == 2:  # Observable carries a -1 prefactor.
            outcome ^= 1
        elif pauli.phase in (1, 3):
            raise ValueError("cannot measure a non-Hermitian Pauli (phase i)")
        return outcome

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def expectation_is_deterministic(self, pauli: Pauli) -> bool:
        """True iff the observable commutes with every stabilizer."""
        n = self.num_qubits
        for i in range(n):
            row = Pauli(self.x[n + i], self.z[n + i])
            if not row.commutes_with(pauli):
                return False
        return True

    def expectation(self, pauli: Pauli) -> int:
        """Expectation of a Pauli observable: +1, -1, or 0 (indeterminate)."""
        if not self.expectation_is_deterministic(pauli):
            return 0
        # Measure on a copy; deterministic so the state copy is unchanged.
        sim = self.copy()
        outcome = sim.measure_pauli(pauli)
        return 1 if outcome == 0 else -1

    def stabilizer_generators(self) -> list[Pauli]:
        """The current stabilizer group generators (with signs)."""
        n = self.num_qubits
        gens = []
        for i in range(n):
            phase = 2 * int(self.r[n + i])
            gens.append(Pauli(self.x[n + i].copy(), self.z[n + i].copy(), phase))
        return gens

    def copy(self) -> "StabilizerSimulator":
        """An independent copy of the simulator state."""
        sim = StabilizerSimulator.__new__(StabilizerSimulator)
        sim.num_qubits = self.num_qubits
        sim.x = self.x.copy()
        sim.z = self.z.copy()
        sim.r = self.r.copy()
        sim.rng = self.rng
        return sim
