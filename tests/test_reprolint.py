"""The repro-lint contract checker: corpus, suppressions, CLI, self-clean.

The seeded-violation corpus under ``tests/reprolint_corpus/`` carries
one known-bad file and one known-good twin per rule; these tests pin
the exact findings each rule must produce (and the silence of every
twin), the suppression-comment semantics, the JSON output schema, and —
the point of the whole exercise — that the repo's own ``src/``,
``benchmarks/``, and ``examples/`` trees lint clean under the repo
manifest.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from reprolint import JSON_SCHEMA_VERSION, __version__
from reprolint.cli import main as cli_main
from reprolint.engine import all_rules, run_paths
from reprolint.manifest import (DEFAULT_MANIFEST_PATH, ManifestError,
                                load_manifest)

REPO = Path(__file__).resolve().parents[1]
CORPUS = REPO / "tests" / "reprolint_corpus"
CORPUS_MANIFEST = CORPUS / "corpus_manifest.toml"


def lint(*names, select=None):
    """Lint corpus files under the corpus manifest (tests included)."""
    paths = [CORPUS / name for name in names]
    return run_paths(paths, manifest=load_manifest(CORPUS_MANIFEST),
                     select=select, lint_tests=True)


def rules_fired(report):
    return sorted({d.rule for d in report.diagnostics})


# ----------------------------------------------------------------------
# Per-rule corpus: each rule fires on its bad file, is silent on the twin
# ----------------------------------------------------------------------
class TestCorpus:
    @pytest.mark.parametrize("rule, expected_bad", [
        ("RL001", 8), ("RL002", 3), ("RL003", 3), ("RL004", 8),
        ("RL005", 6),
    ])
    def test_rule_fires_on_bad_and_not_on_good(self, rule, expected_bad):
        low = rule.lower()
        bad = lint(f"{low}_bad.py")
        assert rules_fired(bad) == [rule], \
            f"{rule} corpus must trip only its own rule"
        assert len(bad.diagnostics) == expected_bad
        assert bad.exit_code == 1
        good = lint(f"{low}_good.py")
        assert good.diagnostics == [] and good.exit_code == 0

    def test_rl001_finds_both_violation_families(self):
        messages = [d.message for d in lint("rl001_bad.py").diagnostics]
        assert any("legacy global-state" in m for m in messages)
        assert any("entropy-seeded" in m for m in messages)
        # Alias-aware: the `npr.randint` hit resolves through the
        # `import numpy.random as npr` binding.
        assert any("randint" in m for m in messages)

    def test_rl002_respects_scope_and_allowlist(self):
        report = lint("rl002_bad.py")
        lines = {d.line for d in report.diagnostics}
        source = (CORPUS / "rl002_bad.py").read_text().splitlines()
        # The allowed fast path (np.packbits) and the unscoped host
        # helper produce no findings.
        for lineno in lines:
            assert "RL002" in source[lineno - 1]
        assert not any("packbits" in d.message
                       for d in report.diagnostics)

    def test_rl004_is_structural_not_name_based(self):
        report = lint("rl004_good.py")
        # NotASpec is mutable and unserializable but never registered;
        # CleanEvent is accepted by recursion, not by manifest listing.
        assert report.diagnostics == []
        bad = lint("rl004_bad.py")
        by_message = "\n".join(d.message for d in bad.diagnostics)
        assert "MutableSpec" in by_message
        assert "BareSpec" in by_message
        assert "LeakySpec.payload" in by_message

    def test_rl004_recurses_into_nested_dataclasses(self):
        bad = lint("rl004_bad.py")
        by_message = "\n".join(d.message for d in bad.diagnostics)
        # The finding lands on the spec field that reaches the bad
        # nesting, and names both the nesting and its defect.
        assert "NestedSpec.event" in by_message
        assert "'MutableEvent' is not frozen" in by_message
        assert "NestedSpec.burst" in by_message
        assert "LeakyEvent.members" in by_message

    def test_rl004_nested_cycle_terminates(self, tmp_path):
        target = tmp_path / "specs.py"
        target.write_text(
            "from dataclasses import dataclass\n"
            "from typing import Optional\n"
            "from repro.campaigns import register_campaign\n"
            "@dataclass(frozen=True)\n"
            "class Node:\n"
            "    next: 'Optional[Node]' = None\n"
            "@dataclass(frozen=True)\n"
            "class RingSpec:\n"
            "    head: Optional[Node] = None\n"
            "@register_campaign(RingSpec)\n"
            "def _run(spec, executor, store):\n"
            "    return None\n")
        report = run_paths([target],
                           manifest=load_manifest(CORPUS_MANIFEST),
                           lint_tests=True)
        assert report.diagnostics == []

    def test_rl005_set_iteration_but_not_sorted(self):
        bad_msgs = [d.message for d in lint("rl005_bad.py").diagnostics]
        assert any("set order is per-process" in m for m in bad_msgs)
        # The good twin uses sorted(set(...)) everywhere: silent.
        assert lint("rl005_good.py").diagnostics == []

    def test_select_runs_only_requested_rules(self):
        report = lint("rl001_bad.py", "rl005_bad.py", select=["RL005"])
        assert rules_fired(report) == ["RL005"]
        with pytest.raises(ValueError, match="unknown rule"):
            lint("rl001_bad.py", select=["RL999"])


# ----------------------------------------------------------------------
# Suppression semantics
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_corpus_suppression_semantics(self):
        report = lint("suppressed.py")
        # justified trailing + justified wrapped-standalone: silenced;
        # unjustified: finding survives AND the comment is an RL000;
        # wrong-rule-id: finding survives.
        assert report.counts() == {"RL000": 1, "RL001": 2}
        rl000 = [d for d in report.diagnostics if d.rule == "RL000"]
        assert "justification" in rl000[0].message

    def test_suppression_applies_only_to_named_rule(self, tmp_path):
        target = tmp_path / "knobs.py"
        target.write_text(
            "import os\n"
            "# reprolint: disable=RL001 -- wrong rule on purpose\n"
            "x = os.getenv('REPRO_SCALE')\n")
        report = run_paths([target],
                           manifest=load_manifest(CORPUS_MANIFEST),
                           lint_tests=True)
        assert rules_fired(report) == ["RL003"]

    def test_justified_suppression_is_not_an_rl000(self, tmp_path):
        target = tmp_path / "knobs.py"
        target.write_text(
            "import os\n"
            "x = os.getenv('K')  # reprolint: disable=RL003 -- test rig\n")
        report = run_paths([target],
                           manifest=load_manifest(CORPUS_MANIFEST),
                           lint_tests=True)
        assert report.diagnostics == [] and report.exit_code == 0


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------
class TestEngine:
    def test_unparsable_file_reports_rl000(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def oops(:\n")
        report = run_paths([target],
                           manifest=load_manifest(CORPUS_MANIFEST))
        assert rules_fired(report) == ["RL000"]
        assert report.exit_code == 1

    def test_directory_walk_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("import os\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        report = run_paths([tmp_path],
                           manifest=load_manifest(CORPUS_MANIFEST))
        assert report.files_checked == 1

    def test_rl001_exempts_test_helpers_by_default(self, tmp_path):
        helper = tmp_path / "test_rig.py"
        helper.write_text("import numpy as np\n"
                          "rng = np.random.default_rng()\n")
        silent = run_paths([helper],
                           manifest=load_manifest(CORPUS_MANIFEST))
        assert silent.diagnostics == []
        loud = run_paths([helper],
                         manifest=load_manifest(CORPUS_MANIFEST),
                         lint_tests=True)
        assert rules_fired(loud) == ["RL001"]

    def test_registry_has_exactly_the_documented_rules(self):
        assert [r.rule_id for r in all_rules()] \
            == ["RL001", "RL002", "RL003", "RL004", "RL005"]
        for rule in all_rules():
            assert rule.severity in ("warning", "error")
            assert rule.description

    def test_manifest_errors_are_typed(self, tmp_path):
        missing = tmp_path / "nope.toml"
        with pytest.raises(ManifestError, match="cannot read"):
            load_manifest(missing)
        bad = tmp_path / "bad.toml"
        bad.write_text("[[seam.modules]]\nfunctions = ['*']\n")
        with pytest.raises(ManifestError, match="path"):
            load_manifest(bad)

    def test_default_manifest_parses(self):
        manifest = load_manifest(DEFAULT_MANIFEST_PATH)
        assert manifest.seam_module_for("src/repro/sim/bitops.py")
        assert manifest.is_env_owner("src/repro/config.py")
        assert manifest.is_wire_module(
            "src/repro/campaigns/checkpoint.py")
        # Suffix matching works from absolute paths too.
        assert manifest.is_env_owner(
            (REPO / "src/repro/config.py").as_posix())


# ----------------------------------------------------------------------
# JSON output schema
# ----------------------------------------------------------------------
class TestJsonOutput:
    def test_schema(self):
        report = lint("rl003_bad.py")
        doc = json.loads(report.to_json())
        assert doc["tool"] == "reprolint"
        assert doc["version"] == __version__
        assert doc["schema"] == JSON_SCHEMA_VERSION
        assert doc["files_checked"] == 1
        assert doc["exit_code"] == 1
        assert doc["rules"] == ["RL001", "RL002", "RL003", "RL004",
                                "RL005"]
        assert doc["counts"] == {"RL003": 3}
        for diag in doc["diagnostics"]:
            assert set(diag) == {"path", "col", "line", "rule",
                                 "severity", "message"}
            assert diag["rule"] == "RL003"
            assert diag["severity"] == "error"
            assert diag["line"] >= 1 and diag["col"] >= 1

    def test_diagnostics_are_sorted_and_stable(self):
        a = lint("rl001_bad.py", "rl005_bad.py")
        b = lint("rl005_bad.py", "rl001_bad.py")
        assert [d.to_dict() for d in a.diagnostics] \
            == [d.to_dict() for d in b.diagnostics]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_codes(self, capsys):
        rc = cli_main([str(CORPUS / "rl001_good.py"),
                       "--manifest", str(CORPUS_MANIFEST)])
        assert rc == 0
        assert "clean" in capsys.readouterr().out
        rc = cli_main([str(CORPUS / "rl003_bad.py"),
                       "--manifest", str(CORPUS_MANIFEST)])
        assert rc == 1

    def test_json_flag(self, capsys):
        rc = cli_main([str(CORPUS / "rl003_bad.py"), "--json",
                       "--manifest", str(CORPUS_MANIFEST)])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"] == {"RL003": 3}

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert rule_id in out

    def test_bad_manifest_is_a_usage_error(self, capsys, tmp_path):
        rc = cli_main([str(CORPUS / "rl001_good.py"),
                       "--manifest", str(tmp_path / "nope.toml")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "reprolint", "--list-rules"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "tools"), "PATH": "/usr/bin"},
            cwd=str(REPO))
        assert proc.returncode == 0
        assert "RL001" in proc.stdout


# ----------------------------------------------------------------------
# The actual contract: the repo's own tree is lint-clean
# ----------------------------------------------------------------------
class TestSelfClean:
    def test_src_benchmarks_examples_are_clean(self):
        report = run_paths([REPO / "src", REPO / "benchmarks",
                            REPO / "examples"])
        assert report.diagnostics == [], \
            "repo tree has reprolint findings:\n" + report.render()
        assert report.exit_code == 0
        assert report.files_checked > 60

    def test_tools_tree_is_clean_too(self):
        report = run_paths([REPO / "tools"])
        assert report.diagnostics == [], report.render()
