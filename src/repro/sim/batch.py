"""Batched shot engine for Monte-Carlo campaigns.

The paper's headline results are >= 1e5-sample campaigns; running each
shot through per-cycle Python loops caps benches at a few hundred.  This
module is the production hot path:

* **Vectorized shot kernels** — noise sampling, syndrome extraction and
  cut parities are computed for a whole batch of shots in a handful of
  NumPy calls (:meth:`PhenomenologicalNoise.sample_batch`,
  :meth:`SyndromeLattice.detection_events_batch`).

* **Staged pipelines** — each kernel's run is a
  :class:`repro.sim.stages.ShotPipeline` over the composable stage seam
  (``sample → extract → detect → decode → accumulate``); the kernels
  own configuration, scan tails and decode strategy, the stages own the
  batch dataflow, and partial runs (``pipeline().run_until(...)``)
  expose any seam for benchmarking or testing.

* **Cross-shot batched decode** — the greedy matchings of a chunk run
  through :mod:`repro.decoding.batched`: shots bucketed by active-node
  count, bucket-wide distance tensors, one flattened candidate sort and
  a vectorized acceptance, certified bit-identical to the per-shot
  pruned fast-greedy core (which ``decode="pershot"`` keeps as the
  in-tree reference; MWPM always decodes per shot).  Scratch buffers
  live in a per-worker :class:`repro.decoding.batched.ScratchArena`
  reused across chunks.

* **Bit-packed backend** — ``packing="bits"`` (the default) samples
  Bernoulli bits straight into uint64 words (64 shots per word, see
  :mod:`repro.sim.bitops`) and runs syndrome differences and boundary
  parities as word-wise XOR; nothing is unpacked until decode, and
  decode materializes only each shot's active-node coordinates.  The
  packed backend consumes the identical uniform stream as the float
  path, so for the same ``(seed, batch_size)`` its outcomes are
  *bit-identical* — ``packing="none"`` remains the certified reference.

* **Matching memoization** — low-``p`` shots repeat the same few-node
  syndromes constantly; :class:`MatchingCache` reuses their cut
  parities across shots (hit counts surface in
  :attr:`BatchRunResult.cache_hits`).

* **Process fan-out** — ``workers > 1`` decodes batches on a
  ``multiprocessing`` pool.  Each worker builds its kernel (and decoder)
  once and reuses it for every batch it is handed.

* **Reproducibility** — one :class:`numpy.random.SeedSequence` spawns a
  child seed per batch, so a campaign's outcomes depend only on
  ``(seed, batch_size)`` — never on the worker count or on scheduling.

* **Streaming estimates** — per-shot outcomes stream into a
  :class:`BinomialEstimate`; a campaign can stop early once the Wilson
  interval is tight enough instead of burning a fixed shot budget.

``workers = 0`` everywhere falls back to the original sequential path.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.statistics import (SyndromeStatistics, detection_threshold,
                                   expected_activity_rate)
from repro.decoding.batched import ScratchArena, batched_cut_parities
from repro.decoding.graph import SyndromeLattice
from repro.decoding.greedy import greedy_cut_parity
from repro.decoding.mwpm import MWPMDecoder
from repro.decoding.weights import (DistanceModel, MultiRegionDistanceModel,
                                    relative_anomalous_weight)
from repro.noise.models import AnomalousRegion, PhenomenologicalNoise
from repro.scenarios.model import Scenario
from repro.sim import bitops
from repro.sim.endtoend import estimate_strike_region
from repro.sim.montecarlo import BinomialEstimate, wilson_interval
from repro.sim.stages import (DetectionExtractStage, DetectionSampleStage,
                              DetectionScoreStage, EndToEndAccumulateStage,
                              EndToEndDecodeStage, EndToEndDetectStage,
                              EndToEndExtractStage, EndToEndSampleStage,
                              MemoryAccumulateStage, MemoryDecodeStage,
                              MemoryExtractStage, MemorySampleStage,
                              ShotPipeline, StageContext, StageState)
# The per-shot anomalous overwrites moved to the stage seam; re-exported
# here because they are part of this module's long-standing test surface.
from repro.sim.stages import _overwrite_anomalous as _overwrite_anomalous
from repro.sim.stages import (
    _overwrite_anomalous_packed as _overwrite_anomalous_packed)

#: Recognized values of the shot-engine ``packing`` knob.
PACKING_MODES = ("bits", "none")

#: Recognized values of the shot-engine ``decode``/``scan`` knobs.
DECODE_MODES = ("batched", "pershot")

#: Largest single chunk an in-process (``workers=0``) campaign decodes
#: at once: the retired sequential entry points batch their whole shot
#: request, and this cap keeps the word arrays of a huge request from
#: dominating memory.
MAX_CHUNK_SHOTS = 4096

#: Activity-tensor element budget per in-process chunk.  The batched
#: windowed scan materializes int32 cumulative sums (plus a windowed
#: copy) of the whole ``(S, T, rows, cols)`` chunk, so the chunk size
#: must shrink with ``cycles * d^2`` — a shots-only cap would OOM the
#: paper-scale Fig. 7 points (d = 21, c_win in the hundreds) that the
#: old sequential path streamed one trial at a time.
MAX_CHUNK_ELEMENTS = 1 << 25


def default_chunk_shots(shots: int, per_shot_elements: int) -> int:
    """Chunk size for a ``workers=0`` whole-request campaign.

    The whole request when it fits, shrunk by the per-shot activity
    footprint (``total_cycles * lattice nodes``) so one chunk's scan
    tensors stay inside :data:`MAX_CHUNK_ELEMENTS`.
    """
    cap = max(1, MAX_CHUNK_ELEMENTS // max(1, per_shot_elements))
    return max(1, min(shots, MAX_CHUNK_SHOTS, cap))


def chunk_plan(shots: int,
               batch_size: int,
               seed: Optional[int]) -> list[tuple[int, np.random.SeedSequence]]:
    """The campaign's chunk decomposition: ``(size, child seed)`` pairs.

    This is *the* reproducibility contract of the shot engine: one
    :class:`numpy.random.SeedSequence` spawns a child per chunk, so a
    campaign's outcomes depend only on ``(seed, batch_size)`` — never on
    the worker count, scheduling, or on which chunks were restored from
    a checkpoint.  :class:`BatchShotRunner` and the campaign layer
    (:mod:`repro.campaigns`) must build their plans through this one
    function so they can never drift apart.
    """
    if shots < 1:
        raise ValueError("need at least one shot")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    sizes = [batch_size] * (shots // batch_size)
    if shots % batch_size:
        sizes.append(shots % batch_size)
    children = np.random.SeedSequence(seed).spawn(len(sizes))
    return list(zip(sizes, children, strict=True))


def wilson_tight(successes: int, trials: int,
                 target_rel_width: Optional[float],
                 min_shots: int = 0) -> bool:
    """The shot engine's early-stop predicate.

    True once the Wilson interval of the streamed success count is
    narrower than ``target_rel_width`` times its mean (and at least
    ``min_shots`` and one shot have been ingested).  Shared by
    :meth:`BatchShotRunner.run` and the campaign layer so a resumed
    campaign stops after exactly the same chunk as an uninterrupted one.
    """
    if target_rel_width is None or trials < max(min_shots, 1):
        return False
    if successes == 0:
        return False
    lo, hi = wilson_interval(successes, trials)
    mean = successes / trials
    return (hi - lo) <= target_rel_width * mean


# ----------------------------------------------------------------------
# Shared kernel pieces
# ----------------------------------------------------------------------
class MatchingCache:
    """LRU-bounded memoized cut parities for repeated small node sets.

    At low physical error rates most shots light up the same handful of
    syndrome patterns over and over; rather than re-running the matching,
    the kernels key its north-cut parity on the frozen coordinate bytes.
    Only sets of at most ``max_nodes`` nodes are cached (large sets are
    effectively unique, and skipping them bounds key size).  The table
    holds at most ``max_entries`` parities and evicts least-recently
    used (long campaigns previously grew it without bound); ``hits``,
    ``misses`` and ``evictions`` stream into
    :attr:`BatchRunResult.cache_hits` / ``cache_misses`` /
    ``cache_evictions``, including across pool workers.
    """

    def __init__(self, max_nodes: int = 16, max_entries: int = 1 << 16):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_nodes = max_nodes
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._table: dict[bytes, int] = {}

    def __len__(self) -> int:
        return len(self._table)

    def get(self, key: bytes) -> Optional[int]:
        """Cached parity for a key, counting and LRU-refreshing."""
        found = self._table.pop(key, None)
        if found is None:
            self.misses += 1
            return None
        self._table[key] = found  # reinsert: most-recently used
        self.hits += 1
        return found

    def put(self, key: bytes, value: int) -> None:
        """Store a parity, evicting the least-recently-used entry."""
        if key in self._table:
            self._table[key] = value
            return
        if len(self._table) >= self.max_entries:
            self._table.pop(next(iter(self._table)))
            self.evictions += 1
        self._table[key] = value

    def parity(self, nodes: np.ndarray, compute) -> int:
        """``compute(nodes)`` through the cache (pure memoization)."""
        if len(nodes) > self.max_nodes:
            return compute(nodes)
        key = nodes.tobytes()
        found = self.get(key)
        if found is not None:
            return found
        value = compute(nodes)
        self.put(key, value)
        return value

    def stats(self) -> tuple[int, int, int]:
        return self.hits, self.misses, self.evictions


def _cache_stats(kernel) -> tuple[int, int, int]:
    cache = getattr(kernel, "cache", None)
    return cache.stats() if cache is not None else (0, 0, 0)


def _windowed_over(activity: np.ndarray, c_win: int,
                   v_th: float) -> tuple[np.ndarray, np.ndarray]:
    """Sliding-window counter state for one shot's activity stream.

    Returns ``(over, n_over)`` where index ``k`` corresponds to cycle
    ``t = k + c_win - 1`` (the unit stays silent until its window
    fills): ``over[k]`` is the above-threshold node map, ``n_over[k]``
    its count.  Exactly the counter update of
    :meth:`AnomalyDetectionUnit.observe` under the fixed discard
    semantics, where masks never touch a scored detection (pre-onset
    flags clear their masks; the first accepted flag ends the shot).
    """
    cum = np.cumsum(activity, axis=0, dtype=np.int32)
    if len(cum) < c_win:
        empty = np.zeros((0,) + activity.shape[1:], dtype=bool)
        return empty, np.zeros(0, dtype=np.int64)
    windowed = cum[c_win - 1:].copy()
    windowed[1:] -= cum[:-c_win]
    over = windowed > v_th
    return over, over.sum(axis=(1, 2))


def _windowed_over_batch(activity: np.ndarray, c_win: int,
                         v_th: float) -> tuple[np.ndarray, np.ndarray]:
    """:func:`_windowed_over` across a whole ``(S, T, ...)`` batch.

    Integer cumulative sums, so ``over[s]`` / ``n_over[s]`` equal the
    per-shot scan bit for bit; one pass replaces the ``S`` per-shot
    cumsum/window calls of the kernels' detection scans.
    """
    if activity.shape[1] < c_win:
        empty = np.zeros((len(activity), 0) + activity.shape[2:],
                         dtype=bool)
        return empty, np.zeros((len(activity), 0), dtype=np.int64)
    cum = np.cumsum(activity, axis=1, dtype=np.int32)
    windowed = cum[:, c_win - 1:].copy()
    windowed[:, 1:] -= cum[:, :-c_win]
    over = windowed > v_th
    return over, over.sum(axis=(2, 3))


# ----------------------------------------------------------------------
# Shot kernels
# ----------------------------------------------------------------------
class MemoryShotKernel:
    """Batched version of :meth:`MemoryExperiment.run_once`.

    ``run_batch(shots, rng)`` returns an ``(shots,)`` int8 array of
    logical-failure indicators, distributionally identical to ``shots``
    sequential ``run_once`` calls (the same error model and the exact
    same matching; only the order in which the uniforms are drawn
    differs).
    """

    #: column of ``run_batch`` output that feeds the streamed estimate
    success_column = 0
    default_batch_size = 512

    def __init__(self, distance: int, p: float,
                 region: Optional[AnomalousRegion] = None,
                 p_ano: float = 0.5, decoder: str = "greedy",
                 informed: bool = False, cycles: Optional[int] = None,
                 cache_matchings: bool = True, decode: str = "batched",
                 scenario: Optional[Scenario] = None):
        if decode not in DECODE_MODES:
            raise ValueError(f"decode must be one of {DECODE_MODES}")
        if scenario is not None:
            if region is not None:
                raise ValueError("pass either region or scenario, not both")
            if not scenario.fixed:
                raise ValueError(
                    "memory-kernel scenarios need fixed event positions")
            legacy = scenario.legacy_equivalent()
            if legacy is not None:
                # The degenerate scenario *is* the legacy kernel — route
                # through the legacy fields so outcomes are structurally
                # bit-identical per (seed, batch_size).
                region, p_ano = legacy
                scenario = None
        self.distance = distance
        self.p = p
        self.region = region
        self.p_ano = p_ano
        self.scenario = scenario
        self.decoder = decoder
        self.informed = informed
        self.cycles = cycles if cycles is not None else distance
        self.cache_matchings = cache_matchings
        self.decode = decode
        self.cache: Optional[MatchingCache] = None
        self._state = None
        self._arena: Optional[ScratchArena] = None

    def prepare(self) -> None:
        """Build noise/lattice/decoder once (per process, per worker)."""
        if self._state is not None:
            return
        if self.scenario is not None:
            noise = PhenomenologicalNoise(self.distance, self.p,
                                          scenario=self.scenario)
        else:
            noise = PhenomenologicalNoise(self.distance, self.p, self.p_ano,
                                          self.region)
        lattice = SyndromeLattice(self.distance)
        if self.informed and self.scenario is not None \
                and self.scenario.events:
            regions = tuple(e.region() for e in self.scenario.events)
            weights = tuple(relative_anomalous_weight(self.p, e.p_ano)
                            for e in self.scenario.events)
            if len(regions) == 1:
                model = DistanceModel(self.distance, regions[0], weights[0])
            else:
                model = MultiRegionDistanceModel(self.distance, regions,
                                                 weights)
        elif self.informed and self.region is not None:
            w_ano = relative_anomalous_weight(self.p, self.p_ano)
            model = DistanceModel(self.distance, self.region, w_ano)
        else:
            model = DistanceModel(self.distance)
        mwpm = MWPMDecoder(model) if self.decoder == "mwpm" else None
        self.cache = MatchingCache() if self.cache_matchings else None
        self._arena = ScratchArena()
        self._state = (noise, lattice, model, mwpm)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_state"] = None  # rebuilt lazily inside each worker
        state["cache"] = None
        state["_arena"] = None
        return state

    def _cut_parity(self, nodes: np.ndarray) -> int:
        """Matching north-cut parity for one shot, through the cache."""
        if len(nodes) == 0:
            return 0
        _, _, model, mwpm = self._state
        if mwpm is not None:
            def compute(n):
                return mwpm.decode(n).correction_cut_parity
        else:
            def compute(n):
                return greedy_cut_parity(model, n)
        if self.cache is None:
            return compute(nodes)
        return self.cache.parity(nodes, compute)

    def _cut_parities(self, nodes_list: list) -> np.ndarray:
        """Matching parities for a whole chunk of shots.

        The greedy decoder runs through the bucketed batched engine
        (``decode="pershot"`` keeps the PR 2 per-shot loop as the
        certified reference); MWPM always decodes shot by shot.
        """
        _, _, model, mwpm = self._state
        if mwpm is None and self.decode == "batched":
            return batched_cut_parities(model, nodes_list,
                                        cache=self.cache,
                                        arena=self._arena)
        out = np.empty(len(nodes_list), dtype=np.int8)
        for s, nodes in enumerate(nodes_list):
            out[s] = self._cut_parity(nodes)
        return out

    def pipeline(self) -> ShotPipeline:
        """This kernel's staged pipeline (sample/extract/decode/accumulate)."""
        self.prepare()
        return ShotPipeline((MemorySampleStage(self),
                             MemoryExtractStage(self),
                             MemoryDecodeStage(self),
                             MemoryAccumulateStage(self)))

    def _context(self, shots: int, rng: Optional[np.random.Generator],
                 packing: str) -> StageContext:
        self.prepare()
        return StageContext(shots=shots, packing=packing, rng=rng,
                            arena=self._arena, cache=self.cache)

    def run_batch(self, shots: int, rng: np.random.Generator) -> np.ndarray:
        return self.pipeline().run(self._context(shots, rng, "none"))

    def run_batch_packed(self, shots: int,
                         rng: np.random.Generator) -> np.ndarray:
        """Bit-packed :meth:`run_batch`: identical outputs per seed.

        Sampling, syndrome differences and the boundary parity all stay
        word-wise over uint64 (64 shots per word); active-node
        coordinates for the whole chunk come out of one bulk lane
        unpack, and the matchings run through the bucketed batched
        decode engine.
        """
        return self.pipeline().run(self._context(shots, rng, "bits"))


class EndToEndShotKernel:
    """Batched end-to-end strike shots (detect, estimate, re-decode).

    Output rows are ``(naive, detected, oracle, latency)`` with
    ``latency = -1`` on a missed detection.  The per-cycle detection
    scan is replaced by a windowed-count computation over the whole
    activity stream (exact under the discard-pre-onset semantics: masks
    from discarded events are cleared, and the first accepted event ends
    the shot, so no mask can ever touch a scored detection).
    """

    success_column = 1  # detected-strategy failures drive early stopping
    default_batch_size = 64

    def __init__(self, distance: int, p: float, p_ano: float,
                 anomaly_size: int, onset: int, cycles: int,
                 c_win: int, n_th: int, alpha: float,
                 decode: str = "batched", decoder: str = "greedy",
                 scenario: Optional[Scenario] = None):
        if decode not in DECODE_MODES:
            raise ValueError(f"decode must be one of {DECODE_MODES}")
        if decoder not in ("greedy", "mwpm"):
            raise ValueError("decoder must be 'greedy' or 'mwpm'")
        if scenario is not None and not scenario.events:
            raise ValueError("end-to-end scenarios need at least one event")
        self.distance = distance
        self.p = p
        self.p_ano = p_ano
        self.anomaly_size = anomaly_size
        self.onset = onset
        self.cycles = cycles
        self.c_win = c_win
        self.n_th = n_th
        self.alpha = alpha
        self.decode = decode
        self.decoder = decoder
        self.scenario = scenario
        self._state = None
        self._arena: Optional[ScratchArena] = None

    def prepare(self) -> None:
        if self._state is not None:
            return
        lattice = SyndromeLattice(self.distance)
        stats = SyndromeStatistics.from_activity_rate(
            expected_activity_rate(self.p))
        v_th = detection_threshold(stats, self.c_win, self.alpha)
        if self.scenario is not None and not self.scenario.uniform_base:
            # Events are applied per shot by the sample stage; the noise
            # model carries only the heterogeneous/drifting base field.
            base = Scenario(events=(), rate_field=self.scenario.rate_field,
                            drift=self.scenario.drift)
            base_noise = PhenomenologicalNoise(self.distance, self.p,
                                               scenario=base)
        else:
            base_noise = PhenomenologicalNoise(self.distance, self.p,
                                               self.p_ano)
        naive_model = DistanceModel(self.distance)
        if self.scenario is not None:
            w_ano: object = tuple(
                relative_anomalous_weight(self.p, e.p_ano)
                for e in self.scenario.events)
        else:
            w_ano = relative_anomalous_weight(self.p, self.p_ano)
        self._arena = ScratchArena()
        self._state = (lattice, v_th, base_noise, naive_model, w_ano)

    @property
    def _batched_w_ano(self) -> Optional[float]:
        """The chunk-wide region weight, or ``None`` if not uniform.

        The region-bucketed engine takes one ``w_ano`` for a whole
        chunk; scenarios whose events carry different weights decode
        through the per-shot scoring loop instead.
        """
        w = self._state[4]
        if isinstance(w, tuple):
            return w[0] if all(x == w[0] for x in w) else None
        return w

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_state"] = None
        state["_arena"] = None
        return state

    def _naive_parities(self, nodes_list: list) -> np.ndarray:
        """Naive-model matchings for the chunk, bucketed when enabled.

        The naive decode shares one :class:`DistanceModel` across every
        shot, so it batches; the oracle/detected decodes depend on each
        shot's own (true or estimated) region and stay per shot.  MWPM
        always decodes shot by shot.
        """
        _, _, _, naive_model, _ = self._state
        if self.decoder == "mwpm":
            mwpm = MWPMDecoder(naive_model)
            return np.fromiter(
                ((mwpm.decode(nodes).correction_cut_parity if len(nodes)
                  else 0) for nodes in nodes_list),
                dtype=np.int8, count=len(nodes_list))
        if self.decode == "batched":
            return batched_cut_parities(naive_model, nodes_list,
                                        arena=self._arena)
        return np.fromiter(
            (greedy_cut_parity(naive_model, nodes) for nodes in nodes_list),
            dtype=np.int8, count=len(nodes_list))

    def _detect(self, activity: np.ndarray):
        """Windowed-count scan of one shot's activity stream.

        Returns ``(stop, estimated, latency)``: where the exposure
        window closes (``onset + d`` cycles after the flag, or the full
        run on a miss), the control unit's region estimate, and the
        detection latency (-1 on a miss).  The single copy of the scan
        tail keeps every path — float, packed, per-shot, batched —
        scoring identically.
        """
        _, v_th, _, _, _ = self._state
        return self._detect_scan(*_windowed_over(activity, self.c_win,
                                                 v_th))

    def _detect_all(self, activity: np.ndarray) -> list:
        """Detection scans for a whole ``(S, T, rows, cols)`` chunk.

        ``decode="batched"`` runs one batched windowed-count pass;
        ``"pershot"`` keeps the per-shot scans.  Bit-equal either way
        (integer window sums), certified by the equivalence suite.
        """
        _, v_th, _, _, _ = self._state
        if self.decode == "batched":
            over, n_over = _windowed_over_batch(activity, self.c_win,
                                                v_th)
            return [self._detect_scan(over[s], n_over[s])
                    for s in range(len(activity))]
        return [self._detect(activity[s]) for s in range(len(activity))]

    def _detect_scan(self, over: np.ndarray, n_over: np.ndarray):
        """The scan tail shared by the per-shot and batched passes."""
        d, cycles, c_win = self.distance, self.cycles, self.c_win
        start = max(self.onset - (c_win - 1), 0)
        fired = np.flatnonzero(n_over[start:] > self.n_th)
        if not len(fired):
            return cycles, None, -1
        event_cycle = int(fired[0]) + start + c_win - 1
        flag_rows, flag_cols = np.nonzero(over[event_cycle - (c_win - 1)])
        estimated = estimate_strike_region(
            d, self.anomaly_size, int(np.median(flag_rows)),
            int(np.median(flag_cols)), max(0, event_cycle - c_win))
        return (min(cycles, event_cycle + d), estimated,
                event_cycle - self.onset)

    def _decode_model(self, regions):
        """The informed model for one shot's known region(s).

        ``regions`` may be ``None`` (uniform), one
        :class:`AnomalousRegion` (the legacy path and the detection
        unit's estimate), or a sequence of regions (a scenario shot) —
        length 0 and 1 reduce to the uniform and single-region models,
        two or more compose a
        :class:`~repro.decoding.weights.MultiRegionDistanceModel` with
        the scenario's per-event weights.  A single estimate under a
        multi-event scenario uses the first event's weight.
        """
        w = self._state[4]
        ws = w if isinstance(w, tuple) else (w,)
        if regions is None:
            return self._state[3]
        if isinstance(regions, AnomalousRegion):
            return DistanceModel(self.distance, regions, ws[0])
        regions = tuple(regions)
        if not regions:
            return self._state[3]
        if len(ws) != len(regions):
            ws = (ws[0],) * len(regions)
        if len(regions) == 1:
            return DistanceModel(self.distance, regions[0], ws[0])
        return MultiRegionDistanceModel(self.distance, regions, ws)

    def _matching_parity(self, model, nodes: np.ndarray) -> int:
        """One shot's matching cut parity under the spec'd decoder."""
        if self.decoder == "mwpm":
            if len(nodes) == 0:
                return 0
            return int(MWPMDecoder(model).decode(nodes)
                       .correction_cut_parity)
        return greedy_cut_parity(model, nodes)

    def _score(self, nodes: np.ndarray, error_parity: int,
               naive_parity: int, true_region,
               estimated: Optional[AnomalousRegion]):
        """(naive, detected, oracle) failures for one decoded shot.

        The naive matching is precomputed for the whole chunk (one
        shared model — it batches); the oracle/detected matchings use
        this shot's own regions (possibly several, under a scenario).
        """
        naive = error_parity ^ naive_parity
        oracle = error_parity ^ self._matching_parity(
            self._decode_model(true_region), nodes)
        if estimated is None:
            return naive, naive, oracle
        detected = error_parity ^ self._matching_parity(
            self._decode_model(estimated), nodes)
        return naive, detected, oracle

    def pipeline(self) -> ShotPipeline:
        """This kernel's staged pipeline (all five beats)."""
        self.prepare()
        return ShotPipeline((EndToEndSampleStage(self),
                             EndToEndExtractStage(self),
                             EndToEndDetectStage(self),
                             EndToEndDecodeStage(self),
                             EndToEndAccumulateStage(self)))

    def _context(self, shots: int, rng: Optional[np.random.Generator],
                 packing: str) -> StageContext:
        self.prepare()
        return StageContext(shots=shots, packing=packing, rng=rng,
                            arena=self._arena)

    def _assemble(self, nodes_list: list, parities: np.ndarray,
                  regions: list, detections: list) -> np.ndarray:
        """Decode + accumulate over pre-detected chunk inputs.

        The decode-stage seam: feeds a :class:`StageState` holding the
        detect-stage outputs (``nodes_list, parities, regions,
        detections``) through the decode and accumulate stages — the
        decode-stage bench times exactly this tail.
        """
        self.prepare()
        state = StageState()
        state.nodes_list = nodes_list
        state.parities = parities
        state.regions = regions
        state.detections = detections
        ctx = self._context(len(nodes_list), None, "bits")
        EndToEndDecodeStage(self).run(ctx, state)
        EndToEndAccumulateStage(self).run(ctx, state)
        return state.outcomes

    def run_batch(self, shots: int, rng: np.random.Generator) -> np.ndarray:
        return self.pipeline().run(self._context(shots, rng, "none"))

    def run_batch_packed(self, shots: int,
                         rng: np.random.Generator) -> np.ndarray:
        """Bit-packed :meth:`run_batch`: identical outputs per seed.

        The per-shot truncated rerun (``v[:stop]`` …) never happens:
        the difference lattice of a run stopped at ``stop`` is the first
        ``stop`` layers of the live activity stream plus a final layer
        that is exactly ``m[stop - 1]``, and the truncated error parity
        is one bit of the packed running north-cut parity — all of which
        are sliced out of the word arrays already computed for the whole
        batch.
        """
        return self.pipeline().run(self._context(shots, rng, "bits"))

    def _chunk_packed(self, shots: int, rng: np.random.Generator) -> tuple:
        """Sample + detect one packed chunk, stopping short of decode.

        Returns the decode-stage inputs ``(nodes_list, parities,
        regions, detections)`` — the seam the decode-stage bench times
        :meth:`_assemble` across.  A partial pipeline run:
        ``run_until("detect")``.
        """
        state = self.pipeline().run_until(
            "detect", self._context(shots, rng, "bits"))
        return (state.nodes_list, state.parities, state.regions,
                state.detections)

    @staticmethod
    def _shot_nodes_truncated(lattice, coords, vals, bounds, m,
                              shot: int, stop: int) -> np.ndarray:
        """Active nodes of one shot's run truncated after cycle ``stop``.

        Equals ``lattice.detection_events(v[:stop], h[:stop], m[:stop])``
        bit for bit: activity layers ``t < stop`` plus the final perfect
        round's events, which reduce to ``m[stop - 1]``.
        """
        nodes = lattice.shot_nodes(coords, vals, bounds, shot, t_stop=stop)
        w, b = divmod(shot, bitops.WORD_BITS)
        final = np.argwhere(
            (m[w, stop - 1] >> np.uint64(b)) & np.uint64(1) != 0)
        if len(final):
            final = np.hstack([
                np.full((len(final), 1), stop, dtype=final.dtype), final])
            nodes = np.vstack([nodes, final])
        return nodes


class DetectionShotKernel:
    """Batched detection trials (Fig. 7) for the shot engine.

    Output rows are ``(false_positive, detected, latency, position_error)``
    with ``latency = -1`` and ``position_error = nan`` on a miss.  Uses
    the same windowed-count scan as :class:`EndToEndShotKernel`: exact
    under the discard semantics, where pre-onset flags clear their masks
    and the first post-onset flag ends the trial.  ``scan="batched"``
    (the default) runs one windowed-count pass over the whole chunk;
    ``"pershot"`` keeps the per-trial scan as the in-tree reference —
    outputs are bit-equal either way.
    """

    success_column = 1
    default_batch_size = 16

    def __init__(self, distance: int, p: float, p_ano: float,
                 anomaly_size: int, c_win: int, n_th: int, alpha: float,
                 normal_cycles: int, post_cycles: int,
                 scan: str = "batched",
                 scenario: Optional[Scenario] = None):
        if scan not in DECODE_MODES:
            raise ValueError(f"scan must be one of {DECODE_MODES}")
        if scenario is not None and not scenario.events:
            raise ValueError("detection scenarios need at least one event")
        self.scan = scan
        self.distance = distance
        self.p = p
        self.p_ano = p_ano
        self.anomaly_size = anomaly_size
        self.c_win = c_win
        self.n_th = n_th
        self.alpha = alpha
        self.normal_cycles = normal_cycles
        self.post_cycles = post_cycles
        self.scenario = scenario
        self._state = None

    def prepare(self) -> None:
        if self._state is not None:
            return
        stats = SyndromeStatistics.from_activity_rate(
            expected_activity_rate(self.p))
        v_th = detection_threshold(stats, self.c_win, self.alpha)
        if self.scenario is not None and not self.scenario.uniform_base:
            base = Scenario(events=(), rate_field=self.scenario.rate_field,
                            drift=self.scenario.drift)
            base_noise = PhenomenologicalNoise(self.distance, self.p,
                                               scenario=base)
        else:
            base_noise = PhenomenologicalNoise(self.distance, self.p,
                                               self.p_ano)
        self._state = (v_th, base_noise, SyndromeLattice(self.distance))

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_state"] = None
        return state

    def _score_trial(self, activity: np.ndarray, region) -> tuple:
        """One trial's windowed-count scan and outcome row.

        Returns ``(false_positive, detected, latency, position_error)``;
        the single copy of the scan tail keeps every path — float,
        packed, per-shot, batched — scoring identically.
        """
        v_th, _, _ = self._state
        return self._score_scan(*_windowed_over(activity, self.c_win,
                                                v_th), region)

    def _score_all(self, activity: np.ndarray,
                   regions: list) -> np.ndarray:
        """Outcome rows for a whole ``(S, T, rows, cols)`` chunk."""
        shots = len(activity)
        out = np.empty((shots, 4), dtype=np.float64)
        if self.scan == "batched":
            v_th, _, _ = self._state
            over, n_over = _windowed_over_batch(activity, self.c_win,
                                                v_th)
            for s in range(shots):
                out[s] = self._score_scan(over[s], n_over[s], regions[s])
        else:
            for s in range(shots):
                out[s] = self._score_trial(activity[s], regions[s])
        return out

    def _score_scan(self, over: np.ndarray, n_over: np.ndarray,
                    region) -> tuple:
        """The scan tail shared by the per-shot and batched passes.

        ``region`` may be a sequence of per-event regions (a scenario
        trial): the *first* event is the one the false-positive window
        and position error are scored against — later back-to-back
        strikes ride inside the post-detection stream, stressing the
        detector's post-clear blindness window.
        """
        if isinstance(region, (list, tuple)):
            region = region[0]
        c_win, onset = self.c_win, self.normal_cycles
        if not len(n_over):
            return (0.0, 0.0, -1.0, np.nan)
        # Windowed index k corresponds to cycle t = k + c_win - 1.
        pre = max(0, onset - (c_win - 1))
        false_positive = bool(np.any(n_over[:pre] > self.n_th))
        fired = np.flatnonzero(n_over[pre:] > self.n_th)
        if not len(fired):
            return (false_positive, 0.0, -1.0, np.nan)
        cycle = int(fired[0]) + pre + c_win - 1
        flag_r, flag_c = np.nonzero(over[cycle - (c_win - 1)])
        centre_r = region.row_lo + (region.size - 1) / 2.0
        centre_c = region.col_lo + (region.size - 1) / 2.0
        err = math.hypot(int(np.median(flag_r)) - centre_r,
                         int(np.median(flag_c)) - centre_c)
        return (false_positive, 1.0, cycle - onset, err)

    def pipeline(self) -> ShotPipeline:
        """This kernel's staged pipeline (sample/extract/detect)."""
        self.prepare()
        return ShotPipeline((DetectionSampleStage(self),
                             DetectionExtractStage(self),
                             DetectionScoreStage(self)))

    def _context(self, shots: int, rng: Optional[np.random.Generator],
                 packing: str) -> StageContext:
        self.prepare()
        return StageContext(shots=shots, packing=packing, rng=rng)

    def run_batch(self, shots: int, rng: np.random.Generator) -> np.ndarray:
        return self.pipeline().run(self._context(shots, rng, "none"))

    def run_batch_packed(self, shots: int,
                         rng: np.random.Generator) -> np.ndarray:
        """Bit-packed :meth:`run_batch`: identical outputs per seed.

        Sampling and the syndrome-difference stream stay packed (64
        trials per uint64 word); only each trial's own activity lane is
        read back, by the windowed-count scan.
        """
        return self.pipeline().run(self._context(shots, rng, "bits"))


# ----------------------------------------------------------------------
# Worker-pool plumbing
# ----------------------------------------------------------------------
_WORKER_KERNEL = None
_WORKER_RUN = None


def _batch_fn(kernel, packing: str):
    """The kernel entry point for a packing mode (``"bits"`` falls back
    to the float path when a kernel has no packed variant)."""
    if packing == "bits" and hasattr(kernel, "run_batch_packed"):
        return kernel.run_batch_packed
    return kernel.run_batch


def _pool_init(kernel, packing) -> None:
    global _WORKER_KERNEL, _WORKER_RUN
    _WORKER_KERNEL = kernel
    _WORKER_KERNEL.prepare()  # decoder built once, reused per batch
    _WORKER_RUN = _batch_fn(kernel, packing)


def _pool_run(task) -> tuple[np.ndarray, tuple[int, int, int]]:
    shots, seed = task
    before = _cache_stats(_WORKER_KERNEL)
    batch = _WORKER_RUN(shots, np.random.default_rng(seed))
    after = _cache_stats(_WORKER_KERNEL)
    return batch, tuple(a - b for a, b in zip(after, before, strict=True))


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
@dataclass
class BatchRunResult:
    """Outcome of a batched campaign."""

    outcomes: np.ndarray  # (shots,) or (shots, k) per-shot outcomes
    estimate: Optional[BinomialEstimate]  # streamed success-column counts
    requested: int
    cache_hits: int = 0  # matchings served from the kernel's cache
    cache_misses: int = 0  # cacheable lookups that had to compute
    cache_evictions: int = 0  # LRU entries dropped at capacity

    @property
    def shots(self) -> int:
        return len(self.outcomes)

    @property
    def stopped_early(self) -> bool:
        return self.shots < self.requested


class BatchShotRunner:
    """Runs a shot kernel over batches, in process or on a worker pool.

    Args:
        kernel: object with ``run_batch(shots, rng) -> np.ndarray``,
            ``prepare()``, ``success_column`` and ``default_batch_size``
            (optionally ``run_batch_packed`` for the bit-packed path).
        workers: 0 or 1 runs in-process; ``workers > 1`` fans batches out
            over a ``multiprocessing`` pool of that size.
        batch_size: shots per batch (``None`` = kernel default).  Part of
            the reproducibility contract: outcomes depend on
            ``(seed, batch_size)`` only.
        seed: campaign seed for the shared ``SeedSequence``.
        packing: ``"bits"`` (default) runs the kernel's bit-packed
            variant — 64 shots per uint64 word, word-wise syndrome XOR —
            which is bit-identical to ``"none"`` (the certified float
            reference) for the same ``(seed, batch_size)``.  Kernels
            without a packed variant silently use the float path.
    """

    def __init__(self, kernel, workers: int = 0,
                 batch_size: Optional[int] = None,
                 seed: Optional[int] = None,
                 packing: str = "bits"):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if packing not in PACKING_MODES:
            raise ValueError(f"packing must be one of {PACKING_MODES}")
        self.kernel = kernel
        self.workers = workers
        self.batch_size = (batch_size if batch_size is not None
                           else kernel.default_batch_size)
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.seed = seed
        self.packing = packing
        self.last_estimate: Optional[BinomialEstimate] = None

    # ------------------------------------------------------------------
    def _batches(self, shots: int) -> list[tuple[int, np.random.SeedSequence]]:
        return chunk_plan(shots, self.batch_size, self.seed)

    def run(self, shots: int,
            target_rel_width: Optional[float] = None,
            min_shots: int = 0) -> BatchRunResult:
        """Run up to ``shots`` shots, streaming batch outcomes.

        With ``target_rel_width`` the campaign stops as soon as the
        Wilson interval of the success-column estimate is narrower than
        ``target_rel_width *`` its mean (and at least ``min_shots`` and
        one full batch have been run): the adaptive mode that replaces
        fixed >= 1e5-shot budgets.
        """
        if shots < 1:
            raise ValueError("need at least one shot")
        tasks = self._batches(shots)
        collected: list[np.ndarray] = []
        successes = trials = 0
        cache_stats = np.zeros(3, dtype=np.int64)

        def ingest(batch: np.ndarray) -> bool:
            nonlocal successes, trials
            collected.append(batch)
            column = batch if batch.ndim == 1 \
                else batch[:, self.kernel.success_column]
            successes += int(np.count_nonzero(column))
            trials += len(batch)
            return wilson_tight(successes, trials, target_rel_width,
                                min_shots)

        if self.workers <= 1:
            self.kernel.prepare()
            run = _batch_fn(self.kernel, self.packing)
            before = _cache_stats(self.kernel)
            for size, child in tasks:
                batch = run(size, np.random.default_rng(child))
                if ingest(batch):
                    break
            cache_stats += np.subtract(_cache_stats(self.kernel), before)
        else:
            with multiprocessing.Pool(
                    self.workers, initializer=_pool_init,
                    initargs=(self.kernel, self.packing)) as pool:
                for batch, stats in pool.imap(_pool_run, tasks):
                    cache_stats += stats
                    if ingest(batch):
                        break  # context manager terminates the pool

        outcomes = np.concatenate(collected)
        self.last_estimate = (BinomialEstimate(successes, trials)
                              if trials else None)
        return BatchRunResult(outcomes=outcomes,
                              estimate=self.last_estimate,
                              requested=shots,
                              cache_hits=int(cache_stats[0]),
                              cache_misses=int(cache_stats[1]),
                              cache_evictions=int(cache_stats[2]))
