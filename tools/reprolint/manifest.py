"""The contract manifest: which files carry which structural contracts.

``seam_manifest.toml`` (next to this module) is the repo's registration
of seam-routed kernels (RL002) plus the small amount of per-rule
configuration the other rules need: the env-knob owner file (RL003),
the names of types the spec serializer knows how to JSON-ify (RL004),
and the checkpoint-wire modules (RL005).  Tests point the engine at a
corpus-local manifest instead, so the rules themselves stay free of
hard-coded repo paths.

All paths are matched as *posix suffixes* of the linted file's path —
``src/repro/sim/bitops.py`` matches whether the linter was launched
from the repo root or handed an absolute path.
"""

from __future__ import annotations

import fnmatch
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

#: The repo's manifest, used when ``--manifest`` is not given.
DEFAULT_MANIFEST_PATH = Path(__file__).resolve().parent / "seam_manifest.toml"


class ManifestError(ValueError):
    """The manifest file is missing, unparsable, or malformed."""


@dataclass(frozen=True)
class SeamModule:
    """One seam-routed module registration (RL002).

    ``functions`` scopes the purity requirement: glob patterns over
    function/method names whose bodies must reach arrays through the
    backend handle (``["*"]`` covers the whole module, including
    module-level code).  ``allow`` lists the NumPy attribute names the
    module's *documented host fast path* may call directly — anything
    else on a ``numpy`` alias inside scope is a finding.
    """

    path: str
    functions: tuple[str, ...] = ("*",)
    allow: frozenset = frozenset()
    reason: str = ""

    def matches_path(self, posix_path: str) -> bool:
        return _suffix_match(posix_path, self.path)

    @property
    def whole_module(self) -> bool:
        return "*" in self.functions

    def scopes_function(self, name: str) -> bool:
        return any(fnmatch.fnmatchcase(name, pat) for pat in self.functions)


@dataclass(frozen=True)
class Manifest:
    """Parsed manifest contents consumed by the rules."""

    seam_modules: tuple[SeamModule, ...] = ()
    env_owners: tuple[str, ...] = ("src/repro/config.py",)
    json_convertible: frozenset = frozenset()
    wire_paths: tuple[str, ...] = ()
    source: Optional[Path] = None

    def seam_module_for(self, posix_path: str) -> Optional[SeamModule]:
        for module in self.seam_modules:
            if module.matches_path(posix_path):
                return module
        return None

    def is_env_owner(self, posix_path: str) -> bool:
        return any(_suffix_match(posix_path, p) for p in self.env_owners)

    def is_wire_module(self, posix_path: str) -> bool:
        return any(_suffix_match(posix_path, p) for p in self.wire_paths)


def _suffix_match(posix_path: str, manifest_path: str) -> bool:
    """True when ``manifest_path`` names ``posix_path`` (suffix-wise)."""
    manifest_path = manifest_path.strip("/")
    return (posix_path == manifest_path
            or posix_path.endswith("/" + manifest_path))


def _string_list(table: dict, key: str, where: str) -> list:
    value = table.get(key, [])
    if not (isinstance(value, list)
            and all(isinstance(v, str) for v in value)):
        raise ManifestError(f"{where}.{key} must be a list of strings")
    return value


def load_manifest(path=None) -> Manifest:
    """Parse a manifest TOML file (the repo's by default)."""
    path = Path(path) if path is not None else DEFAULT_MANIFEST_PATH
    try:
        with open(path, "rb") as fh:
            doc = tomllib.load(fh)
    except OSError as exc:
        raise ManifestError(f"cannot read manifest {path}: {exc}") from exc
    except tomllib.TOMLDecodeError as exc:
        raise ManifestError(f"manifest {path} is not valid TOML: {exc}") \
            from exc

    modules = []
    seam = doc.get("seam", {})
    if not isinstance(seam, dict):
        raise ManifestError("[seam] must be a table")
    for pos, entry in enumerate(seam.get("modules", [])):
        where = f"[[seam.modules]] #{pos + 1}"
        if not isinstance(entry, dict) or "path" not in entry:
            raise ManifestError(f"{where} needs a 'path' key")
        functions = _string_list(entry, "functions", where) or ["*"]
        modules.append(SeamModule(
            path=entry["path"],
            functions=tuple(functions),
            allow=frozenset(_string_list(entry, "allow", where)),
            reason=str(entry.get("reason", ""))))

    rl003 = doc.get("rl003", {})
    owners = _string_list(rl003, "owners", "[rl003]") \
        or ["src/repro/config.py"]
    rl004 = doc.get("rl004", {})
    convertible = _string_list(rl004, "json_convertible", "[rl004]")
    rl005 = doc.get("rl005", {})
    wire = _string_list(rl005, "paths", "[rl005]")

    return Manifest(
        seam_modules=tuple(modules),
        env_owners=tuple(owners),
        json_convertible=frozenset(convertible),
        wire_paths=tuple(wire),
        source=path,
    )
