"""Unit and property tests for the symplectic Pauli algebra."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.stab.pauli import Pauli


def paulis(num_qubits=st.integers(1, 8)):
    """Hypothesis strategy for random Paulis."""
    @st.composite
    def build(draw):
        n = draw(num_qubits)
        x = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
        z = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
        phase = draw(st.integers(0, 3))
        return Pauli(np.array(x), np.array(z), phase)
    return build()


class TestConstruction:
    def test_identity_has_weight_zero(self):
        assert Pauli.identity(5).weight == 0

    def test_from_label_round_trip(self):
        for label in ("+XIZY", "-ZZ", "iX", "-iYX"):
            assert Pauli.from_label(label).to_label() == label

    def test_from_label_bare_is_positive(self):
        assert Pauli.from_label("XZ").to_label() == "+XZ"

    def test_from_label_rejects_garbage(self):
        with pytest.raises(ValueError):
            Pauli.from_label("XQ")

    def test_single_embeds_correctly(self):
        p = Pauli.single(4, 2, "Y")
        assert p.to_label() == "+IIYI"

    def test_mismatched_xz_lengths_rejected(self):
        with pytest.raises(ValueError):
            Pauli(np.array([1, 0]), np.array([1]))

    def test_weight_counts_nontrivial_sites(self):
        assert Pauli.from_label("XIYZ").weight == 3

    def test_support_indices(self):
        assert Pauli.from_label("IXIZ").support() == [1, 3]


class TestAlgebra:
    def test_xx_commute(self):
        a = Pauli.from_label("XX")
        b = Pauli.from_label("XI")
        assert a.commutes_with(b)

    def test_xz_anticommute_on_same_qubit(self):
        assert not Pauli.from_label("X").commutes_with(Pauli.from_label("Z"))

    def test_xz_commute_on_different_qubits(self):
        assert Pauli.from_label("XI").commutes_with(Pauli.from_label("IZ"))

    def test_product_of_x_and_z(self):
        prod = Pauli.from_label("X") * Pauli.from_label("Z")
        assert prod.equals_up_to_phase(Pauli.from_label("Y"))

    def test_product_size_mismatch(self):
        with pytest.raises(ValueError):
            Pauli.from_label("X").compose(Pauli.from_label("XX"))

    def test_z_times_x_picks_up_sign(self):
        # Z * X = iY; X * Z = -iY: they differ by a -1.
        zx = Pauli.from_label("Z") * Pauli.from_label("X")
        xz = Pauli.from_label("X") * Pauli.from_label("Z")
        assert zx.equals_up_to_phase(xz)
        assert (zx.phase - xz.phase) % 4 == 2

    @given(paulis())
    def test_self_product_is_identity_up_to_phase(self, p):
        prod = p * p
        assert prod.weight == 0

    @given(st.data())
    def test_commutation_is_symmetric(self, data):
        n = data.draw(st.integers(1, 6))
        a = data.draw(paulis(st.just(n)))
        b = data.draw(paulis(st.just(n)))
        assert a.commutes_with(b) == b.commutes_with(a)

    @given(st.data())
    def test_product_support_is_symmetric_difference_or_less(self, data):
        n = data.draw(st.integers(1, 6))
        a = data.draw(paulis(st.just(n)))
        b = data.draw(paulis(st.just(n)))
        prod = a * b
        assert set(prod.support()) <= set(a.support()) | set(b.support())

    @given(st.data())
    def test_composition_is_associative_up_to_phase(self, data):
        n = data.draw(st.integers(1, 5))
        a = data.draw(paulis(st.just(n)))
        b = data.draw(paulis(st.just(n)))
        c = data.draw(paulis(st.just(n)))
        left = (a * b) * c
        right = a * (b * c)
        assert left.equals_up_to_phase(right)

    @given(st.data())
    def test_commuting_paulis_product_order_irrelevant(self, data):
        n = data.draw(st.integers(1, 5))
        a = data.draw(paulis(st.just(n)))
        b = data.draw(paulis(st.just(n)))
        ab, ba = a * b, b * a
        assert ab.equals_up_to_phase(ba)
        if a.commutes_with(b):
            assert ab.phase == ba.phase
        else:
            assert (ab.phase - ba.phase) % 4 == 2


class TestEquality:
    def test_equality_includes_phase(self):
        assert Pauli.from_label("X") != Pauli.from_label("-X")

    def test_hashable(self):
        assert len({Pauli.from_label("X"), Pauli.from_label("X")}) == 1
