"""Streaming/online detection mode: equivalence, memory, latency.

The load-bearing suite for the PR 7 streaming tentpole:

* the offline≡streaming equivalence invariant — per rng seed,
  :meth:`StreamingTrialDriver.run` and :func:`replay_offline` (the
  offline windowed scan over the identical round stream) agree bit for
  bit on every seed-determined outcome;
* bounded memory — the online path's peak live rounds never exceeds
  the detection window, whatever the stream length;
* the ring window's integer counts equal the offline cumsum windows;
* the incremental extractor equals the whole-tensor lattice math;
* :class:`StreamingSpec` validation, round-trip, and campaign
  reproducibility (outcomes depend on ``spec.seed`` alone).
"""

import numpy as np
import pytest

from repro import campaigns
from repro.campaigns import StreamingSpec
from repro.decoding.graph import SyndromeLattice
from repro.hwmodel.pipeline import StreamSLO
from repro.sim.batch import _windowed_over
from repro.streaming import (
    RoundSampler,
    RoundWindow,
    StreamingTrialDriver,
    SyndromeStream,
    latency_stats,
    replay_offline,
)

_FREE_CLOCK = lambda: 0.0  # noqa: E731 -- equivalence runs untimed


def _driver(distance=5, p=4e-3, p_ano=0.5, anomaly_size=3, onset=40,
            cycles=90, c_win=20, n_th=6, alpha=0.01):
    return StreamingTrialDriver(distance, p, p_ano, anomaly_size,
                                onset, cycles, c_win, n_th, alpha)


class TestOfflineStreamingEquivalence:
    """The invariant itself, swept across the configuration axes."""

    def _assert_equivalent(self, driver, seed):
        online = driver.run(np.random.default_rng(seed),
                            clock=_FREE_CLOCK)
        offline = replay_offline(driver, np.random.default_rng(seed))
        np.testing.assert_equal(online.outcomes(), offline.outcomes())
        return online

    @pytest.mark.parametrize("seed", range(12))
    def test_seed_sweep_default_config(self, seed):
        self._assert_equivalent(_driver(), seed)

    @pytest.mark.parametrize("distance", [3, 5, 7])
    def test_distance_sweep(self, distance):
        driver = _driver(distance=distance)
        for seed in range(4):
            self._assert_equivalent(driver, seed)

    @pytest.mark.parametrize("c_win,onset", [
        (1, 10),      # degenerate single-round window
        (8, 4),       # onset inside the first window: no FP possible
        (30, 60),     # long window, late onset
    ])
    def test_window_geometry_sweep(self, c_win, onset):
        driver = _driver(c_win=c_win, onset=onset, cycles=onset + 60)
        for seed in range(4):
            self._assert_equivalent(driver, seed)

    @pytest.mark.parametrize("anomaly_size", [2, 4])
    def test_anomaly_size_sweep(self, anomaly_size):
        driver = _driver(anomaly_size=anomaly_size)
        for seed in range(4):
            self._assert_equivalent(driver, seed)

    def test_quiet_stream_misses_cleanly(self):
        """p_ano == p: nothing to detect; both paths agree on the miss."""
        driver = _driver(p_ano=4e-3, n_th=10_000)
        result = self._assert_equivalent(driver, 0)
        assert not result.detected
        assert result.event_cycle == -1
        assert np.isnan(result.position_error)

    def test_false_positive_path_agrees(self):
        """A hair-trigger threshold trips pre-onset on both paths."""
        driver = _driver(n_th=-1, onset=60, c_win=10, cycles=90)
        online = driver.run(np.random.default_rng(1), clock=_FREE_CLOCK)
        offline = replay_offline(driver, np.random.default_rng(1))
        assert online.false_positive and offline.false_positive
        np.testing.assert_equal(online.outcomes(), offline.outcomes())


class TestBoundedMemory:
    def test_peak_live_rounds_bounded_by_window(self):
        driver = _driver(c_win=15, cycles=120)
        for seed in range(6):
            result = driver.run(np.random.default_rng(seed),
                                clock=_FREE_CLOCK)
            assert result.peak_live_rounds <= 15

    def test_offline_replay_holds_whole_stream(self):
        """The replay is the memory *anti*-baseline the bound beats."""
        driver = _driver(c_win=15, cycles=120)
        offline = replay_offline(driver, np.random.default_rng(0))
        assert offline.peak_live_rounds == offline.stop
        assert offline.peak_live_rounds > 15

    def test_round_latencies_cover_processed_rounds_only(self):
        driver = _driver()
        result = driver.run(np.random.default_rng(3), clock=_FREE_CLOCK)
        assert result.round_latencies_s is not None
        assert len(result.round_latencies_s) == result.stop


class TestRoundWindow:
    def test_counts_match_offline_cumsum_windows(self):
        rng = np.random.default_rng(7)
        cycles, c_win, shape = 40, 9, (4, 5)
        activity = (rng.random((cycles,) + shape) < 0.3).astype(np.uint8)
        _, n_over_offline = _windowed_over(activity, c_win, v_th=1)
        window = RoundWindow(c_win, shape)
        online = []
        for t in range(cycles):
            if window.push(activity[t]):
                online.append(window.n_over(1))
        np.testing.assert_array_equal(np.asarray(online), n_over_offline)

    def test_full_and_live_rounds_progression(self):
        window = RoundWindow(3, (2, 2))
        layer = np.ones((2, 2), dtype=np.int32)
        assert not window.push(layer) and window.live_rounds == 1
        assert not window.push(layer) and window.live_rounds == 2
        assert window.push(layer) and window.full
        window.push(layer)
        assert window.live_rounds == 3 and window.peak_live_rounds == 3
        # Counts saturate at c_win once the ring wraps.
        assert int(window.counts.max()) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundWindow(0, (2, 2))
        window = RoundWindow(2, (2, 2))
        with pytest.raises(ValueError):
            window.push(np.ones((3, 3), dtype=np.int32))


class TestSyndromeStream:
    def test_matches_whole_tensor_lattice_math(self):
        d, cycles = 5, 30
        rng = np.random.default_rng(11)
        sampler = RoundSampler(d, 0.05, 0.5, None)
        v = np.empty((cycles, d, d), dtype=bool)
        h = np.empty((cycles, d - 1, d - 1), dtype=bool)
        m = np.empty((cycles, d - 1, d), dtype=bool)
        stream = SyndromeStream(d)
        layers = []
        for t in range(cycles):
            v[t], h[t], m[t] = sampler.draw(t, rng)
            layers.append(stream.push(v[t], h[t], m[t]))
        expected = SyndromeLattice(d).per_cycle_activity(v, h, m)
        np.testing.assert_array_equal(np.asarray(layers), expected)
        assert stream.north_parity == int(v[:, 0, :].sum()) % 2


class TestLatencyStats:
    def test_summary_and_units(self):
        stats = latency_stats(np.full(100, 2e-6))
        assert stats.rounds == 100
        assert stats.p50_us == pytest.approx(2.0)
        assert stats.p99_us == pytest.approx(2.0)
        assert stats.rounds_per_sec == pytest.approx(5e5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_stats(np.array([]))

    def test_slo_judgement(self):
        slo = StreamSLO(code_cycle_us=1.0)
        assert slo.met_by(0.5) and not slo.met_by(2.0)
        assert slo.headroom(0.5) == pytest.approx(2.0)
        assert slo.headroom(0.0) == float("inf")


class TestStreamingSpec:
    def test_defaults_and_resolved_cycles(self):
        spec = StreamingSpec(distance=5, p=2e-3)
        assert spec.kind == "streaming"
        assert spec.resolved_cycles() == (2 * spec.c_win, 4 * spec.c_win)
        spec = StreamingSpec(distance=5, p=2e-3, normal_cycles=30,
                             post_cycles=50)
        assert spec.resolved_cycles() == (30, 50)

    @pytest.mark.parametrize("bad", [
        dict(trials=0),
        dict(c_win=0),
        dict(n_th=-1),
        dict(code_cycle_us=0.0),
        dict(p=1.5),
    ])
    def test_validation(self, bad):
        kwargs = {"distance": 5, "p": 2e-3, **bad}
        with pytest.raises(campaigns.SpecError):
            StreamingSpec(**kwargs)

    def test_round_trip(self):
        spec = StreamingSpec(distance=7, p=1e-3, c_win=40, n_th=5,
                             trials=9, seed=123, code_cycle_us=2.0)
        doc = campaigns.spec_to_dict(spec)
        assert doc["kind"] == "streaming"
        assert campaigns.spec_from_dict(doc) == spec


class TestStreamingCampaign:
    @pytest.fixture(scope="class")
    def spec(self):
        return StreamingSpec(distance=5, p=2e-3, c_win=15, n_th=6,
                             trials=6, seed=42)

    def test_seed_determined_outcomes(self, spec):
        """Wall clocks aside, two runs of one spec agree exactly."""
        first = campaigns.run(spec)
        second = campaigns.run(spec)
        assert first.counts == second.counts
        timing_keys = {"p50_round_latency_us", "p99_round_latency_us",
                       "rounds_per_sec", "slo_headroom"}
        for key in first.estimates.keys() - timing_keys:
            np.testing.assert_equal(first.estimates[key],
                                    second.estimates[key])

    def test_counts_and_memory_bound(self, spec):
        result = campaigns.run(spec)
        assert result.counts["trials"] == spec.trials
        assert result.counts["peak_live_rounds"] <= spec.c_win
        assert result.detail.latency.rounds == result.counts["rounds"]
        assert result.estimates["p99_round_latency_us"] >= \
            result.estimates["p50_round_latency_us"] >= 0.0

    def test_matches_direct_driver_outcomes(self, spec):
        """The campaign layer adds no rng of its own: its per-trial
        outcomes equal directly driven trials on the chunk-plan seeds."""
        from repro.sim.batch import chunk_plan

        normal, post = spec.resolved_cycles()
        driver = StreamingTrialDriver(
            spec.distance, spec.p, spec.p_ano, spec.anomaly_size,
            onset=normal, cycles=normal + post, c_win=spec.c_win,
            n_th=spec.n_th, alpha=spec.alpha)
        expected = [driver.run(np.random.default_rng(seed),
                               clock=_FREE_CLOCK)
                    for _, seed in chunk_plan(spec.trials, 1, spec.seed)]
        result = campaigns.run(spec)
        for got, want in zip(result.detail.results, expected, strict=True):
            np.testing.assert_equal(got.outcomes(), want.outcomes())
