"""Greedy radius-growing decoder (QECOOL / NISQ+ family).

The paper's hardware evaluation targets the greedy decoder of
Ueno et al. (QECOOL) / Holmes et al. (NISQ+): grow a search radius
``i = 1 .. d`` and, at each radius, greedily match active nodes that can
be connected by a path no longer than ``i`` (to another active node or to
a boundary).  Because lattice distance equals Manhattan distance, path
length checks are O(1); with a known anomalous region the distance
evaluation simply considers the extra via-region candidate paths of
Fig. 6(c) -- the Q3DE modification.

Processing candidate pairs in globally sorted distance order is
equivalent to radius growth with a deterministic tie-break and is how we
implement it.
"""

from __future__ import annotations

import numpy as np

from repro.decoding.decoder_base import DecodeResult, Match
from repro.decoding.weights import DistanceModel


class GreedyDecoder:
    """Greedy distance-ordered matching over a :class:`DistanceModel`."""

    def __init__(self, model: DistanceModel):
        self.model = model

    def decode(self, nodes: np.ndarray) -> DecodeResult:
        nodes = np.asarray(nodes)
        n = len(nodes)
        if n == 0:
            return DecodeResult.from_matches([], 0.0)
        dist = self.model.pairwise(nodes)
        bdist, bside = self.model.boundary(nodes)

        # Candidate list: all unordered pairs plus each node's boundary.
        iu, ju = np.triu_indices(n, k=1)
        pair_d = dist[iu, ju]
        cand_d = np.concatenate([pair_d, bdist])
        cand_a = np.concatenate([iu, np.arange(n)])
        cand_b = np.concatenate([ju, bside]).astype(np.int64)
        order = np.argsort(cand_d, kind="stable")

        matched = np.zeros(n, dtype=bool)
        matches: list[Match] = []
        weight = 0.0
        remaining = n
        for idx in order:
            if remaining == 0:
                break
            a = int(cand_a[idx])
            if matched[a]:
                continue
            b = int(cand_b[idx])
            if b >= 0:  # node-node candidate
                if matched[b]:
                    continue
                matched[a] = matched[b] = True
                remaining -= 2
            else:  # boundary candidate
                matched[a] = True
                remaining -= 1
            matches.append(Match(a, b))
            weight += float(cand_d[idx])
        return DecodeResult.from_matches(matches, weight)
