"""Stabilizer map: the control unit's record of which stabilizers are live.

The paper's ``stabilizer assignment unit`` arbitrates logical operations by
consulting a ``stabilizer map`` (Fig. 1): a table recording, for each
ancilla on the qubit plane, whether it is actively measuring a stabilizer
and which data qubits it monitors.  ``op_expand`` dynamically rewrites this
table; so do logical operations such as lattice surgery.

This module keeps the map as a plain, explicit data structure so the
architecture layer can mutate and snapshot it cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.surface_code.lattice import PlanarSurfaceCode, Site


@dataclass(frozen=True)
class Stabilizer:
    """A single stabilizer measurement: an ancilla and its data support."""

    ancilla: Site
    kind: str  # "Z" or "X"
    support: tuple[Site, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("Z", "X"):
            raise ValueError("stabilizer kind must be 'Z' or 'X'")
        if not 1 <= len(self.support) <= 4:
            raise ValueError("planar-code stabilizers have weight 1..4")


@dataclass
class StabilizerMap:
    """The set of stabilizers currently being measured on a patch.

    The map can be snapshotted (for the instruction history buffer) and
    mutated in place (for ``op_expand`` / shrink), mirroring the paper's
    ``stabilizer map`` component.
    """

    stabilizers: dict[Site, Stabilizer] = field(default_factory=dict)

    @classmethod
    def for_code(cls, code: PlanarSurfaceCode) -> "StabilizerMap":
        """The default map measuring every stabilizer of a static patch."""
        smap = cls()
        for ancilla in code.z_ancilla_sites:
            smap.add(Stabilizer(
                ancilla, "Z",
                tuple(s for s in ancilla.neighbors()
                      if code.contains(s) and code.is_data_site(s)),
            ))
        for ancilla in code.x_ancilla_sites:
            smap.add(Stabilizer(
                ancilla, "X",
                tuple(s for s in ancilla.neighbors()
                      if code.contains(s) and code.is_data_site(s)),
            ))
        return smap

    # ------------------------------------------------------------------
    def add(self, stabilizer: Stabilizer) -> None:
        """Register a stabilizer; replaces any previous one at the ancilla."""
        self.stabilizers[stabilizer.ancilla] = stabilizer

    def remove(self, ancilla: Site) -> Optional[Stabilizer]:
        """Stop measuring at the ancilla; returns the removed stabilizer."""
        return self.stabilizers.pop(ancilla, None)

    def get(self, ancilla: Site) -> Optional[Stabilizer]:
        return self.stabilizers.get(ancilla)

    def __len__(self) -> int:
        return len(self.stabilizers)

    def __contains__(self, ancilla: Site) -> bool:
        return ancilla in self.stabilizers

    def of_kind(self, kind: str) -> list[Stabilizer]:
        """All live stabilizers of the given kind, in site order."""
        return sorted(
            (s for s in self.stabilizers.values() if s.kind == kind),
            key=lambda s: s.ancilla,
        )

    def data_sites(self) -> set[Site]:
        """All data sites currently covered by at least one stabilizer."""
        covered: set[Site] = set()
        for stab in self.stabilizers.values():
            covered.update(stab.support)
        return covered

    def snapshot(self) -> "StabilizerMap":
        """An independent copy (stabilizers are immutable, so shallow)."""
        return StabilizerMap(dict(self.stabilizers))

    def update_many(self, stabilizers: Iterable[Stabilizer]) -> None:
        for stab in stabilizers:
            self.add(stab)
