"""``repro.service``: the long-running campaign server.

The serving layer over everything PRs 1–8 built: specs are
content-hashed (:func:`repro.campaigns.spec_hash`), checkpoint shards
resume bit-identically, and results carry full provenance — so a server
can convert repeat traffic into near-zero marginal compute.

* :mod:`~repro.service.store` — the on-disk layout under one
  ``STORE_DIR`` (result cache + checkpoint shards) and the tolerant
  live-shard reader behind the partial-estimate endpoint.
* :mod:`~repro.service.scheduler` — duplicate-submission coalescing
  (one compute, N responses) and per-tenant round-robin fairness over a
  small thread pool.
* :mod:`~repro.service.http` — the stdlib ``ThreadingHTTPServer``
  front end: ``POST /campaigns``, ``GET /campaigns/<spec_hash>``,
  ``GET /campaigns/<spec_hash>/partial``, ``GET /healthz``.

``python -m repro serve STORE_DIR`` drives it from the command line;
docs/SERVICE.md documents the HTTP API, cache-keying rule and
refinement semantics; ``examples/service_client.py`` is a stdlib
client.
"""

from repro.service.http import ServiceApp, make_server, serve
from repro.service.scheduler import Job, Scheduler
from repro.service.store import ServiceStore, read_partial

__all__ = [
    "Job",
    "Scheduler",
    "ServiceApp",
    "ServiceStore",
    "make_server",
    "read_partial",
    "serve",
]
