"""Bit-packed shot storage: 64 Monte-Carlo shots per uint64 word.

The batched shot engine's float sampling path materializes 8 bytes per
sampled Bernoulli bit, so memory — not CPU — caps campaign size.  This
module is the Stim-style answer: shots live along a packed leading axis
(word ``w``, lane ``b`` holds shot ``64 * w + b``, LSB first), so a
boolean batch of shape ``(shots, T, rows, cols)`` becomes a uint64 array
of shape ``(ceil(shots / 64), T, rows, cols)`` and every element-wise
XOR over the batch turns into one word-wise XOR over 64 shots.

Conventions:

* the packed axis is always axis 0;
* lanes are LSB-first: lane ``b`` of a word is ``(word >> b) & 1``;
* tail lanes of the final word (shots not divisible by 64) are
  zero-filled on packing and must never be read back as shots.
"""

from __future__ import annotations

import numpy as np

#: Shots per packed word.
WORD_BITS = 64


def word_count(shots: int) -> int:
    """Number of uint64 words needed to hold ``shots`` lanes."""
    if shots < 1:
        raise ValueError("need at least one shot")
    return -(-shots // WORD_BITS)


def pack_shots(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(shots, ...)`` array into ``(words, ...)`` uint64.

    Lane ``s % 64`` of word ``s // 64`` holds shot ``s``; tail lanes of
    the final word are zero.
    """
    bits = np.asarray(bits)
    shots = bits.shape[0]
    words = word_count(shots)
    if shots != words * WORD_BITS:
        pad = np.zeros((words * WORD_BITS - shots,) + bits.shape[1:],
                       dtype=bool)
        bits = np.concatenate([bits.astype(bool, copy=False), pad], axis=0)
    # (words, 64, ...) -> (words, ..., 64): lanes must be the fastest
    # axis so the 8 packed bytes of each word are memory-adjacent.
    # Materializing the transpose before packbits matters: packbits on a
    # strided view falls back to a buffered per-element walk that is
    # several times slower than transpose-copy + contiguous packing.
    lanes_last = np.ascontiguousarray(np.moveaxis(
        bits.reshape((words, WORD_BITS) + bits.shape[1:]), 1, -1))
    packed = np.packbits(lanes_last, axis=-1, bitorder="little")
    return packed.view("<u8")[..., 0]


def unpack_shots(words: np.ndarray, shots: int) -> np.ndarray:
    """Invert :func:`pack_shots`: ``(words, ...)`` uint64 to bool shots."""
    words = np.asarray(words, dtype="<u8")
    n_words = words.shape[0]
    if shots > n_words * WORD_BITS:
        raise ValueError("more shots requested than lanes stored")
    as_bytes = np.ascontiguousarray(words[..., None]).view(np.uint8)
    lanes_last = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    bits = np.moveaxis(lanes_last, -1, 1).reshape(
        (n_words * WORD_BITS,) + words.shape[1:])
    return bits[:shots].astype(bool)


def lane(words: np.ndarray, shot: int) -> np.ndarray:
    """Extract one shot's bits as a uint8 0/1 array (packed axis dropped).

    This is the only per-shot unpacking the packed kernels perform: one
    lane of the already-extracted syndrome stream, never the raw batch.
    """
    w, b = divmod(shot, WORD_BITS)
    return ((words[w] >> np.uint64(b)) & np.uint64(1)).astype(np.uint8)


def lane_bit(words: np.ndarray, shot: int) -> int:
    """One shot's bit of a ``(words,)`` array of packed parity words."""
    w, b = divmod(shot, WORD_BITS)
    return (int(words[w]) >> b) & 1


if hasattr(np, "bitwise_count"):  # NumPy >= 2.0
    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-word set-bit counts (number of active shots per word)."""
        return np.bitwise_count(words)
else:  # pragma: no cover - exercised only on NumPy < 2.0
    _POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)],
                          dtype=np.uint8)

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-word set-bit counts (number of active shots per word)."""
        as_bytes = np.ascontiguousarray(
            np.asarray(words, dtype="<u8")[..., None]).view(np.uint8)
        return _POPCOUNT8[as_bytes].sum(axis=-1, dtype=np.int64)
