"""Tests for the FTQC instruction set and instruction queue (Table II)."""

import pytest

from repro.arch.isa import Instruction, InstructionKind, InstructionQueue


def zz(a, b, reg=0):
    return Instruction(InstructionKind.MEAS_ZZ, (a, b), register=reg)


class TestInstruction:
    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            Instruction(InstructionKind.OP_H, (0, 1))
        with pytest.raises(ValueError):
            Instruction(InstructionKind.MEAS_ZZ, (0,), register=0)

    def test_measurement_needs_register(self):
        with pytest.raises(ValueError):
            Instruction(InstructionKind.MEAS_Z, (0,))

    def test_read_needs_register(self):
        with pytest.raises(ValueError):
            Instruction(InstructionKind.READ)

    def test_read_takes_no_targets(self):
        with pytest.raises(ValueError):
            Instruction(InstructionKind.READ, (0,), register=0)

    def test_op_expand_is_unary(self):
        inst = Instruction(InstructionKind.OP_EXPAND, (3,))
        assert inst.targets == (3,)

    def test_uids_are_unique_and_ordered(self):
        a = Instruction(InstructionKind.OP_H, (0,))
        b = Instruction(InstructionKind.OP_H, (0,))
        assert a.uid < b.uid

    def test_latency_proportional_to_distance(self):
        inst = Instruction(InstructionKind.OP_H, (0,))
        assert inst.latency_cycles(11) == 11
        assert inst.latency_cycles(22) == 22

    def test_read_latency_zero(self):
        inst = Instruction(InstructionKind.READ, register=0)
        assert inst.latency_cycles(11) == 0

    def test_is_measurement(self):
        assert zz(0, 1).is_measurement
        assert not Instruction(InstructionKind.OP_H, (0,)).is_measurement


class TestConflicts:
    def test_disjoint_targets_commute(self):
        assert not zz(0, 1).conflicts_with(zz(2, 3, reg=1))

    def test_shared_target_conflicts(self):
        assert zz(0, 1).conflicts_with(zz(1, 2, reg=1))

    def test_read_conflicts_only_on_register(self):
        read = Instruction(InstructionKind.READ, register=0)
        assert read.conflicts_with(zz(0, 1, reg=0))
        assert not read.conflicts_with(zz(0, 1, reg=1))


class TestQueue:
    def test_fifo_order_for_conflicting(self):
        q = InstructionQueue([zz(0, 1), zz(1, 2, reg=1), zz(3, 4, reg=2)])
        ready = q.ready_candidates()
        uids = [i.register for i in ready]
        # zz(1,2) blocked behind zz(0,1); zz(3,4) free to jump.
        assert uids == [0, 2]

    def test_push_front_prioritizes(self):
        q = InstructionQueue([zz(0, 1)])
        expand = Instruction(InstructionKind.OP_EXPAND, (5,))
        q.push_front(expand)
        assert next(iter(q)) is expand

    def test_lookahead_limit(self):
        q = InstructionQueue([zz(2 * i, 2 * i + 1, reg=i) for i in range(8)])
        assert len(q.ready_candidates(limit=3)) == 3

    def test_remove(self):
        first = zz(0, 1)
        q = InstructionQueue([first, zz(2, 3, reg=1)])
        q.remove(first)
        assert len(q) == 1

    def test_empty_queue(self):
        assert InstructionQueue().ready_candidates() == []
