"""The retired per-cycle reference engines, kept for equivalence tests.

PR 7 removed the ``engine="reference"`` branches from the shipping
simulators (:func:`repro.sim.run_detection_trials`,
:meth:`repro.sim.EndToEndExperiment.run`) — the staged batch kernels are
the only application path.  The original per-cycle loops through
:class:`repro.core.anomaly.AnomalyDetectionUnit` and the per-shot greedy
decode survive here, verbatim, as the certified reference the
equivalence suite scores the batched engines against.  They are test
fixtures: slow, rng-streamed shot by shot, and deliberately untouched by
campaign features.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.anomaly import AnomalyDetectionUnit
from repro.decoding.graph import SyndromeLattice
from repro.decoding.greedy import GreedyDecoder
from repro.decoding.weights import DistanceModel, relative_anomalous_weight
from repro.noise.models import AnomalousRegion, PhenomenologicalNoise
from repro.sim.detection import DetectionPerformance, calibrated_statistics
from repro.sim.endtoend import (EndToEndExperiment, EndToEndResult,
                                estimate_strike_region)


def stream_activity(
    distance: int,
    p: float,
    p_ano: float,
    region: Optional[AnomalousRegion],
    cycles: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-cycle node-activity stream, shape ``(cycles, d-1, d)``."""
    noise = PhenomenologicalNoise(distance, p, p_ano, region)
    lattice = SyndromeLattice(distance)
    v, h, m = noise.sample(cycles, rng)
    return lattice.per_cycle_activity(v, h, m)


def reference_decode_failure(exp: EndToEndExperiment, nodes, v,
                             region) -> int:
    """Per-shot greedy decode + north-cut parity (the original scorer)."""
    if region is None:
        model = DistanceModel(exp.distance)
    else:
        w_ano = relative_anomalous_weight(exp.p, exp.p_ano)
        model = DistanceModel(exp.distance, region, w_ano)
    result = GreedyDecoder(model).decode(nodes)
    return exp.lattice.error_cut_parity(v) ^ result.correction_cut_parity


def reference_run_shot(exp: EndToEndExperiment, rng: np.random.Generator):
    """One strike shot; returns (naive, detected, oracle, latency).

    The shot is scored over Q3DE's *exposure window*: the run stops
    ``d`` cycles after the detection fires (or after a fallback timeout
    on a miss), because from that point the expanded code protects the
    qubit and the re-executed decoder has caught up.
    """
    true_region = AnomalousRegion.random(exp.distance, exp.anomaly_size,
                                         rng, t_lo=exp.onset)
    noise = PhenomenologicalNoise(exp.distance, exp.p, exp.p_ano,
                                  true_region)
    v, h, m = noise.sample(exp.cycles, rng)
    activity = exp.lattice.per_cycle_activity(v, h, m)

    unit = AnomalyDetectionUnit(
        (exp.distance - 1, exp.distance), exp.stats,
        exp.c_win, exp.n_th, exp.alpha)
    event = None
    stop = exp.cycles
    for t in range(exp.cycles):
        evt = unit.observe(activity[t])
        if evt is None:
            continue
        if evt.cycle < exp.onset:
            # A pre-onset false positive is discarded, so the mask it
            # laid down must go with it: otherwise the unit is blind
            # around the flagged position for mask_cycles and the real
            # strike can go undetected.
            unit.clear_masks()
            continue
        event = evt
        stop = min(exp.cycles, evt.cycle + exp.distance)
        break

    estimated: Optional[AnomalousRegion] = None
    latency = None
    if event is not None:
        estimated = estimate_strike_region(
            exp.distance, exp.anomaly_size, event.row, event.col,
            event.onset_estimate)
        latency = event.cycle - exp.onset

    v, h, m = v[:stop], h[:stop], m[:stop]
    nodes = exp.lattice.detection_events(v, h, m)
    naive = reference_decode_failure(exp, nodes, v, None)
    oracle = reference_decode_failure(exp, nodes, v, true_region)
    detected = (reference_decode_failure(exp, nodes, v, estimated)
                if estimated is not None else naive)
    return naive, detected, oracle, latency


def reference_endtoend_run(exp: EndToEndExperiment, shots: int,
                           rng: np.random.Generator) -> EndToEndResult:
    """The original per-cycle end-to-end campaign loop."""
    naive = detected = oracle = found = 0
    latencies: list[int] = []
    for _ in range(shots):
        n, d, o, lat = reference_run_shot(exp, rng)
        naive += n
        detected += d
        oracle += o
        if lat is not None:
            found += 1
            latencies.append(lat)
    return EndToEndResult(
        shots=shots,
        naive_failures=naive,
        detected_failures=detected,
        oracle_failures=oracle,
        detections=found,
        mean_latency=(float(np.mean(latencies)) if latencies
                      else float("nan")),
    )


def reference_detection_trials(
    distance: int,
    p: float,
    p_ano: float,
    anomaly_size: int,
    c_win: int,
    n_th: int = 20,
    alpha: float = 0.01,
    trials: int = 20,
    normal_cycles: Optional[int] = None,
    post_cycles: Optional[int] = None,
    seed: Optional[int] = None,
) -> DetectionPerformance:
    """The original per-cycle detection-trial loop through the unit."""
    rng = np.random.default_rng(seed)
    stats = calibrated_statistics(p)
    normal_cycles = normal_cycles if normal_cycles is not None else 2 * c_win
    post_cycles = post_cycles if post_cycles is not None else 4 * c_win

    false_positives = 0
    detections = 0
    latencies: list[int] = []
    position_errors: list[float] = []
    rows, cols = distance - 1, distance
    for _ in range(trials):
        onset = normal_cycles
        region = AnomalousRegion.random(distance, anomaly_size, rng,
                                        t_lo=onset)
        row_lo, col_lo = region.row_lo, region.col_lo
        total = normal_cycles + post_cycles
        activity = stream_activity(distance, p, p_ano, region, total, rng)
        unit = AnomalyDetectionUnit(
            (rows, cols), stats, c_win, n_th, alpha)
        tripped_early = False
        event = None
        for t in range(total):
            evt = unit.observe(activity[t])
            if evt is None:
                continue
            if t < onset:
                tripped_early = True
                # The false positive is not acted on, so its mask must not
                # stand either -- it could blind the unit to the real MBBE.
                unit.clear_masks()
                continue  # keep streaming; a later flag still counts
            event = evt
            break
        if tripped_early:
            false_positives += 1
        if event is not None:
            detections += 1
            latencies.append(event.cycle - onset)
            centre_r = row_lo + (anomaly_size - 1) / 2.0
            centre_c = col_lo + (anomaly_size - 1) / 2.0
            position_errors.append(math.hypot(
                event.row - centre_r, event.col - centre_c))
    return DetectionPerformance(
        trials=trials,
        false_positives=false_positives,
        detections=detections,
        mean_latency=float(np.mean(latencies)) if latencies else float("nan"),
        mean_position_error=(float(np.mean(position_errors))
                             if position_errors else float("nan")),
    )
