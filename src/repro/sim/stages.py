"""The composable stage seam of the batched shot engine.

Every shot kernel in :mod:`repro.sim.batch` tells the same five-beat
story — ``sample → extract → detect → decode → accumulate`` — but until
this module existed each beat lived as a branch inside a kernel method,
so none of them could be exercised (or replaced) on its own.  Here each
beat is a :class:`Stage` object: a :class:`ShotPipeline` threads one
immutable :class:`StageContext` (RNG stream, packing mode, scratch
arena, matching cache, array-backend handle) and one mutable
:class:`StageState` through the stages in order, and the kernels'
``run_batch`` / ``run_batch_packed`` entry points are nothing but a
pipeline run.  The staged kernels are certified bit-identical per
``(seed, batch_size)`` to the pre-seam paths (``tests/test_stages.py``
pins pre-refactor golden outcomes), because every stage body is the
kernel code moved verbatim — the seam changes *structure*, never math.

Stage coverage per kernel:

===========  ======  =======  ======  ======  ==========
kernel       sample  extract  detect  decode  accumulate
===========  ======  =======  ======  ======  ==========
memory        yes     yes      —       yes     yes
end-to-end    yes     yes      yes     yes     yes
detection     yes     yes      yes (accumulates: the scan rows *are*
                               the outcome rows, so the final beats
                               fuse into one stage)
===========  ======  =======  ======  ======  ==========

The streaming driver (:mod:`repro.streaming`) reuses the same seam
vocabulary with rounds arriving incrementally instead of as a batch
tensor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import ModuleType
from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence

import numpy as np

from repro.decoding.batched import ScratchArena, batched_region_cut_parities
from repro.noise.models import AnomalousRegion, build_anomalous_masks
from repro.sim import backend as _backend_module
from repro.sim import bitops

if TYPE_CHECKING:  # runtime import would cycle: batch.py imports us
    from repro.sim.batch import MatchingCache


# ----------------------------------------------------------------------
# Context and state
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageContext:
    """Per-run invariants shared by every stage of one pipeline run.

    Args:
        shots: shots (or trials) in this chunk.
        packing: ``"bits"`` for the bit-packed word layout, ``"none"``
            for the float reference layout — the same knob the kernels
            expose, decided once per run instead of per method.
        rng: the chunk's seeded generator.  ``None`` is allowed for
            partial runs that start after the sample stage (e.g. the
            decode-stage bench feeding a pre-sampled chunk in).
        arena: the kernel's grow-only scratch arena for batched decode.
        cache: the kernel's matching cache, when it keeps one.
        backend: the array-backend seam handle
            (:mod:`repro.sim.backend`); carried so stages never import
            a backend behind the seam's back.
    """

    shots: int
    packing: str
    rng: Optional[np.random.Generator] = None
    arena: Optional[ScratchArena] = None
    cache: Optional["MatchingCache"] = None
    backend: ModuleType = field(default=_backend_module)


class StageState:
    """The mutable bag a pipeline run threads through its stages.

    Each field is written by exactly one stage and read by later ones
    (``None`` until produced):

    * ``regions`` — per-shot true strike regions (*sample*).
    * ``v`` / ``h`` / ``m`` — error arrays, float or packed (*sample*).
    * ``activity`` — per-cycle node-activity stream (*extract*).
    * ``coords`` / ``vals`` / ``bounds`` — packed active-node index
      arrays (*extract*, packed runs).
    * ``north_prefix`` — packed running north-cut parities (*extract*,
      packed end-to-end runs).
    * ``nodes_list`` — per-shot active-node coordinate arrays
      (*extract* for memory, *detect* for end-to-end, whose truncation
      point depends on the scan).
    * ``parities`` — per-shot error cut parities (same producers).
    * ``detections`` — per-shot ``(estimated_region, latency)`` scan
      results (*detect*).
    * ``matchings`` — per-shot matching cut parities (*decode*).
    * ``outcomes`` — the kernel's output array (*accumulate*).
    """

    __slots__ = ("regions", "v", "h", "m", "activity", "coords", "vals",
                 "bounds", "north_prefix", "nodes_list", "parities",
                 "detections", "matchings", "outcomes")

    regions: Any
    v: Any
    h: Any
    m: Any
    activity: Any
    coords: Any
    vals: Any
    bounds: Any
    north_prefix: Any
    nodes_list: Any
    parities: Any
    detections: Any
    matchings: Any
    outcomes: Any

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, None)


class Stage:
    """One beat of a shot pipeline: reads/writes :class:`StageState`."""

    name = "stage"

    def run(self, ctx: StageContext, state: StageState) -> None:
        raise NotImplementedError


class ShotPipeline:
    """An ordered sequence of stages run under one context."""

    def __init__(self, stages: Sequence[Stage]):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = tuple(stages)

    def __iter__(self) -> Iterator[Stage]:
        return iter(self.stages)

    def names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def run(self, ctx: StageContext,
            state: Optional[StageState] = None) -> np.ndarray:
        """Run every stage in order; returns the outcome array."""
        if state is None:
            state = StageState()
        for stage in self.stages:
            stage.run(ctx, state)
        return state.outcomes

    def run_until(self, name: str, ctx: StageContext,
                  state: Optional[StageState] = None) -> StageState:
        """Run stages up to and including ``name``; returns the state.

        The seam for partial runs: the decode-stage bench samples and
        detects a chunk once (``run_until("detect")``) and then times
        the decode tail over the captured state.
        """
        if name not in self.names():
            raise ValueError(f"no stage named {name!r} in {self.names()}")
        if state is None:
            state = StageState()
        for stage in self.stages:
            stage.run(ctx, state)
            if stage.name == name:
                break
        return state


class _KernelStage(Stage):
    """A stage bound to its kernel's configuration and prepared state.

    The concrete stages close over the kernel object rather than copy
    its parameters: the kernel remains the single owner of knobs like
    ``decode``/``scan`` and of the prepared noise/lattice/decoder tuple,
    so staged runs can never drift from the kernel's configuration.
    """

    def __init__(self, kernel: Any):
        self.kernel = kernel


# ----------------------------------------------------------------------
# Per-shot anomalous-region overwrites (shared by sample stages)
# ----------------------------------------------------------------------
def _overwrite_anomalous(v: np.ndarray, h: np.ndarray, m: np.ndarray,
                         shot: int, region: AnomalousRegion,
                         distance: int, p_ano: float,
                         rng: np.random.Generator) -> None:
    """Resample one shot's error arrays at ``p_ano`` inside ``region``.

    The batched kernels draw the whole batch at the base rate first;
    per-shot regions then only touch their own cells, mirroring
    ``PhenomenologicalNoise.sample`` with that region.
    """
    masks = build_anomalous_masks(distance, region)
    cycles = v.shape[1]
    t_hi = region.t_hi if region.t_hi is not None else cycles
    t_lo, t_hi = max(0, region.t_lo), min(cycles, t_hi)
    if t_hi <= t_lo:
        return
    span = t_hi - t_lo
    for arr, mask in zip((v, h, m), masks, strict=True):
        arr[shot, t_lo:t_hi][:, mask] = (
            rng.random((span, int(mask.sum()))) < p_ano)


def _overwrite_anomalous_packed(v: np.ndarray, h: np.ndarray, m: np.ndarray,
                                shot: int, region: AnomalousRegion,
                                distance: int, p_ano: float,
                                rng: np.random.Generator) -> None:
    """Packed-word counterpart of :func:`_overwrite_anomalous`.

    Draws the identical uniforms (same shapes, same order), then
    deposits them into ``shot``'s lane of the affected words with a
    set/clear mask — the rest of the word's 64 shots are untouched.
    """
    masks = build_anomalous_masks(distance, region)
    cycles = v.shape[1]
    t_hi = region.t_hi if region.t_hi is not None else cycles
    t_lo, t_hi = max(0, region.t_lo), min(cycles, t_hi)
    if t_hi <= t_lo:
        return
    span = t_hi - t_lo
    w, b = divmod(shot, bitops.WORD_BITS)
    bit = np.uint64(1) << np.uint64(b)
    for arr, mask in zip((v, h, m), masks, strict=True):
        bits = rng.random((span, int(mask.sum()))) < p_ano
        view = arr[w, t_lo:t_hi]
        current = view[:, mask]
        view[:, mask] = np.where(bits, current | bit, current & ~bit)


# ----------------------------------------------------------------------
# Memory kernel stages
# ----------------------------------------------------------------------
class MemorySampleStage(_KernelStage):
    """Draw the chunk's error arrays from the kernel's noise model."""

    name = "sample"

    def run(self, ctx: StageContext, state: StageState) -> None:
        noise = self.kernel._state[0]
        sample = (noise.sample_batch_packed if ctx.packing == "bits"
                  else noise.sample_batch)
        state.v, state.h, state.m = sample(ctx.shots, self.kernel.cycles,
                                           ctx.rng)


class MemoryExtractStage(_KernelStage):
    """Error arrays → per-shot active nodes + error cut parities."""

    name = "extract"

    def run(self, ctx: StageContext, state: StageState) -> None:
        lattice = self.kernel._state[1]
        v, h, m = state.v, state.h, state.m
        if ctx.packing == "bits":
            coords, vals, _ = lattice.detection_events_packed(v, h, m)
            parity_words = lattice.error_cut_parity_packed(v)
            nodes, offsets = lattice.shot_nodes_bulk(coords, vals,
                                                     ctx.shots)
            state.nodes_list = [nodes[offsets[s]:offsets[s + 1]]
                                for s in range(ctx.shots)]
            state.parities = bitops.unpack_shots(
                parity_words, ctx.shots).astype(np.int8)
        else:
            state.nodes_list = lattice.detection_events_batch(v, h, m)
            state.parities = lattice.error_cut_parity(v).astype(np.int8)


class MemoryDecodeStage(_KernelStage):
    """Matching cut parities for the chunk (bucketed or per shot)."""

    name = "decode"

    def run(self, ctx: StageContext, state: StageState) -> None:
        state.matchings = self.kernel._cut_parities(state.nodes_list)


class MemoryAccumulateStage(_KernelStage):
    """Logical-failure indicators: error parity XOR matching parity."""

    name = "accumulate"

    def run(self, ctx: StageContext, state: StageState) -> None:
        state.outcomes = state.parities ^ state.matchings


# ----------------------------------------------------------------------
# End-to-end kernel stages
# ----------------------------------------------------------------------
class EndToEndSampleStage(_KernelStage):
    """Per-shot strike regions + base draw + anomalous overwrites.

    With a scenario, each shot resolves the *whole* event list to a
    region tuple (random positions draw through the same
    :meth:`AnomalousRegion.random` calls, shot by shot) and the
    overwrites apply in event-declaration order with each event's own
    ``p_ano`` — so a one-random-event scenario consumes the identical
    uniform stream as the legacy path and is bit-identical per
    ``(seed, batch_size)``.
    """

    name = "sample"

    def run(self, ctx: StageContext, state: StageState) -> None:
        kernel = self.kernel
        base_noise = kernel._state[2]
        d, cycles = kernel.distance, kernel.cycles
        rng = ctx.rng
        scenario = getattr(kernel, "scenario", None)
        if scenario is not None:
            state.regions = [scenario.resolve_regions(d, rng)
                             for _ in range(ctx.shots)]
            p_anos = [event.p_ano for event in scenario.events]
        else:
            state.regions = [AnomalousRegion.random(d, kernel.anomaly_size,
                                                    rng, t_lo=kernel.onset)
                             for _ in range(ctx.shots)]
            p_anos = None
        if ctx.packing == "bits":
            v, h, m = base_noise.sample_batch_packed(ctx.shots, cycles, rng)
            overwrite = _overwrite_anomalous_packed
        else:
            v, h, m = base_noise.sample_batch(ctx.shots, cycles, rng)
            overwrite = _overwrite_anomalous
        # Regions differ per shot, so the anomalous overwrite is the one
        # per-shot sampling step (touching only the region's cells).
        if p_anos is None:
            for s, region in enumerate(state.regions):
                overwrite(v, h, m, s, region, d, kernel.p_ano, rng)
        else:
            for s, regs in enumerate(state.regions):
                for region, p_ano in zip(regs, p_anos, strict=True):
                    overwrite(v, h, m, s, region, d, p_ano, rng)
        state.v, state.h, state.m = v, h, m


class EndToEndExtractStage(_KernelStage):
    """Activity stream (+ packed node index / running parities)."""

    name = "extract"

    def run(self, ctx: StageContext, state: StageState) -> None:
        lattice = self.kernel._state[0]
        v, h, m = state.v, state.h, state.m
        if ctx.packing == "bits":
            activity = lattice.per_cycle_activity_packed(v, h, m)
            state.activity = activity
            state.coords, state.vals, state.bounds = \
                lattice.packed_active_nodes(activity)
            state.north_prefix = lattice.north_cut_prefix_packed(v)
        else:
            state.activity = lattice.per_cycle_activity(v, h, m)


class EndToEndDetectStage(_KernelStage):
    """Windowed scans + truncated nodes/parities per shot.

    The scan decides each shot's stop cycle, so the decode inputs (the
    active nodes and error parity of the *truncated* run) are produced
    here rather than at extract time.  Packed runs never re-extract:
    the truncated difference lattice is the first ``stop`` activity
    layers plus a final layer that is exactly ``m[stop - 1]``, and the
    truncated error parity is one bit of the running north-cut parity.
    """

    name = "detect"

    def run(self, ctx: StageContext, state: StageState) -> None:
        kernel = self.kernel
        lattice = kernel._state[0]
        detections: list = []
        nodes_list: list = []
        parities = np.empty(ctx.shots, dtype=np.int64)
        if ctx.packing == "bits":
            if kernel.decode == "batched":
                scans = kernel._detect_all(
                    bitops.unpack_shots(state.activity, ctx.shots))
            else:
                scans = [kernel._detect(bitops.lane(state.activity, s))
                         for s in range(ctx.shots)]
            for s, (stop, estimated, latency) in enumerate(scans):
                nodes_list.append(kernel._shot_nodes_truncated(
                    lattice, state.coords, state.vals, state.bounds,
                    state.m, s, stop))
                parities[s] = bitops.lane_bit(
                    state.north_prefix[:, stop - 1], s)
                detections.append((estimated, latency))
        else:
            for s, scan in enumerate(kernel._detect_all(state.activity)):
                stop, estimated, latency = scan
                vs = state.v[s, :stop]
                nodes_list.append(lattice.detection_events(
                    vs, state.h[s, :stop], state.m[s, :stop]))
                parities[s] = lattice.error_cut_parity(vs)
                detections.append((estimated, latency))
        state.nodes_list = nodes_list
        state.parities = parities
        state.detections = detections


class EndToEndDecodeStage(_KernelStage):
    """Score the chunk's three strategies into the outcome rows.

    ``decode="batched"``: one region-bucketed engine call decodes the
    whole chunk per strategy — naive shares one model, oracle folds
    each shot's true strike box into the bucket tensors, and detected
    folds each detecting shot's estimate (whose onset varies shot to
    shot); misses inherit the naive matching.  ``decode="pershot"``
    keeps the per-shot reference loop, which is also where MWPM decodes
    and scenarios whose events carry non-uniform region weights go (the
    bucketed engine takes one weight per chunk).
    """

    name = "decode"

    def run(self, ctx: StageContext, state: StageState) -> None:
        kernel = self.kernel
        shots = len(state.nodes_list)
        naive = kernel._naive_parities(state.nodes_list)
        out = np.empty((shots, 4), dtype=np.int64)
        w_ano = (kernel._batched_w_ano
                 if hasattr(kernel, "_batched_w_ano") else None)
        use_batched = (kernel.decode == "batched"
                       and getattr(kernel, "decoder", "greedy") == "greedy"
                       and w_ano is not None)
        if use_batched:
            err = state.parities.astype(np.int8)
            oracle = batched_region_cut_parities(
                kernel.distance, state.regions, state.nodes_list, w_ano,
                arena=ctx.arena)
            detected = naive.copy()
            det_idx = [s for s, (est, _) in enumerate(state.detections)
                       if est is not None]
            if det_idx:
                detected[det_idx] = batched_region_cut_parities(
                    kernel.distance,
                    [state.detections[s][0] for s in det_idx],
                    [state.nodes_list[s] for s in det_idx], w_ano,
                    arena=ctx.arena)
            out[:, 0] = err ^ naive
            out[:, 1] = err ^ detected
            out[:, 2] = err ^ oracle
        else:
            for s, (estimated, _) in enumerate(state.detections):
                out[s, :3] = kernel._score(
                    state.nodes_list[s], int(state.parities[s]),
                    int(naive[s]), state.regions[s], estimated)
        state.outcomes = out


class EndToEndAccumulateStage(_KernelStage):
    """Fold the detection latencies into the outcome rows."""

    name = "accumulate"

    def run(self, ctx: StageContext, state: StageState) -> None:
        state.outcomes[:, 3] = [latency
                                for _, latency in state.detections]


# ----------------------------------------------------------------------
# Detection kernel stages
# ----------------------------------------------------------------------
class DetectionSampleStage(_KernelStage):
    """Per-trial strike regions + base draw + anomalous overwrites."""

    name = "sample"

    def run(self, ctx: StageContext, state: StageState) -> None:
        kernel = self.kernel
        base_noise = kernel._state[1]
        total = kernel.normal_cycles + kernel.post_cycles
        rng = ctx.rng
        scenario = getattr(kernel, "scenario", None)
        if scenario is not None:
            # Event onsets are the scenario's own (back-to-back strikes
            # land inside the post window); positions resolve per trial.
            state.regions = [scenario.resolve_regions(kernel.distance, rng)
                             for _ in range(ctx.shots)]
            p_anos = [event.p_ano for event in scenario.events]
        else:
            state.regions = [AnomalousRegion.random(
                kernel.distance, kernel.anomaly_size, rng,
                t_lo=kernel.normal_cycles) for _ in range(ctx.shots)]
            p_anos = None
        if ctx.packing == "bits":
            v, h, m = base_noise.sample_batch_packed(ctx.shots, total, rng)
            overwrite = _overwrite_anomalous_packed
        else:
            v, h, m = base_noise.sample_batch(ctx.shots, total, rng)
            overwrite = _overwrite_anomalous
        if p_anos is None:
            for s, region in enumerate(state.regions):
                overwrite(v, h, m, s, region, kernel.distance,
                          kernel.p_ano, rng)
        else:
            for s, regs in enumerate(state.regions):
                for region, p_ano in zip(regs, p_anos, strict=True):
                    overwrite(v, h, m, s, region, kernel.distance, p_ano,
                              rng)
        state.v, state.h, state.m = v, h, m


class DetectionExtractStage(_KernelStage):
    """Error arrays → the per-cycle node-activity stream."""

    name = "extract"

    def run(self, ctx: StageContext, state: StageState) -> None:
        lattice = self.kernel._state[2]
        if ctx.packing == "bits":
            state.activity = lattice.per_cycle_activity_packed(
                state.v, state.h, state.m)
        else:
            state.activity = lattice.per_cycle_activity(
                state.v, state.h, state.m)


class DetectionScoreStage(_KernelStage):
    """Windowed-count scans → outcome rows.

    For detection trials the scan rows *are* the outcome rows
    (``false_positive, detected, latency, position_error``), so the
    detect and accumulate beats fuse into this one stage; there is no
    decode beat at all.
    """

    name = "detect"

    def run(self, ctx: StageContext, state: StageState) -> None:
        kernel = self.kernel
        if ctx.packing == "bits":
            if kernel.scan == "batched":
                state.outcomes = kernel._score_all(
                    bitops.unpack_shots(state.activity, ctx.shots),
                    state.regions)
            else:
                out = np.empty((ctx.shots, 4), dtype=np.float64)
                for s in range(ctx.shots):
                    out[s] = kernel._score_trial(
                        bitops.lane(state.activity, s), state.regions[s])
                state.outcomes = out
        else:
            state.outcomes = kernel._score_all(state.activity,
                                               state.regions)
