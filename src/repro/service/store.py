"""The service's on-disk state and the live-shard partial reader.

One ``STORE_DIR`` holds everything a server needs, all of it in
formats other layers already own:

.. code-block:: text

    STORE_DIR/
      results/<spec_hash>-<version>.json   # ResultStore records
      checkpoints/<spec_hash>.jsonl        # checkpoint shards

The result cache is :class:`repro.campaigns.store.ResultStore` (keyed
``(spec_hash, repro.__version__)``); the checkpoint directory is a
plain :class:`repro.campaigns.checkpoint.CheckpointStore`, which is
also where incremental refinement finds sibling shards.  Because both
are ordinary campaign-layer stores, a server's STORE_DIR is fully
usable offline: ``python -m repro run SPEC --checkpoint
STORE_DIR/checkpoints`` resumes the very shards the server wrote.

:func:`read_partial` is the serving half of "stream partial estimates
while a campaign runs": it reads a shard file *while the campaign's
writer appends to it*, so unlike
:meth:`~repro.campaigns.checkpoint.ShardFile.load` it treats any
undecodable tail as in-flight (stop reading, serve what's complete)
rather than as corruption.  Chunks only ever append, so successive
reads report monotonically non-decreasing shot counts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.campaigns.checkpoint import (FORMAT, CheckpointError,
                                        CheckpointStore, decode_chunk)
from repro.campaigns.refine import SHOT_FIELDS_BY_KIND
from repro.campaigns.store import ResultStore
from repro.sim.batch import (DetectionShotKernel, EndToEndShotKernel,
                             MemoryShotKernel)
from repro.sim.montecarlo import wilson_interval

#: Outcome column streaming each kind's headline estimate — the same
#: ``success_column`` the early-stop predicate watches, so the partial
#: endpoint reports exactly the quantity the campaign is converging.
SUCCESS_COLUMNS: dict[str, int] = {
    "memory": MemoryShotKernel.success_column,
    "endtoend": EndToEndShotKernel.success_column,
    "detection": DetectionShotKernel.success_column,
}


def _success_column(kind: object, spec_doc: object) -> int:
    """The streamed-estimate column for a shard's kind.

    Scenario campaigns pick their engine per spec, so the column comes
    from the spec doc's ``mode`` — the same shot engine
    :func:`repro.campaigns.runner.shot_engine` would build.
    """
    if kind == "scenario":
        mode = (spec_doc.get("mode", "memory")
                if isinstance(spec_doc, dict) else "memory")
        return SUCCESS_COLUMNS.get(mode, 0) if isinstance(mode, str) else 0
    return SUCCESS_COLUMNS.get(kind, 0) if isinstance(kind, str) else 0


class ServiceStore:
    """The STORE_DIR layout: result cache + checkpoint shards."""

    def __init__(self, root: Union[str, Path],
                 version: Optional[str] = None):
        self.root = Path(root)
        self.results = ResultStore(self.root / "results", version=version)
        self.checkpoints = CheckpointStore(self.root / "checkpoints")

    def shard_path(self, spec_hash: str) -> Path:
        """The checkpoint shard a running campaign appends to."""
        return self.checkpoints.directory / f"{spec_hash}.jsonl"


def read_partial(path: Union[str, Path]) -> Optional[dict]:
    """Tolerantly read a (possibly live) shard into a partial estimate.

    Returns ``None`` when there is no usable shard (missing file,
    unreadable/foreign header).  Otherwise a dict with the shard's
    ``kind``/``batch_size``, progress counters (``chunks_done``,
    ``shots_done``, ``shots_requested``), the streamed success count,
    and its Wilson interval — the server-side mirror of the early-stop
    estimate.  A line that fails to parse or fails its CRC ends the
    read (the writer is mid-append); everything before it is complete
    by the shard's append-before-next-chunk discipline.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return None
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        return None
    try:
        header = json.loads(lines[0])
    except ValueError:
        return None
    if not isinstance(header, dict) or header.get("type") != "header" \
            or header.get("format") != FORMAT:
        return None
    kind = header.get("kind")
    spec_doc = header.get("spec")
    column = _success_column(kind, spec_doc)

    successes = trials = chunks = 0
    for line in lines[1:]:
        try:
            record = json.loads(line)
            _, outcome, _stats = decode_chunk(record, "live shard record")
        except (ValueError, CheckpointError):
            break  # in-flight tail: serve what is durably complete
        col = outcome if outcome.ndim == 1 else outcome[:, column]
        successes += int(np.count_nonzero(col))
        trials += len(outcome)
        chunks += 1

    requested: Optional[int] = None
    if isinstance(spec_doc, dict) and isinstance(kind, str):
        field = SHOT_FIELDS_BY_KIND.get(kind)
        if field is not None and isinstance(spec_doc.get(field), int):
            requested = spec_doc[field]

    if trials:
        lo, hi = wilson_interval(successes, trials)
        estimate: Optional[float] = successes / trials
        wilson_low: Optional[float] = lo
        wilson_high: Optional[float] = hi
    else:
        estimate = wilson_low = wilson_high = None
    return {
        "kind": kind,
        "batch_size": header.get("batch_size"),
        "chunks_done": chunks,
        "shots_done": trials,
        "shots_requested": requested,
        "successes": successes,
        "estimate": estimate,
        "wilson_low": wilson_low,
        "wilson_high": wilson_high,
    }
