"""The scenario catalog: beyond-Fig.-8 stress cases through ``run()``.

Drives every entry of :mod:`repro.scenarios.catalog` — overlapping
strikes, back-to-back strikes, heterogeneous and drifting base rates,
a long-lived leakage burst, and the greedy-vs-MWPM decoder frontier —
through the unified campaign entry point, and records each entry's
headline numbers as its own ``scenario_*`` section of
``BENCH_batch.json`` so the catalog's trajectory is guarded by
``compare_bench.py`` alongside the engine bars.

Two certification contracts ride along as ``*_bit_equal`` flags (any
flip off ``true`` fails the trajectory compare at every tolerance):

* the degenerate single-fixed-event, uniform-base scenario campaign is
  bit-identical per ``(seed, batch_size)`` to the legacy
  ``AnomalousRegion`` campaign, across the memory / end-to-end /
  detection engines (docs/CONTRACTS.md);
* packed (``packing="bits"``) and unpacked scenario campaigns agree on
  every multi-event entry.
"""

import time

import numpy as np

import pytest

from repro import campaigns
from repro.noise import AnomalousRegion
from repro.scenarios import Scenario, StrikeEvent, catalog_spec, \
    scenario_catalog

from _common import emit_json, mc_samples, print_table

#: Catalog entries driven one campaign at a time (the sweep entry,
#: ``decoder-frontier``, gets its own bench below).
SINGLE_ENTRIES = ("overlapping-strikes", "back-to-back-strikes",
                  "heterogeneous-base-rate", "drifting-base-rate",
                  "leakage-burst")

#: Headline estimate per engine mode (the entry's one-number summary).
HEADLINE = {"memory": "per_run", "endtoend": "detected_failure_rate",
            "detection": "miss_rate"}


def _entry_shots(spec) -> int:
    """The bench-depth shot request for one catalog entry.

    Memory entries run at the Monte-Carlo depth knob; detection and
    end-to-end entries simulate hundreds of cycles per shot, so they
    run at a tenth of it (matching their catalog defaults at the
    committed ``REPRO_SAMPLES``).
    """
    samples = mc_samples()
    if spec.mode == "memory":
        return max(32, samples)
    return max(8, samples // 10)


def _run_entry(name: str):
    """Run one catalog entry at bench depth; returns (spec, result, s)."""
    spec = catalog_spec(name)
    spec = catalog_spec(name, shots=_entry_shots(spec))
    start = time.perf_counter()
    result = campaigns.run(spec)
    return spec, result, time.perf_counter() - start


@pytest.mark.benchmark(group="scenarios")
def bench_scenario_catalog(benchmark):
    """Every single-campaign catalog entry through ``campaigns.run``."""
    rows = []

    def run():
        out = []
        for name in SINGLE_ENTRIES:
            out.append((name, *_run_entry(name)))
        return out

    for name, spec, result, elapsed in benchmark.pedantic(
            run, rounds=1, iterations=1):
        headline = HEADLINE[spec.mode]
        value = result.estimates[headline]
        events = len(spec.scenario.events)
        rows.append([name, spec.mode, events, spec.shots, headline,
                     value, f"{elapsed:.2f}"])
        emit_json("batch", f"scenario_{name.replace('-', '_')}", {
            "mode": spec.mode,
            "events": events,
            "shots": spec.shots,
            headline: value,
            "wall_clock_s": elapsed,
        })

    print_table(
        "Scenario catalog (one campaign per entry)",
        ["entry", "mode", "events", "shots", "headline", "value", "s"],
        rows)


@pytest.mark.benchmark(group="scenarios")
def bench_scenario_legacy_equivalence(benchmark):
    """Single-event scenario campaigns vs their legacy counterparts.

    The contract (docs/CONTRACTS.md): a uniform-base scenario holding
    one fixed event draws the identical uniform stream as the legacy
    ``AnomalousRegion`` path, so the campaigns' counts and estimates
    are bit-equal per ``(seed, batch_size)`` — packed and unpacked.
    """
    samples = mc_samples()
    flags = {}

    def _pair(mode: str, packing: str) -> bool:
        if mode == "memory":
            legacy = campaigns.MemorySpec(
                distance=7, p=0.01, samples=samples,
                region=AnomalousRegion(1, 1, 3), informed=True,
                cycles=12, seed=11, batch_size=64, packing=packing)
            scen = campaigns.ScenarioSpec(
                distance=7, p=0.01, shots=samples, mode="memory",
                informed=True, cycles=12, seed=11, batch_size=64,
                packing=packing,
                scenario=Scenario(events=(
                    StrikeEvent(onset=0, size=3, row=1, col=1),)))
        elif mode == "endtoend":
            legacy = campaigns.EndToEndSpec(
                distance=7, p=0.005, shots=max(8, samples // 10),
                onset=150, cycles=300, n_th=8, seed=5, batch_size=16,
                packing=packing)
            scen = campaigns.ScenarioSpec(
                distance=7, p=0.005, shots=max(8, samples // 10),
                mode="endtoend", cycles=300, n_th=8, seed=5,
                batch_size=16, packing=packing,
                scenario=Scenario(events=(
                    StrikeEvent(onset=150, size=4),)))
        else:
            legacy = campaigns.DetectionSpec(
                distance=9, p=0.005, p_ano=0.5, anomaly_size=4,
                c_win=100, n_th=8, trials=max(8, samples // 10),
                normal_cycles=200, post_cycles=400, seed=3,
                batch_size=8, packing=packing)
            scen = campaigns.ScenarioSpec(
                distance=9, p=0.005, shots=max(8, samples // 10),
                mode="detection", c_win=100, n_th=8, post_cycles=400,
                seed=3, batch_size=8, packing=packing,
                scenario=Scenario(events=(
                    StrikeEvent(onset=200, duration=400, size=4),)))
        a, b = campaigns.run(legacy), campaigns.run(scen)
        return a.counts == b.counts and a.estimates == b.estimates

    def run():
        for mode in ("memory", "endtoend", "detection"):
            for packing in ("bits", "none"):
                flags[f"{mode}_{packing}_bit_equal"] = _pair(mode, packing)

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_table("Scenario == legacy certification",
                ["pair", "bit-equal"],
                [[key, value] for key, value in flags.items()])
    emit_json("batch", "scenario_equivalence",
              {**flags, "samples": samples})
    assert all(flags.values()), f"legacy equivalence broken: {flags}"


@pytest.mark.benchmark(group="scenarios")
def bench_scenario_decoder_frontier(benchmark):
    """Greedy vs exact MWPM on the catalog's frontier sweep.

    Reports each decoder family's logical error rate and wall clock on
    the same anomalous-patch campaign (identical derived seeds), plus
    the greedy decoder's throughput advantage — the paper's
    hardware-decoder trade-off, measured.
    """
    shots = mc_samples()
    sweep = catalog_spec("decoder-frontier", shots=shots)

    def run():
        out = {}
        for overrides, spec in sweep.points():
            start = time.perf_counter()
            result = campaigns.run(spec)
            out[overrides["decoder"]] = (
                result, time.perf_counter() - start)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    (greedy, greedy_s) = results["greedy"]
    (mwpm, mwpm_s) = results["mwpm"]

    print_table(
        f"Decoder frontier (d=5 anomalous patch, {shots} shots)",
        ["decoder", "per_run", "failures", "wall clock (s)"],
        [["greedy", greedy.estimates["per_run"],
          greedy.counts["failures"], f"{greedy_s:.2f}"],
         ["mwpm", mwpm.estimates["per_run"],
          mwpm.counts["failures"], f"{mwpm_s:.2f}"]])

    emit_json("batch", "scenario_decoder_frontier", {
        "shots": shots,
        "per_run": {"greedy": greedy.estimates["per_run"],
                    "mwpm": mwpm.estimates["per_run"]},
        "wall_clock_s": {"greedy": greedy_s, "mwpm": mwpm_s},
        "greedy_throughput_ratio": mwpm_s / greedy_s,
    })


def smoke() -> None:
    """One cheap campaign per engine path (bench_smoke marker)."""
    names = list(scenario_catalog())
    assert len(names) >= 6, f"catalog shrank: {names}"
    for name in ("overlapping-strikes", "leakage-burst"):
        spec = catalog_spec(name, shots=8, batch_size=4)
        result = campaigns.run(spec)
        assert result.counts["requested"] == 8
    sweep = catalog_spec("decoder-frontier", shots=8, batch_size=4)
    res = campaigns.run(sweep)
    assert len(res) == 2
    # The tiny legacy-equivalence probe: memory engine, packed.
    legacy = campaigns.MemorySpec(
        distance=5, p=0.02, samples=32, region=AnomalousRegion(1, 1, 2),
        informed=True, seed=9, batch_size=16)
    scen = campaigns.ScenarioSpec(
        distance=5, p=0.02, shots=32, mode="memory", informed=True,
        seed=9, batch_size=16,
        scenario=Scenario(events=(StrikeEvent(onset=0, size=2,
                                              row=1, col=1),)))
    a, b = campaigns.run(legacy), campaigns.run(scen)
    assert a.counts == b.counts and a.estimates == b.estimates
    assert np.isfinite(b.estimates["per_cycle_std_error"])
