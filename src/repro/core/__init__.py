"""The Q3DE core: anomaly DEtection, code DEformation, error DEcoding.

* :mod:`repro.core.statistics` -- CLT modeling of syndrome activity
  (paper Sec. IV-A, Eqs. 2-3).
* :mod:`repro.core.anomaly` -- the ``anomaly detection unit``:
  sliding-window active-node counters, thresholds, position estimation.
* :mod:`repro.core.expansion` -- the temporal code-expansion controller
  driving ``op_expand`` (Sec. V).
* :mod:`repro.core.reexecution` -- rollback buffers and decoder
  re-execution (Sec. VI-C).
* :mod:`repro.core.architecture` -- the Q3DE control unit wiring the
  three together over a cycle-level simulation.
"""

from repro.core.statistics import (
    SyndromeStatistics,
    detection_threshold,
    recommended_count_threshold,
)
from repro.core.anomaly import AnomalyDetectionUnit, DetectionEvent
from repro.core.expansion import ExpansionController, ExpansionRequest
from repro.core.reexecution import RollbackController, RollbackDenied
from repro.core.architecture import Q3DEControlUnit, Q3DEConfig
from repro.core.policy import ReactionPolicy, ReactionPolicyEngine

__all__ = [
    "SyndromeStatistics",
    "detection_threshold",
    "recommended_count_threshold",
    "AnomalyDetectionUnit",
    "DetectionEvent",
    "ExpansionController",
    "ExpansionRequest",
    "RollbackController",
    "RollbackDenied",
    "Q3DEControlUnit",
    "Q3DEConfig",
    "ReactionPolicy",
    "ReactionPolicyEngine",
]
