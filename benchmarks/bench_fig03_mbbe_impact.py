"""Fig. 3: logical error rates with and without an MBBE.

Paper setup: distances 9/15/21, anomaly size 4, p_ano = 0.5, logical
Pauli-X error rate per cycle from d-cycle idling.  Expected shape: the
MBBE raises the curves by orders of magnitude (more at lower p), but the
crossing point (threshold) is unchanged.

Reduced defaults (REPRO_SAMPLES to deepen): distances 9/13/17 and a
five-point p sweep keep the bench under a few minutes.
"""

import numpy as np
import pytest

from repro.noise import AnomalousRegion
from repro.sim.memory import MemoryExperiment

from _common import mc_samples, mc_workers, print_table

DISTANCES = [9, 13, 17]
PHYSICAL_RATES = [6e-3, 1e-2, 2e-2, 3e-2, 4e-2]
ANOMALY_SIZE = 4


def _sweep(with_mbbe: bool, samples: int) -> dict[tuple[int, float], float]:
    rates = {}
    for d in DISTANCES:
        region = AnomalousRegion.centered(d, ANOMALY_SIZE) if with_mbbe \
            else None
        for p in PHYSICAL_RATES:
            exp = MemoryExperiment(d, p, region=region)
            seed = hash((d, p, with_mbbe)) % (2 ** 32)
            est = exp.run(samples, np.random.default_rng(seed),
                          workers=mc_workers())
            rates[(d, p)] = est.per_cycle
    return rates


@pytest.mark.benchmark(group="fig3")
def bench_fig3_logical_error_rates(benchmark):
    """Regenerate both Fig. 3 curve families and check their shape."""
    samples = mc_samples()

    def run():
        return _sweep(False, samples), _sweep(True, samples)

    clean, dirty = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for p in PHYSICAL_RATES:
        row = [p]
        for d in DISTANCES:
            row.append(clean[(d, p)])
        for d in DISTANCES:
            row.append(dirty[(d, p)])
        rows.append(row)
    print_table(
        "Fig. 3: logical error rate per cycle (MBBE-free | with MBBE)",
        ["p"] + [f"d={d}" for d in DISTANCES]
        + [f"d={d}+MBBE" for d in DISTANCES],
        rows)

    # Shape checks: MBBE hurts; at low p larger d helps in the clean case.
    p_low = PHYSICAL_RATES[0]
    for d in DISTANCES:
        assert dirty[(d, p_low)] >= clean[(d, p_low)]
    assert clean[(DISTANCES[-1], p_low)] <= clean[(DISTANCES[0], p_low)]


def smoke() -> None:
    """One tiny grid point (bench_smoke marker: import-rot guard)."""
    exp = MemoryExperiment(5, 2e-2,
                           region=AnomalousRegion.centered(5, 2))
    est = exp.run(8, workers=1, seed=0)
    assert 0.0 <= est.per_cycle <= 1.0
