"""Tests for the Pauli frame journal and classical register."""

import pytest

from repro.arch.pauli_frame import ClassicalRegister, PauliFrame


class TestPauliFrame:
    def test_apply_and_read(self):
        frame = PauliFrame(3)
        frame.apply(0, 1, flip_x=True)
        frame.apply(1, 1, flip_z=True)
        assert frame.x == [0, 1, 0]
        assert frame.z == [0, 1, 0]

    def test_double_apply_cancels(self):
        frame = PauliFrame(1)
        frame.apply(0, 0, flip_x=True)
        frame.apply(1, 0, flip_x=True)
        assert frame.x == [0]
        assert frame.journal_length == 2

    def test_noop_update_not_journaled(self):
        frame = PauliFrame(1)
        frame.apply(0, 0)
        assert frame.journal_length == 0

    def test_rollback_restores_state(self):
        frame = PauliFrame(2)
        frame.apply(0, 0, flip_x=True)
        frame.apply(5, 1, flip_z=True)
        frame.apply(9, 0, flip_z=True)
        undone = frame.rollback_to(5)
        assert len(undone) == 2
        assert frame.x == [1, 0]
        assert frame.z == [0, 0]
        assert undone[0].cycle == 5  # oldest first

    def test_rollback_to_zero_restores_identity(self):
        frame = PauliFrame(2)
        for t in range(6):
            frame.apply(t, t % 2, flip_x=bool(t % 2), flip_z=True)
        frame.rollback_to(0)
        assert frame.x == [0, 0] and frame.z == [0, 0]

    def test_trim_journal(self):
        frame = PauliFrame(1)
        for t in range(10):
            frame.apply(t, 0, flip_x=True)
        dropped = frame.trim_journal(before_cycle=7)
        assert dropped == 7
        assert frame.journal_length == 3

    def test_out_of_range_qubit(self):
        frame = PauliFrame(1)
        with pytest.raises(ValueError):
            frame.apply(0, 2, flip_x=True)

    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError):
            PauliFrame(0)


class TestClassicalRegister:
    def test_uncorrected_entry_not_readable(self):
        reg = ClassicalRegister()
        reg.write_raw(0, 1, cycle=10)
        assert reg.read(0) is None

    def test_corrected_entry_readable(self):
        reg = ClassicalRegister()
        reg.write_raw(0, 1, cycle=10)
        reg.mark_corrected(0, correction=1, cycle=20)
        assert reg.read(0) == 0  # raw 1 XOR correction 1

    def test_missing_entry_reads_none(self):
        assert ClassicalRegister().read(42) is None

    def test_entries_corrected_after(self):
        reg = ClassicalRegister()
        for i, t in enumerate((10, 20, 30)):
            reg.write_raw(i, 0, cycle=t)
            reg.mark_corrected(i, 0, cycle=t + 5)
        assert sorted(reg.entries_corrected_after(25)) == [1, 2]

    def test_any_read_corrected_after(self):
        reg = ClassicalRegister()
        reg.write_raw(0, 1, cycle=10)
        reg.mark_corrected(0, 0, cycle=15)
        assert not reg.any_read_corrected_after(12)
        reg.read(0)
        assert reg.any_read_corrected_after(12)
        assert not reg.any_read_corrected_after(16)

    def test_uncorrect_reverts_entry(self):
        reg = ClassicalRegister()
        reg.write_raw(0, 1, cycle=10)
        reg.mark_corrected(0, 1, cycle=15)
        reg.uncorrect(0)
        assert reg.read(0) is None
        entry = reg.entry(0)
        assert entry is not None
        assert entry.raw_value == 1
        assert entry.correction == 0
