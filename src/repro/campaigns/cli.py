"""``python -m repro`` — drive campaigns from spec files.

Subcommands:

* ``run SPEC.json``      — run the campaign (or sweep) and print the
  result JSON; ``--checkpoint DIR`` turns on chunk-granular
  checkpoint/resume, ``--executor`` picks where chunks run.
* ``validate SPEC.json`` — parse + validate only (exit 1 on a bad spec).
* ``hash SPEC.json``     — print the spec hash that keys checkpoints
  and provenance.
* ``worker QUEUE_DIR``   — serve a distributed work queue: claim chunk
  tasks, rebuild kernels from their spec JSON, deliver CRC-stamped
  result records (see :mod:`repro.campaigns.distributed` and
  docs/API.md).
* ``serve STORE_DIR``    — run the long-lived campaign server: accept
  spec JSON over HTTP, dedupe against the content-addressed result
  cache, coalesce duplicate submissions, stream partial estimates from
  live checkpoints, and refine cached campaigns incrementally (see
  :mod:`repro.service` and docs/SERVICE.md).
* ``gc STORE_DIR``       — prune stale-version result records,
  corrupt/completed checkpoint shards, and abandoned temp files from a
  store directory.  Dry-run by default; ``--apply`` deletes (see
  :mod:`repro.campaigns.gc`).

``SPEC.json`` may be ``-`` for stdin.  Executor syntax: ``inline``
(whole-request in-process, the default), ``inline-chunked`` (kernel
fan-out chunk size), ``pool:N`` (process pool of N workers), or
``queue:DIR`` (supervise the filesystem work queue at DIR, served by
``worker`` processes); omitted, ``REPRO_WORKERS`` decides.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.campaigns.checkpoint import CheckpointError
from repro.campaigns.executors import (Executor, InlineExecutor,
                                       ProcessPoolExecutor, default_executor)
from repro.campaigns.specs import SpecError, spec_from_json, spec_hash


def _read_spec(path: str):
    text = sys.stdin.read() if path == "-" else open(path, encoding="utf-8").read()
    return spec_from_json(text)


def parse_executor(value: Optional[str]) -> Executor:
    """Parse the ``--executor`` argument."""
    if value is None:
        return default_executor()
    if value == "inline":
        return InlineExecutor(whole_request=True)
    if value == "inline-chunked":
        return InlineExecutor(whole_request=False)
    if value.startswith("pool:"):
        return ProcessPoolExecutor(int(value.split(":", 1)[1]))
    if value.startswith("queue:"):
        from repro.campaigns.distributed import WorkQueueExecutor
        return WorkQueueExecutor(value.split(":", 1)[1])
    raise argparse.ArgumentTypeError(
        f"unknown executor {value!r} (choices: inline, inline-chunked, "
        "pool:N, queue:DIR)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run Q3DE reproduction campaigns from spec files.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a campaign spec")
    run_p.add_argument("spec", help="spec JSON path, or - for stdin")
    run_p.add_argument("--executor", type=parse_executor, default=None,
                       help="inline | inline-chunked | pool:N "
                            "(default: REPRO_WORKERS)")
    run_p.add_argument("--checkpoint", default=None, metavar="DIR",
                       help="shard directory for chunk checkpoint/resume")
    run_p.add_argument("--refine", action="store_true",
                       help="with --checkpoint: seed this spec's shard from "
                            "a sibling spec's shard (same campaign, "
                            "different shot count) before running")
    run_p.add_argument("--output", default="-", metavar="PATH",
                       help="where to write the result JSON (default: stdout)")

    val_p = sub.add_parser("validate", help="validate a spec file")
    val_p.add_argument("spec", help="spec JSON path, or - for stdin")

    hash_p = sub.add_parser("hash", help="print a spec's hash")
    hash_p.add_argument("spec", help="spec JSON path, or - for stdin")

    worker_p = sub.add_parser(
        "worker", help="serve a distributed work queue")
    worker_p.add_argument("queue", help="queue directory (shared filesystem)")
    worker_p.add_argument("--id", default=None, metavar="NAME",
                          help="worker id (default: w<pid>)")
    worker_p.add_argument("--poll", type=float, default=0.2, metavar="S",
                          help="seconds between idle queue polls")
    worker_p.add_argument("--max-chunks", type=int, default=None,
                          metavar="N", help="exit after N chunks")
    worker_p.add_argument("--idle-exit", type=float, default=None,
                          metavar="S", help="exit after S idle seconds")
    worker_p.add_argument("--fault-plan", default=None, metavar="PATH",
                          help="JSON FaultPlan to inject (chaos testing)")

    serve_p = sub.add_parser(
        "serve", help="run the campaign result-cache server")
    serve_p.add_argument("store", metavar="STORE_DIR",
                         help="service store directory "
                              "(results/ + checkpoints/)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=None, metavar="N",
                         help="TCP port (default: REPRO_SERVICE_PORT)")
    serve_p.add_argument("--executor", default=None, metavar="SPEC",
                         help="executor per campaign: inline | "
                              "inline-chunked | pool:N | queue:DIR "
                              "(default: REPRO_SERVICE_EXECUTOR)")
    serve_p.add_argument("--threads", type=int, default=None, metavar="N",
                         help="concurrent campaign runners "
                              "(default: REPRO_SERVICE_THREADS)")

    gc_p = sub.add_parser(
        "gc", help="prune stale records and orphaned shards from a store")
    gc_p.add_argument("store", metavar="STORE_DIR",
                      help="store directory (results/ + checkpoints/)")
    gc_p.add_argument("--apply", action="store_true",
                      help="actually delete (default: dry-run report)")
    gc_p.add_argument("--keep-checkpoints", action="store_true",
                      help="never prune completed campaigns' shards "
                           "(keeps refinement-to-more-shots cheap)")
    gc_p.add_argument("--tmp-age", type=float, default=None, metavar="S",
                      help="age in seconds before an abandoned temp file "
                           "is prunable (default: 3600)")
    gc_p.add_argument("--json", action="store_true",
                      help="print the report as JSON instead of a table")
    return parser


def _run_serve(args) -> int:
    from repro import config
    from repro.service.http import serve
    value = (args.executor if args.executor is not None
             else config.service_executor())
    try:
        parse_executor(value)  # validate before binding the socket
    except (argparse.ArgumentTypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    port = args.port if args.port is not None else config.service_port()
    threads = (args.threads if args.threads is not None
               else config.service_threads())
    try:
        serve(args.store, host=args.host, port=port,
              executor_factory=lambda: parse_executor(value),
              threads=threads)
    except OSError as exc:
        print(f"error: cannot serve on {args.host}:{port}: {exc}",
              file=sys.stderr)
        return 1
    return 0


def _run_worker(args) -> int:
    from repro.campaigns.distributed import WorkerCrashed, serve
    faults = None
    if args.fault_plan is not None:
        from repro.campaigns.faults import FaultInjector, FaultPlan
        faults = FaultInjector(FaultPlan.load(args.fault_plan))
    try:
        done = serve(args.queue, args.id, poll_s=args.poll,
                     max_chunks=args.max_chunks,
                     idle_exit_s=args.idle_exit, faults=faults)
    except WorkerCrashed as exc:
        print(f"worker crashed: {exc}", file=sys.stderr)
        return 3
    print(f"worker done: {done} chunks", file=sys.stderr)
    return 0


def _run_gc(args) -> int:
    import json as json_mod

    from repro.campaigns.gc import TMP_AGE_S, apply_gc, plan_gc
    store = args.store
    if not os.path.isdir(store):
        print(f"error: {store} is not a directory", file=sys.stderr)
        return 1
    tmp_age = args.tmp_age if args.tmp_age is not None else TMP_AGE_S
    report = plan_gc(store, tmp_age_s=tmp_age,
                     keep_checkpoints=args.keep_checkpoints)
    if args.apply:
        report = apply_gc(report)
    if args.json:
        print(json_mod.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    verb = "deleted" if args.apply else "would delete"
    for candidate in report.candidates:
        print(f"{verb}  {candidate.reason:<16} {candidate.path}")
    for path in report.unknown:
        print(f"skipped  {'unknown':<16} {path}")
    missed = len(report.missed)
    print(f"{len(report.candidates)} prunable "
          f"({report.reclaimable_bytes} bytes), {report.kept} kept"
          + (f", {missed} raced" if missed else "")
          + ("" if args.apply else " — dry run, pass --apply to delete"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "worker":
        return _run_worker(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "gc":
        return _run_gc(args)
    try:
        spec = _read_spec(args.spec)
    except OSError as exc:
        print(f"error: cannot read spec: {exc}", file=sys.stderr)
        return 1
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.command == "validate":
        print(f"ok: {type(spec).__name__} ({spec_hash(spec)})")
        return 0
    if args.command == "hash":
        print(spec_hash(spec))
        return 0

    from repro.campaigns.runner import run
    try:
        result = run(spec, executor=args.executor,
                     checkpoint=args.checkpoint, refine=args.refine)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    text = result.to_json(indent=2)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0
