"""Statistical modeling of the syndrome sequence (paper Sec. IV-A).

With independent, identical per-cycle Pauli noise, the even-cycle
active-node count over a window of ``c_win`` samples satisfies a central
limit theorem:

    V ~ N(c_win * mu, c_win * sigma^2)                          (Eq. 2)

so an anomaly-free node stays below

    V_th = c_win * mu + sqrt(2 c_win sigma^2) * erfinv(1 - alpha)   (Eq. 3)

with confidence ``1 - alpha``.  The count threshold ``n_th`` (how many
simultaneous above-threshold counters signal an MBBE) should satisfy

    ln(p_L)/ln(alpha)  <  n_th  <  d_ano^2 - ln(p_L)/ln(alpha).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import erfinv


@dataclass(frozen=True)
class SyndromeStatistics:
    """Calibrated per-node activity statistics (mu, sigma per cycle)."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.mu <= 1.0:
            raise ValueError("mu must be a probability")
        if self.sigma < 0.0:
            raise ValueError("sigma must be non-negative")

    @classmethod
    def from_activity_rate(cls, mu: float) -> "SyndromeStatistics":
        """Bernoulli statistics for a per-cycle activity probability."""
        return cls(mu, math.sqrt(mu * (1.0 - mu)))

    @classmethod
    def calibrate(cls, activity: np.ndarray) -> "SyndromeStatistics":
        """Estimate (mu, sigma) from an observed activity stream.

        ``activity`` is any array of 0/1 node-activity samples (the
        pre-calibration phase of the paper).  Sigma uses the unbiased
        ``ddof = 1`` estimator: the biased ``ddof = 0`` form understates
        sigma — and with it every V_th derived from the calibration — by
        a factor ``sqrt(1 - 1/n)``, which is material for short streams.
        An all-equal stream (including a single sample) carries no
        variance information, so its sigma is floored at the Bernoulli
        sigma of the add-two smoothed rate ``1 / (n + 2)`` — the value a
        stream one observation longer could not rule out — rather than
        reported as zero, which would make any later threshold
        degenerate (see :func:`detection_threshold`).
        """
        arr = np.asarray(activity, dtype=float)
        if arr.size == 0:
            raise ValueError("cannot calibrate on an empty stream")
        mu = float(arr.mean())
        sigma = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        if sigma == 0.0:
            floor_rate = 1.0 / (arr.size + 2.0)
            sigma = math.sqrt(floor_rate * (1.0 - floor_rate))
        return cls(mu, sigma)


def expected_activity_rate(p: float, degree: int = 6) -> float:
    """Analytic per-cycle activity probability of a bulk syndrome node.

    A difference node flips when an odd number of its independent error
    mechanisms fire in the cycle: the ``degree`` incident data edges (4 in
    the bulk) plus the two measurement flips it straddles.  Each fires
    with probability ``p``, so the activity rate is the odd-parity
    probability ``(1 - (1 - 2p)^degree) / 2``.
    """
    if not 0.0 <= p <= 0.5:
        raise ValueError("p must be in [0, 0.5]")
    return 0.5 * (1.0 - (1.0 - 2.0 * p) ** degree)


def detection_threshold(stats: SyndromeStatistics, c_win: int,
                        alpha: float = 0.01) -> float:
    """Eq. (3): the per-counter confidence threshold V_th.

    Degenerate statistics (``sigma == 0``, e.g. ``mu`` of exactly 0 or
    an all-equal calibration stream fed straight into
    :class:`SyndromeStatistics`) are rejected: they would collapse V_th
    onto the mean — with ``mu = 0``, to V_th = 0 — so the very first
    active observation of a healthy qubit would flag an MBBE.
    :meth:`SyndromeStatistics.calibrate` floors sigma away from this
    regime; anything else constructing statistics by hand must too.
    """
    if c_win < 1:
        raise ValueError("window must hold at least one cycle")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    if stats.sigma == 0.0:
        raise ValueError(
            "sigma must be positive to set a confidence threshold; "
            "calibrate on a stream with variation (or use "
            "SyndromeStatistics.calibrate, which floors sigma)")
    return (c_win * stats.mu
            + math.sqrt(2.0 * c_win) * stats.sigma * float(erfinv(1.0 - alpha)))


def recommended_count_threshold(p_logical: float, alpha: float,
                                anomaly_size: int) -> tuple[float, float]:
    """The paper's criterion bounds for n_th.

    Returns ``(lower, upper)``; any integer strictly inside is a valid
    ``n_th``.  If the interval is empty the device is already tolerant to
    MBBEs at this logical error rate.
    """
    if not 0.0 < p_logical < 1.0 or not 0.0 < alpha < 1.0:
        raise ValueError("p_logical and alpha must be in (0, 1)")
    ratio = math.log(p_logical) / math.log(alpha)
    return ratio, anomaly_size ** 2 - ratio
