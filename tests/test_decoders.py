"""Tests for the MWPM and greedy decoders."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.decoding import (
    DistanceModel,
    GreedyDecoder,
    MWPMDecoder,
    NORTH,
    SOUTH,
    SyndromeLattice,
)
from repro.noise import AnomalousRegion


def decoders(model):
    return [GreedyDecoder(model), MWPMDecoder(model)]


class TestEmptyAndSingles:
    def test_empty_input(self):
        for dec in decoders(DistanceModel(5)):
            result = dec.decode(np.empty((0, 3), dtype=int))
            assert result.matches == []
            assert result.correction_cut_parity == 0

    def test_single_node_goes_to_nearest_boundary(self):
        for dec in decoders(DistanceModel(9)):
            result = dec.decode(np.array([[0, 0, 4]]))
            assert len(result.matches) == 1
            assert result.matches[0].b == NORTH
            assert result.correction_cut_parity == 1

    def test_single_node_south(self):
        for dec in decoders(DistanceModel(9)):
            result = dec.decode(np.array([[0, 7, 4]]))
            assert result.matches[0].b == SOUTH
            assert result.correction_cut_parity == 0

    def test_adjacent_pair_matched_together(self):
        nodes = np.array([[0, 3, 4], [0, 4, 4]])
        for dec in decoders(DistanceModel(9)):
            result = dec.decode(nodes)
            assert len(result.matches) == 1
            match = result.matches[0]
            assert {match.a, match.b} == {0, 1}
            assert result.correction_cut_parity == 0

    def test_far_pair_split_to_boundaries(self):
        nodes = np.array([[0, 0, 0], [0, 7, 8]])
        for dec in decoders(DistanceModel(9)):
            result = dec.decode(nodes)
            sides = sorted(m.b for m in result.matches)
            assert sides == [SOUTH, NORTH]
            assert result.correction_cut_parity == 1


class TestMatchingValidity:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 30))
    def test_greedy_covers_every_node_exactly_once(self, seed, n):
        rng = np.random.default_rng(seed)
        nodes = np.column_stack([
            rng.integers(0, 10, n), rng.integers(0, 8, n),
            rng.integers(0, 9, n)])
        result = GreedyDecoder(DistanceModel(9)).decode(nodes)
        assert result.covers_all(n)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 14))
    def test_mwpm_covers_every_node_exactly_once(self, seed, n):
        rng = np.random.default_rng(seed)
        nodes = np.column_stack([
            rng.integers(0, 10, n), rng.integers(0, 8, n),
            rng.integers(0, 9, n)])
        result = MWPMDecoder(DistanceModel(9)).decode(nodes)
        assert result.covers_all(n)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 12))
    def test_mwpm_weight_never_exceeds_greedy(self, seed, n):
        rng = np.random.default_rng(seed)
        nodes = np.column_stack([
            rng.integers(0, 10, n), rng.integers(0, 8, n),
            rng.integers(0, 9, n)])
        model = DistanceModel(9)
        greedy = GreedyDecoder(model).decode(nodes)
        exact = MWPMDecoder(model).decode(nodes)
        assert exact.weight <= greedy.weight + 1e-9

    def test_mwpm_unpruned_agrees_with_pruned(self):
        rng = np.random.default_rng(42)
        model = DistanceModel(9)
        for _ in range(5):
            n = int(rng.integers(2, 10))
            nodes = np.column_stack([
                rng.integers(0, 8, n), rng.integers(0, 8, n),
                rng.integers(0, 9, n)])
            full = MWPMDecoder(model, prune_factor=None).decode(nodes)
            pruned = MWPMDecoder(model, prune_factor=1.5).decode(nodes)
            assert full.weight == pytest.approx(pruned.weight)

    def test_pruned_mwpm_is_exact_on_adversarial_sets(self):
        """Regression for the pruning bug: the zero-weight twin-twin
        edges must be added even when the node-node edge (i, j) is
        pruned, or the reduction loses perfect matchings it may need.
        Mixed clusters — tight pairs plus far-flung boundary-bound
        nodes — maximize pruned edges; with weighted regions the via
        paths shuffle which edges survive.  The pruned decoder must stay
        exactly minimum-weight through all of it, at the aggressive
        prune_factor = 1.0 as well."""
        rng = np.random.default_rng(7)
        region = AnomalousRegion(2, 2, 3)
        models = [DistanceModel(9), DistanceModel(9, region, 0.0),
                  DistanceModel(9, region, 0.3)]
        for trial in range(12):
            # Tight cluster far from the boundary + scattered loners.
            cluster = np.column_stack([
                rng.integers(4, 7, 4), rng.integers(3, 5, 4),
                rng.integers(3, 6, 4)])
            loners = np.column_stack([
                rng.integers(0, 10, 4), rng.integers(0, 8, 4),
                rng.integers(0, 9, 4)])
            nodes = np.vstack([cluster, loners])
            model = models[trial % len(models)]
            full = MWPMDecoder(model, prune_factor=None).decode(nodes)
            for factor in (1.0, 1.5):
                pruned = MWPMDecoder(model, prune_factor=factor).decode(nodes)
                assert pruned.covers_all(len(nodes))
                assert pruned.weight == pytest.approx(full.weight), (
                    trial, factor)


class TestEndToEndDecoding:
    def test_single_data_error_corrected(self):
        d = 7
        lat = SyndromeLattice(d)
        v = np.zeros((d, d, d), dtype=bool)
        h = np.zeros((d, d - 1, d - 1), dtype=bool)
        m = np.zeros((d, d - 1, d), dtype=bool)
        v[2, 3, 3] = True
        nodes = lat.detection_events(v, h, m)
        for dec in decoders(DistanceModel(d)):
            result = dec.decode(nodes)
            failure = lat.error_cut_parity(v) ^ result.correction_cut_parity
            assert failure == 0

    def test_single_north_boundary_error_corrected(self):
        d = 7
        lat = SyndromeLattice(d)
        v = np.zeros((d, d, d), dtype=bool)
        h = np.zeros((d, d - 1, d - 1), dtype=bool)
        m = np.zeros((d, d - 1, d), dtype=bool)
        v[1, 0, 2] = True  # crosses the cut; decoder must match north
        nodes = lat.detection_events(v, h, m)
        for dec in decoders(DistanceModel(d)):
            result = dec.decode(nodes)
            assert result.correction_cut_parity == 1
            failure = lat.error_cut_parity(v) ^ result.correction_cut_parity
            assert failure == 0

    def test_measurement_error_not_miscorrected(self):
        d = 7
        lat = SyndromeLattice(d)
        v = np.zeros((d, d, d), dtype=bool)
        h = np.zeros((d, d - 1, d - 1), dtype=bool)
        m = np.zeros((d, d - 1, d), dtype=bool)
        m[3, 2, 2] = True
        nodes = lat.detection_events(v, h, m)
        for dec in decoders(DistanceModel(d)):
            result = dec.decode(nodes)
            assert result.correction_cut_parity == 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 100_000))
    def test_sparse_errors_always_corrected(self, seed):
        """Any single-error pattern must decode without a logical flip."""
        d = 9
        rng = np.random.default_rng(seed)
        lat = SyndromeLattice(d)
        v = np.zeros((d, d, d), dtype=bool)
        h = np.zeros((d, d - 1, d - 1), dtype=bool)
        m = np.zeros((d, d - 1, d), dtype=bool)
        kind = rng.integers(0, 3)
        t = int(rng.integers(0, d))
        if kind == 0:
            v[t, rng.integers(0, d), rng.integers(0, d)] = True
        elif kind == 1:
            h[t, rng.integers(0, d - 1), rng.integers(0, d - 1)] = True
        else:
            m[t, rng.integers(0, d - 1), rng.integers(0, d)] = True
        nodes = lat.detection_events(v, h, m)
        for dec in decoders(DistanceModel(d)):
            result = dec.decode(nodes)
            failure = lat.error_cut_parity(v) ^ result.correction_cut_parity
            assert failure == 0

    def test_informed_decoder_uses_region_shortcut(self):
        """Fig. 6(a): with a known region the decoder prefers routing
        through it, changing the correction."""
        d = 9
        region = AnomalousRegion(2, 2, 4)
        nodes = np.array([[0, 1, 3], [0, 6, 3]])  # straddle the region
        naive = MWPMDecoder(DistanceModel(d)).decode(nodes)
        informed = MWPMDecoder(DistanceModel(d, region)).decode(nodes)
        # Direct distance 5 > via-region 1+1: informed pairs them;
        # naive sends each to its nearest boundary (2 + 2 < 5).
        assert len(naive.matches) == 2
        assert all(m.to_boundary for m in naive.matches)
        assert len(informed.matches) == 1
        assert not informed.matches[0].to_boundary


class TestStatisticalAccuracy:
    @pytest.mark.parametrize("decoder", ["greedy", "mwpm"])
    def test_low_noise_failure_rate_is_small(self, decoder):
        from repro.sim.memory import MemoryExperiment
        exp = MemoryExperiment(5, 0.005, decoder=decoder)
        est = exp.run(300, np.random.default_rng(0))
        assert est.per_run < 0.05

    def test_failure_rate_decreases_with_distance(self):
        from repro.sim.memory import MemoryExperiment
        rng = np.random.default_rng(1)
        small = MemoryExperiment(3, 0.02).run(600, rng).per_cycle
        rng = np.random.default_rng(2)
        large = MemoryExperiment(9, 0.02).run(600, rng).per_cycle
        assert large < small
