"""RL004 corpus: registered spec classes that break the wire contract."""

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.campaigns import register_campaign


@dataclass
class MutableSpec:                        # RL004: not frozen
    kind = "corpus-mutable"
    distance: int
    p: float


class BareSpec:                           # RL004: not a dataclass at all
    kind = "corpus-bare"


@dataclass(frozen=True)
class LeakySpec:
    kind = "corpus-leaky"
    distance: int
    payload: Any                          # RL004: erases the wire schema
    nodes: set                            # RL004: nondeterministic order
    raw: np.ndarray                       # RL004: no JSON round-trip
    extra: Optional[bytes] = None         # RL004: no JSON encoding


@register_campaign(MutableSpec)
def _run_mutable(spec, executor, store):
    return None


@register_campaign(BareSpec)
def _run_bare(spec, executor, store):
    return None


@register_campaign(LeakySpec)
def _run_leaky(spec, executor, store):
    return None
