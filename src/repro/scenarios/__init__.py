"""Declarative noise-scenario catalog (multi-event, beyond cosmic rays).

:mod:`repro.scenarios.model` defines the frozen, JSON-round-trippable
:class:`Scenario` / :class:`StrikeEvent` description;
:mod:`repro.scenarios.catalog` holds the named catalog entries
(``register_scenario``) that ``python -m repro run`` and
``benchmarks/bench_scenarios.py`` drive.  See docs/API.md ("Scenario
catalog") and docs/CONTRACTS.md for the bit-identity contract with the
legacy single-region path.
"""

from repro.scenarios.model import Scenario, ScenarioError, StrikeEvent

#: Catalog names re-exported lazily: the catalog builds
#: :class:`repro.campaigns.ScenarioSpec` objects, and ``campaigns.specs``
#: itself imports :mod:`repro.scenarios.model` — importing the catalog
#: eagerly here would close that loop mid-initialization.
_CATALOG_EXPORTS = ("catalog_spec", "register_scenario", "scenario_catalog")


def __getattr__(name: str):
    if name in _CATALOG_EXPORTS:
        from repro.scenarios import catalog
        return getattr(catalog, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Scenario",
    "ScenarioError",
    "StrikeEvent",
    "catalog_spec",
    "register_scenario",
    "scenario_catalog",
]
