"""Table IV: greedy-decoder hardware cost and throughput.

The paper synthesizes the QECOOL greedy decoder for a Zynq UltraScale+
FPGA with and without the Q3DE weighted-matching extension.  Offline we
substitute a calibrated structural cost model plus a software measurement
of the same matching algorithm (see DESIGN.md "Substitutions").

Expected shape: Q3DE costs ~40 % more LUTs at equal ANQ size with
near-parity matching throughput, and both fit an embedded-class FPGA.
"""

import pytest

from repro.hwmodel.pipeline import ANQPipelineModel, measure_software_throughput
from repro.hwmodel.resources import (
    DecoderHardwareModel,
    lut_overhead_ratio,
    paper_table4_rows,
    required_anq_entries,
)

from _common import emit_json, print_table

CONFIGS = [(40, False), (40, True), (80, False), (80, True)]


@pytest.mark.benchmark(group="table4")
def bench_table4_resource_model(benchmark):
    def build():
        return [DecoderHardwareModel(e, q).table_row() for e, q in CONFIGS]

    rows = benchmark(build)
    paper = paper_table4_rows()
    table = []
    for ours, ref in zip(rows, paper, strict=True):
        table.append([ours["config"], ours["FF"], ref["FF"], ours["LUT"],
                      ref["LUT"], ours["throughput"], ref["throughput"]])
    print_table(
        "Table IV: decoder hardware (model vs paper post-layout)",
        ["config", "FF", "FF(paper)", "LUT", "LUT(paper)",
         "match/us", "match/us(paper)"],
        table)

    emit_json("batch", "table4_resources", {
        # Per-config structural costs; matches/us keys avoid the
        # comparator's directional vocabulary (closed-form model
        # numbers, not an engine bar).
        "configs": {
            ours["config"].replace(" ", "_"): {
                "ff": ours["FF"],
                "lut": ours["LUT"],
                "matches_per_us": ours["throughput"],
            }
            for ours in rows
        },
        "lut_overhead_x_e40": lut_overhead_ratio(40),
    })
    for ours, ref in zip(rows, paper, strict=True):
        assert ours["FF"] == pytest.approx(ref["FF"], rel=0.05)
        assert ours["LUT"] == pytest.approx(ref["LUT"], rel=0.05)
        assert ours["throughput"] == pytest.approx(
            ref["throughput"], rel=0.05)
    assert 0.3 < lut_overhead_ratio(40) < 0.55


@pytest.mark.benchmark(group="table4")
def bench_table4_anq_sizing(benchmark):
    """Sec. VIII-D entry-size criterion at the paper's two design points."""
    def size():
        return (required_anq_entries(1e-4, 15),
                required_anq_entries(1e-3, 31))

    small, large = benchmark(size)
    print_table("ANQ entries for overflow < p_L = 1e-15",
                ["design point", "entries", "paper"],
                [["p=1e-4, d=15", small, "~30"],
                 ["p=1e-3, d=31", large, "~70"]])

    emit_json("batch", "table4_anq_sizing", {
        "entries": {"p1e-4_d15": small, "p1e-3_d31": large},
    })
    assert small < large


@pytest.mark.benchmark(group="table4")
def bench_table4_software_matching_throughput(benchmark):
    """Host-side throughput of the same greedy matching algorithm."""
    rate = benchmark.pedantic(
        measure_software_throughput,
        kwargs=dict(num_nodes=40, repeats=20), rounds=3, iterations=1)
    pipeline = ANQPipelineModel(DecoderHardwareModel(40, False))
    est = pipeline.drain(40)
    print_table(
        "Greedy matching throughput (software vs modelled hardware)",
        ["implementation", "matches/s"],
        [["software (this host)", f"{rate:.0f}"],
         ["modelled FPGA @400 MHz", f"{est.matches_per_us * 1e6:.0f}"]])

    emit_json("batch", "table4_sw_matching", {
        # Host-dependent measurement: drift-class key on purpose so
        # compare_bench reports (not gates) cross-machine movement.
        "sw_matches_per_sec": rate,
        "modelled_matches_per_us": est.matches_per_us,
    })
    assert rate > 0


def smoke() -> None:
    """One tiny grid point (bench_smoke marker: import-rot guard)."""
    row = DecoderHardwareModel(40, True).table_row()
    assert row["LUT"] > 0
    assert required_anq_entries(1e-4, 15) > 0
