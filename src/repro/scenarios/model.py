"""Declarative multi-event noise scenarios (beyond one cosmic ray).

The paper's evaluation — and PRs 1–9 of this reproduction — exercise a
single workload shape: one :class:`~repro.noise.models.AnomalousRegion`
per shot over a uniform base error rate.  A :class:`Scenario` is the
declarative generalization: a tuple of :class:`StrikeEvent`\\ s (each
with its own onset, duration, size, position and strength, free to
overlap or arrive back-to-back), an optional spatial base-rate field
(per-measurement-node multiplier grid), and an optional temporal drift
profile (per-cycle multiplier).  Events may carry a
:class:`~repro.noise.leakage.BurstSource` tag, routing the reaction
semantics of ``repro.noise.leakage`` into specced campaigns.

Scenarios are frozen and JSON-round-trippable (the campaign spec
discipline, reprolint RL004), and the degenerate case is exact by
construction: a scenario with one fixed event over a uniform base is
*bit-identical* to the legacy single-region noise path per
``(seed, batch_size)`` — see :meth:`Scenario.legacy_equivalent` and
docs/CONTRACTS.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional, Union

import numpy as np

from repro.noise.models import AnomalousRegion

__all__ = [
    "ScenarioError",
    "StrikeEvent",
    "Scenario",
]

#: Wire values accepted for ``StrikeEvent.source`` (the
#: :class:`repro.noise.leakage.BurstSource` enum values, referenced by
#: string so the scenario layer needs no import of the leakage module
#: at definition time).
BURST_SOURCES = ("cosmic_ray", "atom_loss", "crystal_scramble",
                 "leakage", "calibration_drift")


class ScenarioError(ValueError):
    """A scenario description is malformed or unusable in context."""


@dataclass(frozen=True)
class StrikeEvent:
    """One anomalous burst: a box of qubits hot from ``onset`` on.

    Args:
        onset: first code cycle the event is active (``t_lo``).
        size: box side length in lattice nodes (``d_ano``).
        duration: active cycles; ``None`` means "until the end of the
            sampled window" (the legacy open ``t_hi``).
        row, col: box origin on the node lattice.  Both ``None`` means
            "uniform random position per shot" (the end-to-end kernels'
            sampling convention); both set means a fixed position.
        p_ano: physical error rate inside the box while active.
        source: optional :class:`~repro.noise.leakage.BurstSource` wire
            value (see :data:`BURST_SOURCES`) tagging the physical
            mechanism; routes the recommended reaction policy.
    """

    onset: int
    size: int
    duration: Optional[int] = None
    row: Optional[int] = None
    col: Optional[int] = None
    p_ano: float = 0.5
    source: Optional[str] = None

    def __post_init__(self) -> None:
        if self.onset < 0:
            raise ScenarioError("event onset must be >= 0")
        if self.size < 1:
            raise ScenarioError("event size must be >= 1")
        if self.duration is not None and self.duration < 1:
            raise ScenarioError("event duration must be >= 1 (or None)")
        if (self.row is None) != (self.col is None):
            raise ScenarioError(
                "event position needs both row and col (or neither)")
        if (self.row is not None and self.col is not None
                and (self.row < 0 or self.col < 0)):
            raise ScenarioError("event position must be non-negative")
        if not 0.0 <= self.p_ano <= 1.0:
            raise ScenarioError("event p_ano must be a probability")
        if self.source is not None and self.source not in BURST_SOURCES:
            raise ScenarioError(
                f"unknown burst source {self.source!r} "
                f"(one of {', '.join(BURST_SOURCES)})")

    # ------------------------------------------------------------------
    @property
    def t_hi(self) -> Optional[int]:
        """Exclusive end cycle, or ``None`` for an open window."""
        if self.duration is None:
            return None
        return self.onset + self.duration

    @property
    def fixed(self) -> bool:
        """True iff the event's position is pinned (not per-shot random)."""
        return self.row is not None

    @property
    def burst_source(self) -> Optional[Any]:
        """The event's :class:`~repro.noise.leakage.BurstSource`, if tagged."""
        if self.source is None:
            return None
        from repro.noise.leakage import BurstSource
        return BurstSource(self.source)

    @property
    def recommended_policy(self) -> Optional[Any]:
        """Reaction policy for the tagged source (paper Sec. IX)."""
        src = self.burst_source
        if src is None:
            return None
        from repro.noise.leakage import RECOMMENDED_POLICY
        return RECOMMENDED_POLICY[src]

    # ------------------------------------------------------------------
    def region(self) -> AnomalousRegion:
        """The event as a fixed :class:`AnomalousRegion` (fixed events only)."""
        if self.row is None or self.col is None:
            raise ScenarioError(
                "event has a per-shot random position; use "
                "resolve_region(distance, rng)")
        return AnomalousRegion(self.row, self.col, self.size,
                               t_lo=self.onset, t_hi=self.t_hi)

    def resolve_region(self, distance: int,
                       rng: np.random.Generator) -> AnomalousRegion:
        """The event's region for one shot, drawing position if random.

        Random positions draw through
        :meth:`AnomalousRegion.random` — the single place strike
        positions are sampled — so a one-event scenario consumes the
        generator exactly as the legacy per-shot region draw.
        """
        if self.fixed:
            return self.region()
        return AnomalousRegion.random(distance, self.size, rng,
                                      t_lo=self.onset, t_hi=self.t_hi)

    # ------------------------------------------------------------------
    @classmethod
    def from_burst(cls, event: Any) -> "StrikeEvent":
        """A :class:`repro.noise.leakage.BurstEvent` as a strike event."""
        return cls(onset=int(event.cycle), size=int(event.size),
                   duration=int(event.duration_cycles),
                   row=int(event.row), col=int(event.col),
                   p_ano=float(event.p_ano),
                   source=str(event.source.value))

    def to_dict(self) -> dict:
        return {"onset": self.onset, "size": self.size,
                "duration": self.duration, "row": self.row,
                "col": self.col, "p_ano": self.p_ano,
                "source": self.source}

    @classmethod
    def from_dict(cls, doc: dict) -> "StrikeEvent":
        if not isinstance(doc, dict):
            raise ScenarioError("strike event must be a JSON object")
        known = {"onset", "size", "duration", "row", "col", "p_ano",
                 "source"}
        unknown = set(doc) - known
        if unknown:
            raise ScenarioError(
                f"unknown strike-event fields: {', '.join(sorted(unknown))}")
        try:
            return cls(**doc)
        except TypeError as exc:
            raise ScenarioError(f"bad strike event: {exc}") from exc


def _as_rate_field(value: Any) -> Optional[tuple]:
    """Validate/freeze a base-rate multiplier grid into nested tuples."""
    if value is None:
        return None
    rows = []
    for row in value:
        rows.append(tuple(float(x) for x in row))
    if not rows:
        raise ScenarioError("rate_field must have at least one row")
    width = len(rows[0])
    if any(len(r) != width for r in rows):
        raise ScenarioError("rate_field rows must have equal length")
    if width != len(rows) + 1:
        raise ScenarioError(
            "rate_field must be a (d-1) x d measurement-node grid "
            f"(got {len(rows)} x {width})")
    if any(x <= 0.0 for r in rows for x in r):
        raise ScenarioError("rate_field multipliers must be positive")
    return tuple(rows)


def _as_drift(value: Any) -> Optional[tuple]:
    """Validate/freeze a per-cycle drift profile into a tuple."""
    if value is None:
        return None
    profile = tuple(float(x) for x in value)
    if not profile:
        raise ScenarioError("drift profile must have at least one entry")
    if any(x <= 0.0 for x in profile):
        raise ScenarioError("drift multipliers must be positive")
    return profile


@dataclass(frozen=True)
class Scenario:
    """A frozen, JSON-round-trippable noise scenario.

    Args:
        events: the strike timeline, in declaration order.  Overlapping
            boxes are allowed; where boxes overlap in space and time,
            later events overwrite earlier ones (declaration order is
            the precedence order).
        rate_field: optional ``(d-1) x d`` grid of positive base-rate
            multipliers, one per measurement node; the multiplier of a
            data edge is the max over its incident nodes.  ``None``
            means the uniform base rate.
        drift: optional per-cycle multiplier profile; cycle ``t`` uses
            entry ``min(t, len-1)`` (the last value holds).  ``None``
            means no temporal drift.
    """

    events: tuple = ()
    rate_field: Optional[tuple] = None
    drift: Optional[tuple] = None

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, StrikeEvent):
                raise ScenarioError(
                    f"scenario events must be StrikeEvent, got "
                    f"{type(event).__name__}")
        object.__setattr__(self, "events", events)
        object.__setattr__(self, "rate_field",
                           _as_rate_field(self.rate_field))
        object.__setattr__(self, "drift", _as_drift(self.drift))

    # ------------------------------------------------------------------
    @property
    def uniform_base(self) -> bool:
        """True iff the base rate is spatially uniform and drift-free."""
        return self.rate_field is None and self.drift is None

    @property
    def fixed(self) -> bool:
        """True iff every event has a pinned position."""
        return all(event.fixed for event in self.events)

    @property
    def single_event(self) -> bool:
        return len(self.events) == 1

    @property
    def first_onset(self) -> int:
        """Earliest event onset (0 for an event-free scenario)."""
        if not self.events:
            return 0
        return min(event.onset for event in self.events)

    @property
    def rate_field_distance(self) -> Optional[int]:
        """Code distance implied by the rate field's grid, if any."""
        if self.rate_field is None:
            return None
        return len(self.rate_field) + 1

    # ------------------------------------------------------------------
    def legacy_equivalent(self) -> Optional[tuple]:
        """``(region, p_ano)`` iff this scenario *is* the legacy path.

        Non-``None`` exactly when the scenario is one fixed event over
        a uniform undrifted base — the case contractually bit-identical
        to ``PhenomenologicalNoise(..., region=..., p_ano=...)`` per
        ``(seed, batch_size)``.
        """
        if not (self.uniform_base and self.single_event and self.fixed):
            return None
        event = self.events[0]
        return event.region(), event.p_ano

    def resolve_regions(self, distance: int,
                        rng: np.random.Generator) -> tuple:
        """Per-event regions for one shot, in declaration order."""
        return tuple(event.resolve_region(distance, rng)
                     for event in self.events)

    # ------------------------------------------------------------------
    def rate_arrays(self, distance: int, p: float,
                    cycles: int) -> Optional[tuple]:
        """Per-cycle base flip-rate arrays, or ``None`` if uniform.

        Returns ``(thr_v, thr_h, thr_m)`` float arrays of shapes
        ``(cycles, d, d)``, ``(cycles, d-1, d-1)``, ``(cycles, d-1, d)``
        — the per-position probabilities replacing the scalar ``p`` in
        ``rng.random(...) < p``.  Node multipliers expand to edges by
        taking the max over incident nodes; the drift profile scales
        every cycle; everything clips to ``[0, 1]``.
        """
        if self.uniform_base:
            return None
        d = distance
        if self.rate_field is not None:
            implied = self.rate_field_distance
            if implied != d:
                raise ScenarioError(
                    f"rate_field implies distance {implied}, "
                    f"campaign has distance {d}")
            m_mult = np.asarray(self.rate_field, dtype=float)
        else:
            m_mult = np.ones((d - 1, d), dtype=float)
        v_mult = np.zeros((d, d), dtype=float)
        v_mult[:-1] = m_mult            # node (k, j) touches v-edge k
        v_mult[1:] = np.maximum(v_mult[1:], m_mult)  # ... and v-edge k+1
        h_mult = np.maximum(m_mult[:, :-1], m_mult[:, 1:])
        if self.drift is not None:
            profile = np.asarray(self.drift, dtype=float)
            idx = np.minimum(np.arange(cycles), len(profile) - 1)
            drift_t = profile[idx]
        else:
            drift_t = np.ones(cycles, dtype=float)
        out = []
        for mult in (v_mult, h_mult, m_mult):
            thr = p * drift_t[:, None, None] * mult[None, :, :]
            out.append(np.clip(thr, 0.0, 1.0))
        return tuple(out)

    # ------------------------------------------------------------------
    @classmethod
    def from_burst_events(cls, events: Any) -> "Scenario":
        """Leakage-module :class:`BurstEvent` timeline as a scenario."""
        return cls(events=tuple(StrikeEvent.from_burst(e) for e in events))

    def to_dict(self) -> dict:
        return {
            "events": [event.to_dict() for event in self.events],
            "rate_field": (None if self.rate_field is None
                           else [list(row) for row in self.rate_field]),
            "drift": None if self.drift is None else list(self.drift),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Union[dict, "Scenario"]) -> "Scenario":
        if isinstance(doc, Scenario):
            return doc
        if not isinstance(doc, dict):
            raise ScenarioError("scenario must be a JSON object")
        unknown = set(doc) - {"events", "rate_field", "drift"}
        if unknown:
            raise ScenarioError(
                f"unknown scenario fields: {', '.join(sorted(unknown))}")
        events = tuple(StrikeEvent.from_dict(e)
                       for e in doc.get("events", ()))
        return cls(events=events, rate_field=doc.get("rate_field"),
                   drift=doc.get("drift"))

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise ScenarioError(f"scenario is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)
