"""RL001 corpus: every way to smuggle entropy past the seed contract.

Each marked line must produce exactly one RL001 diagnostic.
"""

import numpy as np
import numpy.random as npr
from numpy.random import default_rng


def legacy_global_state():
    np.random.seed(1234)              # RL001: hidden global RNG
    x = np.random.rand(4)             # RL001: hidden global RNG
    np.random.shuffle(x)              # RL001: hidden global RNG
    return npr.randint(0, 7)          # RL001: via the module alias


def entropy_seeded():
    a = np.random.default_rng()       # RL001: argless -> OS entropy
    b = default_rng()                 # RL001: argless via direct import
    c = np.random.SeedSequence()      # RL001: argless SeedSequence
    d = np.random.Generator(np.random.PCG64())   # RL001: argless PCG64
    return a, b, c, d
