"""Certify the O(1) distance model against exact grid Dijkstra.

The DistanceModel (Fig. 6c candidate paths) never *under*-estimates the
exact weighted distance, and over-estimates by at most the two
region-crossing edges its box bound cannot see.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.decoding.dijkstra import GridDijkstra
from repro.decoding.weights import DistanceModel
from repro.noise import AnomalousRegion

D = 9
T = 10


class TestUniform:
    def test_matches_manhattan_exactly(self):
        exact = GridDijkstra(D, T)
        model = DistanceModel(D)
        rng = np.random.default_rng(0)
        for _ in range(10):
            a = (int(rng.integers(0, T)), int(rng.integers(0, D - 1)),
                 int(rng.integers(0, D)))
            b = (int(rng.integers(0, T)), int(rng.integers(0, D - 1)),
                 int(rng.integers(0, D)))
            assert exact.node_distance(a, b) == pytest.approx(
                model.node_distance(a, b))

    def test_boundary_matches(self):
        exact = GridDijkstra(D, T)
        model = DistanceModel(D)
        for i in range(D - 1):
            node = (2, i, 4)
            ed, es = exact.boundary_distance(node)
            md, ms = model.boundary_distance(node)
            assert ed == pytest.approx(md)
            if abs(node[1] + 1 - (D - 1 - node[1])) > 0:  # no tie
                assert es == ms


class TestRegionApproximation:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_model_brackets_exact(self, data):
        row_lo = data.draw(st.integers(0, D - 4))
        col_lo = data.draw(st.integers(0, D - 4))
        size = data.draw(st.integers(2, 3))
        region = AnomalousRegion(row_lo, col_lo, size)
        exact = GridDijkstra(D, T, region, w_ano=0.0)
        model = DistanceModel(D, region, w_ano=0.0)
        coords = st.tuples(st.integers(0, T - 1), st.integers(0, D - 2),
                           st.integers(0, D - 1))
        a = data.draw(coords)
        b = data.draw(coords)
        e = exact.node_distance(a, b)
        m = model.node_distance(a, b)
        # Never underestimates; overshoots at most the two crossing edges.
        assert m >= e - 1e-9
        assert m <= e + 2.0 + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_boundary_brackets_exact(self, data):
        row_lo = data.draw(st.integers(0, D - 4))
        col_lo = data.draw(st.integers(0, D - 4))
        region = AnomalousRegion(row_lo, col_lo, 3)
        exact = GridDijkstra(D, T, region, w_ano=0.0)
        model = DistanceModel(D, region, w_ano=0.0)
        node = data.draw(st.tuples(st.integers(0, T - 1),
                                   st.integers(0, D - 2),
                                   st.integers(0, D - 1)))
        e, _ = exact.boundary_distance(node)
        m, _ = model.boundary_distance(node)
        assert m >= e - 1e-9
        assert m <= e + 2.0 + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(st.floats(0.0, 1.0), st.data())
    def test_nonzero_weight_still_brackets(self, w_ano, data):
        region = AnomalousRegion(2, 2, 3)
        exact = GridDijkstra(D, T, region, w_ano=w_ano)
        model = DistanceModel(D, region, w_ano=w_ano)
        coords = st.tuples(st.integers(0, T - 1), st.integers(0, D - 2),
                           st.integers(0, D - 1))
        a = data.draw(coords)
        b = data.draw(coords)
        e = exact.node_distance(a, b)
        m = model.node_distance(a, b)
        assert m >= e - 1e-9
        assert m <= e + 2.0 * (1.0 - w_ano) + 1e-9

    def test_time_bounded_region(self):
        region = AnomalousRegion(2, 2, 3, t_lo=4, t_hi=8)
        exact = GridDijkstra(D, T, region, w_ano=0.0)
        model = DistanceModel(D, region, w_ano=0.0)
        # Outside the active window the shortcut must not apply.
        a, b = (0, 0, 3), (0, 6, 3)
        assert model.node_distance(a, b) >= exact.node_distance(a, b)
        e_active = exact.node_distance((5, 0, 3), (5, 6, 3))
        m_active = model.node_distance((5, 0, 3), (5, 6, 3))
        assert m_active >= e_active - 1e-9
        assert m_active <= e_active + 2.0 + 1e-9
