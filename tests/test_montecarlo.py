"""Tests for Monte-Carlo statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.montecarlo import BinomialEstimate, wilson_interval


class TestWilson:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.3 < hi

    def test_zero_successes(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0
        assert 0 < hi < 0.1

    def test_all_successes(self):
        lo, hi = wilson_interval(100, 100)
        assert 0.9 < lo < 1.0
        assert hi == pytest.approx(1.0)

    def test_narrows_with_trials(self):
        lo1, hi1 = wilson_interval(10, 100)
        lo2, hi2 = wilson_interval(1000, 10_000)
        assert hi2 - lo2 < hi1 - lo1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    @given(st.integers(0, 1000), st.integers(1, 1000))
    def test_bounds_always_valid(self, successes, trials):
        if successes > trials:
            return
        lo, hi = wilson_interval(successes, trials)
        assert 0.0 <= lo <= hi <= 1.0


class TestBinomialEstimate:
    def test_mean(self):
        assert BinomialEstimate(25, 100).mean == 0.25

    def test_interval_wraps_wilson(self):
        est = BinomialEstimate(25, 100)
        assert est.interval == wilson_interval(25, 100)

    def test_std_error_positive_even_at_zero(self):
        assert BinomialEstimate(0, 100).std_error > 0

    def test_std_error_is_standard_estimator_interior(self):
        """The interior is the plain sqrt(p(1-p)/n) estimator — with no
        silent floor, including at k = 1 where the old
        max(p(1-p), 1/n) floor still bit (p(1-p) < 1/n there)."""
        import math
        for successes, trials in ((1, 100), (9, 100), (50, 100),
                                  (1, 10_000)):
            p = successes / trials
            expected = math.sqrt(p * (1.0 - p) / trials)
            assert BinomialEstimate(successes, trials).std_error == \
                pytest.approx(expected)

    def test_std_error_degenerate_corners_match_wilson(self):
        """Regression: at k in {0, n} the old floor reported the
        arbitrary value 1/n; the documented rule is the Wilson
        half-width, consistent with .interval."""
        for successes, trials in ((0, 100), (100, 100), (0, 7)):
            est = BinomialEstimate(successes, trials)
            lo, hi = est.interval
            assert est.std_error == pytest.approx((hi - lo) / 2)
            assert est.std_error > 0
            assert est.std_error != pytest.approx(1.0 / trials)

    def test_addition_pools_counts(self):
        total = BinomialEstimate(5, 100) + BinomialEstimate(7, 200)
        assert total.successes == 12
        assert total.trials == 300

    def test_invalid(self):
        with pytest.raises(ValueError):
            BinomialEstimate(5, 0)
        with pytest.raises(ValueError):
            BinomialEstimate(5, 3)
