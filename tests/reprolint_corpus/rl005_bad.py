"""RL005 corpus: a checkpoint wire module gone wrong."""

import json
import pickle                                  # RL005: arbitrary code
import time
from datetime import datetime


def write_record(fh, outcome, meta):
    record = {
        "data": pickle.dumps(outcome),
        "written_at": time.time(),             # RL005: wall clock
        "stamp": datetime.now().isoformat(),   # RL005: wall clock
    }
    fh.write(json.dumps(record))


def load_record(line: str):
    return eval(line)                          # RL005: evaluated payload


def chunk_order(indices):
    out = []
    for index in set(indices):                 # RL005: set order
        out.append(index)
    return list(set(out))                      # RL005: set order
