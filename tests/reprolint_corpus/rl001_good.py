"""RL001 corpus twin: the same jobs done with threaded seeds."""

import numpy as np
from numpy.random import default_rng


def threaded_streams(seed: int):
    root = np.random.SeedSequence(seed)
    streams = [np.random.default_rng(child)
               for child in root.spawn(4)]
    extra = default_rng(root.spawn(1)[0])
    bitgen = np.random.Generator(np.random.PCG64(1234))
    return streams, extra, bitgen


def generator_methods(rng: np.random.Generator):
    # Methods on a threaded Generator are fine — only the hidden
    # global-state module functions are banned.
    x = rng.random(4)
    rng.shuffle(x)
    return rng.integers(0, 7)
