"""Greedy lattice-surgery scheduler (paper Sec. VIII-B).

Each scheduling slot (``d`` code cycles), the scheduler walks the
instruction queue in order and commits every instruction whose operands
are free and, for ``meas_ZZ``, for which a path of routable vacant blocks
connects the two logical qubits.  Instructions on expanded qubits take
twice as long (their distance is doubled); so do *all* instructions under
the baseline architecture, whose default code distance is doubled.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.arch.isa import Instruction, InstructionKind
from repro.arch.qubit_plane import QubitPlane


@dataclass
class CommittedOp:
    """An instruction currently executing on the plane."""

    instruction: Instruction
    cells: list[tuple[int, int]]
    finish_slot: int


@dataclass
class GreedyScheduler:
    """Routes and commits instructions on a :class:`QubitPlane`.

    Args:
        plane: the qubit plane.
        base_latency_slots: latency of a normal op in slots (1 slot = d
            code cycles).
        lookahead: how deep into the queue out-of-order commit may reach.
    """

    plane: QubitPlane
    base_latency_slots: int = 1
    lookahead: int = 64
    executing: list[CommittedOp] = field(default_factory=list)
    completed: int = 0

    # ------------------------------------------------------------------
    def _route(self, a: tuple[int, int], b: tuple[int, int],
               slot: int) -> Optional[list[tuple[int, int]]]:
        """BFS over routable vacant blocks from qubit block a to b."""
        start_adj = [n for n in self.plane.neighbors(*a)
                     if self.plane.routable(*n, slot)]
        goal_adj = {n for n in self.plane.neighbors(*b)
                    if self.plane.routable(*n, slot)}
        if not start_adj or not goal_adj:
            return None
        queue = deque(start_adj)
        parents: dict[tuple[int, int], Optional[tuple[int, int]]] = {
            n: None for n in start_adj}
        while queue:
            cell = queue.popleft()
            if cell in goal_adj:
                path = [cell]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])
                return path
            for nxt in self.plane.neighbors(*cell):
                if nxt in parents or not self.plane.routable(*nxt, slot):
                    continue
                parents[nxt] = cell
                queue.append(nxt)
        return None

    def _latency_slots(self, inst: Instruction) -> int:
        """Expanded operands double the instruction latency."""
        factor = 1
        for q in inst.targets:
            if self.plane.is_expanded(q):
                factor = 2
        return self.base_latency_slots * factor

    # ------------------------------------------------------------------
    def try_commit(self, inst: Instruction, slot: int) -> bool:
        """Attempt to commit one instruction this slot."""
        targets = inst.targets
        if any(not self.plane.qubit_free(q, slot) for q in targets):
            return False
        cells: list[tuple[int, int]] = [
            self.plane.logical_positions[q] for q in targets]
        for q in targets:
            cells.extend(self.plane.expansions.get(q, []))
        if inst.kind is InstructionKind.MEAS_ZZ:
            a = self.plane.logical_positions[targets[0]]
            b = self.plane.logical_positions[targets[1]]
            path = self._route(a, b, slot)
            if path is None:
                return False
            cells.extend(path)
        finish = slot + self._latency_slots(inst)
        self.plane.reserve(cells, finish)
        self.executing.append(CommittedOp(inst, cells, finish))
        return True

    def step(self, queue: deque, slot: int) -> int:
        """One scheduling slot: retire finished ops, commit ready ones.

        ``queue`` is a deque of pending instructions (program order).
        Returns the number of instructions that finished this slot.
        """
        finished = [op for op in self.executing if op.finish_slot <= slot]
        self.executing = [op for op in self.executing
                          if op.finish_slot > slot]
        self.completed += len(finished)

        committed: list[Instruction] = []
        busy_targets: set[int] = set()
        for op in self.executing:
            busy_targets.update(op.instruction.targets)
        for idx, inst in enumerate(queue):
            if idx >= self.lookahead:
                break
            if set(inst.targets) & busy_targets:
                continue
            if self.try_commit(inst, slot):
                committed.append(inst)
                busy_targets.update(inst.targets)
            else:
                # Keep program order among conflicting instructions: a
                # later instruction may only jump ahead if it commutes
                # (disjoint targets) with everything still waiting.
                busy_targets.update(inst.targets)
        for inst in committed:
            queue.remove(inst)
        return len(finished)
