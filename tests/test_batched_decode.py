"""Certification suite for the cross-shot batched decode engine.

The contract: :func:`batched_cut_parities` / :func:`batched_decode` are
*bit-identical* to the per-shot ``greedy_cut_parity`` /
``greedy_decode_fast`` on every input (inputs outside the integer
engine's envelope run through the per-shot core, so the equality is
unconditional), and the kernels' ``decode="batched"`` campaigns equal
their ``decode="pershot"`` runs shot for shot.
"""

import subprocess
import sys

import numpy as np
import pytest

import repro.decoding.batched as batched_mod
from repro.decoding import (
    DistanceModel,
    ScratchArena,
    SyndromeLattice,
    batched_cut_parities,
    batched_decode,
    greedy_cut_parity,
    greedy_decode_fast,
)
from repro.noise import AnomalousRegion, PhenomenologicalNoise
from repro.sim import backend, bitops
from repro.sim.batch import (
    BatchShotRunner,
    EndToEndShotKernel,
    MatchingCache,
    MemoryShotKernel,
)


def _random_nodes(rng, d, n):
    return np.column_stack([
        rng.integers(0, d + 1, n), rng.integers(0, d - 1, n),
        rng.integers(0, d, n)])


def _random_model(rng, d):
    region = None if rng.random() < 0.4 else AnomalousRegion(
        int(rng.integers(0, max(1, d - 2))),
        int(rng.integers(0, max(1, d - 1))),
        int(rng.integers(1, 5)), t_lo=int(rng.integers(0, 8)),
        t_hi=None if rng.random() < 0.5 else int(rng.integers(8, 100_000)))
    w_ano = 0.0 if rng.random() < 0.7 else float(rng.random())
    return DistanceModel(d, region, w_ano)


class TestBatchedEquivalence:
    """The engine equals the per-shot core bit for bit."""

    def _assert_chunk(self, model, nodes_list, arena):
        ref = np.array([greedy_cut_parity(model, x) for x in nodes_list],
                       dtype=np.int8)
        got = batched_cut_parities(model, nodes_list, arena=arena)
        assert np.array_equal(ref, got)
        full = batched_decode(model, nodes_list, arena=arena)
        for nodes, res in zip(nodes_list, full, strict=True):
            exp = greedy_decode_fast(model, nodes)
            assert exp.matches == res.matches
            assert exp.weight == pytest.approx(res.weight, abs=1e-12)

    def test_property_sweep(self):
        """Random node sets, region on/off, w_ano zero and nonzero,
        empty shots, duplicates — chunk sizes not divisible by any
        bucket size."""
        rng = np.random.default_rng(20260728)
        arena = ScratchArena()
        for _ in range(60):
            d = int(rng.integers(3, 15))
            model = _random_model(rng, d)
            nodes_list = [_random_nodes(rng, d, int(n))
                          for n in rng.integers(0, 25, int(rng.integers(0, 40)))]
            self._assert_chunk(model, nodes_list, arena)

    def test_acceptance_paths_agree(self):
        """Vectorized rounds, the sequential tail scan and the hybrid
        all produce the identical matching."""
        rng = np.random.default_rng(7)
        arena = ScratchArena()
        d = 9
        model = DistanceModel(d, AnomalousRegion.centered(d, 3), 0.0)
        nodes_list = [_random_nodes(rng, d, int(n))
                      for n in rng.integers(0, 25, 30)]
        default = batched_mod._SCAN_TAIL
        try:
            outs = []
            for tail in (0, default, 10**9):
                batched_mod._SCAN_TAIL = tail
                outs.append(batched_cut_parities(model, nodes_list,
                                                 arena=arena))
            assert np.array_equal(outs[0], outs[1])
            assert np.array_equal(outs[0], outs[2])
            ref = np.array([greedy_cut_parity(model, x)
                            for x in nodes_list], dtype=np.int8)
            assert np.array_equal(outs[0], ref)
        finally:
            batched_mod._SCAN_TAIL = default

    def test_negative_coordinates_fall_back_exactly(self):
        model = DistanceModel(7)
        nodes = np.array([[-1, 2, 3], [0, 1, 1], [2, 3, 3]])
        got = batched_cut_parities(model, [nodes])
        assert got[0] == greedy_cut_parity(model, nodes)

    def test_huge_explicit_t_hi_stays_exact(self):
        model = DistanceModel(9, AnomalousRegion(1, 1, 3, t_hi=100_000), 0.0)
        nodes = np.array([[0, 0, 0], [0, 7, 8], [5, 3, 3], [5, 4, 3]])
        assert batched_cut_parities(model, [nodes])[0] == \
            greedy_cut_parity(model, nodes)
        res = batched_decode(model, [nodes])[0]
        assert res.matches == greedy_decode_fast(model, nodes).matches

    def test_region_window_after_run_end(self):
        """t_lo beyond every node's time: the box collapses onto the
        shot's last layer (the per-shot open-window semantics)."""
        model = DistanceModel(6, AnomalousRegion(1, 4, 3, t_lo=2), 0.0)
        nodes = np.array([[0, 3, 4]])
        assert batched_cut_parities(model, [nodes])[0] == \
            greedy_cut_parity(model, nodes)

    def test_wide_distance_uses_sorted_levels(self):
        """d > 64 exercises the argsort level path."""
        rng = np.random.default_rng(3)
        d = 80
        model = _random_model(rng, d)
        nodes_list = [_random_nodes(rng, d, int(n))
                      for n in rng.integers(0, 20, 12)]
        ref = np.array([greedy_cut_parity(model, x) for x in nodes_list],
                       dtype=np.int8)
        assert np.array_equal(
            ref, batched_cut_parities(model, nodes_list))

    def test_empty_chunk_and_empty_shots(self):
        model = DistanceModel(5)
        assert len(batched_cut_parities(model, [])) == 0
        out = batched_cut_parities(
            model, [np.zeros((0, 3), dtype=np.int64)])
        assert out[0] == 0
        res = batched_decode(model, [np.zeros((0, 3), dtype=np.int64)])[0]
        assert res.matches == []

    def test_high_density_cluster(self):
        """A p_ano = 0.5 box cluster (the Fig. 8 hot regime)."""
        d = 9
        region = AnomalousRegion.centered(d, 4)
        noise = PhenomenologicalNoise(d, 2.5e-2, 0.5, region)
        lattice = SyndromeLattice(d)
        v, h, m = noise.sample_batch(70, d, np.random.default_rng(5))
        nodes_list = lattice.detection_events_batch(v, h, m)
        for model in (DistanceModel(d), DistanceModel(d, region, 0.0)):
            ref = np.array([greedy_cut_parity(model, x)
                            for x in nodes_list], dtype=np.int8)
            assert np.array_equal(
                ref, batched_cut_parities(model, nodes_list))


class TestBatchDistancePrimitives:
    """pairwise_batch / boundary_batch equal the per-shot primitives
    shot for shot, including weighted regions and per-shot box tops."""

    def test_batch_primitives_match_per_shot(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            d = int(rng.integers(3, 13))
            S = int(rng.integers(1, 7))
            n = int(rng.integers(1, 14))
            model = _random_model(rng, d)
            stack = np.stack([_random_nodes(rng, d, n) for _ in range(S)])
            pb = model.pairwise_batch(stack)
            bb, sb = model.boundary_batch(stack)
            for s in range(S):
                assert np.array_equal(pb[s], model.pairwise(stack[s]))
                bd, sd = model.boundary(stack[s])
                assert np.array_equal(bb[s], bd)
                assert np.array_equal(sb[s], sd)

    def test_open_window_box_top_is_per_shot(self):
        """Shots with different t ranges clip the box independently."""
        model = DistanceModel(6, AnomalousRegion(1, 1, 3, t_lo=2), 0.5)
        stack = np.stack([
            np.array([[0, 3, 2], [0, 1, 4]]),    # t_max < t_lo
            np.array([[5, 3, 2], [4, 1, 4]]),    # window open
        ]).astype(float)
        pb = model.pairwise_batch(stack)
        bb, sb = model.boundary_batch(stack)
        for s in range(2):
            assert np.array_equal(pb[s], model.pairwise(stack[s]))
            bd, sd = model.boundary(stack[s])
            assert np.array_equal(bb[s], bd)
            assert np.array_equal(sb[s], sd)


class TestScratchArena:
    def test_buffers_reused_across_chunks(self):
        arena = ScratchArena()
        a = arena.take("x", 100, np.int8)
        b = arena.take("x", 64, np.int8)
        assert a.base is b.base  # same backing buffer, sliced
        c = arena.take("x", 1000, np.int8)
        assert c.base is not a.base  # grew
        assert arena.take("x", 500, np.int8).base is c.base

    def test_dtype_keys_are_distinct(self):
        arena = ScratchArena()
        a = arena.take("x", 10, np.int8)
        b = arena.take("x", 10, np.int16)
        assert a.dtype != b.dtype
        assert len(arena) == 2
        assert arena.nbytes >= 30

    def test_engine_reuses_arena_buffers(self):
        rng = np.random.default_rng(0)
        arena = ScratchArena()
        model = DistanceModel(9)
        nodes_list = [_random_nodes(rng, 9, 12) for _ in range(20)]
        batched_cut_parities(model, nodes_list, arena=arena)
        held = arena.nbytes
        batched_cut_parities(model, nodes_list, arena=arena)
        assert arena.nbytes == held  # steady state allocates nothing new


class TestBulkShotNodes:
    @pytest.mark.parametrize("shots", [1, 37, 64, 130])
    def test_bulk_equals_per_shot(self, shots):
        noise = PhenomenologicalNoise(5, 0.05, 0.5,
                                      AnomalousRegion.centered(5, 2))
        lattice = SyndromeLattice(5)
        v, h, m = noise.sample_batch_packed(shots, 5,
                                            np.random.default_rng(2))
        coords, vals, bounds = lattice.detection_events_packed(v, h, m)
        nodes, offsets = lattice.shot_nodes_bulk(coords, vals, shots)
        assert offsets[0] == 0 and offsets[-1] == len(nodes)
        for s in range(shots):
            assert np.array_equal(
                nodes[offsets[s]:offsets[s + 1]],
                lattice.shot_nodes(coords, vals, bounds, s)), s

    def test_empty_stream(self):
        lattice = SyndromeLattice(3)
        coords = np.zeros((0, 4), dtype=np.int64)
        vals = np.zeros(0, dtype=np.uint64)
        nodes, offsets = lattice.shot_nodes_bulk(coords, vals, 5)
        assert nodes.shape == (0, 3)
        assert np.array_equal(offsets, np.zeros(6, dtype=np.int64))


class TestKernelDecodeModes:
    """decode="batched" campaigns equal decode="pershot" bit for bit."""

    REGIONS = [None, AnomalousRegion(0, 0, 2, t_lo=1, t_hi=3),
               AnomalousRegion(1, 1, 2, t_lo=2)]

    @pytest.mark.parametrize("shots", [37, 130])
    def test_memory_kernel_modes(self, shots):
        for region in self.REGIONS:
            for informed in (False, True):
                outs = {}
                for mode in ("pershot", "batched"):
                    kernel = MemoryShotKernel(5, 0.04, region=region,
                                              informed=informed,
                                              decode=mode)
                    kernel.prepare()
                    outs[mode] = kernel.run_batch_packed(
                        shots, np.random.default_rng(7))
                assert np.array_equal(outs["pershot"], outs["batched"]), \
                    (shots, region, informed)

    def test_memory_kernel_float_path_matches(self):
        kernel = MemoryShotKernel(5, 0.04,
                                  region=AnomalousRegion.centered(5, 2),
                                  informed=True)
        kernel.prepare()
        a = kernel.run_batch(70, np.random.default_rng(3))
        b = kernel.run_batch_packed(70, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_rejects_unknown_decode_mode(self):
        with pytest.raises(ValueError):
            MemoryShotKernel(5, 0.04, decode="magic")
        with pytest.raises(ValueError):
            EndToEndShotKernel(5, 0.01, 0.5, anomaly_size=2, onset=10,
                               cycles=30, c_win=10, n_th=3, alpha=0.01,
                               decode="magic")

    @pytest.mark.parametrize("distance", [3, 5])
    def test_endtoend_kernel_modes(self, distance):
        outs = {}
        for mode in ("pershot", "batched"):
            kernel = EndToEndShotKernel(distance, 0.01, 0.5,
                                        anomaly_size=2, onset=30,
                                        cycles=70, c_win=25, n_th=3,
                                        alpha=0.01, decode=mode)
            kernel.prepare()
            outs[mode] = kernel.run_batch_packed(
                37, np.random.default_rng(3))
        assert np.array_equal(outs["pershot"], outs["batched"])

    def test_runner_campaign_bit_equal_across_modes(self):
        fails = {}
        for mode in ("pershot", "batched"):
            kernel = MemoryShotKernel(
                7, 2.5e-2, region=AnomalousRegion.centered(7, 3),
                informed=True, decode=mode)
            res = BatchShotRunner(kernel, batch_size=48, seed=19,
                                  packing="bits").run(200)
            fails[mode] = res.outcomes
        assert np.array_equal(fails["pershot"], fails["batched"])


class TestLRUMatchingCache:
    def test_lru_eviction_order(self):
        cache = MatchingCache(max_entries=2)
        cache.put(b"a", 0)
        cache.put(b"b", 1)
        assert cache.get(b"a") == 0  # refreshes "a"
        cache.put(b"c", 1)  # evicts "b", the least recently used
        assert cache.get(b"b") is None
        assert cache.get(b"a") == 0
        assert cache.get(b"c") == 1
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_stats_counting(self):
        cache = MatchingCache()
        nodes = np.array([[0, 1, 2], [1, 1, 3]])
        assert cache.parity(nodes, lambda n: 1) == 1
        assert cache.parity(nodes, lambda n: 1) == 1
        assert cache.stats() == (1, 1, 0)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MatchingCache(max_entries=0)

    def test_batched_path_hit_accounting_matches_sequential(self):
        """The batched chunk dedup counts hits exactly like the
        sequential per-shot lookups would (below the LRU capacity;
        saturated caches may evict in a different order)."""
        rng = np.random.default_rng(4)
        model = DistanceModel(5)
        pool = [_random_nodes(rng, 5, int(rng.integers(1, 5)))
                for _ in range(6)]
        nodes_list = [pool[int(rng.integers(0, len(pool)))]
                      for _ in range(40)]
        seq_cache = MatchingCache()
        seq = np.array(
            [seq_cache.parity(x, lambda n: greedy_cut_parity(model, n))
             for x in nodes_list], dtype=np.int8)
        bat_cache = MatchingCache()
        bat = batched_cut_parities(model, nodes_list, cache=bat_cache)
        assert np.array_equal(seq, bat)
        assert bat_cache.stats() == seq_cache.stats()

    def test_runner_surfaces_misses_and_evictions(self):
        runner = BatchShotRunner(MemoryShotKernel(5, 0.005), seed=3)
        result = runner.run(2000)
        assert result.cache_hits > 0
        assert result.cache_misses > 0
        assert result.cache_evictions == 0  # far below capacity

    def test_pool_merges_cache_stats(self):
        result = BatchShotRunner(MemoryShotKernel(5, 0.005), workers=2,
                                 batch_size=500, seed=3).run(2000)
        assert result.cache_hits > 0
        assert result.cache_misses > 0

    def test_bounded_campaign_stays_exact(self):
        """A tiny LRU capacity must never change outcomes."""
        kernel_small = MemoryShotKernel(5, 0.01)
        kernel_small.prepare()
        kernel_small.cache = MatchingCache(max_entries=4)
        kernel_off = MemoryShotKernel(5, 0.01, cache_matchings=False)
        kernel_off.prepare()
        a = kernel_small.run_batch_packed(300, np.random.default_rng(9))
        b = kernel_off.run_batch_packed(300, np.random.default_rng(9))
        assert np.array_equal(a, b)
        assert kernel_small.cache.evictions > 0


class TestBackendSeam:
    def test_default_backend_is_numpy(self):
        assert backend.name == "numpy"
        assert backend.xp is np

    def test_numpy_request_is_exact_current_path(self):
        assert backend.select_backend("numpy") == "numpy"
        assert backend.xp is np
        assert backend.get_array_module(np.zeros(3)) is np
        a = np.arange(5)
        assert backend.to_numpy(a) is a

    def test_unknown_backend_warns_and_falls_back(self):
        with pytest.warns(RuntimeWarning):
            assert backend.select_backend("tpu") == "numpy"
        assert backend.xp is np

    def test_cupy_absent_falls_back_with_warning(self):
        """REPRO_BACKEND=cupy on a box without CuPy degrades cleanly."""
        have_cupy = True
        try:
            import cupy  # noqa: F401
        except ImportError:
            have_cupy = False
        if have_cupy:  # pragma: no cover - GPU CI only
            pytest.skip("CuPy present; fallback path not reachable")
        with pytest.warns(RuntimeWarning):
            assert backend.select_backend("cupy") == "numpy"
        assert backend.xp is np

    def test_env_resolution_in_subprocess(self):
        """The documented knob end to end: a fresh interpreter."""
        code = ("import repro.sim.backend as b; print(b.name)")
        for env_val, expect in (("numpy", "numpy"), ("", "numpy")):
            out = subprocess.run(
                [sys.executable, "-W", "ignore", "-c", code],
                capture_output=True, text=True,
                env={"PYTHONPATH": "src", "REPRO_BACKEND": env_val,
                     "PATH": "/usr/bin:/bin"},
                cwd=str(__import__("pathlib").Path(__file__).parent.parent))
            assert out.stdout.strip() == expect, out.stderr

    def test_xor_helpers_match_ufuncs(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**63, (5, 7, 3), dtype=np.uint64)
        for axis in (0, 1, 2):
            assert np.array_equal(
                backend.xor_accumulate(words, axis=axis),
                np.bitwise_xor.accumulate(words, axis=axis))
            assert np.array_equal(
                backend.xor_reduce(words, axis=axis),
                np.bitwise_xor.reduce(words, axis=axis))

    def test_generic_popcount_matches_fast_path(self):
        rng = np.random.default_rng(1)
        words = rng.integers(0, 2**63, 257, dtype=np.uint64)
        assert np.array_equal(bitops._popcount_generic(words),
                              bitops.popcount(words))
