"""Monte-Carlo statistics helpers: binomial estimates and intervals."""

from __future__ import annotations

import math
from dataclasses import dataclass


def wilson_interval(successes: int, trials: int,
                    z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Robust near 0 and 1, which is where logical error rates live.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    phat = successes / trials
    denom = 1.0 + z * z / trials
    centre = phat + z * z / (2 * trials)
    margin = z * math.sqrt(
        phat * (1.0 - phat) / trials + z * z / (4 * trials * trials))
    return max(0.0, (centre - margin) / denom), min(1.0, (centre + margin) / denom)


@dataclass(frozen=True)
class BinomialEstimate:
    """A counted proportion with its uncertainty."""

    successes: int
    trials: int

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if not 0 <= self.successes <= self.trials:
            raise ValueError("successes out of range")

    @property
    def mean(self) -> float:
        return self.successes / self.trials

    @property
    def std_error(self) -> float:
        """Standard error of the proportion, ``sqrt(p (1 - p) / n)``.

        An older revision silently floored ``p (1 - p)`` at ``1 / n``.
        Since ``p (1 - p) = (k / n)(1 - k / n) < 1 / n`` only for
        ``k in {0, 1, n - 1, n}``, that floor was a no-op over the whole
        interior — misleading anyone reading the formula — while at the
        corners ``k in {0, n}`` it reported the arbitrary value ``1 / n``
        with no statistical meaning.  Now the interior uses the standard
        estimator untouched, and at the degenerate corners, where the
        plug-in estimator collapses to zero, the half-width of the
        Wilson score interval (:attr:`interval`) is returned instead,
        so the uncertainty stays consistent with the interval this
        class already reports.
        """
        if 0 < self.successes < self.trials:
            p = self.mean
            return math.sqrt(p * (1.0 - p) / self.trials)
        lo, hi = wilson_interval(self.successes, self.trials)
        return (hi - lo) / 2.0

    @property
    def interval(self) -> tuple[float, float]:
        return wilson_interval(self.successes, self.trials)

    def __add__(self, other: "BinomialEstimate") -> "BinomialEstimate":
        return BinomialEstimate(self.successes + other.successes,
                                self.trials + other.trials)
