"""Reference distributed transport: a fault-tolerant filesystem work queue.

The multi-host story of :mod:`repro.campaigns` rests on three facts the
engine already guarantees: a chunk's outcome is a pure function of
``(seed, batch_size, chunk index)`` (:func:`repro.sim.batch.chunk_plan`),
a kernel is rebuilt from spec JSON alone
(:func:`repro.campaigns.runner.shot_engine`), and a finished chunk is one
CRC-stamped wire record (:func:`repro.campaigns.checkpoint.chunk_record`).
This module adds the part that survives the real world — workers that
crash, stall, get preempted, or write garbage:

* :class:`WorkQueueExecutor` — the campaign-side supervisor.  Chunks are
  published as *task files*; finished chunks come back as CRC-checked
  *result records*; the robustness envelope is lease-expiry re-dispatch,
  per-attempt timeouts, retry with deterministic (seeded) exponential
  backoff + jitter, poison-chunk quarantine after ``max_attempts``, and
  a graceful-degradation drain that finishes remaining chunks inline
  when the worker pool vanishes — a campaign always completes.
* :class:`Worker` / :func:`serve` — the worker side, also reachable as
  ``python -m repro worker <queue_dir>``.  Workers claim tasks by
  atomically renaming them into the lease area (`os.replace`; exactly
  one claimant wins), heartbeat while alive, and deliver results with
  write-to-temp + atomic rename.

Queue directory layout (all writes atomic; every scan sorted)::

    <queue>/tasks/<spec_hash>.c<index>.a<attempt>.json   claimable work
    <queue>/leases/<task name>.<worker id>               claimed work
    <queue>/results/<spec_hash>.c<index>.json            chunk wire records
    <queue>/quarantine/<task name>                       poisoned chunks
    <queue>/workers/<worker id>.json                     heartbeats
    <queue>/stop                                         drain sentinel

**Delivery semantics are at-least-once; the merge is idempotent by chunk
index.**  A re-dispatched chunk may complete twice (a stalled worker
finishing late plus its replacement), but any *valid* record for a chunk
index is *the* record — placement independence makes recomputation
byte-identical — so the supervisor keeps the first valid record per
index and counts the rest as duplicates.  That invariant is chaos-tested
in ``tests/test_distributed.py`` (see docs/CONTRACTS.md).

Timestamps (heartbeats, lease ages, backoff deadlines) come from an
injectable ``clock`` — ``time.perf_counter`` by default, which is
system-wide on the platforms the reference transport targets (one
filesystem implies one host or one coherent clock domain); the
deterministic chaos harness (:mod:`repro.campaigns.faults`) swaps in a
virtual clock.  Clock values steer scheduling only — they never reach
outcome payloads, so results stay bit-reproducible (reprolint RL005
covers this module).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Union

import numpy as np

from repro.campaigns.checkpoint import (CheckpointError, chunk_record,
                                        decode_chunk)
from repro.campaigns.executors import DistributedExecutor
from repro.campaigns.specs import spec_from_dict, spec_hash, spec_to_dict
from repro.sim.batch import _batch_fn, _cache_stats, chunk_plan

#: Task-file format version (bump on incompatible changes).
TASK_FORMAT = 1

#: A monotonically increasing seconds source.
Clock = Callable[[], float]


class WorkQueueError(RuntimeError):
    """The work queue cannot make progress (and inline fallback is off)."""


class WorkerCrashed(RuntimeError):
    """A worker died mid-task (raised by injected faults; the abandoned
    lease is recovered by the supervisor's expiry sweep)."""


def _atomic_write_text(path: Path, text: str, fsync: bool = False) -> None:
    """Publish ``text`` at ``path`` via write-to-temp + atomic rename."""
    tmp = path.parent / f"{path.name}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)


def _atomic_write_json(path: Path, doc: dict, fsync: bool = False) -> None:
    _atomic_write_text(path, json.dumps(doc) + "\n", fsync=fsync)


def backoff_delay(spec_digest: str, index: int, attempt: int,
                  base_s: float, cap_s: float) -> float:
    """Deterministic exponential backoff with seeded jitter.

    Attempt ``n`` (n >= 2) waits ``min(cap, base * 2**(n-2))`` scaled by
    a jitter factor in ``[0.5, 1.5)`` derived from SHA-256 of
    ``(spec hash, chunk index, attempt)`` — no wall-clock entropy, so a
    replayed fault schedule re-dispatches at identical offsets.
    """
    raw = min(cap_s, base_s * (2.0 ** max(0, attempt - 2)))
    digest = hashlib.sha256(
        f"{spec_digest}:{index}:{attempt}".encode("utf-8")).digest()
    jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return raw * jitter


class WorkQueue:
    """Path bookkeeping shared by the supervisor and the workers."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.tasks = self.root / "tasks"
        self.leases = self.root / "leases"
        self.results = self.root / "results"
        self.quarantine = self.root / "quarantine"
        self.workers = self.root / "workers"
        self.stop_file = self.root / "stop"

    def ensure(self) -> None:
        for directory in (self.tasks, self.leases, self.results,
                          self.quarantine, self.workers):
            directory.mkdir(parents=True, exist_ok=True)

    def stopped(self) -> bool:
        return self.stop_file.exists()

    def request_stop(self) -> None:
        _atomic_write_text(self.stop_file, "stop\n")

    # -- file-name grammar -------------------------------------------------
    @staticmethod
    def task_name(digest: str, index: int, attempt: int) -> str:
        return f"{digest}.c{index:06d}.a{attempt:03d}.json"

    @staticmethod
    def parse_task_name(name: str) -> tuple[str, int, int]:
        """``(spec_hash, index, attempt)`` from a task/lease stem."""
        stem, _, _ = name.partition(".json")
        digest, c_part, a_part = stem.split(".")
        if not (c_part.startswith("c") and a_part.startswith("a")):
            raise ValueError(f"not a task name: {name!r}")
        return digest, int(c_part[1:]), int(a_part[1:])

    @staticmethod
    def result_name(digest: str, index: int) -> str:
        return f"{digest}.c{index:06d}.json"

    @staticmethod
    def parse_result_name(name: str) -> tuple[str, int]:
        """``(spec_hash, index)`` from a result file name."""
        stem, _, _ = name.partition(".json")
        digest, _, c_part = stem.rpartition(".")
        if not digest or not c_part.startswith("c"):
            raise ValueError(f"not a result name: {name!r}")
        return digest, int(c_part[1:])

    def result_path(self, digest: str, index: int) -> Path:
        return self.results / self.result_name(digest, index)

    def task_files(self, digest: Optional[str] = None) -> list[Path]:
        pattern = f"{digest}.c*.json" if digest else "*.json"
        return sorted(self.tasks.glob(pattern))

    def lease_files(self, digest: Optional[str] = None) -> list[Path]:
        pattern = f"{digest}.c*" if digest else "*"
        return sorted(self.leases.glob(pattern))

    def result_files(self, digest: Optional[str] = None) -> list[Path]:
        pattern = f"{digest}.c*.json" if digest else "*.json"
        return sorted(self.results.glob(pattern))


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class Worker:
    """One queue worker: claim a task, rebuild the kernel, deliver.

    ``step()`` performs one unit of work and is the only entry point the
    serving loop (:func:`serve`) and the deterministic chaos harness
    (:class:`repro.campaigns.faults.WorkerPoolSim`) need.  Work is a
    resumable three-phase machine (claimed → compute → deliver) so an
    injected stall can yield control mid-chunk exactly where a
    preempted real worker would lose it.

    Kernels (and their decoders/caches) are built once per
    ``(spec hash, batch size)`` and reused across chunks, mirroring the
    process-pool workers.  The chunk seed is re-derived on this side via
    :func:`repro.sim.batch.chunk_plan` — the placement-independence
    contract — and the result is the same CRC-stamped record a
    checkpoint shard would hold.
    """

    def __init__(self, queue: Union[str, Path],
                 worker_id: Optional[str] = None, *,
                 clock: Optional[Clock] = None,
                 faults: Optional[Any] = None):
        self.queue = WorkQueue(queue)
        self.queue.ensure()
        self.worker_id = worker_id if worker_id is not None \
            else f"w{os.getpid()}"
        if not self.worker_id or any(c in self.worker_id for c in "./\\"):
            raise ValueError(f"bad worker id {self.worker_id!r}")
        self.clock: Clock = clock if clock is not None else time.perf_counter
        self.faults = faults
        self.chunks_done = 0
        self._engines: dict[tuple[str, int], tuple] = {}
        self._resume: Optional[tuple] = None
        self._stall_until: Optional[float] = None
        self._redeliver: Optional[tuple[Path, str]] = None

    @property
    def busy(self) -> bool:
        """Mid-chunk (stalled); a busy real worker cannot heartbeat."""
        return self._resume is not None

    def heartbeat(self) -> None:
        """Publish liveness (skipped by an injected ``heartbeat`` fault)."""
        if self.faults is not None:
            event = self.faults.fire("heartbeat", chunk=None, attempt=None,
                                     worker=self.worker_id)
            if event is not None and event.action == "skip":
                return
        _atomic_write_json(self.queue.workers / f"{self.worker_id}.json",
                           {"worker": self.worker_id,
                            "t": float(self.clock())})

    def step(self) -> bool:
        """One unit of queue work; ``False`` when the queue had none."""
        if self._stall_until is not None:
            if self.clock() < self._stall_until:
                return True  # still wedged mid-chunk
            self._stall_until = None
        if self._redeliver is not None:
            path, text = self._redeliver
            self._redeliver = None
            _atomic_write_text(path, text)
            return True
        if self._resume is not None:
            phase, lease, doc, payload = self._resume
            self._resume = None
        else:
            lease = self._claim()
            if lease is None:
                return False
            try:
                doc = json.loads(lease.read_text(encoding="utf-8"))
            except ValueError:
                # A torn task file cannot happen under the atomic-write
                # protocol; treat it as poison and leave it leased so
                # the supervisor's expiry sweep re-dispatches.
                return True
            phase, payload = "claimed", None
        while True:
            if phase == "claimed":
                if self._fault("claim", doc, lease, None, "compute"):
                    return True
                phase = "compute"
            elif phase == "compute":
                payload = self._compute(doc)
                if self._fault("computed", doc, lease, payload, "deliver"):
                    return True
                phase = "deliver"
            else:
                self._deliver(doc, lease, payload)
                self.chunks_done += 1
                return True

    # ------------------------------------------------------------------
    def _claim(self) -> Optional[Path]:
        """Atomically claim the first available task (rename wins)."""
        for task in self.queue.task_files():
            lease = self.queue.leases / f"{task.name}.{self.worker_id}"
            try:
                os.replace(task, lease)
            except FileNotFoundError:
                continue  # lost the race to another worker
            return lease
        return None

    def _fault(self, point: str, doc: dict, lease: Path,
               payload: Optional[tuple], next_phase: str) -> bool:
        """Fire an injection point; True when the step must yield."""
        if self.faults is None:
            return False
        event = self.faults.fire(point, chunk=doc["index"],
                                 attempt=doc["attempt"],
                                 worker=self.worker_id)
        if event is None:
            return False
        if event.action == "crash":
            raise WorkerCrashed(
                f"worker {self.worker_id} crashed at {point} "
                f"(chunk {doc['index']}, injected)")
        if event.action == "stall":
            if hasattr(self.clock, "advance"):
                # Virtual time: wedge mid-chunk until the clock (driven
                # by the harness) passes the stall, exactly like a
                # preempted worker — no heartbeats, lease going stale,
                # work resuming late.
                self._resume = (next_phase, lease, doc, payload)
                self._stall_until = self.clock() + event.seconds
                return True
            time.sleep(event.seconds)
            return False
        raise ValueError(
            f"fault action {event.action!r} is not valid at {point!r}")

    def _compute(self, doc: dict) -> tuple[np.ndarray, tuple[int, int, int]]:
        if doc.get("format") != TASK_FORMAT:
            raise CheckpointError(
                f"unsupported task format {doc.get('format')!r}")
        digest, batch_size = doc["spec_hash"], int(doc["batch_size"])
        engine = self._engines.get((digest, batch_size))
        if engine is None:
            from repro.campaigns.runner import shot_engine
            spec = spec_from_dict(doc["spec"])
            if spec_hash(spec) != digest:
                raise CheckpointError(
                    f"task {doc['index']} spec hashes to "
                    f"{spec_hash(spec)}, not {digest}")
            kernel, shots, _ = shot_engine(spec)
            kernel.prepare()
            run = _batch_fn(kernel, spec.packing)
            plan = chunk_plan(shots, batch_size, spec.seed)
            engine = (kernel, run, plan)
            self._engines[(digest, batch_size)] = engine
        kernel, run, plan = engine
        index = int(doc["index"])
        if index >= len(plan) or plan[index][0] != doc["size"]:
            raise CheckpointError(
                f"task {index} does not fit the chunk plan "
                f"(size {doc['size']} vs plan)")
        size, child = plan[index]
        before = _cache_stats(kernel)
        outcome = run(size, np.random.default_rng(child))
        after = _cache_stats(kernel)
        stats = tuple(a - b for a, b in zip(after, before, strict=True))
        return outcome, stats

    def _deliver(self, doc: dict, lease: Path,
                 payload: tuple[np.ndarray, tuple[int, int, int]]) -> None:
        outcome, stats = payload
        record = chunk_record(doc["index"], outcome, stats)
        record["spec_hash"] = doc["spec_hash"]
        record["attempt"] = doc["attempt"]
        record["worker"] = self.worker_id
        text = json.dumps(record) + "\n"
        path = self.queue.result_path(doc["spec_hash"], doc["index"])
        event = None
        if self.faults is not None:
            event = self.faults.fire("write", chunk=doc["index"],
                                     attempt=doc["attempt"],
                                     worker=self.worker_id)
        if event is not None and event.action == "crash":
            raise WorkerCrashed(
                f"worker {self.worker_id} crashed writing chunk "
                f"{doc['index']} (injected)")
        if event is not None and event.action == "torn":
            # A torn write lands *directly* at the final path, bypassing
            # the atomic-rename protocol — the failure mode the CRC and
            # the supervisor's recovery exist for.
            cut = max(1, int(len(text) * event.fraction))
            path.write_text(text[:cut], encoding="utf-8")
        elif event is not None and event.action == "corrupt":
            bad = dict(record)
            bad["crc"] = int(bad["crc"]) + 1
            _atomic_write_text(path, json.dumps(bad) + "\n")
        else:
            from repro import config
            _atomic_write_text(path, text, fsync=config.checkpoint_fsync())
            if event is not None and event.action == "duplicate":
                self._redeliver = (path, text)
        lease.unlink(missing_ok=True)


def serve(queue_dir: Union[str, Path], worker_id: Optional[str] = None, *,
          poll_s: float = 0.2, max_chunks: Optional[int] = None,
          idle_exit_s: Optional[float] = None,
          faults: Optional[Any] = None,
          clock: Optional[Clock] = None) -> int:
    """Serve a queue until stopped; returns the number of chunks done.

    The loop behind ``python -m repro worker``: heartbeat, claim, run,
    deliver; exit on the queue's ``stop`` sentinel, after ``max_chunks``
    chunks, or after ``idle_exit_s`` seconds without work.
    """
    worker = Worker(queue_dir, worker_id, clock=clock, faults=faults)
    idle_s = 0.0
    while not worker.queue.stopped():
        worker.heartbeat()
        if worker.step():
            idle_s = 0.0
            if max_chunks is not None and worker.chunks_done >= max_chunks:
                break
            continue
        if idle_exit_s is not None and idle_s >= idle_exit_s:
            break
        time.sleep(poll_s)
        idle_s += poll_s
    return worker.chunks_done


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Binding:
    """The campaign context ``bind()`` hands to ``run_chunks``."""

    spec: Any
    spec_dict: dict
    digest: str
    batch_size: int
    shots: int
    indices: list


class WorkQueueExecutor(DistributedExecutor):
    """Supervise a campaign over the filesystem work queue.

    Dispatch is at-least-once and the merge is idempotent by chunk
    index; see the module docstring for the full failure semantics.
    Robustness knobs:

    ``lease_s``
        A claimed chunk whose worker has neither heartbeat nor finished
        for this long is considered lost and re-dispatched.  Must
        comfortably exceed one chunk's runtime.
    ``attempt_timeout_s``
        Hard per-attempt ceiling (default ``8 * lease_s``): even a
        heartbeating worker loses the lease after this long (the
        stuck-but-alive straggler).
    ``max_attempts``
        Attempts (initial + re-dispatches) before a chunk is declared
        poison, quarantined away from workers, and computed inline.
    ``backoff_base_s`` / ``backoff_cap_s``
        Deterministic exponential backoff + jitter between attempts
        (:func:`backoff_delay`).
    ``worker_grace_s``
        How long to wait for a first worker before declaring the pool
        vanished.
    ``inline_fallback``
        When the pool vanishes (never appeared, or every worker went
        stale with no live leases), drain the remaining chunks inline
        so the campaign completes; ``False`` raises
        :class:`WorkQueueError` instead.
    ``clock`` / ``idle_hook``
        Deterministic-test seams: the time source, and what to do when
        a poll found nothing (default: sleep ``poll_s``).  The chaos
        harness passes a virtual clock and pumps simulated workers from
        the idle hook.
    """

    name = "work-queue"

    def __init__(self, queue_dir: Union[str, Path], *,
                 lease_s: float = 30.0,
                 poll_s: float = 0.05,
                 max_attempts: int = 3,
                 backoff_base_s: float = 0.25,
                 backoff_cap_s: float = 4.0,
                 worker_grace_s: float = 5.0,
                 attempt_timeout_s: Optional[float] = None,
                 inline_fallback: bool = True,
                 clock: Optional[Clock] = None,
                 idle_hook: Optional[Callable[[], None]] = None):
        if lease_s <= 0 or poll_s <= 0:
            raise ValueError("lease_s and poll_s must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if backoff_base_s < 0 or backoff_cap_s < backoff_base_s:
            raise ValueError("need 0 <= backoff_base_s <= backoff_cap_s")
        self.queue = WorkQueue(queue_dir)
        self.lease_s = float(lease_s)
        self.poll_s = float(poll_s)
        self.max_attempts = int(max_attempts)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.worker_grace_s = float(worker_grace_s)
        self.attempt_timeout_s = (float(attempt_timeout_s)
                                  if attempt_timeout_s is not None
                                  else 8.0 * float(lease_s))
        self.inline_fallback = bool(inline_fallback)
        self.clock: Clock = clock if clock is not None else time.perf_counter
        self.idle_hook = idle_hook
        self._bound: Optional[_Binding] = None
        self._accounting: Optional[dict] = None

    def describe(self) -> str:
        return f"{self.name}({self.queue.root})"

    def stop_workers(self) -> None:
        """Ask every worker serving this queue to exit."""
        self.queue.request_stop()

    def bind(self, spec, *, batch_size: int, shots: int,
             indices: list) -> None:
        self._bound = _Binding(spec=spec, spec_dict=spec_to_dict(spec),
                               digest=spec_hash(spec),
                               batch_size=int(batch_size), shots=int(shots),
                               indices=list(indices))

    def accounting(self) -> Optional[dict]:
        return dict(self._accounting) if self._accounting else None

    def run_chunks(self, kernel, packing: str,
                   tasks: list) -> Iterator[tuple[np.ndarray, tuple]]:
        bound, self._bound = self._bound, None
        if bound is None:
            raise WorkQueueError(
                "WorkQueueExecutor needs the campaign context: run it "
                "through repro.campaigns.run (which calls bind()) rather "
                "than invoking run_chunks directly")
        if len(bound.indices) != len(tasks):
            raise WorkQueueError(
                f"bind() named {len(bound.indices)} chunks but "
                f"run_chunks received {len(tasks)}")
        supervisor = _Supervisor(self, kernel, packing, tasks, bound)
        self._accounting = supervisor.acct
        return supervisor.run()


class _Supervisor:
    """One campaign's dispatch/collect loop over the queue."""

    def __init__(self, executor: WorkQueueExecutor, kernel, packing: str,
                 tasks: list, bound: _Binding):
        self.ex = executor
        self.queue = executor.queue
        self.clock = executor.clock
        self.kernel = kernel
        self.packing = packing
        self.bound = bound
        self.task_by_index = dict(zip(bound.indices, tasks, strict=True))
        self.needed = frozenset(bound.indices)
        self.acct: dict = {
            "dispatched": 0, "re_dispatched": 0, "retried": 0,
            "expired_leases": 0, "corrupt_records": 0, "duplicates": 0,
            "quarantined": 0, "drained_inline": 0, "workers_seen": 0,
            "dead_workers": 0, "max_attempt": 0,
        }
        self.ready: dict[int, tuple[np.ndarray, tuple]] = {}
        self.consumed: set[int] = set()
        self.attempt: dict[int, int] = {}
        self.due: dict[int, tuple[float, int]] = {}
        self.lease_seen: dict[str, float] = {}
        self.worker_hb: dict[str, float] = {}
        self.drained = False
        self._saw_worker = False
        self._inline_run = None
        self.started = self.clock()

    # -- the loop ------------------------------------------------------
    def run(self) -> Iterator[tuple[np.ndarray, tuple]]:
        try:
            self.queue.ensure()
            self._scan_results()  # adopt records a killed supervisor left
            for index in self.bound.indices:
                if index not in self.ready:
                    self._dispatch(index, attempt=1)
            for index in self.bound.indices:
                while index not in self.ready:
                    progressed = self._scan_results()
                    self._reconcile()
                    if index not in self.ready and not progressed:
                        self._idle()
                self.consumed.add(index)
                yield self.ready.pop(index)
        finally:
            self._cleanup()

    def _idle(self) -> None:
        if self.ex.idle_hook is not None:
            self.ex.idle_hook()
        else:
            time.sleep(self.ex.poll_s)

    # -- dispatch ------------------------------------------------------
    def _dispatch(self, index: int, attempt: int) -> None:
        self.attempt[index] = attempt
        self.acct["dispatched"] += 1
        self.acct["max_attempt"] = max(self.acct["max_attempt"], attempt)
        size, _ = self.task_by_index[index]
        doc = {"format": TASK_FORMAT, "type": "task",
               "spec_hash": self.bound.digest,
               "spec": self.bound.spec_dict,
               "index": int(index), "size": int(size),
               "batch_size": self.bound.batch_size,
               "attempt": int(attempt)}
        name = self.queue.task_name(self.bound.digest, index, attempt)
        _atomic_write_json(self.queue.tasks / name, doc)

    def _note_lost(self, index: int, counter: str) -> None:
        """A chunk attempt failed; schedule the next one (or quarantine)."""
        if self.drained or index in self.ready or index in self.consumed:
            return
        if index in self.due:
            return  # already rescheduled
        self.acct[counter] += 1
        next_attempt = self.attempt.get(index, 0) + 1
        if next_attempt > self.ex.max_attempts:
            self._quarantine(index)
            return
        delay = backoff_delay(self.bound.digest, index, next_attempt,
                              self.ex.backoff_base_s, self.ex.backoff_cap_s)
        self.due[index] = (self.clock() + delay, next_attempt)

    def _quarantine(self, index: int) -> None:
        """A poison chunk: isolate it from workers, compute it inline."""
        self.acct["quarantined"] += 1
        self._remove_task_files(index)
        attempt = self.attempt.get(index, 0)
        size, _ = self.task_by_index[index]
        name = self.queue.task_name(self.bound.digest, index, attempt)
        _atomic_write_json(
            self.queue.quarantine / name,
            {"format": TASK_FORMAT, "type": "quarantine",
             "spec_hash": self.bound.digest, "index": int(index),
             "size": int(size), "attempts": int(attempt)})
        self._run_inline(index)

    # -- collect -------------------------------------------------------
    def _scan_results(self) -> bool:
        progressed = False
        for path in self.queue.result_files(self.bound.digest):
            try:
                _, index = WorkQueue.parse_result_name(path.name)
            except ValueError:
                continue
            if (index not in self.needed or index in self.ready
                    or index in self.consumed):
                self.acct["duplicates"] += 1
                path.unlink(missing_ok=True)
                continue
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
                if doc.get("spec_hash") != self.bound.digest:
                    raise CheckpointError(
                        f"{path}: record belongs to another spec")
                ridx, outcome, stats = decode_chunk(doc, str(path))
                if ridx != index:
                    raise CheckpointError(
                        f"{path}: record is for chunk {ridx}")
                if len(outcome) != self.task_by_index[index][0]:
                    raise CheckpointError(
                        f"{path}: record holds {len(outcome)} shots, "
                        f"expected {self.task_by_index[index][0]}")
            except (ValueError, CheckpointError):
                # Torn or corrupt delivery: drop it, retry the chunk.
                path.unlink(missing_ok=True)
                self._note_lost(index, "corrupt_records")
                continue
            path.unlink(missing_ok=True)
            self.ready[index] = (outcome, stats)
            self.due.pop(index, None)
            progressed = True
        return progressed

    # -- recovery ------------------------------------------------------
    def _reconcile(self) -> None:
        now = self.clock()
        self._read_heartbeats()
        if not self.drained:
            for index in sorted(self.due):
                due_t, attempt = self.due[index]
                if now >= due_t:
                    del self.due[index]
                    self._dispatch(index, attempt)
        self._expire_leases(now)
        if not self.drained and self._pool_gone(now):
            if not self.ex.inline_fallback:
                raise WorkQueueError(
                    f"work queue {self.queue.root} has no live workers "
                    "and inline_fallback is off")
            self._drain()

    def _read_heartbeats(self) -> None:
        for path in sorted(self.queue.workers.glob("*.json")):
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
                worker, t = str(doc["worker"]), float(doc["t"])
            except (ValueError, KeyError, TypeError):
                continue
            if worker not in self.worker_hb:
                self.acct["workers_seen"] += 1
            self.worker_hb[worker] = max(self.worker_hb.get(worker, t), t)
            self._saw_worker = True

    def _expire_leases(self, now: float) -> None:
        for lease in self.queue.lease_files(self.bound.digest):
            try:
                _, index, _ = WorkQueue.parse_task_name(lease.name)
            except ValueError:
                continue
            if index in self.ready or index in self.consumed:
                continue
            first = self.lease_seen.setdefault(lease.name, now)
            worker = lease.name.rpartition(".")[2]
            hb = self.worker_hb.get(worker, first)
            fresh = max(first, hb)
            if (now - fresh > self.ex.lease_s
                    or now - first > self.ex.attempt_timeout_s):
                lease.unlink(missing_ok=True)
                self.lease_seen.pop(lease.name, None)
                self._note_lost(index, "expired_leases")
                self.acct["re_dispatched"] += 1

    def _pool_gone(self, now: float) -> bool:
        dead = sum(now - t > self.ex.lease_s
                   for t in self.worker_hb.values())
        self.acct["dead_workers"] = int(dead)
        if any(now - t <= self.ex.lease_s
               for t in self.worker_hb.values()):
            return False
        for lease in self.queue.lease_files(self.bound.digest):
            first = self.lease_seen.get(lease.name)
            if first is not None and now - first <= self.ex.lease_s:
                return False  # someone is (or just was) working
        if self._saw_worker:
            return True
        return now - self.started >= self.ex.worker_grace_s

    # -- graceful degradation -----------------------------------------
    def _drain(self) -> None:
        """The pool vanished: finish every remaining chunk inline."""
        self.drained = True
        self.due.clear()
        for index in self.bound.indices:
            if index not in self.ready and index not in self.consumed:
                self._remove_task_files(index)
                self._run_inline(index)
                self.acct["drained_inline"] += 1

    def _run_inline(self, index: int) -> None:
        if self._inline_run is None:
            self.kernel.prepare()
            self._inline_run = _batch_fn(self.kernel, self.packing)
        size, child = self.task_by_index[index]
        before = _cache_stats(self.kernel)
        outcome = self._inline_run(size, np.random.default_rng(child))
        after = _cache_stats(self.kernel)
        stats = tuple(a - b for a, b in zip(after, before, strict=True))
        self.ready[index] = (outcome, stats)
        self.due.pop(index, None)

    def _remove_task_files(self, index: int) -> None:
        token = f".c{index:06d}."
        for path in self.queue.task_files(self.bound.digest):
            if token in path.name:
                path.unlink(missing_ok=True)

    def _cleanup(self) -> None:
        """Withdraw unclaimed work; leave results (adoptable on resume)."""
        for path in self.queue.task_files(self.bound.digest):
            path.unlink(missing_ok=True)
