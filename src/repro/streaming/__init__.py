"""Online streaming detection/decode with bounded memory and latency SLOs.

The batch kernels (:mod:`repro.sim.batch`) sample whole campaigns and
scan offline; this package runs the same model round by round, the way
the paper's hardware pipeline must: a ring-buffered detection window
(:class:`RoundWindow`), an O(d^2) incremental syndrome extractor
(:class:`SyndromeStream`), and the shared bucketed decoder firing at
exposure close — with per-round wall clocks feeding p50/p99 latency and
sustained rounds/sec.

Certified invariant (docs/CONTRACTS.md): per rng seed, the streamed
outcomes equal :func:`replay_offline`'s offline windowed scan over the
identical round stream, bit for bit.
"""

from repro.streaming.driver import (LatencyStats, RoundSampler,
                                    StreamingPerformance,
                                    StreamingTrialDriver, StreamResult,
                                    SyndromeStream, latency_stats,
                                    replay_offline)
from repro.streaming.window import RoundWindow

__all__ = [
    "LatencyStats",
    "RoundSampler",
    "RoundWindow",
    "StreamResult",
    "StreamingPerformance",
    "StreamingTrialDriver",
    "SyndromeStream",
    "latency_stats",
    "replay_offline",
]
