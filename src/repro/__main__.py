"""Entry point for ``python -m repro`` (see :mod:`repro.campaigns.cli`)."""

import sys

from repro.campaigns.cli import main

if __name__ == "__main__":
    sys.exit(main())
