"""Logical-memory Monte-Carlo experiments (paper Sec. VII-A).

Estimates the logical Pauli-X error rate per code cycle of ``d``-cycle
idling: sample per-cycle errors, extract the syndrome-difference lattice,
decode (greedy or exact MWPM; uniform or anomaly-aware weights), and
declare failure when the residual error crosses the north-boundary cut.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.decoding.decoder_base import Decoder
from repro.decoding.graph import SyndromeLattice
from repro.decoding.greedy import GreedyDecoder
from repro.decoding.mwpm import MWPMDecoder
from repro.decoding.weights import DistanceModel, relative_anomalous_weight
from repro.noise.models import AnomalousRegion, PhenomenologicalNoise
from repro.sim.montecarlo import BinomialEstimate


@dataclass(frozen=True)
class LogicalErrorEstimate:
    """A measured logical failure rate."""

    failures: int
    samples: int
    cycles: int

    @property
    def estimate(self) -> BinomialEstimate:
        return BinomialEstimate(self.failures, self.samples)

    @property
    def per_run(self) -> float:
        return self.failures / self.samples

    @property
    def per_cycle(self) -> float:
        """Failure probability per code cycle: 1 - (1 - P)^(1/T)."""
        p_run = self.per_run
        if p_run >= 1.0:
            return 1.0
        return 1.0 - (1.0 - p_run) ** (1.0 / self.cycles)

    @property
    def per_cycle_std_error(self) -> float:
        return self.estimate.std_error / self.cycles


class MemoryExperiment:
    """One configuration of the idling experiment.

    Args:
        distance: code distance ``d``.
        p: physical error rate per cycle.
        region: optional anomalous region (``None`` = MBBE free).
        p_ano: anomalous error rate (paper: 0.5).
        decoder: ``"greedy"`` (default; tractable at paper scales) or
            ``"mwpm"`` (exact blossom).
        informed: if True the decoder knows the region -- the paper's
            "with rollback" re-executed decoding; if False it decodes
            with uniform weights ("without rollback").
        cycles: number of noisy rounds (default ``d``).
    """

    def __init__(
        self,
        distance: int,
        p: float,
        region: Optional[AnomalousRegion] = None,
        p_ano: float = 0.5,
        decoder: str = "greedy",
        informed: bool = False,
        cycles: Optional[int] = None,
    ):
        if decoder not in ("greedy", "mwpm"):
            raise ValueError("decoder must be 'greedy' or 'mwpm'")
        self.distance = distance
        self.p = p
        self.region = region
        self.p_ano = p_ano
        self.informed = informed
        self.cycles = cycles if cycles is not None else distance
        self.noise = PhenomenologicalNoise(distance, p, p_ano, region)
        self.lattice = SyndromeLattice(distance)
        self._decoder = self._build_decoder(decoder)

    def _build_decoder(self, kind: str) -> Decoder:
        if self.informed and self.region is not None:
            w_ano = relative_anomalous_weight(self.p, self.p_ano)
            model = DistanceModel(self.distance, self.region, w_ano)
        else:
            model = DistanceModel(self.distance)
        if kind == "mwpm":
            return MWPMDecoder(model)
        return GreedyDecoder(model)

    # ------------------------------------------------------------------
    def run_once(self, rng: np.random.Generator) -> bool:
        """One shot: True iff a logical X error survived decoding."""
        v, h, m = self.noise.sample(self.cycles, rng)
        nodes = self.lattice.detection_events(v, h, m)
        result = self._decoder.decode(nodes)
        error_parity = self.lattice.error_cut_parity(v)
        return bool(error_parity ^ result.correction_cut_parity)

    def run(self, samples: int,
            rng: Optional[np.random.Generator] = None) -> LogicalErrorEstimate:
        """Estimate the logical failure rate over ``samples`` shots."""
        if samples < 1:
            raise ValueError("need at least one sample")
        rng = rng if rng is not None else np.random.default_rng()
        failures = sum(self.run_once(rng) for _ in range(samples))
        return LogicalErrorEstimate(failures, samples, self.cycles)


def logical_error_rate(
    distance: int,
    p: float,
    samples: int,
    region: Optional[AnomalousRegion] = None,
    informed: bool = False,
    decoder: str = "greedy",
    p_ano: float = 0.5,
    seed: Optional[int] = None,
) -> LogicalErrorEstimate:
    """Convenience one-call estimator (used by benches and examples)."""
    experiment = MemoryExperiment(
        distance, p, region=region, p_ano=p_ano,
        decoder=decoder, informed=informed)
    return experiment.run(samples, np.random.default_rng(seed))


def fit_scaling_exponent(
    rates: dict[int, float]) -> tuple[float, float]:
    """Fit ``p_L(d) = A * base**(floor(d/2) + 1)`` to per-distance rates.

    Returns ``(A, base)``; used to extrapolate Monte-Carlo data to the
    low-error regime, as in the paper's first-order analysis.
    """
    ds = sorted(d for d, r in rates.items() if r > 0)
    if len(ds) < 2:
        raise ValueError("need at least two distances with nonzero rates")
    xs = np.array([math.floor(d / 2) + 1 for d in ds], dtype=float)
    ys = np.array([math.log(rates[d]) for d in ds])
    slope, intercept = np.polyfit(xs, ys, 1)
    return math.exp(intercept), math.exp(slope)
