"""The unified campaign API: specs, registry, executors, shim equality."""

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import campaigns
from repro.noise import AnomalousRegion
from repro.sim.batch import (BatchShotRunner, DetectionShotKernel,
                             EndToEndShotKernel, MemoryShotKernel,
                             chunk_plan, default_chunk_shots)
from repro.sim.detection import run_detection_trials
from repro.sim.endtoend import EndToEndExperiment
from repro.sim.memory import MemoryExperiment


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
class TestSpecValidation:
    def test_memory_spec_accepts_paper_point(self):
        spec = campaigns.MemorySpec(distance=9, p=1e-2, samples=100)
        assert spec.kind == "memory"
        assert spec.resolve_region() is None

    def test_centered_region_resolves_against_distance(self):
        spec = campaigns.MemorySpec(distance=9, p=1e-2, samples=10,
                                    region="centered", anomaly_size=4)
        assert spec.resolve_region() == AnomalousRegion.centered(9, 4)

    @pytest.mark.parametrize("kwargs", [
        dict(distance=2, p=1e-2, samples=10),
        dict(distance=5, p=1.5, samples=10),
        dict(distance=5, p=1e-2, samples=0),
        dict(distance=5, p=1e-2, samples=10, decoder="tensor-network"),
        dict(distance=5, p=1e-2, samples=10, packing="words"),
        dict(distance=5, p=1e-2, samples=10, decode="quantum"),
        dict(distance=5, p=1e-2, samples=10, seed=-1),
        dict(distance=5, p=1e-2, samples=10, seed=2 ** 63),
        dict(distance=5, p=1e-2, samples=10, batch_size=0),
        dict(distance=5, p=1e-2, samples=10, region="somewhere"),
        dict(distance=5, p=1e-2, samples=10, target_rel_width=0.0),
    ])
    def test_memory_spec_rejects(self, kwargs):
        with pytest.raises(campaigns.SpecError):
            campaigns.MemorySpec(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(distance=5, p=1e-2, shots=10, onset=300, cycles=300),
        dict(distance=5, p=1e-2, shots=0),
        dict(distance=5, p=1e-2, shots=10, alpha=0.0),
        dict(distance=5, p=1e-2, shots=10, c_win=0),
    ])
    def test_endtoend_spec_rejects(self, kwargs):
        with pytest.raises(campaigns.SpecError):
            campaigns.EndToEndSpec(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(distance=5, p=1e-3, p_ano=0.05, anomaly_size=0, c_win=40),
        dict(distance=5, p=1e-3, p_ano=2.0, anomaly_size=2, c_win=40),
        dict(distance=5, p=1e-3, p_ano=0.05, anomaly_size=2, c_win=40,
             normal_cycles=0),
        dict(distance=5, p=1e-3, p_ano=0.05, anomaly_size=2, c_win=40,
             scan="windowed"),
    ])
    def test_detection_spec_rejects(self, kwargs):
        with pytest.raises(campaigns.SpecError):
            campaigns.DetectionSpec(**kwargs)

    def test_scaling_and_throughput_reject(self):
        with pytest.raises(campaigns.SpecError):
            campaigns.ScalingSpec(areas=())
        with pytest.raises(campaigns.SpecError):
            campaigns.ThroughputSpec(architecture="ibm")

    def test_detection_resolved_cycles_defaults(self):
        spec = campaigns.DetectionSpec(distance=7, p=1e-3, p_ano=0.05,
                                       anomaly_size=2, c_win=40)
        assert spec.resolved_cycles() == (80, 160)


# ----------------------------------------------------------------------
# JSON round trips
# ----------------------------------------------------------------------
def _example_specs():
    return [
        campaigns.MemorySpec(distance=9, p=6e-3, samples=50,
                             region="centered", anomaly_size=4,
                             informed=True, seed=7, batch_size=16,
                             target_rel_width=0.25, packing="none",
                             decode="pershot"),
        campaigns.MemorySpec(
            distance=5, p=2e-2, samples=10,
            region=AnomalousRegion(1, 2, 2, t_lo=3, t_hi=9)),
        campaigns.EndToEndSpec(distance=5, p=1e-2, shots=12, onset=30,
                               cycles=60, c_win=20, n_th=4, seed=11),
        campaigns.DetectionSpec(distance=7, p=2e-3, p_ano=0.05,
                                anomaly_size=2, c_win=40, n_th=3,
                                trials=4, seed=1),
        campaigns.ScalingSpec(areas=(2.0, 8.0), horizon_cycles=500_000),
        campaigns.ThroughputSpec(architecture="q3de", num_instructions=30,
                                 strike_prob_per_slot=1e-4, seed=3),
    ]


class TestSpecJson:
    @pytest.mark.parametrize("spec", _example_specs(),
                             ids=lambda s: type(s).__name__)
    def test_round_trip(self, spec):
        text = campaigns.spec_to_json(spec)
        again = campaigns.spec_from_json(text)
        assert again == spec
        assert campaigns.spec_hash(again) == campaigns.spec_hash(spec)

    def test_sweep_round_trip(self):
        sweep = campaigns.Sweep(
            campaigns.MemorySpec(distance=5, p=1e-2, samples=10),
            axes={"distance": [5, 7], "p": [1e-2, 2e-2],
                  "region": [None, "centered",
                             AnomalousRegion(0, 0, 2)]})
        again = campaigns.spec_from_json(campaigns.spec_to_json(sweep))
        assert again == sweep
        assert [o for o, _ in again.points()] == \
            [o for o, _ in sweep.points()]

    def test_wire_dict_shape(self):
        doc = campaigns.spec_to_dict(_example_specs()[1])
        assert doc["kind"] == "memory"
        assert doc["region"] == {"row_lo": 1, "col_lo": 2, "size": 2,
                                 "t_lo": 3, "t_hi": 9}
        # Canonical JSON is pure data: parseable by a strict parser.
        json.loads(campaigns.spec_to_json(_example_specs()[1]))

    @pytest.mark.parametrize("doc", [
        "[]",
        '{"kind": "warp"}',
        '{"kind": "memory"}',                       # missing required
        '{"kind": "memory", "distance": 5, "p": 0.01, "samples": 2,'
        ' "turbo": true}',                          # unknown field
        '{"kind": "memory", "distance": 5, "p": 0.01, "samples": 2,'
        ' "region": 7}',                            # bad region
        "{not json",
    ])
    def test_bad_documents_rejected(self, doc):
        with pytest.raises(campaigns.SpecError):
            campaigns.spec_from_json(doc)

    @settings(max_examples=25, deadline=None)
    @given(distance=st.integers(3, 21),
           p=st.floats(0.0, 1.0, allow_nan=False),
           samples=st.integers(1, 10_000),
           seed=st.integers(0, 2 ** 63 - 1),
           informed=st.booleans(),
           decoder=st.sampled_from(["greedy", "mwpm"]),
           packing=st.sampled_from(["bits", "none"]),
           batch_size=st.one_of(st.none(), st.integers(1, 4096)),
           region=st.one_of(
               st.none(), st.just("centered"),
               st.builds(AnomalousRegion,
                         row_lo=st.integers(0, 8),
                         col_lo=st.integers(0, 8),
                         size=st.integers(1, 6),
                         t_lo=st.integers(0, 50))))
    def test_memory_round_trip_property(self, **kwargs):
        spec = campaigns.MemorySpec(**kwargs)
        again = campaigns.spec_from_json(campaigns.spec_to_json(spec))
        assert again == spec
        assert campaigns.spec_hash(again) == campaigns.spec_hash(spec)

    def test_hash_distinguishes_specs(self):
        a = campaigns.MemorySpec(distance=5, p=1e-2, samples=10)
        b = dataclasses.replace(a, seed=1)
        c = dataclasses.replace(a, batch_size=32)
        assert len({campaigns.spec_hash(s) for s in (a, b, c)}) == 3


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
class TestSweep:
    def test_expansion_order_and_seeds(self):
        base = campaigns.MemorySpec(distance=5, p=1e-2, samples=10, seed=9)
        sweep = campaigns.Sweep(base, axes={"distance": [5, 7],
                                            "p": [1e-2, 2e-2]})
        points = list(sweep.points())
        assert [o for o, _ in points] == [
            {"distance": 5, "p": 1e-2}, {"distance": 5, "p": 2e-2},
            {"distance": 7, "p": 1e-2}, {"distance": 7, "p": 2e-2}]
        seeds = [s.seed for _, s in points]
        assert len(set(seeds)) == 4  # independent ...
        assert seeds == [s.seed for _, s in sweep.points()]  # ... stable
        assert len(sweep) == 4

    def test_derive_seeds_off_keeps_base_seed(self):
        base = campaigns.ScalingSpec(areas=(2.0,), seed=5)
        sweep = campaigns.Sweep(base, axes={"use_q3de": [True, False]},
                                derive_seeds=False)
        assert [s.seed for _, s in sweep.points()] == [5, 5]

    def test_bad_axes_rejected(self):
        base = campaigns.MemorySpec(distance=5, p=1e-2, samples=10)
        with pytest.raises(campaigns.SpecError):
            campaigns.Sweep(base, axes={"flux": [1]})
        with pytest.raises(campaigns.SpecError):
            campaigns.Sweep(base, axes={"p": []})
        with pytest.raises(campaigns.SpecError):
            campaigns.Sweep(campaigns.Sweep(base, axes={}), axes={})

    def test_run_returns_sweep_result(self, tmp_path):
        base = campaigns.MemorySpec(distance=3, p=2e-2, samples=16,
                                    seed=2)
        sweep = campaigns.Sweep(base, axes={"p": [1e-2, 2e-2]})
        result = campaigns.run(sweep, checkpoint=tmp_path)
        assert len(result) == 2
        assert all(r.kind == "memory" for r in result.results)
        # one shard per grid point
        assert len(list(tmp_path.glob("*.jsonl"))) == 2
        doc = result.to_dict()
        assert [p["overrides"] for p in doc["points"]] == [
            {"p": 1e-2}, {"p": 2e-2}]


# ----------------------------------------------------------------------
# Registry and dispatch
# ----------------------------------------------------------------------
class TestRegistry:
    def test_known_kinds(self):
        kinds = campaigns.registered_kinds()
        assert set(kinds) >= {"memory", "endtoend", "detection",
                              "scaling", "throughput"}

    def test_unregistered_type_rejected(self):
        with pytest.raises(TypeError, match="no campaign runner"):
            campaigns.run(object())

    def test_register_campaign_extends(self):
        @dataclasses.dataclass(frozen=True)
        class EchoSpec:
            kind = "echo"
            payload: int = 0
            seed: int = 0

        from repro.campaigns.runner import _RUNNERS

        @campaigns.register_campaign(EchoSpec)
        def _run_echo(spec, executor, store):
            return campaigns.CampaignResult(
                kind=spec.kind, estimates={"payload": spec.payload})

        try:
            result = campaigns.run(EchoSpec(payload=41))
            assert result.estimates["payload"] == 41
        finally:
            _RUNNERS.pop(EchoSpec)


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class TestExecutors:
    def test_default_executor_mapping(self):
        assert isinstance(campaigns.default_executor(0),
                          campaigns.InlineExecutor)
        assert campaigns.default_executor(0).whole_request
        assert not campaigns.default_executor(1).whole_request
        pool = campaigns.default_executor(3)
        assert isinstance(pool, campaigns.ProcessPoolExecutor)
        assert pool.workers == 3

    def test_default_executor_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert isinstance(campaigns.default_executor(),
                          campaigns.ProcessPoolExecutor)
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert campaigns.default_executor().whole_request

    def test_pool_requires_two_workers(self):
        with pytest.raises(ValueError):
            campaigns.ProcessPoolExecutor(1)
        with pytest.raises(ValueError):
            campaigns.ProcessPoolExecutor(4, max_inflight=3)

    def test_pool_submissions_are_windowed(self):
        # An early-stopped campaign must not have submitted the whole
        # plan: the pool pulls lazily, at most max_inflight ahead of
        # what the consumer has taken.
        kernel = MemoryShotKernel(3, 2e-2)
        plan = chunk_plan(96, 8, 3)  # 12 chunks
        pulled = []

        def tasks():
            for task in plan:
                pulled.append(task)
                yield task

        executor = campaigns.ProcessPoolExecutor(2)
        assert executor.max_inflight == 4
        stream = executor.run_chunks(kernel, "bits", tasks())
        next(stream)
        assert len(pulled) <= executor.max_inflight + 1
        stream.close()  # terminates the pool; no further pulls
        assert len(pulled) <= executor.max_inflight + 1

    def test_distributed_is_an_interface(self):
        spec = campaigns.MemorySpec(distance=3, p=1e-2, samples=4)
        with pytest.raises(NotImplementedError):
            campaigns.run(spec, executor=campaigns.DistributedExecutor())

    def test_distributed_reference_transport_runs(self, tmp_path):
        # The loopback stand-in of PR 5 grew into a real transport: the
        # filesystem work queue, here served by two in-process simulated
        # workers that rebuild kernels from spec JSON exactly as
        # ``python -m repro worker`` does.
        from repro.campaigns.faults import WorkerPoolSim

        spec = campaigns.MemorySpec(distance=3, p=2e-2, samples=32,
                                    seed=5, batch_size=8)
        sim = WorkerPoolSim(tmp_path / "q", workers=2)
        remote = campaigns.run(spec, executor=sim.executor())
        local = campaigns.run(spec, executor=campaigns.InlineExecutor())
        assert remote.counts["failures"] == local.counts["failures"]
        assert remote.provenance.supervisor["dispatched"] > 0

    def test_inline_vs_pool_vs_queue_bit_equal(self, tmp_path):
        from repro.campaigns.faults import WorkerPoolSim

        spec = campaigns.EndToEndSpec(distance=5, p=1e-2, shots=12,
                                      onset=30, cycles=60, c_win=20,
                                      n_th=4, seed=13, batch_size=4)
        inline = campaigns.run(spec, executor=campaigns.InlineExecutor())
        pooled = campaigns.run(
            spec, executor=campaigns.ProcessPoolExecutor(2))
        sim = WorkerPoolSim(tmp_path / "q", workers=2)
        queued = campaigns.run(spec, executor=sim.executor())
        assert inline.counts == pooled.counts
        assert inline.counts == queued.counts
        assert inline.estimates == queued.estimates


# ----------------------------------------------------------------------
# Shim equality: legacy entry points == campaign API, bit for bit
# ----------------------------------------------------------------------
class TestLegacyShims:
    def test_memory_run_matches_direct_runner(self):
        region = AnomalousRegion.centered(5, 2)
        exp = MemoryExperiment(5, 2e-2, region=region)
        est = exp.run(300, workers=1, seed=11, batch_size=64)
        kernel = MemoryShotKernel(5, 2e-2, region=region)
        rr = BatchShotRunner(kernel, workers=1, batch_size=64,
                             seed=11).run(300)
        assert (est.failures, est.samples) == \
            (rr.estimate.successes, rr.estimate.trials)

    def test_memory_early_stop_matches(self):
        exp = MemoryExperiment(5, 3e-2)
        est = exp.run(5000, workers=1, seed=3, batch_size=128,
                      target_rel_width=0.5)
        rr = BatchShotRunner(MemoryShotKernel(5, 3e-2), workers=1,
                             batch_size=128, seed=3).run(
                                 5000, target_rel_width=0.5)
        assert (est.failures, est.samples) == \
            (rr.estimate.successes, rr.estimate.trials)
        assert est.samples < 5000  # it actually stopped early

    def test_endtoend_run_matches_direct_runner(self):
        e2e = EndToEndExperiment(5, 0.01, onset=30, cycles=60, c_win=20,
                                 n_th=4)
        res = e2e.run(40, seed=5)
        kernel = EndToEndShotKernel(5, 0.01, 0.5, 4, 30, 60, 20, 4, 0.01)
        batch = default_chunk_shots(40, 60 * 4 * 5)
        out = BatchShotRunner(kernel, workers=0, batch_size=batch,
                              seed=5).run(40).outcomes
        assert res.naive_failures == int(out[:, 0].sum())
        assert res.detected_failures == int(out[:, 1].sum())
        assert res.oracle_failures == int(out[:, 2].sum())
        assert res.detections == int((out[:, 3] >= 0).sum())

    def test_detection_run_matches_direct_runner(self):
        perf = run_detection_trials(7, 2e-3, 0.05, anomaly_size=2,
                                    c_win=40, n_th=3, trials=6, seed=9)
        kernel = DetectionShotKernel(7, 2e-3, 0.05, 2, 40, 3, 0.01,
                                     80, 160)
        batch = default_chunk_shots(6, 240 * 6 * 7)
        out = BatchShotRunner(kernel, workers=0, batch_size=batch,
                              seed=9).run(6).outcomes
        assert perf.false_positives == int(out[:, 0].sum())
        assert perf.detections == int(out[:, 1].sum())

    def test_spec_equals_shim_per_seed_batch(self):
        spec = campaigns.MemorySpec(distance=5, p=2e-2, samples=200,
                                    seed=21, batch_size=64)
        direct = campaigns.run(spec)
        via_shim = MemoryExperiment(5, 2e-2).run(200, workers=1, seed=21,
                                                 batch_size=64)
        assert direct.counts["failures"] == via_shim.failures
        assert direct.detail.per_cycle == via_shim.per_cycle


# ----------------------------------------------------------------------
# Results and provenance
# ----------------------------------------------------------------------
class TestResults:
    def test_provenance_block(self):
        spec = campaigns.MemorySpec(distance=3, p=2e-2, samples=48,
                                    seed=4, batch_size=16)
        result = campaigns.run(spec, executor=campaigns.InlineExecutor())
        prov = result.provenance
        assert prov.spec_hash == campaigns.spec_hash(spec)
        assert prov.kind == "memory"
        assert prov.seed == 4
        assert prov.backend == "numpy"
        assert prov.executor == "inline"
        assert prov.packing == "bits"
        assert prov.batch_size == 16
        assert prov.chunks == 3
        assert prov.resumed_chunks == 0
        assert prov.wall_clock_s > 0
        import repro
        assert prov.version == repro.__version__

    def test_memory_batch_size_resolution_per_executor(self):
        # Unset batch_size: whole request (memory-capped) inline,
        # kernel fan-out default otherwise — consistent with the other
        # shot kinds.
        spec = campaigns.MemorySpec(distance=5, p=2e-2, samples=600,
                                    seed=6)
        whole = campaigns.run(spec, executor=campaigns.InlineExecutor())
        chunked = campaigns.run(
            spec, executor=campaigns.InlineExecutor(whole_request=False))
        assert whole.provenance.batch_size == 600
        assert whole.provenance.chunks == 1
        assert chunked.provenance.batch_size == 512
        assert chunked.provenance.chunks == 2

    def test_result_json_parses(self):
        spec = campaigns.ThroughputSpec(num_instructions=20,
                                        strike_prob_per_slot=1e-4,
                                        strike_duration_slots=10)
        doc = json.loads(campaigns.run(spec).to_json())
        assert doc["kind"] == "throughput"
        assert doc["estimates"]["throughput"] > 0
        assert doc["provenance"]["spec_hash"] == campaigns.spec_hash(spec)

    def test_scaling_campaign_matches_model(self):
        spec = campaigns.ScalingSpec(areas=(4.0,), horizon_cycles=200_000)
        result = campaigns.run(spec)
        from repro.scaling.model import ScalingParameters, density_curve
        expected = density_curve(
            ScalingParameters(horizon_cycles=200_000), [4.0], True, seed=0)
        assert result.detail == expected
        assert result.estimates["density_area_4"] == expected[0]

    def test_throughput_campaign_matches_model(self):
        spec = campaigns.ThroughputSpec(architecture="baseline",
                                        num_instructions=50, seed=2)
        result = campaigns.run(spec)
        from repro.arch.throughput import simulate_throughput
        expected = simulate_throughput(
            "baseline", 50, rng=np.random.default_rng(2))
        assert result.estimates["throughput"] == expected.throughput
        assert result.counts["instructions"] == expected.instructions


# ----------------------------------------------------------------------
# Chunk-plan contract
# ----------------------------------------------------------------------
class TestChunkPlan:
    def test_plan_sizes(self):
        plan = chunk_plan(100, 32, 7)
        assert [size for size, _ in plan] == [32, 32, 32, 4]

    def test_plan_seed_children_are_stable(self):
        a = chunk_plan(64, 16, 5)
        b = chunk_plan(64, 16, 5)
        for (_, ca), (_, cb) in zip(a, b, strict=True):
            assert np.array_equal(ca.generate_state(4), cb.generate_state(4))

    def test_plan_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            chunk_plan(0, 8, 1)
        with pytest.raises(ValueError):
            chunk_plan(8, 0, 1)
