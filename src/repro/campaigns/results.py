"""Uniform campaign results and their provenance blocks.

Every campaign — whatever its kind — comes back as a
:class:`CampaignResult`: the headline ``estimates`` (floats), the raw
``counts`` (shots, failures, cache statistics), and a
:class:`Provenance` block recording exactly what produced them (spec
hash, seed, backend, package version, executor, wall clock, chunk
accounting).  ``to_dict()`` gives the JSON the CLI prints; ``detail``
keeps the domain result object (:class:`~repro.sim.LogicalErrorEstimate`
and friends) for in-process callers and the legacy shims.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True)
class Provenance:
    """Where a result came from, completely enough to reproduce it."""

    spec_hash: str
    kind: str
    seed: int
    backend: str
    version: str
    executor: str
    wall_clock_s: float
    packing: Optional[str] = None
    batch_size: Optional[int] = None
    chunks: int = 0
    resumed_chunks: int = 0
    #: Transport-executor robustness accounting (attempts, retries,
    #: re-dispatches, quarantined chunks, dead workers, ...) from
    #: :meth:`repro.campaigns.executors.Executor.accounting`; ``None``
    #: for in-process executors.
    supervisor: Optional[dict] = None

    def to_dict(self) -> dict:
        return {k: v for k, v in self.__dict__.items()}


@dataclass(frozen=True)
class CampaignResult:
    """What :func:`repro.campaigns.run` returns for a single spec."""

    kind: str
    estimates: dict = field(default_factory=dict)
    counts: dict = field(default_factory=dict)
    provenance: Optional[Provenance] = None
    #: The domain result object (LogicalErrorEstimate, EndToEndResult,
    #: DetectionPerformance, ThroughputResult, ...).  In-process only;
    #: not part of the JSON wire format.
    detail: Any = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "estimates": dict(self.estimates),
            "counts": dict(self.counts),
            "provenance": (self.provenance.to_dict()
                           if self.provenance is not None else None),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


@dataclass(frozen=True)
class SweepResult:
    """Results of a :class:`~repro.campaigns.specs.Sweep`, in grid order.

    ``points`` pairs each grid point's axis overrides with its
    :class:`CampaignResult`, so callers can rebuild the paper's tables
    without re-deriving the grid.
    """

    points: list  # list[tuple[dict, CampaignResult]]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def results(self) -> list:
        return [result for _, result in self.points]

    def to_dict(self) -> dict:
        from repro.campaigns.specs import _jsonify
        return {"kind": "sweep",
                "points": [{"overrides": _jsonify(dict(overrides)),
                            "result": result.to_dict()}
                           for overrides, result in self.points]}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
