"""Exact minimum-weight perfect matching decoder.

Implements the textbook reduction (Fowler et al.): every active node gets
a *virtual boundary twin* at its nearest boundary; twins are pairwise
connected at zero weight, so a node may either pair with another active
node or retire to the boundary.  The blossom algorithm then yields an
exact minimum-weight perfect matching.  We use networkx's
``max_weight_matching`` (Galil's blossom variant) in place of
Kolmogorov's license-restricted Blossom V; both are exact, only speed
differs.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.decoding.decoder_base import DecodeResult, Match
from repro.decoding.weights import DistanceModel


class MWPMDecoder:
    """Exact MWPM decoder over a :class:`DistanceModel`.

    Args:
        model: distance model (uniform or anomaly-aware).
        prune_factor: drop node-node candidate edges longer than
            ``prune_factor`` times the pair's combined boundary distance
            (such edges can never appear in a minimum-weight matching when
            the factor is >= 1; keeping a margin > 1 guards against
            near-ties).  Set to ``None`` to keep the complete graph.
    """

    def __init__(self, model: DistanceModel, prune_factor: float | None = 1.5):
        self.model = model
        self.prune_factor = prune_factor

    def decode(self, nodes: np.ndarray) -> DecodeResult:
        nodes = np.asarray(nodes)
        n = len(nodes)
        if n == 0:
            return DecodeResult.from_matches([], 0.0)
        dist = self.model.pairwise(nodes)
        bdist, bside = self.model.boundary(nodes)

        graph = nx.Graph()
        # Real nodes 0..n-1, boundary twins n..2n-1.
        scale = 1 + float(dist.max()) + float(bdist.max())
        for i in range(n):
            graph.add_edge(i, n + i, weight=scale - bdist[i])
            for j in range(i + 1, n):
                # Twin-twin edges are unconditional: they are what lets a
                # pruned pair retire to the boundary instead, so skipping
                # them alongside a pruned (i, j) edge can leave the only
                # perfect matchings going through worse-than-minimum pairs.
                graph.add_edge(n + i, n + j, weight=scale)
                if (self.prune_factor is not None
                        and dist[i, j] > self.prune_factor
                        * (bdist[i] + bdist[j])):
                    continue
                graph.add_edge(i, j, weight=scale - dist[i, j])
        matching = nx.max_weight_matching(graph, maxcardinality=True)

        matches: list[Match] = []
        weight = 0.0
        for u, v in matching:
            if u > v:
                u, v = v, u
            if v < n:  # node-node
                matches.append(Match(u, v))
                weight += float(dist[u, v])
            elif u < n <= v:  # node-boundary
                if v - n != u:
                    # Matched to another node's twin: still a boundary match
                    # for u (twins are interchangeable at zero weight).
                    pass
                matches.append(Match(u, int(bside[u])))
                weight += float(bdist[u])
            # twin-twin pairs carry no correction
        return DecodeResult.from_matches(matches, weight)
