"""Monte-Carlo experiment drivers for the paper's evaluations."""

from repro.sim import backend
from repro.sim.montecarlo import BinomialEstimate, wilson_interval
from repro.sim.memory import MemoryExperiment, LogicalErrorEstimate
from repro.sim.detection import (
    DetectionTrialResult,
    DetectionPerformance,
    run_detection_trials,
    analytic_required_window,
)
from repro.sim.endtoend import EndToEndExperiment, EndToEndResult
from repro.sim.batch import (
    BatchRunResult,
    BatchShotRunner,
    DECODE_MODES,
    DetectionShotKernel,
    EndToEndShotKernel,
    MatchingCache,
    MemoryShotKernel,
    PACKING_MODES,
)
from repro.sim import bitops

__all__ = [
    "backend",
    "BatchRunResult",
    "BatchShotRunner",
    "MatchingCache",
    "DECODE_MODES",
    "PACKING_MODES",
    "bitops",
    "DetectionShotKernel",
    "EndToEndShotKernel",
    "MemoryShotKernel",
    "BinomialEstimate",
    "wilson_interval",
    "MemoryExperiment",
    "LogicalErrorEstimate",
    "DetectionTrialResult",
    "DetectionPerformance",
    "run_detection_trials",
    "analytic_required_window",
    "EndToEndExperiment",
    "EndToEndResult",
]
