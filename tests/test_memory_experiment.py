"""Tests for the logical-memory Monte-Carlo experiments."""

import numpy as np
import pytest

from repro.noise import AnomalousRegion
from repro.sim.memory import (
    LogicalErrorEstimate,
    MemoryExperiment,
    fit_scaling_exponent,
    logical_error_rate,
)


class TestEstimate:
    def test_per_run(self):
        est = LogicalErrorEstimate(5, 100, cycles=10)
        assert est.per_run == 0.05

    def test_per_cycle_conversion(self):
        est = LogicalErrorEstimate(10, 100, cycles=10)
        assert est.per_cycle == pytest.approx(
            1 - (1 - 0.1) ** 0.1)

    def test_per_cycle_saturation(self):
        est = LogicalErrorEstimate(100, 100, cycles=10)
        assert est.per_cycle == 1.0

    def test_std_error_positive(self):
        est = LogicalErrorEstimate(5, 100, cycles=10)
        assert est.per_cycle_std_error > 0

    def test_per_cycle_std_error_matches_bootstrap(self):
        """Regression for the error-propagation bug: the delta method
        must track the empirical spread of per_cycle across binomial
        resamples; dividing by T alone understates it once P is large."""
        failures, samples, cycles = 150, 500, 10
        est = LogicalErrorEstimate(failures, samples, cycles)
        rng = np.random.default_rng(0)
        resampled = rng.binomial(samples, failures / samples, size=20_000)
        per_cycle = 1.0 - (1.0 - resampled / samples) ** (1.0 / cycles)
        bootstrap_std = float(per_cycle.std())
        assert est.per_cycle_std_error == pytest.approx(bootstrap_std,
                                                        rel=0.05)
        # The old 1/T scaling misses the (1-P)^(1/T-1) amplification.
        naive = est.estimate.std_error / cycles
        assert est.per_cycle_std_error > 1.2 * naive

    def test_per_cycle_std_error_saturated_estimate(self):
        est = LogicalErrorEstimate(100, 100, cycles=10)
        assert np.isfinite(est.per_cycle_std_error)


class TestExperiment:
    def test_invalid_decoder_rejected(self):
        with pytest.raises(ValueError):
            MemoryExperiment(5, 0.01, decoder="magic")

    def test_zero_noise_never_fails(self, rng):
        exp = MemoryExperiment(5, 0.0)
        est = exp.run(50, rng)
        assert est.failures == 0

    def test_custom_cycle_count(self, rng):
        exp = MemoryExperiment(5, 0.01, cycles=3)
        assert exp.cycles == 3
        est = exp.run(10, rng)
        assert est.cycles == 3

    def test_default_cycles_equal_distance(self):
        assert MemoryExperiment(7, 0.01).cycles == 7

    def test_seeded_runs_reproducible(self):
        a = logical_error_rate(5, 0.02, samples=200, seed=7)
        b = logical_error_rate(5, 0.02, samples=200, seed=7)
        assert a.failures == b.failures

    def test_need_at_least_one_sample(self, rng):
        with pytest.raises(ValueError):
            MemoryExperiment(5, 0.01).run(0, rng)


class TestPaperShapes:
    """Statistical checks of the paper's qualitative claims."""

    def test_mbbe_raises_logical_error_rate(self):
        p = 0.01
        clean = logical_error_rate(9, p, samples=400, seed=1)
        region = AnomalousRegion.centered(9, 4)
        dirty = logical_error_rate(9, p, samples=400, region=region, seed=2)
        assert dirty.per_run > 2 * clean.per_run

    @pytest.mark.slow
    def test_informed_decoding_helps(self):
        # Fig. 8: with-rollback beats without-rollback at low p.
        p = 0.008
        region = AnomalousRegion.centered(9, 4)
        naive = logical_error_rate(9, p, samples=700, region=region, seed=3)
        informed = logical_error_rate(9, p, samples=700, region=region,
                                      informed=True, seed=4)
        assert informed.per_run < naive.per_run

    @pytest.mark.slow
    def test_larger_anomaly_is_worse(self):
        p = 0.008
        small = logical_error_rate(
            9, p, samples=500, region=AnomalousRegion.centered(9, 2), seed=5)
        large = logical_error_rate(
            9, p, samples=500, region=AnomalousRegion.centered(9, 4), seed=6)
        assert large.per_run > small.per_run

    def test_distance_helps_below_threshold(self):
        p = 0.015
        small = logical_error_rate(5, p, samples=500, seed=7)
        large = logical_error_rate(11, p, samples=500, seed=8)
        assert large.per_cycle < small.per_cycle

    def test_mwpm_beats_greedy(self):
        p = 0.02
        greedy = logical_error_rate(5, p, samples=400, decoder="greedy",
                                    seed=9)
        exact = logical_error_rate(5, p, samples=400, decoder="mwpm",
                                   seed=10)
        assert exact.per_run <= greedy.per_run


class TestScalingFit:
    def test_fit_recovers_exponent(self):
        base = 0.3
        rates = {d: 0.1 * base ** (d // 2 + 1) for d in (5, 7, 9, 11)}
        amp, fitted = fit_scaling_exponent(rates)
        assert fitted == pytest.approx(base, rel=1e-6)
        assert amp == pytest.approx(0.1, rel=1e-6)

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_scaling_exponent({5: 0.1})
