"""Tests for the detection-driven end-to-end experiment."""

import numpy as np
import pytest

from repro.sim.endtoend import EndToEndExperiment, EndToEndResult


@pytest.fixture(scope="module")
def campaign():
    """One shared medium-size campaign (module-scoped: it is the slow
    part, and every assertion reads the same aggregate)."""
    exp = EndToEndExperiment(13, 0.005, anomaly_size=4, onset=120,
                             cycles=300, c_win=80, n_th=8)
    return exp.run(40, np.random.default_rng(99))


class TestResultType:
    def test_rates_keys(self):
        res = EndToEndResult(10, 5, 3, 2, detections=9, mean_latency=12.0)
        assert set(res.rates()) == {"naive", "detected", "oracle"}
        assert res.detection_rate == 0.9

    def test_invalid_onset_rejected(self):
        with pytest.raises(ValueError):
            EndToEndExperiment(9, 0.01, onset=300, cycles=300)

    def test_zero_shots_rejected(self):
        exp = EndToEndExperiment(9, 0.01, onset=10, cycles=50)
        with pytest.raises(ValueError):
            exp.run(0)


class TestCampaign:
    def test_detection_usually_fires(self, campaign):
        assert campaign.detection_rate > 0.8

    def test_latency_is_positive_and_bounded(self, campaign):
        assert 0 <= campaign.mean_latency < 240

    def test_detected_decoding_beats_naive(self, campaign):
        rates = campaign.rates()
        assert rates["detected"] <= rates["naive"]

    def test_oracle_is_the_floor(self, campaign):
        rates = campaign.rates()
        # Detection estimates the region within a node or two, so the
        # detected decoder should track the oracle closely (within the
        # campaign's statistical resolution).
        assert rates["oracle"] <= rates["naive"]
        assert rates["detected"] <= rates["oracle"] + 0.25


class TestSingleShot:
    def test_shot_returns_judgements(self):
        exp = EndToEndExperiment(9, 0.008, onset=100, cycles=200,
                                 c_win=80, n_th=8)
        naive, detected, oracle, latency = exp.run_shot(
            np.random.default_rng(3))
        for value in (naive, detected, oracle):
            assert value in (0, 1)
        assert latency is None or latency >= 0
