"""Tests for the decoding-unit hardware model (Table IV)."""

import pytest

from repro.hwmodel.pipeline import ANQPipelineModel, measure_software_throughput
from repro.hwmodel.resources import (
    DecoderHardwareModel,
    lut_overhead_ratio,
    paper_table4_rows,
    required_anq_entries,
)


class TestResourceModel:
    @pytest.mark.parametrize("entries,q3de", [
        (40, False), (40, True), (80, False), (80, True)])
    def test_matches_paper_within_five_percent(self, entries, q3de):
        model = DecoderHardwareModel(entries, q3de)
        name = f"{entries} - {'Q3DE' if q3de else 'BASE'}"
        paper = next(r for r in paper_table4_rows() if r["config"] == name)
        assert model.flip_flops() == pytest.approx(paper["FF"], rel=0.05)
        assert model.luts() == pytest.approx(paper["LUT"], rel=0.05)
        assert model.throughput_matches_per_us() == pytest.approx(
            paper["throughput"], rel=0.05)

    def test_q3de_wider_datapath(self):
        assert DecoderHardwareModel(40, True).path_bits == 16
        assert DecoderHardwareModel(40, False).path_bits == 8

    def test_q3de_more_candidate_paths(self):
        assert DecoderHardwareModel(40, True).candidate_paths == 6

    def test_lut_overhead_about_forty_percent(self):
        # The paper's headline: ~40 % LUT overhead for Q3DE.
        assert 0.3 < lut_overhead_ratio(40) < 0.55
        assert 0.3 < lut_overhead_ratio(80) < 0.55

    def test_throughput_near_parity(self):
        base = DecoderHardwareModel(80, False).throughput_matches_per_us()
        q3de = DecoderHardwareModel(80, True).throughput_matches_per_us()
        assert q3de == pytest.approx(base, rel=0.1)

    def test_utilisation_fits_device(self):
        model = DecoderHardwareModel(80, True)
        assert model.lut_utilisation() < 0.3
        assert model.ff_utilisation() < 0.15

    def test_tiny_anq_rejected(self):
        with pytest.raises(ValueError):
            DecoderHardwareModel(1, False)

    def test_table_row_format(self):
        row = DecoderHardwareModel(40, False).table_row()
        assert row["config"] == "40 - BASE"
        assert row["LUT%"] >= 1


class TestANQSizing:
    def test_paper_reference_points(self):
        # ~30 entries for p=1e-4, d=15; ~70 for p=1e-3, d=31 (pL=1e-15).
        small = required_anq_entries(1e-4, 15)
        large = required_anq_entries(1e-3, 31)
        assert 15 <= small <= 45
        assert 45 <= large <= 110

    def test_monotone_in_p(self):
        assert (required_anq_entries(1e-3, 15)
                > required_anq_entries(1e-4, 15))

    def test_monotone_in_distance(self):
        assert (required_anq_entries(1e-4, 31)
                > required_anq_entries(1e-4, 15))

    def test_monotone_in_target(self):
        assert (required_anq_entries(1e-4, 15, p_l_target=1e-20)
                >= required_anq_entries(1e-4, 15, p_l_target=1e-10))


class TestPipelineModel:
    def test_drain_counts_everything(self):
        model = ANQPipelineModel(DecoderHardwareModel(40, False))
        est = model.drain(30)
        assert est.nodes == 30
        assert est.matches >= 15
        assert est.hardware_cycles > 0

    def test_drain_respects_capacity(self):
        model = ANQPipelineModel(DecoderHardwareModel(40, False))
        small = model.drain(20).hardware_cycles
        large = model.drain(100).hardware_cycles
        assert large > small

    def test_average_throughput_close_to_analytic(self):
        hw = DecoderHardwareModel(40, False)
        model = ANQPipelineModel(hw)
        est = model.drain(40)
        assert est.matches_per_us == pytest.approx(
            hw.throughput_matches_per_us(), rel=0.6)

    def test_sustains_typical_load(self):
        # Sec. VIII-D: the matching speed must beat the average number of
        # active nodes per code cycle.
        model = ANQPipelineModel(DecoderHardwareModel(40, False))
        assert model.sustains_code_cycle(active_nodes_per_cycle=5.0)

    def test_software_throughput_positive(self):
        rate = measure_software_throughput(num_nodes=20, repeats=5)
        assert rate > 0
