"""Rule registry, file walking, suppressions, and the lint driver.

The engine is deliberately small: it parses every target file once,
hands the syntax tree to each registered rule, and post-filters the
diagnostics through the inline-suppression comments.  Rules are pure
functions of the AST (plus the manifest), so the whole linter is
deterministic and needs nothing beyond the standard library.

Suppression grammar (one per physical line)::

    expr()  # reprolint: disable=RL001 -- why this is safe
    # reprolint: disable=RL002,RL003 -- why (applies to the next line)

The justification after ``--`` is mandatory; a bare ``disable=`` is
itself a finding (RL000) and suppresses nothing — reviewer lore is
exactly what this tool exists to replace, so every exception carries
its reason in the source.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

from reprolint.manifest import Manifest, load_manifest

#: Severity levels, in increasing order of gravity.
SEVERITIES = ("warning", "error")

_DISABLE_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]*?)"
    r"\s*(?:--\s*(\S.*?))?\s*$")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where, which contract, and what went wrong."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "severity": self.severity,
                "message": self.message}

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.severity}: {self.message}")


@dataclass
class Suppression:
    """A parsed ``# reprolint: disable=...`` comment."""

    line: int           # line the comment sits on
    applies_to: int     # line whose diagnostics it silences
    rules: tuple
    justified: bool
    used: bool = False


class FileContext:
    """One parsed source file, shared by every rule."""

    def __init__(self, path: Path, display: str, source: str,
                 tree: ast.AST, lint_tests: bool):
        self.path = path
        self.display = display
        self.posix = path.as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: Whether this file is a test/fixture helper (RL001 exempts
        #: those unless the engine was asked to lint tests too — the
        #: corpus suite runs with ``lint_tests=True``).
        self.is_test_helper = (not lint_tests) and _looks_like_test(path)
        self.suppressions = _parse_suppressions(self.lines)
        #: Rule-populated scratch cache (import maps etc.).
        self.cache: dict = {}

    def diagnostic(self, rule: "Rule", node, message: str) -> Diagnostic:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Diagnostic(self.display, line, col, rule.rule_id,
                          rule.severity, message)


def _looks_like_test(path: Path) -> bool:
    name = path.name
    if name.startswith("test_") or name.startswith("conftest"):
        return True
    return any(part in ("tests", "testing") for part in path.parts[:-1])


def _parse_suppressions(lines) -> list:
    out = []
    for idx, raw in enumerate(lines, start=1):
        if "reprolint" not in raw:
            continue
        match = _DISABLE_RE.search(raw)
        if match is None:
            continue
        rules = tuple(r.strip().upper()
                      for r in match.group(1).split(",") if r.strip())
        justification = (match.group(2) or "").strip()
        if raw.lstrip().startswith("#"):
            # Standalone comment: silence the next code line (the
            # justification may wrap onto further comment lines).
            applies_to = idx + 1
            while applies_to <= len(lines) \
                    and lines[applies_to - 1].lstrip().startswith("#"):
                applies_to += 1
        else:
            applies_to = idx  # trailing comment: silence its own line
        out.append(Suppression(
            line=idx,
            applies_to=applies_to,
            rules=rules,
            justified=bool(rules) and bool(justification)))
    return out


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
class Rule:
    """Base class: subclass, set the metadata, implement ``check``."""

    rule_id: str = "RL???"
    name: str = ""
    severity: str = "error"
    description: str = ""
    #: Project-wide rules see every file at once (``check_project``).
    project_wide: bool = False

    def check(self, ctx: FileContext,
              manifest: Manifest) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def check_project(self, contexts: list,
                      manifest: Manifest) -> Iterator[Diagnostic]:
        raise NotImplementedError


_REGISTRY: dict[str, type] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    if not issubclass(cls, Rule) or not cls.rule_id.startswith("RL"):
        raise TypeError(f"not a reprolint rule: {cls!r}")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list:
    """Fresh instances of every registered rule, sorted by id."""
    import reprolint.rules  # noqa: F401  (registration side effect)
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


#: Engine-level findings (bad file / bad suppression) report as RL000.
RL000 = "RL000"


@dataclass
class LintReport:
    """Everything one lint run produced."""

    diagnostics: list = field(default_factory=list)
    files_checked: int = 0
    rule_ids: tuple = ()

    @property
    def exit_code(self) -> int:
        return 1 if any(d.severity == "error" for d in self.diagnostics) \
            else 0

    def counts(self) -> dict:
        out: dict[str, int] = {}
        for d in self.diagnostics:
            out[d.rule] = out.get(d.rule, 0) + 1
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        from reprolint import JSON_SCHEMA_VERSION, __version__
        doc = {
            "tool": "reprolint",
            "version": __version__,
            "schema": JSON_SCHEMA_VERSION,
            "files_checked": self.files_checked,
            "rules": list(self.rule_ids),
            "counts": self.counts(),
            "exit_code": self.exit_code,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        return json.dumps(doc, indent=indent, sort_keys=True)

    def render(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        counts = self.counts()
        if counts:
            summary = ", ".join(f"{rule}: {n}"
                                for rule, n in sorted(counts.items()))
            lines.append(f"reprolint: {len(self.diagnostics)} finding(s) "
                         f"in {self.files_checked} file(s) ({summary})")
        else:
            lines.append(f"reprolint: clean "
                         f"({self.files_checked} file(s) checked)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def iter_python_files(paths: Iterable) -> Iterator[Path]:
    """Expand files/directories to ``.py`` files, deterministically."""
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not any(part == "__pycache__" or part.startswith(".")
                           for part in p.relative_to(path).parts))
        else:
            candidates = [path]
        for p in candidates:
            key = p.resolve()
            if key not in seen:
                seen.add(key)
                yield p


def _display(path: Path) -> str:
    """Repo-relative posix display when possible, else as given."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def run_paths(paths, manifest: Optional[Manifest] = None,
              manifest_path=None, select=None,
              lint_tests: bool = False) -> LintReport:
    """Lint ``paths`` and return the full report.

    Args:
        paths: files and/or directories.
        manifest: a pre-loaded :class:`Manifest` (tests build these);
            otherwise ``manifest_path`` (or the repo default) is read.
        select: optional iterable of rule ids to run (default: all).
        lint_tests: also apply the test-exempt rules (RL001) to
            test/fixture files — the corpus suite turns this on.
    """
    if manifest is None:
        manifest = load_manifest(manifest_path)
    rules = all_rules()
    if select:
        wanted = {r.upper() for r in select}
        unknown = wanted - {r.rule_id for r in rules}
        if unknown:
            raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
        rules = [r for r in rules if r.rule_id in wanted]

    contexts = []
    raw_diags = []
    files_checked = 0
    for path in iter_python_files(paths):
        files_checked += 1
        display = _display(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            raw_diags.append(Diagnostic(
                display, getattr(exc, "lineno", 1) or 1, 1, RL000,
                "error", f"cannot lint file: {exc}"))
            continue
        contexts.append(FileContext(path, display, source, tree,
                                    lint_tests))

    for ctx in contexts:
        for rule in rules:
            if not rule.project_wide:
                raw_diags.extend(rule.check(ctx, manifest))
    for rule in rules:
        if rule.project_wide:
            raw_diags.extend(rule.check_project(contexts, manifest))

    diagnostics = []
    for diag in raw_diags:
        ctx = next((c for c in contexts if c.display == diag.path), None)
        if ctx is not None and _suppressed(ctx, diag):
            continue
        diagnostics.append(diag)

    # Suppression hygiene: a disable comment without a justification is
    # a finding in its own right (and silenced nothing above).
    for ctx in contexts:
        for sup in ctx.suppressions:
            if not sup.justified:
                diagnostics.append(Diagnostic(
                    ctx.display, sup.line, 1, RL000, "error",
                    "suppression without justification: write "
                    "'# reprolint: disable=RLxxx -- <why this is safe>'"))

    diagnostics.sort(key=Diagnostic.sort_key)
    return LintReport(diagnostics=diagnostics,
                      files_checked=files_checked,
                      rule_ids=tuple(r.rule_id for r in rules))


def _suppressed(ctx: FileContext, diag: Diagnostic) -> bool:
    for sup in ctx.suppressions:
        if (sup.justified and sup.applies_to == diag.line
                and diag.rule in sup.rules):
            sup.used = True
            return True
    return False
