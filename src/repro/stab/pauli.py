"""Symplectic Pauli-operator algebra.

A Pauli operator on ``n`` qubits is stored as a pair of binary vectors
``(x, z)`` plus a phase exponent: the operator is
``i^phase * prod_j X_j^x[j] Z_j^z[j]`` with phase in ``{0, 1, 2, 3}``
(powers of ``i``).  This is the standard symplectic representation used
by stabilizer simulators [Aaronson & Gottesman, PRA 70, 052328 (2004)].
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_CHAR_TO_XZ = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
_XZ_TO_CHAR = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}


@dataclass
class Pauli:
    """An n-qubit Pauli operator in symplectic form.

    Attributes:
        x: length-n binary array; ``x[j] = 1`` iff the operator acts with an
            X (or Y) on qubit ``j``.
        z: length-n binary array; ``z[j] = 1`` iff the operator acts with a
            Z (or Y) on qubit ``j``.
        phase: global phase exponent ``k`` such that the operator carries a
            prefactor ``i**k``.
    """

    x: np.ndarray
    z: np.ndarray
    phase: int = field(default=0)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.uint8) & 1
        self.z = np.asarray(self.z, dtype=np.uint8) & 1
        if self.x.shape != self.z.shape:
            raise ValueError("x and z parts must have equal length")
        self.phase = int(self.phase) % 4

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, num_qubits: int) -> "Pauli":
        """The identity operator on ``num_qubits`` qubits."""
        return cls(np.zeros(num_qubits, dtype=np.uint8),
                   np.zeros(num_qubits, dtype=np.uint8))

    @classmethod
    def from_label(cls, label: str) -> "Pauli":
        """Build a Pauli from a string such as ``"XIZY"`` or ``"-XZ"``.

        A leading ``+``/``-``/``i``/``-i`` sets the phase; remaining
        characters must be in ``IXYZ`` with qubit 0 first.
        """
        phase = 0
        if label.startswith("-i"):
            phase, label = 3, label[2:]
        elif label.startswith("i"):
            phase, label = 1, label[1:]
        elif label.startswith("-"):
            phase, label = 2, label[1:]
        elif label.startswith("+"):
            label = label[1:]
        try:
            pairs = [_CHAR_TO_XZ[c] for c in label]
        except KeyError as exc:
            raise ValueError(f"invalid Pauli character in {label!r}") from exc
        x = np.array([p[0] for p in pairs], dtype=np.uint8)
        z = np.array([p[1] for p in pairs], dtype=np.uint8)
        return cls(x, z, phase)

    @classmethod
    def single(cls, num_qubits: int, qubit: int, kind: str) -> "Pauli":
        """A single-qubit Pauli (``kind`` in ``"XYZ"``) embedded in n qubits."""
        pauli = cls.identity(num_qubits)
        xbit, zbit = _CHAR_TO_XZ[kind]
        pauli.x[qubit] = xbit
        pauli.z[qubit] = zbit
        return pauli

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self.x)

    @property
    def weight(self) -> int:
        """Number of qubits on which the operator acts non-trivially."""
        return int(np.count_nonzero(self.x | self.z))

    def to_label(self) -> str:
        """Render as a string, including a sign/phase prefix."""
        prefix = {0: "+", 1: "i", 2: "-", 3: "-i"}[self.phase]
        body = "".join(
            _XZ_TO_CHAR[(int(a), int(b))] for a, b in zip(self.x, self.z, strict=True)
        )
        return prefix + body

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def commutes_with(self, other: "Pauli") -> bool:
        """True iff the two operators commute (symplectic inner product 0)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("operator sizes differ")
        sym = int(np.sum(self.x & other.z) + np.sum(self.z & other.x))
        return sym % 2 == 0

    def compose(self, other: "Pauli") -> "Pauli":
        """Return the product ``self * other`` (self applied after other)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("operator sizes differ")
        # Phase bookkeeping: X^a Z^b * X^c Z^d picks up (-1)^(b*c) when
        # commuting Z past X, and Y = i X Z contributes i factors which we
        # track via the canonical form i^phase X^x Z^z.
        # Writing P = i^p1 X^x1 Z^z1, Q = i^p2 X^x2 Z^z2 (qubit-wise tensor),
        # P*Q = i^(p1+p2) (-1)^(z1.x2) X^(x1^x2) Z^(z1^z2) -- with x.z overlap
        # conventions: each qubit contributes i^(x*z) for the Y normalisation.
        # We adopt the convention phase counts i-powers of the *canonical*
        # representation i^p X^x Z^z, so composition needs only the
        # anticommutation sign from swapping Z1 past X2.
        sign_flips = int(np.sum(self.z & other.x)) % 2
        phase = (self.phase + other.phase + 2 * sign_flips) % 4
        return Pauli(self.x ^ other.x, self.z ^ other.z, phase)

    def __mul__(self, other: "Pauli") -> "Pauli":
        return self.compose(other)

    def equals_up_to_phase(self, other: "Pauli") -> bool:
        """True iff the operators match ignoring the global phase."""
        return (
            self.num_qubits == other.num_qubits
            and bool(np.array_equal(self.x, other.x))
            and bool(np.array_equal(self.z, other.z))
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pauli):
            return NotImplemented
        return self.equals_up_to_phase(other) and self.phase == other.phase

    def __hash__(self) -> int:
        return hash((self.x.tobytes(), self.z.tobytes(), self.phase))

    def support(self) -> list[int]:
        """Indices of qubits on which the operator acts non-trivially."""
        return [int(i) for i in np.nonzero(self.x | self.z)[0]]
