"""Syndrome-difference lattice: from sampled errors to active nodes.

For a distance-``d`` planar code's Z-lattice, syndrome nodes live on a
``(d-1) x d`` grid.  ``T`` noisy measurement rounds plus one final perfect
round give ``T + 1`` difference layers; a node ``(t, i, j)`` is *active*
when consecutive syndrome values differ (paper Fig. 2).

All extraction methods operate on the trailing ``(T, rows, cols)`` axes,
so a whole batch of shots can be processed in one call by passing
``(shots, T, rows, cols)`` arrays (the batched shot engine's layout);
time is always axis ``-3``.

The ``*_packed`` variants take the bit-packed layout of
:mod:`repro.sim.bitops` instead — ``(words, T, rows, cols)`` uint64
arrays holding 64 shots per word — and replace every cumulative-sum /
uint8-XOR pass with one word-wise XOR over 64 shots at a time.  They
produce bit-identical syndromes to the unpacked methods applied to the
same sampled bits; nothing is unpacked until a consumer asks for one
shot's active-node coordinates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


#: Shots per packed word — must equal :data:`repro.sim.bitops.WORD_BITS`
#: (kept as a local constant: importing ``repro.sim`` from here would
#: close a package cycle through the experiment modules).
_WORD_BITS = 64

_BACKEND = None


def _backend():
    """The array-backend seam, imported lazily (same package cycle)."""
    global _BACKEND
    if _BACKEND is None:
        from repro.sim import backend
        _BACKEND = backend
    return _BACKEND


class SyndromeLattice:
    """Computes syndrome layers and active nodes from error arrays.

    Args:
        distance: the code distance ``d``; node grid is ``(d-1) x d``.
    """

    def __init__(self, distance: int):
        if distance < 2:
            raise ValueError("distance must be >= 2")
        self.distance = distance
        self.node_rows = distance - 1
        self.node_cols = distance

    # ------------------------------------------------------------------
    def true_syndromes(self, v: np.ndarray, h: np.ndarray) -> np.ndarray:
        """Noiseless cumulative syndromes, shape ``(..., T, d-1, d)``.

        ``v``/``h`` are per-cycle data-edge flip arrays as produced by
        :class:`repro.noise.PhenomenologicalNoise.sample` (optionally with
        leading batch axes).  Entry ``t`` is the syndrome after the errors
        of cycles ``0..t``.
        """
        cum_v = np.cumsum(v, axis=-3) & 1
        cum_h = np.cumsum(h, axis=-3) & 1
        synd = (cum_v[..., :-1, :] ^ cum_v[..., 1:, :]).astype(np.uint8)
        synd[..., :-1] ^= cum_h.astype(np.uint8)
        synd[..., 1:] ^= cum_h.astype(np.uint8)
        return synd

    def measured_layers(self, v: np.ndarray, h: np.ndarray,
                        m: np.ndarray) -> np.ndarray:
        """Measured syndrome layers: T noisy rounds + 1 final perfect round.

        Shape ``(..., T + 1, d-1, d)``.
        """
        true = self.true_syndromes(v, h)
        cycles = v.shape[-3]
        shape = v.shape[:-3] + (cycles + 1, self.node_rows, self.node_cols)
        layers = np.empty(shape, dtype=np.uint8)
        layers[..., :cycles, :, :] = true ^ m.astype(np.uint8)
        layers[..., cycles, :, :] = true[..., cycles - 1, :, :]
        return layers

    def difference_lattice(self, layers: np.ndarray) -> np.ndarray:
        """Element-wise XOR of consecutive layers (first layer vs zero)."""
        diff = layers.copy()
        diff[..., 1:, :, :] ^= layers[..., :-1, :, :]
        return diff

    def active_nodes(self, diff: np.ndarray) -> np.ndarray:
        """Coordinates ``(t, i, j)`` of active nodes, shape ``(n, 3)``."""
        return np.argwhere(diff.astype(bool))

    def detection_events(self, v: np.ndarray, h: np.ndarray,
                         m: np.ndarray) -> np.ndarray:
        """Convenience: error arrays straight to active-node coordinates."""
        layers = self.measured_layers(v, h, m)
        return self.active_nodes(self.difference_lattice(layers))

    def detection_events_batch(self, v: np.ndarray, h: np.ndarray,
                               m: np.ndarray) -> list[np.ndarray]:
        """Per-shot active-node arrays for a ``(shots, T, ...)`` batch.

        Returns a list of ``(n_s, 3)`` coordinate arrays, one per shot,
        extracted with a single pass over the whole batch.
        """
        layers = self.measured_layers(v, h, m)
        coords = np.argwhere(self.difference_lattice(layers).astype(bool))
        shots = v.shape[0]
        # ``argwhere`` output is sorted by the leading (shot) axis, so one
        # searchsorted recovers the per-shot slices without a Python scan.
        bounds = np.searchsorted(coords[:, 0], np.arange(shots + 1))
        return [coords[bounds[s]:bounds[s + 1], 1:] for s in range(shots)]

    # ------------------------------------------------------------------
    # Bit-packed variants: (words, T, rows, cols) uint64, 64 shots/word.
    # ------------------------------------------------------------------
    def true_syndromes_packed(self, v: np.ndarray,
                              h: np.ndarray) -> np.ndarray:
        """Packed :meth:`true_syndromes`: XOR-scan instead of cumsum.

        The mod-2 cumulative sum along time becomes a single
        word-wise XOR scan over uint64 words, 64 shots per element
        (:func:`repro.sim.backend.xor_accumulate`, so the same code
        runs on the CuPy backend).
        """
        bk = _backend()
        cum_v = bk.xor_accumulate(v, axis=-3)
        cum_h = bk.xor_accumulate(h, axis=-3)
        synd = cum_v[..., :-1, :] ^ cum_v[..., 1:, :]
        synd[..., :-1] ^= cum_h
        synd[..., 1:] ^= cum_h
        return synd

    def measured_layers_packed(self, v: np.ndarray, h: np.ndarray,
                               m: np.ndarray) -> np.ndarray:
        """Packed :meth:`measured_layers`; shape ``(words, T+1, d-1, d)``."""
        xp = _backend().get_array_module(v)
        true = self.true_syndromes_packed(v, h)
        cycles = v.shape[-3]
        shape = v.shape[:-3] + (cycles + 1, self.node_rows, self.node_cols)
        layers = xp.empty(shape, dtype=xp.uint64)
        layers[..., :cycles, :, :] = true ^ m
        layers[..., cycles, :, :] = true[..., cycles - 1, :, :]
        return layers

    def per_cycle_activity_packed(self, v: np.ndarray, h: np.ndarray,
                                  m: np.ndarray) -> np.ndarray:
        """Packed :meth:`per_cycle_activity`; shape ``(words, T, d-1, d)``."""
        noisy = self.true_syndromes_packed(v, h) ^ m
        diff = noisy.copy()
        diff[..., 1:, :, :] ^= noisy[..., :-1, :, :]
        return diff

    def detection_events_packed(self, v: np.ndarray, h: np.ndarray,
                                m: np.ndarray):
        """Packed :meth:`detection_events_batch`: active nodes, still packed.

        Returns ``(coords, vals, bounds)`` as produced by
        :meth:`packed_active_nodes` on the difference lattice; feed them
        to :meth:`shot_nodes` to materialize one shot's coordinates.
        """
        diff = self.difference_lattice(self.measured_layers_packed(v, h, m))
        return self.packed_active_nodes(diff)

    @staticmethod
    def packed_active_nodes(diff: np.ndarray):
        """Index the nonzero words of a packed difference lattice.

        Returns ``(coords, vals, bounds)``: ``coords`` is the
        ``(n, 4)`` array of ``(word, t, i, j)`` positions where *any* of
        the 64 shots is active (lexicographically sorted, so each word's
        rows keep the unpacked ``argwhere`` order), ``vals`` the uint64
        word at each position, and ``bounds`` the per-word slice offsets
        into both.  This is the whole batch's syndrome in one sweep; no
        per-shot arrays exist yet.  Device inputs are reduced to these
        (small) index arrays and brought to the host here — the decoder
        consumes host coordinates.
        """
        bk = _backend()
        xp = bk.get_array_module(diff)
        coords = xp.argwhere(diff != 0)
        vals = diff[tuple(coords.T)] if len(coords) else \
            xp.zeros(0, dtype=xp.uint64)
        coords, vals = bk.to_numpy(coords), bk.to_numpy(vals)
        bounds = np.searchsorted(coords[:, 0], np.arange(diff.shape[0] + 1))
        return coords, vals, bounds

    @staticmethod
    def shot_nodes(coords: np.ndarray, vals: np.ndarray, bounds: np.ndarray,
                   shot: int, t_stop: Optional[int] = None) -> np.ndarray:
        """One shot's active-node coordinates from packed nonzero words.

        Selects the rows of ``coords`` whose word holds ``shot``'s lane
        bit (optionally restricted to layers ``t < t_stop``); the result
        is exactly what :meth:`detection_events` returns for that shot's
        bits, in the same ``(t, i, j)`` order.
        """
        w, b = divmod(shot, _WORD_BITS)
        lo, hi = int(bounds[w]), int(bounds[w + 1])
        sel = ((vals[lo:hi] >> np.uint64(b)) & np.uint64(1)).astype(bool)
        if t_stop is not None:
            sel &= coords[lo:hi, 1] < t_stop
        return coords[lo:hi, 1:][sel]

    @staticmethod
    def shot_nodes_bulk(coords: np.ndarray, vals: np.ndarray,
                        shots: int) -> tuple[np.ndarray, np.ndarray]:
        """Every shot's active nodes in one vectorized lane unpack.

        Returns ``(nodes, offsets)``: ``nodes`` is the ``(N, 3)``
        concatenation of all shots' ``(t, i, j)`` coordinates and
        ``offsets`` the ``(shots + 1,)`` slice bounds, so that
        ``nodes[offsets[s]:offsets[s + 1]]`` equals
        :meth:`shot_nodes` for shot ``s`` bit for bit.  This replaces
        ``shots`` per-shot lane extractions with one ``unpackbits`` +
        one stable counting sort — the batched decode engine's entry
        point.
        """
        offsets = np.zeros(shots + 1, dtype=np.int64)
        if not len(coords):
            return np.zeros((0, 3), dtype=coords.dtype), offsets
        as_bytes = np.ascontiguousarray(
            vals.astype("<u8", copy=False)[:, None]).view(np.uint8)
        lanes = np.unpackbits(as_bytes, axis=-1, bitorder="little")
        rows, lane_idx = np.nonzero(lanes)
        shot_ids = (coords[rows, 0] * _WORD_BITS
                    + lane_idx).astype(np.int32)
        keep = shot_ids < shots  # zero-filled tail lanes never fire
        rows, shot_ids = rows[keep], shot_ids[keep]
        order = np.argsort(shot_ids, kind="stable")
        nodes = coords[rows[order], 1:]
        offsets = np.searchsorted(shot_ids[order], np.arange(shots + 1))
        return nodes, offsets

    @staticmethod
    def error_cut_parity_packed(v: np.ndarray) -> np.ndarray:
        """Packed :meth:`error_cut_parity`: one parity word per 64 shots.

        Bit ``s % 64`` of word ``s // 64`` is shot ``s``'s north-cut
        error parity — the mod-2 flip count collapses to an XOR
        reduction over the ``k = 0`` vertical edges.
        """
        north = v[:, :, 0, :]
        return _backend().xor_reduce(
            north.reshape(north.shape[0], -1), axis=1)

    @staticmethod
    def north_cut_prefix_packed(v: np.ndarray) -> np.ndarray:
        """Running north-cut parities, packed: shape ``(words, T)``.

        Bit ``s % 64`` of ``[s // 64, t]`` is the error cut parity of
        shot ``s`` truncated after cycle ``t`` (i.e. of ``v[:t + 1]``),
        which is what the end-to-end kernel scores shots against when a
        detection stops the run early.
        """
        bk = _backend()
        per_cycle = bk.xor_reduce(v[:, :, 0, :], axis=-1)
        return bk.xor_accumulate(per_cycle, axis=1)

    # ------------------------------------------------------------------
    @staticmethod
    def error_cut_parity(v: np.ndarray):
        """Parity of error flips crossing the north-boundary cut.

        The residual operator is a logical X iff error XOR correction
        crosses the north cut an odd number of times; the error part of
        that parity is the total number of flips of the ``k = 0`` vertical
        edges over all cycles, mod 2.  For a single shot (3D input)
        returns an ``int``; for batched input returns an integer array
        over the leading axes.
        """
        parity = v[..., 0, :].sum(axis=(-2, -1)).astype(np.int64) & 1
        if v.ndim == 3:
            return int(parity)
        return parity

    def per_cycle_activity(self, v: np.ndarray, h: np.ndarray,
                           m: np.ndarray) -> np.ndarray:
        """Per-cycle node activity stream for the anomaly detection unit.

        Returns the difference lattice restricted to the noisy rounds
        (shape ``(..., T, d-1, d)``): what the `anomaly detection unit`
        sees as cycles stream in (the final perfect round is an analysis
        artifact, not part of the live stream).
        """
        true = self.true_syndromes(v, h)
        noisy = true ^ m.astype(np.uint8)
        diff = noisy.copy()
        diff[..., 1:, :, :] ^= noisy[..., :-1, :, :]
        return diff
