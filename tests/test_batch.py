"""Tests for the batched shot engine (repro.sim.batch)."""

import numpy as np
import pytest

from repro.decoding import (
    DistanceModel,
    GreedyDecoder,
    FastGreedyDecoder,
    SyndromeLattice,
    greedy_cut_parity,
    greedy_decode_fast,
)
from repro.noise import AnomalousRegion, PhenomenologicalNoise
from repro.sim import bitops
from repro.sim.batch import (
    BatchShotRunner,
    DetectionShotKernel,
    EndToEndShotKernel,
    MatchingCache,
    MemoryShotKernel,
)
from repro.sim.detection import run_detection_trials
from repro.sim.endtoend import EndToEndExperiment
from repro.sim.memory import MemoryExperiment

from reference_engines import (reference_detection_trials,
                               reference_endtoend_run)


class TestBatchedPrimitives:
    """sample_batch / batched lattice extraction agree with the
    per-shot primitives they replace."""

    def test_sample_batch_shapes(self, rng):
        noise = PhenomenologicalNoise(5, 0.05)
        v, h, m = noise.sample_batch(7, 3, rng)
        assert v.shape == (7, 3, 5, 5)
        assert h.shape == (7, 3, 4, 4)
        assert m.shape == (7, 3, 4, 5)

    def test_sample_batch_rejects_zero_shots(self, rng):
        with pytest.raises(ValueError):
            PhenomenologicalNoise(5, 0.05).sample_batch(0, 3, rng)

    def test_single_shot_bitwise_matches_sample(self):
        """sample() draws the same uniforms as a one-shot batch."""
        region = AnomalousRegion(1, 1, 2, t_lo=1)
        noise = PhenomenologicalNoise(5, 0.05, 0.5, region)
        v1, h1, m1 = noise.sample(4, np.random.default_rng(3))
        vb, hb, mb = noise.sample_batch(1, 4, np.random.default_rng(3))
        assert np.array_equal(v1, vb[0])
        assert np.array_equal(h1, hb[0])
        assert np.array_equal(m1, mb[0])

    def test_detection_events_batch_matches_per_shot(self, rng):
        noise = PhenomenologicalNoise(7, 0.03, 0.5,
                                      AnomalousRegion.centered(7, 2))
        lattice = SyndromeLattice(7)
        v, h, m = noise.sample_batch(9, 7, rng)
        batched = lattice.detection_events_batch(v, h, m)
        assert len(batched) == 9
        for s in range(9):
            single = lattice.detection_events(v[s], h[s], m[s])
            assert np.array_equal(batched[s], single)

    def test_error_cut_parity_batched(self, rng):
        v = rng.random((6, 4, 5, 5)) < 0.2
        batched = SyndromeLattice.error_cut_parity(v)
        assert batched.shape == (6,)
        for s in range(6):
            single = SyndromeLattice.error_cut_parity(v[s])
            assert isinstance(single, int)
            assert batched[s] == single

    def test_per_cycle_activity_batched(self, rng):
        noise = PhenomenologicalNoise(5, 0.05)
        lattice = SyndromeLattice(5)
        v, h, m = noise.sample_batch(4, 6, rng)
        batched = lattice.per_cycle_activity(v, h, m)
        for s in range(4):
            assert np.array_equal(
                batched[s], lattice.per_cycle_activity(v[s], h[s], m[s]))


class TestFastGreedyEquivalence:
    """The batch engine's matching core is exactly the legacy decoder."""

    @staticmethod
    def _models(rng, d):
        yield DistanceModel(d)
        yield DistanceModel(
            d, AnomalousRegion(int(rng.integers(0, 3)),
                               int(rng.integers(0, 3)),
                               int(rng.integers(1, 5)),
                               t_lo=int(rng.integers(0, 3))), 0.0)
        yield DistanceModel(d, AnomalousRegion(1, 1, 3),
                            float(rng.random()))

    def test_fast_matches_legacy_exactly(self, rng):
        for _ in range(40):
            d = int(rng.integers(5, 12))
            n = int(rng.integers(0, 70))
            nodes = np.column_stack([
                rng.integers(0, d + 1, n), rng.integers(0, d - 1, n),
                rng.integers(0, d, n)])
            for model in self._models(rng, d):
                legacy = GreedyDecoder(model).decode(nodes)
                fast = greedy_decode_fast(model, nodes)
                assert legacy.matches == fast.matches
                assert legacy.weight == pytest.approx(fast.weight)
                assert (greedy_cut_parity(model, nodes)
                        == legacy.correction_cut_parity)

    def test_fast_decoder_class_wraps_core(self, rng):
        model = DistanceModel(9)
        nodes = np.column_stack([
            rng.integers(0, 9, 20), rng.integers(0, 8, 20),
            rng.integers(0, 9, 20)])
        assert (FastGreedyDecoder(model).decode(nodes).matches
                == GreedyDecoder(model).decode(nodes).matches)

    def test_pairwise_fast_is_float_exact(self, rng):
        for _ in range(30):
            d = int(rng.integers(5, 12))
            n = int(rng.integers(1, 40))
            nodes = np.column_stack([
                rng.integers(0, d + 1, n), rng.integers(0, d - 1, n),
                rng.integers(0, d, n)])
            for model in self._models(rng, d):
                assert np.array_equal(model.pairwise(nodes),
                                      model.pairwise_fast(nodes))

    def test_pairwise_int_declines_weighted_region(self):
        model = DistanceModel(9, AnomalousRegion(1, 1, 3), 0.4)
        assert model.pairwise_int(np.array([[0, 1, 2]])) is None

    def test_huge_explicit_t_hi_stays_exact(self):
        """Regression: an int16 cast of far-future box bounds used to
        wrap and corrupt every fast-path distance."""
        model = DistanceModel(9, AnomalousRegion(1, 1, 3, t_hi=100_000), 0.0)
        nodes = np.array([[0, 0, 0], [0, 7, 8], [5, 3, 3], [5, 4, 3]])
        assert np.array_equal(model.pairwise(nodes),
                              model.pairwise_fast(nodes))
        assert (GreedyDecoder(model).decode(nodes).matches
                == greedy_decode_fast(model, nodes).matches)

    def test_overwrite_anomalous_honors_time_bounds(self):
        from repro.sim.batch import _overwrite_anomalous
        region = AnomalousRegion(1, 1, 2, t_lo=2, t_hi=4)
        v = np.zeros((1, 8, 5, 5), dtype=bool)
        h = np.zeros((1, 8, 4, 4), dtype=bool)
        m = np.zeros((1, 8, 4, 5), dtype=bool)
        _overwrite_anomalous(v, h, m, 0, region, 5, 1.0,
                             np.random.default_rng(0))
        assert v[0, 2:4].any() and m[0, 2:4].any()
        for arr in (v, h, m):
            assert not arr[0, :2].any()
            assert not arr[0, 4:].any()


class TestBitops:
    """Pack/unpack/popcount helpers for the uint64 backend."""

    def test_word_count(self):
        assert bitops.word_count(1) == 1
        assert bitops.word_count(64) == 1
        assert bitops.word_count(65) == 2
        with pytest.raises(ValueError):
            bitops.word_count(0)

    @pytest.mark.parametrize("shots", [1, 37, 64, 130, 513])
    def test_pack_round_trip(self, rng, shots):
        bits = rng.random((shots, 3, 4, 5)) < 0.3
        words = bitops.pack_shots(bits)
        assert words.dtype == np.uint64
        assert words.shape == (bitops.word_count(shots), 3, 4, 5)
        assert np.array_equal(bitops.unpack_shots(words, shots), bits)

    def test_lane_extracts_one_shot(self, rng):
        bits = rng.random((130, 6, 2, 3)) < 0.4
        words = bitops.pack_shots(bits)
        for s in (0, 63, 64, 129):
            assert np.array_equal(bitops.lane(words, s),
                                  bits[s].astype(np.uint8))

    def test_tail_lanes_zero_filled(self):
        words = bitops.pack_shots(np.ones((70, 2), dtype=bool))
        assert bitops.popcount(words).sum() == 70 * 2  # not 128 * 2

    def test_popcount(self, rng):
        bits = rng.random((256, 5, 7)) < 0.5
        words = bitops.pack_shots(bits)
        assert bitops.popcount(words).sum() == bits.sum()
        assert np.array_equal(bitops.popcount(words).sum(axis=0),
                              bits.sum(axis=0))


class TestPackedSampling:
    """sample_batch_packed consumes the identical uniform stream as the
    float path: packed bits equal the float path's bits per seed."""

    REGIONS = [
        None,
        AnomalousRegion(1, 1, 2, t_lo=1),              # open time window
        AnomalousRegion(0, 0, 2, t_lo=2, t_hi=4),      # clipped window
        AnomalousRegion(1, 0, 3, t_lo=0, t_hi=100),    # t_hi past the run
        AnomalousRegion(0, 0, 2, t_lo=50),             # never active
    ]

    @pytest.mark.parametrize("shots", [1, 37, 64, 130])
    @pytest.mark.parametrize("distance", [3, 5])
    def test_bit_identical_to_float_path(self, shots, distance):
        for region in self.REGIONS:
            noise = PhenomenologicalNoise(distance, 0.05, 0.5, region)
            ref = noise.sample_batch(shots, 6, np.random.default_rng(42))
            packed = noise.sample_batch_packed(
                shots, 6, np.random.default_rng(42))
            for a, b in zip(ref, packed, strict=True):
                assert b.dtype == np.uint64
                assert np.array_equal(bitops.unpack_shots(b, shots), a), \
                    (shots, distance, region)

    def test_spans_multiple_sample_chunks(self):
        """Shots crossing the word-aligned scratch-block boundary still
        reproduce the one-big-call uniform stream."""
        noise = PhenomenologicalNoise(3, 0.1, 0.5,
                                      AnomalousRegion(0, 0, 1, t_lo=1))
        shots = 300  # chunk is 64: five blocks, the last one partial
        ref = noise.sample_batch(shots, 4, np.random.default_rng(8))
        packed = noise.sample_batch_packed(shots, 4,
                                           np.random.default_rng(8))
        for a, b in zip(ref, packed, strict=True):
            assert np.array_equal(bitops.unpack_shots(b, shots), a)

    def test_rejects_zero_shots(self, rng):
        with pytest.raises(ValueError):
            PhenomenologicalNoise(5, 0.05).sample_batch_packed(0, 3, rng)


class TestPackedExtraction:
    """Word-wise syndrome extraction equals the uint8 reference."""

    def _arrays(self, d, shots, cycles, seed, region=None):
        noise = PhenomenologicalNoise(d, 0.05, 0.5, region)
        v, h, m = noise.sample_batch(shots, cycles,
                                     np.random.default_rng(seed))
        vw, hw, mw = noise.sample_batch_packed(shots, cycles,
                                               np.random.default_rng(seed))
        return (v, h, m), (vw, hw, mw)

    @pytest.mark.parametrize("distance", [3, 5])
    def test_layers_and_activity(self, distance):
        shots = 70
        (v, h, m), (vw, hw, mw) = self._arrays(distance, shots, 5, 2)
        lattice = SyndromeLattice(distance)
        assert np.array_equal(
            bitops.unpack_shots(lattice.measured_layers_packed(vw, hw, mw),
                                shots).astype(np.uint8),
            lattice.measured_layers(v, h, m))
        assert np.array_equal(
            bitops.unpack_shots(
                lattice.per_cycle_activity_packed(vw, hw, mw),
                shots).astype(np.uint8),
            lattice.per_cycle_activity(v, h, m))

    @pytest.mark.parametrize("distance", [3, 5])
    def test_detection_events(self, distance):
        shots = 130
        (v, h, m), (vw, hw, mw) = self._arrays(
            distance, shots, 6, 3, AnomalousRegion(0, 0, 2, t_lo=2))
        lattice = SyndromeLattice(distance)
        ref = lattice.detection_events_batch(v, h, m)
        coords, vals, bounds = lattice.detection_events_packed(vw, hw, mw)
        for s in range(shots):
            assert np.array_equal(
                lattice.shot_nodes(coords, vals, bounds, s), ref[s]), s

    def test_cut_parities(self):
        shots = 130
        (v, _, _), (vw, _, _) = self._arrays(5, shots, 6, 4)
        lattice = SyndromeLattice(5)
        ref = lattice.error_cut_parity(v)
        words = lattice.error_cut_parity_packed(vw)
        prefix = lattice.north_cut_prefix_packed(vw)
        for s in range(shots):
            assert ((int(words[s // 64]) >> (s % 64)) & 1) == ref[s]
            for stop in (1, 3, 6):
                assert ((int(prefix[s // 64, stop - 1]) >> (s % 64)) & 1) \
                    == lattice.error_cut_parity(v[s, :stop])


class TestPackedKernelEquivalence:
    """The packed backend is bit-identical to the float reference for
    the same seed — the certification seam of the whole engine."""

    REGIONS = [None,
               AnomalousRegion(0, 0, 2, t_lo=1, t_hi=3),
               AnomalousRegion(1, 1, 2, t_lo=2)]

    @pytest.mark.parametrize("shots", [37, 130])
    @pytest.mark.parametrize("distance", [3, 5])
    def test_memory_kernel(self, shots, distance):
        for region in self.REGIONS:
            kernel = MemoryShotKernel(distance, 0.04, region=region)
            kernel.prepare()
            ref = kernel.run_batch(shots, np.random.default_rng(7))
            packed = kernel.run_batch_packed(shots,
                                             np.random.default_rng(7))
            assert np.array_equal(ref, packed), (shots, distance, region)

    def test_memory_kernel_mwpm(self):
        kernel = MemoryShotKernel(5, 0.03, decoder="mwpm")
        kernel.prepare()
        ref = kernel.run_batch(70, np.random.default_rng(5))
        packed = kernel.run_batch_packed(70, np.random.default_rng(5))
        assert np.array_equal(ref, packed)

    @pytest.mark.parametrize("distance", [3, 5])
    def test_endtoend_kernel(self, distance):
        kernel = EndToEndShotKernel(distance, 0.01, 0.5, anomaly_size=2,
                                    onset=30, cycles=70, c_win=25,
                                    n_th=3, alpha=0.01)
        kernel.prepare()
        ref = kernel.run_batch(37, np.random.default_rng(3))
        packed = kernel.run_batch_packed(37, np.random.default_rng(3))
        assert np.array_equal(ref, packed)

    @pytest.mark.parametrize("distance", [3, 5])
    def test_detection_kernel(self, distance):
        kernel = DetectionShotKernel(distance, 2e-3, 0.05, anomaly_size=2,
                                     c_win=40, n_th=3, alpha=0.01,
                                     normal_cycles=80, post_cycles=160)
        kernel.prepare()
        ref = kernel.run_batch(17, np.random.default_rng(5))
        packed = kernel.run_batch_packed(17, np.random.default_rng(5))
        assert np.array_equal(ref, packed, equal_nan=True)

    def test_runner_packing_knob(self):
        a = BatchShotRunner(MemoryShotKernel(5, 0.03), seed=11,
                            packing="none").run(300)
        b = BatchShotRunner(MemoryShotKernel(5, 0.03), seed=11,
                            packing="bits").run(300)
        assert np.array_equal(a.outcomes, b.outcomes)
        with pytest.raises(ValueError):
            BatchShotRunner(MemoryShotKernel(5, 0.03), packing="words")

    def test_experiment_entry_points_accept_packing(self):
        exp = MemoryExperiment(5, 0.02)
        bits = exp.run(200, workers=1, seed=9, packing="bits")
        none = exp.run(200, workers=1, seed=9, packing="none")
        assert bits.failures == none.failures
        perf_b = run_detection_trials(5, 2e-3, 0.05, anomaly_size=2,
                                      c_win=40, n_th=3, trials=5, seed=2,
                                      workers=1, packing="bits")
        perf_n = run_detection_trials(5, 2e-3, 0.05, anomaly_size=2,
                                      c_win=40, n_th=3, trials=5, seed=2,
                                      workers=1, packing="none")
        assert perf_b.false_positives == perf_n.false_positives
        assert perf_b.detections == perf_n.detections
        assert np.isclose(perf_b.mean_latency, perf_n.mean_latency,
                          equal_nan=True)
        assert np.isclose(perf_b.mean_position_error,
                          perf_n.mean_position_error, equal_nan=True)

    def test_pool_runs_packed(self):
        solo = BatchShotRunner(MemoryShotKernel(5, 0.03), batch_size=50,
                               seed=5, packing="bits").run(150)
        pooled = BatchShotRunner(MemoryShotKernel(5, 0.03), workers=2,
                                 batch_size=50, seed=5,
                                 packing="bits").run(150)
        assert np.array_equal(solo.outcomes, pooled.outcomes)


class TestMatchingCache:
    def test_cache_is_pure_memoization(self):
        calls = []

        def compute(nodes):
            calls.append(nodes.copy())
            return int(len(nodes)) & 1

        cache = MatchingCache()
        nodes = np.array([[0, 1, 2], [1, 1, 3]])
        assert cache.parity(nodes, compute) == 0
        assert cache.parity(nodes, compute) == 0
        assert len(calls) == 1
        assert cache.hits == 1

    def test_large_sets_bypass(self):
        cache = MatchingCache(max_nodes=2)
        nodes = np.zeros((3, 3), dtype=np.intp)
        cache.parity(nodes, lambda n: 1)
        cache.parity(nodes, lambda n: 1)
        assert cache.hits == 0 and len(cache) == 0

    def test_table_bounded_by_lru_eviction(self):
        cache = MatchingCache(max_entries=2)
        for k in range(5):
            cache.parity(np.array([[k, 0, 0]]), lambda n: 0)
        assert len(cache) == 2
        assert cache.evictions == 3
        # The most recently used entries survive.
        assert cache.get(np.array([[4, 0, 0]]).tobytes()) == 0
        assert cache.get(np.array([[0, 0, 0]]).tobytes()) is None

    def test_cached_and_uncached_runs_agree(self):
        """Satellite: memoized matchings must not change outcomes, and
        low-p campaigns must actually hit the cache."""
        cached = BatchShotRunner(MemoryShotKernel(5, 0.005), seed=3).run(2000)
        uncached = BatchShotRunner(
            MemoryShotKernel(5, 0.005, cache_matchings=False),
            seed=3).run(2000)
        assert np.array_equal(cached.outcomes, uncached.outcomes)
        assert cached.cache_hits > 0
        assert uncached.cache_hits == 0

    def test_cache_hits_reported_from_pool(self):
        result = BatchShotRunner(MemoryShotKernel(5, 0.005), workers=2,
                                 batch_size=500, seed=3).run(2000)
        assert result.cache_hits > 0


class TestBatchRunner:
    def _kernel(self):
        return MemoryShotKernel(5, 0.03)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            BatchShotRunner(self._kernel(), workers=-1)
        with pytest.raises(ValueError):
            BatchShotRunner(self._kernel(), batch_size=0)
        with pytest.raises(ValueError):
            BatchShotRunner(self._kernel()).run(0)

    def test_deterministic_for_fixed_seed(self):
        a = BatchShotRunner(self._kernel(), seed=11).run(300)
        b = BatchShotRunner(self._kernel(), seed=11).run(300)
        assert np.array_equal(a.outcomes, b.outcomes)
        assert a.estimate.successes == b.estimate.successes

    def test_partial_final_batch(self):
        result = BatchShotRunner(self._kernel(), batch_size=64,
                                 seed=1).run(100)
        assert result.shots == 100
        assert result.estimate.trials == 100

    def test_outcomes_independent_of_batching_workers(self):
        """Chunk seeds come from one SeedSequence: the pool must return
        exactly the in-process outcomes."""
        solo = BatchShotRunner(self._kernel(), batch_size=50,
                               seed=5).run(150)
        pooled = BatchShotRunner(self._kernel(), workers=2, batch_size=50,
                                 seed=5).run(150)
        assert np.array_equal(solo.outcomes, pooled.outcomes)

    def test_early_stop_on_tight_wilson_interval(self):
        kernel = MemoryShotKernel(3, 0.15)  # high failure rate: converges
        runner = BatchShotRunner(kernel, batch_size=128, seed=2)
        result = runner.run(100_000, target_rel_width=0.5)
        assert result.stopped_early
        assert result.shots < 100_000
        lo, hi = result.estimate.interval
        assert (hi - lo) <= 0.5 * result.estimate.mean

    def test_no_early_stop_without_target(self):
        result = BatchShotRunner(self._kernel(), batch_size=128,
                                 seed=3).run(256)
        assert not result.stopped_early
        assert result.shots == 256


class TestMemoryBatchEquivalence:
    def test_batch_matches_sequential_distribution(self):
        """Same error model through both engines: the failure rates must
        agree within Monte-Carlo resolution."""
        exp = MemoryExperiment(7, 0.02,
                               region=AnomalousRegion.centered(7, 2))
        samples = 800
        seq = exp.run(samples, np.random.default_rng(21))
        bat = exp.run(samples, workers=1, seed=21)
        p = (seq.per_run + bat.per_run) / 2
        se = np.sqrt(max(2 * p * (1 - p) / samples, 1e-9))
        assert abs(seq.per_run - bat.per_run) < 5 * se

    def test_batch_deterministic_and_worker_invariant(self):
        exp = MemoryExperiment(7, 0.02, region=AnomalousRegion.centered(7, 2))
        one = exp.run(200, workers=1, seed=9)
        again = exp.run(200, workers=1, seed=9)
        pooled = exp.run(200, workers=2, seed=9)
        assert one.failures == again.failures == pooled.failures

    def test_mwpm_kernel_path(self):
        est = MemoryExperiment(5, 0.02, decoder="mwpm").run(
            60, workers=1, seed=4)
        assert est.samples == 60
        assert 0 <= est.failures <= 60

    def test_early_stop_via_experiment(self):
        exp = MemoryExperiment(3, 0.15)
        est = exp.run(50_000, workers=1, seed=13, target_rel_width=0.5)
        assert est.samples < 50_000


class TestEndToEndBatch:
    def test_batched_campaign_deterministic_and_pool_invariant(self):
        exp = EndToEndExperiment(9, 0.008, anomaly_size=3, onset=60,
                                 cycles=140, c_win=50, n_th=6)
        a = exp.run(24, workers=1, seed=31, batch_size=12)
        b = exp.run(24, workers=1, seed=31, batch_size=12)
        c = exp.run(24, workers=2, seed=31, batch_size=12)
        for res in (b, c):
            assert res.naive_failures == a.naive_failures
            assert res.detected_failures == a.detected_failures
            assert res.oracle_failures == a.oracle_failures
            assert res.detections == a.detections

    def test_batched_campaign_detects_strikes(self):
        exp = EndToEndExperiment(9, 0.008, anomaly_size=3, onset=60,
                                 cycles=140, c_win=50, n_th=6)
        res = exp.run(24, workers=1, seed=31)
        assert res.detection_rate > 0.7
        assert res.mean_latency >= 0

    @pytest.mark.slow
    def test_batch_matches_sequential_distribution(self):
        """Both engines score the same experiment: every failure rate
        must agree within Monte-Carlo resolution."""
        exp = EndToEndExperiment(9, 0.008, anomaly_size=3, onset=60,
                                 cycles=140, c_win=50, n_th=6)
        shots = 120
        seq = reference_endtoend_run(exp, shots, np.random.default_rng(41))
        bat = exp.run(shots, workers=1, seed=41)
        for key in ("naive", "detected", "oracle"):
            p = (seq.rates()[key] + bat.rates()[key]) / 2
            se = np.sqrt(max(2 * p * (1 - p) / shots, 1e-9))
            assert abs(seq.rates()[key] - bat.rates()[key]) < 5 * se, key
        assert abs(seq.detection_rate - bat.detection_rate) < 0.25


class TestDetectionTrialsBatch:
    def test_batched_trials_deterministic_and_pool_invariant(self):
        kwargs = dict(distance=11, p=1e-3, p_ano=0.05, anomaly_size=3,
                      c_win=120, n_th=8, trials=6, seed=17)
        a = run_detection_trials(workers=1, **kwargs)
        b = run_detection_trials(workers=1, **kwargs)
        c = run_detection_trials(workers=2, **kwargs)
        assert a.detections == b.detections == c.detections
        assert a.false_positives == b.false_positives == c.false_positives

    def test_batched_trials_find_the_anomaly(self):
        perf = run_detection_trials(
            11, 1e-3, 0.05, anomaly_size=3, c_win=120, n_th=8,
            trials=6, seed=17, workers=1)
        assert perf.miss_rate == 0.0
        assert perf.mean_position_error < 4.0

    @pytest.mark.slow
    def test_batch_matches_sequential_distribution(self):
        """The windowed-count scan must reproduce the streamed unit's
        outcomes within Monte-Carlo resolution."""
        kwargs = dict(distance=11, p=1e-3, p_ano=0.05, anomaly_size=3,
                      c_win=100, n_th=8, trials=16)
        seq = reference_detection_trials(seed=23, **kwargs)
        bat = run_detection_trials(seed=23, workers=1, **kwargs)
        assert seq.miss_rate == bat.miss_rate == 0.0
        assert abs(seq.false_positive_rate - bat.false_positive_rate) <= 0.5
        assert abs(seq.mean_latency - bat.mean_latency) <= 10
        assert abs(seq.mean_position_error - bat.mean_position_error) <= 2.0
