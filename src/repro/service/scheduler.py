"""Coalescing, fair campaign scheduling for the service.

Two serving properties live here:

* **Duplicate coalescing** — concurrent identical submissions (same
  spec hash) attach to one in-flight :class:`Job`: one compute, N
  responses.  The job registry is keyed by spec hash; the store is
  re-checked inside the worker right before computing, so a submission
  that raced a completion still becomes a cache read, not a recompute.
* **Per-tenant round-robin fairness** — each tenant (the
  ``X-Repro-Tenant`` request header; ``"public"`` when absent) has its
  own FIFO queue, and worker threads take the *next tenant's* head job,
  rotating tenants each dispatch.  A tenant that floods the server with
  a grid sweep delays its own queue, not everyone else's.

Workers run campaigns through the ordinary
:func:`repro.campaigns.run` with the service's checkpoint store and
``refine=True``, so cache misses still reuse every compatible sibling
chunk (incremental refinement), and a crash mid-campaign leaves a shard
the next submission resumes.
"""

from __future__ import annotations

import collections
import threading
from typing import Callable, Optional

from repro import campaigns
from repro.campaigns.executors import Executor
from repro.service.store import ServiceStore


class Job:
    """One submitted campaign: many submitters, one compute."""

    def __init__(self, spec: object, spec_hash: str, tenant: str):
        self.spec = spec
        self.spec_hash = spec_hash
        self.tenant = tenant
        #: ``queued`` -> ``running`` -> ``complete`` | ``failed``.
        self.state = "queued"
        #: The stored result record once complete.
        self.record: Optional[dict] = None
        self.error: Optional[str] = None
        #: How many submissions coalesced onto this job.
        self.submissions = 1
        self.done = threading.Event()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job completes or fails."""
        return self.done.wait(timeout)

    def snapshot(self) -> dict:
        """The job's status document (what the HTTP layer serves)."""
        return {"status": self.state, "spec_hash": self.spec_hash,
                "tenant": self.tenant, "submissions": self.submissions}


class Scheduler:
    """Thread-pool campaign runner with coalescing and tenant fairness."""

    def __init__(self, store: ServiceStore,
                 executor_factory: Callable[[], Executor],
                 threads: int = 2, refine: bool = True):
        self._store = store
        self._factory = executor_factory
        self._refine = refine
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queues: dict[str, collections.deque] = {}
        self._tenants: collections.deque = collections.deque()
        #: Queued + running jobs by spec hash (the coalescing map).
        self._active: dict[str, Job] = {}
        #: Last failed job per spec hash (cleared on resubmission).
        self._failed: dict[str, Job] = {}
        self._stop = False
        #: Campaigns actually computed (cache hits do not count).
        self.jobs_run = 0
        self._threads = [
            threading.Thread(target=self._work, name=f"repro-campaign-{i}",
                             daemon=True)
            for i in range(max(1, threads))]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    def submit(self, spec: object, tenant: str = "public") -> tuple[Job, bool]:
        """Enqueue a campaign (or coalesce onto the in-flight one).

        Returns ``(job, coalesced)``: ``coalesced`` is True when an
        identical submission was already queued or running, in which
        case no new compute was scheduled.  Resubmitting a previously
        *failed* spec clears the failure and retries.
        """
        h = campaigns.spec_hash(spec)
        with self._cond:
            job = self._active.get(h)
            if job is not None:
                job.submissions += 1
                return job, True
            self._failed.pop(h, None)
            job = Job(spec, h, tenant)
            self._active[h] = job
            queue = self._queues.get(tenant)
            if queue is None:
                queue = self._queues[tenant] = collections.deque()
                self._tenants.append(tenant)
            queue.append(job)
            self._cond.notify()
        return job, False

    def job(self, spec_hash: str) -> Optional[Job]:
        """The active or last-failed job for a spec hash, if any."""
        with self._lock:
            return self._active.get(spec_hash) or self._failed.get(spec_hash)

    def stats(self) -> dict:
        """Counters for the health endpoint."""
        with self._lock:
            return {"jobs_run": self.jobs_run,
                    "active": len(self._active),
                    "failed": len(self._failed),
                    "tenants": len(self._queues),
                    "threads": len(self._threads)}

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the worker threads (running campaigns finish first)."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout)

    # ------------------------------------------------------------------
    def _next_job(self) -> Optional[Job]:
        """Round-robin dequeue (caller holds the lock).

        The head tenant rotates to the back as its job is taken, so
        sustained dispatches alternate across every tenant with queued
        work — a backlogged tenant waits on itself, not on the ring.
        """
        for _ in range(len(self._tenants)):
            tenant = self._tenants[0]
            self._tenants.rotate(-1)
            queue = self._queues.get(tenant)
            if queue:
                return queue.popleft()
        return None

    def _work(self) -> None:
        while True:
            with self._cond:
                job = self._next_job()
                while job is None and not self._stop:
                    self._cond.wait()
                    job = self._next_job()
                if job is None:
                    return
                job.state = "running"
            self._execute(job)

    def _execute(self, job: Job) -> None:
        try:
            record = self._store.results.get(job.spec)
            if record is None:
                result = campaigns.run(job.spec,
                                       executor=self._factory(),
                                       checkpoint=self._store.checkpoints,
                                       refine=self._refine)
                record = self._store.results.put(job.spec, result)
                with self._lock:
                    self.jobs_run += 1
            job.record = record
            job.state = "complete"
        except Exception as exc:  # noqa: B902 - a failed campaign must
            # surface as a failed job (HTTP 500), never kill the worker.
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = "failed"
        finally:
            with self._lock:
                self._active.pop(job.spec_hash, None)
                if job.state == "failed":
                    self._failed[job.spec_hash] = job
            job.done.set()
