"""Memory-overhead model for the Q3DE buffers (paper Table III).

Closed-form sizes per logical qubit, both syndrome lattices counted
(the ``2 d^2`` prefactor):

* syndrome queue:        ``2 d^2 (c_win + sqrt(2 c_win))`` bits
* active node counter:   ``2 d^2 log2(c_win)`` bits
* matching queue:        ``2 d^2 sqrt(c_win / 2)`` bits
* instruction history buffer / expansion queue: negligible

The MBBE-free baseline retains only ``d`` layers: ``2 d^3`` bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryOverheadModel:
    """Evaluates Table III for a given ``d`` and ``c_win``."""

    distance: int
    c_win: int

    def __post_init__(self) -> None:
        if self.distance < 2 or self.c_win < 1:
            raise ValueError("need distance >= 2 and c_win >= 1")

    @property
    def _area(self) -> float:
        return 2.0 * self.distance ** 2

    def syndrome_queue_bits(self) -> float:
        return self._area * (self.c_win + math.sqrt(2.0 * self.c_win))

    def active_node_counter_bits(self) -> float:
        return self._area * math.log2(self.c_win)

    def matching_queue_bits(self) -> float:
        return self._area * math.sqrt(self.c_win / 2.0)

    def baseline_syndrome_queue_bits(self) -> float:
        """The MBBE-free queue: ``d`` layers, ``2 d^3`` bits."""
        return 2.0 * self.distance ** 3

    def total_bits(self) -> float:
        return (self.syndrome_queue_bits()
                + self.active_node_counter_bits()
                + self.matching_queue_bits())

    def overhead_ratio(self) -> float:
        """Q3DE syndrome queue vs the MBBE-free queue (about 10x in the
        paper's d=31, c_win=300 setting)."""
        return self.syndrome_queue_bits() / self.baseline_syndrome_queue_bits()

    def rows_kbit(self) -> dict[str, float]:
        """Table III's Size column, in kbit."""
        return {
            "syndrome_queue": self.syndrome_queue_bits() / 1000.0,
            "active_node_counter": self.active_node_counter_bits() / 1000.0,
            "matching_queue": self.matching_queue_bits() / 1000.0,
        }
