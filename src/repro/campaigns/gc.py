"""Garbage collection for a campaign STORE_DIR (``python -m repro gc``).

A long-lived service store accumulates three kinds of dead weight:

* **stale-version result records** — ``results/<hash>-<version>.json``
  written by older ``repro`` releases.  The cache key includes the
  version precisely because those results are no longer authoritative;
  no current reader will ever serve them.
* **corrupt result records** — files that fail the full record
  validation (bad JSON, wrong type/format/hash, CRC mismatch).  The
  store already treats them as misses; results are recomputable by
  construction, so deleting them costs nothing.
* **orphaned checkpoint shards** — ``checkpoints/<hash>.jsonl`` whose
  campaign has a valid current-version result record: the result is
  served from the cache, so the shard only matters to a future
  *refinement* of the same campaign to more shots (which would
  recompute).  Corrupt shards (unreadable or foreign header, which
  block resume outright) and empty shard files are pruned as repair.
* **abandoned temp files** — ``.<name>.tmp-<pid>-<tid>`` leftovers
  from writers killed between write and ``os.replace``.

Everything is **dry-run by default**: :func:`plan_gc` only reports;
deletion happens through :func:`apply_gc` (the CLI's ``--apply``).
Deletion is rename-safe against live writers: records and shards land
atomically via ``os.replace``, so an unlink either removes a complete
file or loses the race and is skipped (``FileNotFoundError`` is
tolerated); temp files are only pruned past an age threshold so a
mid-write temp is never yanked from under its writer.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

#: Minimum age before an abandoned ``.tmp-`` file is prunable.  A
#: writer holds its temp for milliseconds (write, flush, fsync,
#: replace); anything this old was orphaned by a kill.
TMP_AGE_S = 3600.0

_RESULT_NAME = re.compile(r"^([0-9a-f]{16})-(.+)\.json$")
_SHARD_NAME = re.compile(r"^([0-9a-f]{16})\.jsonl$")
_TMP_NAME = re.compile(r"^\..*\.tmp-\d+-\d+$")


@dataclass(frozen=True)
class Candidate:
    """One file the collector wants to delete, and why."""

    path: Path
    reason: str
    size: int


@dataclass
class GcReport:
    """What a sweep found (and, after :func:`apply_gc`, what it did)."""

    root: Path
    candidates: list[Candidate] = field(default_factory=list)
    kept: int = 0
    unknown: list[Path] = field(default_factory=list)
    deleted: list[Candidate] = field(default_factory=list)
    missed: list[Candidate] = field(default_factory=list)

    @property
    def reclaimable_bytes(self) -> int:
        return sum(c.size for c in self.candidates)

    def to_dict(self) -> dict:
        return {
            "root": str(self.root),
            "candidates": [{"path": str(c.path), "reason": c.reason,
                            "size": c.size} for c in self.candidates],
            "kept": self.kept,
            "unknown": [str(p) for p in self.unknown],
            "deleted": [str(c.path) for c in self.deleted],
            "missed": [str(c.path) for c in self.missed],
            "reclaimable_bytes": self.reclaimable_bytes,
        }


def _size(path: Path) -> int:
    try:
        return path.stat().st_size
    except OSError:
        return 0


def _tmp_candidates(directory: Path, now: float,
                    tmp_age_s: float) -> list[Candidate]:
    out = []
    for path in directory.iterdir():
        if not _TMP_NAME.match(path.name):
            continue
        try:
            age = now - path.stat().st_mtime
        except OSError:
            continue  # raced with its writer's os.replace: not abandoned
        if age >= tmp_age_s:
            out.append(Candidate(path, "abandoned_tmp", _size(path)))
    return out


def _valid_result_hashes(results_dir: Path, version: str) -> set:
    """Spec hashes with a *valid* current-version record."""
    from repro.campaigns.store import ResultStore
    store = ResultStore(results_dir, version=version)
    valid = set()
    for path in results_dir.iterdir():
        match = _RESULT_NAME.match(path.name)
        if match and match.group(2) == version \
                and store.get_hash(match.group(1)) is not None:
            valid.add(match.group(1))
    return valid


def _shard_header_ok(path: Path, spec_hash_: str) -> bool:
    """Whether the shard's first line is its own well-formed header."""
    import json

    from repro.campaigns.checkpoint import FORMAT
    try:
        with open(path, "r", encoding="utf-8") as fh:
            first = fh.readline()
    except OSError:
        return False
    try:
        header = json.loads(first)
    except ValueError:
        return False
    return (isinstance(header, dict) and header.get("type") == "header"
            and header.get("format") == FORMAT
            and header.get("spec_hash") == spec_hash_)


def plan_gc(root: Union[str, Path], version: Optional[str] = None,
            tmp_age_s: float = TMP_AGE_S, keep_checkpoints: bool = False,
            now: Optional[float] = None) -> GcReport:
    """Scan a STORE_DIR and report what a sweep would delete.

    Pure planning — nothing is touched.  ``version`` defaults to the
    running ``repro.__version__`` (the store-key rule); ``now`` is
    injectable for tests.
    """
    if version is None:
        import repro
        version = repro.__version__
    if now is None:
        now = time.time()
    root = Path(root)
    report = GcReport(root=root)
    results_dir = root / "results"
    checkpoints_dir = root / "checkpoints"

    valid_hashes: set = set()
    if results_dir.is_dir():
        valid_hashes = _valid_result_hashes(results_dir, version)
        report.candidates.extend(
            _tmp_candidates(results_dir, now, tmp_age_s))
        for path in sorted(results_dir.iterdir()):
            match = _RESULT_NAME.match(path.name)
            if match is None:
                if not _TMP_NAME.match(path.name):
                    report.unknown.append(path)
                continue
            spec_hash_, record_version = match.groups()
            if record_version != version:
                report.candidates.append(
                    Candidate(path, "stale_version", _size(path)))
            elif spec_hash_ in valid_hashes:
                report.kept += 1
            else:
                report.candidates.append(
                    Candidate(path, "corrupt_record", _size(path)))

    if checkpoints_dir.is_dir():
        report.candidates.extend(
            _tmp_candidates(checkpoints_dir, now, tmp_age_s))
        for path in sorted(checkpoints_dir.iterdir()):
            match = _SHARD_NAME.match(path.name)
            if match is None:
                if not _TMP_NAME.match(path.name):
                    report.unknown.append(path)
                continue
            spec_hash_ = match.group(1)
            if _size(path) == 0:
                report.candidates.append(Candidate(path, "empty_shard", 0))
            elif not _shard_header_ok(path, spec_hash_):
                report.candidates.append(
                    Candidate(path, "corrupt_shard", _size(path)))
            elif spec_hash_ in valid_hashes and not keep_checkpoints:
                report.candidates.append(
                    Candidate(path, "completed_shard", _size(path)))
            else:
                report.kept += 1

    return report


def apply_gc(report: GcReport) -> GcReport:
    """Delete the report's candidates; records what landed.

    An unlink that loses a race with a concurrent writer
    (``FileNotFoundError``) is recorded under ``missed`` and is not an
    error — atomic ``os.replace`` means the file was either complete
    or already gone, never torn.
    """
    for candidate in report.candidates:
        try:
            os.unlink(candidate.path)
        except FileNotFoundError:
            report.missed.append(candidate)
        except OSError:
            report.missed.append(candidate)
        else:
            report.deleted.append(candidate)
    return report
