"""Planar surface-code substrate.

Implements the unrotated planar surface code from Fig. 2 of the paper:
qubit layout, stabilizer map, logical operators, and the code-deformation
geometry behind the ``op_expand`` instruction (Fig. 5).
"""

from repro.surface_code.lattice import PlanarSurfaceCode, Site
from repro.surface_code.stabilizers import Stabilizer, StabilizerMap
from repro.surface_code.deformation import (
    DeformationStep,
    ExpansionPlan,
    plan_expansion,
    plan_shrink,
)

__all__ = [
    "PlanarSurfaceCode",
    "Site",
    "Stabilizer",
    "StabilizerMap",
    "DeformationStep",
    "ExpansionPlan",
    "plan_expansion",
    "plan_shrink",
]
