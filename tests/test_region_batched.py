"""Equivalence suite for the region-bucketed batched decode engine.

PR 4's tentpole: the cross-shot engine folds *per-shot* anomalous
regions into its bucket tensors, the end-to-end and detection kernels
decode whole chunks through it, and the sequential ``workers=0``
experiment branches are retired onto the batched kernels.  Everything
here certifies bit-equality against the per-shot references
(``greedy_cut_parity``, ``decode="pershot"``, and the retired per-cycle
loops now housed in ``tests/reference_engines.py``).
"""

import numpy as np
import pytest

from repro.decoding.batched import (ScratchArena, _float_bucket_parities,
                                    batched_region_cut_parities)
from repro.decoding.greedy import greedy_cut_parity
from repro.decoding.weights import DistanceModel, region_signature
from repro.noise.models import AnomalousRegion
from repro.sim.batch import DetectionShotKernel, EndToEndShotKernel

from reference_engines import (reference_detection_trials,
                               reference_endtoend_run)
from repro.sim.detection import run_detection_trials
from repro.sim.endtoend import EndToEndExperiment


def _reference(distance, regions, nodes_list, w_ano):
    """The certified per-shot path, one model per shot."""
    out = []
    for reg, nodes in zip(regions, nodes_list, strict=True):
        model = (DistanceModel(distance, reg, w_ano) if reg is not None
                 else DistanceModel(distance))
        out.append(greedy_cut_parity(model, nodes))
    return np.array(out, dtype=np.int8)


def _random_chunk(rng, d, shots, none_frac=0.2, t_span=30):
    """Random mixed-region chunk: open/closed/huge windows, Nones."""
    regions, nodes_list = [], []
    for _ in range(shots):
        if rng.random() < none_frac:
            regions.append(None)
        else:
            t_lo = int(rng.integers(0, t_span))
            roll = rng.random()
            t_hi = None
            if roll < 0.3:
                t_hi = t_lo + int(rng.integers(0, 20))
            elif roll < 0.4:
                t_hi = 100_000  # far-future explicit window
            regions.append(AnomalousRegion(
                int(rng.integers(0, max(1, d - 2))),
                int(rng.integers(0, max(1, d - 1))),
                int(rng.integers(1, 6)), t_lo=t_lo, t_hi=t_hi))
        n = int(rng.integers(0, 25))
        nodes_list.append(np.column_stack([
            rng.integers(0, t_span, n), rng.integers(0, d - 1, n),
            rng.integers(0, d, n)]))
    return regions, nodes_list


class TestBatchedRegionCutParities:
    """batched_region_cut_parities == per-shot greedy_cut_parity."""

    @pytest.mark.parametrize("w_ano", [0.0, 0.35])
    def test_property_sweep_mixed_regions(self, rng, w_ano):
        arena = ScratchArena()
        for _ in range(60):
            d = int(rng.integers(3, 13))
            shots = int(rng.integers(0, 14))
            regions, nodes_list = _random_chunk(rng, d, shots)
            got = batched_region_cut_parities(d, regions, nodes_list,
                                              w_ano, arena=arena)
            assert np.array_equal(
                got, _reference(d, regions, nodes_list, w_ano))

    def test_every_shot_distinct_region_and_onset(self, rng):
        """The detected-decode shape: estimates whose t_lo varies shot
        to shot, so signature grouping would degenerate to singletons —
        the engine must fold them per shot instead."""
        d, shots = 9, 40
        regions = [AnomalousRegion(int(rng.integers(0, 5)),
                                   int(rng.integers(0, 6)), 4,
                                   t_lo=int(s))
                   for s in range(shots)]
        nodes_list = [np.column_stack([
            rng.integers(0, 60, 12), rng.integers(0, d - 1, 12),
            rng.integers(0, d, 12)]) for _ in range(shots)]
        got = batched_region_cut_parities(d, regions, nodes_list, 0.0)
        assert np.array_equal(got, _reference(d, regions, nodes_list, 0.0))

    def test_collapsed_and_never_active_windows(self, rng):
        d = 9
        regions = [AnomalousRegion(1, 1, 3, t_lo=5, t_hi=5),   # empty
                   AnomalousRegion(2, 2, 2, t_lo=500),         # pre-onset
                   AnomalousRegion(0, 0, 2, t_lo=3, t_hi=4)]   # one layer
        nodes_list = [np.column_stack([
            rng.integers(0, 12, 9), rng.integers(0, d - 1, 9),
            rng.integers(0, d, 9)]) for _ in regions]
        got = batched_region_cut_parities(d, regions, nodes_list, 0.0)
        assert np.array_equal(got, _reference(d, regions, nodes_list, 0.0))

    def test_duplicate_nodes_inside_the_box(self):
        nodes = np.array([[5, 2, 2], [5, 2, 2], [5, 2, 2], [6, 3, 3],
                          [0, 0, 0], [5, 2, 3]])
        regions = [AnomalousRegion(2, 2, 2, t_lo=4)]
        got = batched_region_cut_parities(9, regions, [nodes], 0.0)
        assert np.array_equal(got, _reference(9, regions, [nodes], 0.0))

    def test_empty_shots_and_empty_chunk(self):
        empty = np.zeros((0, 3), dtype=np.int64)
        regions = [AnomalousRegion(0, 0, 2), None]
        got = batched_region_cut_parities(
            9, regions, [empty, np.array([[1, 1, 1]])], 0.0)
        assert np.array_equal(
            got, _reference(9, regions, [empty, np.array([[1, 1, 1]])], 0.0))
        assert len(batched_region_cut_parities(9, [], [], 0.0)) == 0

    def test_fallbacks_outside_the_envelope(self, rng):
        d = 9
        # Negative coordinates, huge t, and an off-lattice region all
        # decline the integer engine but must still score correctly.
        cases = [
            ([AnomalousRegion(0, 0, 2), AnomalousRegion(1, 1, 2, t_lo=3)],
             [np.array([[-1, 2, 3], [4, 5, 6]]), np.array([[0, 1, 2]])]),
            ([AnomalousRegion(1, 1, 2)],
             [np.array([[5000, 1, 1], [5001, 2, 2]])]),
            ([AnomalousRegion(40, 0, 2)],
             [np.array([[1, 1, 1], [2, 2, 2]])]),
            ([AnomalousRegion(1, 1, 2, t_lo=5000)],
             [np.array([[1, 1, 1], [2, 2, 2]])]),
        ]
        for regions, nodes_list in cases:
            for w_ano in (0.0, 0.6):
                got = batched_region_cut_parities(d, regions, nodes_list,
                                                  w_ano)
                assert np.array_equal(
                    got, _reference(d, regions, nodes_list, w_ano))

    def test_wide_distance_sort_path(self, rng):
        d = 80  # beyond the level-split threshold of the engine
        regions, nodes_list = _random_chunk(rng, d, 8, t_span=50)
        got = batched_region_cut_parities(d, regions, nodes_list, 0.0)
        assert np.array_equal(got, _reference(d, regions, nodes_list, 0.0))

    def test_region_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            batched_region_cut_parities(9, [None], [], 0.0)

    def test_float_bucket_tier_matches_per_shot(self, rng):
        """Weighted regions take the pairwise_batch/boundary_batch tier:
        bucket-wide float builds feeding the per-shot acceptance."""
        d = 9
        model = DistanceModel(d, AnomalousRegion(1, 1, 3, t_lo=2), 0.7)
        nodes_list = [np.column_stack([
            rng.integers(0, 12, int(n)), rng.integers(0, d - 1, int(n)),
            rng.integers(0, d, int(n))])
            for n in rng.integers(1, 18, 30)]
        got = _float_bucket_parities(model, nodes_list)
        ref = np.array([greedy_cut_parity(model, nodes)
                        for nodes in nodes_list], dtype=np.int8)
        assert np.array_equal(got, ref)

    def test_region_signature_keys(self):
        a = AnomalousRegion(1, 2, 3, t_lo=4, t_hi=9)
        assert region_signature(a) == (1, 2, 3, 4, 9)
        assert region_signature(AnomalousRegion(1, 2, 3, t_lo=4)) \
            == (1, 2, 3, 4, -1)
        assert region_signature(None) == ()


class TestEndToEndKernelDecodeModes:
    """decode="batched" == decode="pershot", float and packed, over the
    (d, p_ano, anomaly_size, onset) grid — including no-detection shots
    and chunks whose estimates differ shot to shot."""

    GRID = [(3, 0.5, 2, 20), (5, 0.5, 2, 30), (5, 0.2, 3, 40),
            (3, 0.3, 1, 25)]

    @pytest.mark.parametrize("d,p_ano,anomaly_size,onset", GRID)
    def test_modes_bit_equal(self, d, p_ano, anomaly_size, onset):
        outs = {}
        for mode in ("pershot", "batched"):
            kernel = EndToEndShotKernel(
                d, 0.01, p_ano, anomaly_size=anomaly_size, onset=onset,
                cycles=onset + 40, c_win=20, n_th=3, alpha=0.01,
                decode=mode)
            kernel.prepare()
            ref = kernel.run_batch(41, np.random.default_rng(7))
            packed = kernel.run_batch_packed(41, np.random.default_rng(7))
            assert np.array_equal(ref, packed), (mode, "packed != float")
            outs[mode] = ref
        assert np.array_equal(outs["pershot"], outs["batched"])

    def test_missed_detections_inherit_naive(self):
        """An impossible threshold forces misses on every shot: the
        detected column must equal the naive column bit for bit."""
        outs = {}
        for mode in ("pershot", "batched"):
            kernel = EndToEndShotKernel(
                5, 0.005, 0.5, anomaly_size=1, onset=30, cycles=60,
                c_win=20, n_th=10 ** 6, alpha=0.01, decode=mode)
            kernel.prepare()
            outs[mode] = kernel.run_batch(23, np.random.default_rng(11))
        assert np.array_equal(outs["pershot"], outs["batched"])
        assert (outs["batched"][:, 3] == -1).all()
        assert np.array_equal(outs["batched"][:, 0], outs["batched"][:, 1])


class TestDetectionKernelScanModes:
    """scan="batched" == scan="pershot" for the detection kernel."""

    @pytest.mark.parametrize("d,p_ano", [(3, 0.05), (5, 0.05), (5, 0.3)])
    def test_modes_bit_equal(self, d, p_ano):
        outs = {}
        for mode in ("pershot", "batched"):
            kernel = DetectionShotKernel(
                d, 2e-3, p_ano, anomaly_size=2, c_win=40, n_th=3,
                alpha=0.01, normal_cycles=80, post_cycles=160, scan=mode)
            kernel.prepare()
            ref = kernel.run_batch(19, np.random.default_rng(5))
            packed = kernel.run_batch_packed(19, np.random.default_rng(5))
            assert np.array_equal(ref, packed, equal_nan=True)
            outs[mode] = ref
        assert np.array_equal(outs["pershot"], outs["batched"],
                              equal_nan=True)

    def test_false_positives_scored_identically(self):
        """A hair-trigger threshold generates pre-onset false positives;
        both scans must count them (and the post-onset detections that
        follow the discarded flags) the same way."""
        outs = {}
        for mode in ("pershot", "batched"):
            kernel = DetectionShotKernel(
                5, 2e-2, 0.5, anomaly_size=2, c_win=10, n_th=1,
                alpha=0.4, normal_cycles=40, post_cycles=40, scan=mode)
            kernel.prepare()
            outs[mode] = kernel.run_batch(31, np.random.default_rng(3))
        assert np.array_equal(outs["pershot"], outs["batched"],
                              equal_nan=True)
        assert outs["batched"][:, 0].sum() > 0  # the sweep has FPs

    def test_legacy_name_is_retired(self):
        """The DetectionTrialKernel alias (deprecated in PR 5) is gone."""
        from repro.sim import batch
        with pytest.raises(AttributeError):
            batch.DetectionTrialKernel
        import repro.sim
        with pytest.raises(AttributeError):
            repro.sim.DetectionTrialKernel

    def test_bad_scan_mode_rejected(self):
        with pytest.raises(ValueError):
            DetectionShotKernel(5, 1e-3, 0.05, 2, 40, 3, 0.01, 80, 160,
                                scan="vectorized")


class TestRetiredSequentialBranches:
    """workers=0 now rides the batched kernels; the per-cycle loops
    survive only in tests/reference_engines.py."""

    def test_endtoend_workers0_deterministic_and_pool_invariant(self):
        exp = EndToEndExperiment(9, 0.008, anomaly_size=3, onset=60,
                                 cycles=140, c_win=50, n_th=6)
        a = exp.run(24, seed=31)
        b = exp.run(24, seed=31)
        c = exp.run(24, workers=2, seed=31, batch_size=24)
        for res in (b, c):
            assert res.naive_failures == a.naive_failures
            assert res.detected_failures == a.detected_failures
            assert res.oracle_failures == a.oracle_failures
            assert res.detections == a.detections

    def test_endtoend_reference_engine_still_streams(self):
        exp = EndToEndExperiment(9, 0.008, anomaly_size=3, onset=40,
                                 cycles=90, c_win=30, n_th=5)
        res = reference_endtoend_run(exp, 4, np.random.default_rng(2))
        assert res.shots == 4
        assert 0 <= res.naive_failures <= 4

    def test_endtoend_engine_knob_is_retired(self):
        exp = EndToEndExperiment(9, 0.008, onset=40, cycles=90)
        with pytest.raises(TypeError):
            exp.run(2, engine="reference")

    def test_detection_workers0_deterministic(self):
        kwargs = dict(distance=11, p=1e-3, p_ano=0.05, anomaly_size=3,
                      c_win=120, n_th=8, trials=6, seed=17)
        a = run_detection_trials(workers=0, **kwargs)
        b = run_detection_trials(workers=0, **kwargs)
        assert a.detections == b.detections
        assert a.false_positives == b.false_positives
        assert np.isclose(a.mean_latency, b.mean_latency, equal_nan=True)

    def test_detection_engine_knob_is_retired(self):
        with pytest.raises(TypeError):
            run_detection_trials(5, 1e-3, 0.05, 2, 40, trials=2,
                                 engine="reference")

    @pytest.mark.slow
    @pytest.mark.parametrize("d,p_ano,anomaly_size,onset",
                             [(7, 0.5, 3, 40), (5, 0.25, 2, 30)])
    def test_batched_matches_run_shot_distribution(self, d, p_ano,
                                                   anomaly_size, onset):
        """The retired path vs the certified per-cycle reference: every
        failure rate agrees within Monte-Carlo resolution."""
        exp = EndToEndExperiment(d, 0.01, p_ano=p_ano,
                                 anomaly_size=anomaly_size, onset=onset,
                                 cycles=onset + 50, c_win=25, n_th=4)
        shots = 60
        seq = reference_endtoend_run(exp, shots, np.random.default_rng(13))
        bat = exp.run(shots, seed=13)
        for key in ("naive", "detected", "oracle"):
            p = (seq.rates()[key] + bat.rates()[key]) / 2
            se = np.sqrt(max(2 * p * (1 - p) / shots, 1e-9))
            assert abs(seq.rates()[key] - bat.rates()[key]) < 5 * se, key
        assert abs(seq.detection_rate - bat.detection_rate) < 0.3

    @pytest.mark.slow
    def test_preonset_false_positive_semantics_agree(self):
        """Parameters hot enough to trip pre-onset flags: the reference
        engine discards them (clearing masks) and keeps streaming; the
        batched windowed scan must agree within Monte-Carlo resolution
        on both the false-positive and the detection rates."""
        kwargs = dict(distance=9, p=1.5e-2, p_ano=0.5, anomaly_size=3,
                      c_win=20, n_th=2, trials=24, normal_cycles=60,
                      post_cycles=60)
        seq = reference_detection_trials(seed=29, **kwargs)
        bat = run_detection_trials(seed=29, **kwargs)
        assert seq.false_positives > 0  # the regime exercises discards
        assert abs(seq.false_positive_rate - bat.false_positive_rate) <= 0.35
        assert abs(seq.miss_rate - bat.miss_rate) <= 0.35
