"""Fig. 10: instruction throughput under cosmic rays.

Paper setup: 10^4 meas_ZZ instructions on random pairs of the 25 logical
qubits of an 11x11 block plane; MBBEs strike each block with probability
``d tau_cyc f_ano`` per d-cycle slot and last 100d or 1000d cycles.

Expected shape: MBBE-free ~6 instructions per d cycles; the baseline
(doubled default distance) sits at about half; Q3DE tracks MBBE-free at
realistic ray frequencies (~1e-5) and degrades only as the frequency
approaches 1e-2, with longer bursts hurting more.
"""

import time

import pytest

from repro.arch.throughput import simulate_throughput, throughput_sweep

from _common import emit_json, mc_workers, print_table, scale

FREQUENCIES = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2]


@pytest.mark.benchmark(group="fig10")
def bench_fig10_throughput_sweep(benchmark):
    """Regenerate all four Fig. 10 series."""
    n_inst = max(200, int(1000 * scale()))
    workers = mc_workers()

    def run():
        start = time.perf_counter()
        short = throughput_sweep(FREQUENCIES, duration_slots=100,
                                 num_instructions=n_inst, seed=7,
                                 workers=workers)
        long = throughput_sweep(FREQUENCIES, duration_slots=1000,
                                num_instructions=n_inst, seed=7,
                                workers=workers)
        return short, long, time.perf_counter() - start

    short, long, wall = benchmark.pedantic(run, rounds=1, iterations=1)

    emit_json("batch", "fig10_throughput", {
        "instructions": n_inst,
        "wall_clock_s": wall,
        "instructions_per_d_cycles": {
            "mbbe_free": short["mbbe_free"][0],
            "baseline": short["baseline"][0],
            "q3de_realistic_freq": short["q3de"][1],
            "q3de_heavy_freq": short["q3de"][-1],
            "q3de_long_bursts_heavy": long["q3de"][-1]},
    })
    rows = []
    for i, freq in enumerate(FREQUENCIES):
        rows.append([freq, short["mbbe_free"][i], short["baseline"][i],
                     short["q3de"][i], long["q3de"][i]])
    print_table(
        "Fig. 10: instructions per d code cycles",
        ["d*tau_cyc*f_ano", "MBBE free", "baseline",
         "Q3DE tau/d=100", "Q3DE tau/d=1000"],
        rows)

    free = short["mbbe_free"][0]
    base = short["baseline"][0]
    # Baseline throughput is about half of MBBE-free.
    assert base == pytest.approx(free / 2, rel=0.25)
    # At realistic frequencies Q3DE matches MBBE-free within a few %.
    assert short["q3de"][1] >= 0.9 * free
    # Longer bursts are never better.
    assert long["q3de"][-1] <= short["q3de"][-1] + 0.5
    # Heavy rays degrade Q3DE below its calm-weather throughput.
    assert short["q3de"][-1] <= short["q3de"][0]


@pytest.mark.benchmark(group="fig10")
def bench_fig10_single_run_timing(benchmark):
    """Time one mid-frequency Q3DE run (the harness's hot path)."""
    import numpy as np

    result = benchmark.pedantic(
        simulate_throughput,
        args=("q3de",),
        kwargs=dict(num_instructions=300, strike_prob_per_slot=1e-4,
                    strike_duration_slots=100,
                    rng=np.random.default_rng(3)),
        rounds=3, iterations=1)
    assert result.instructions == 300


def smoke() -> None:
    """One tiny grid point (bench_smoke marker: import-rot guard)."""
    import numpy as np

    result = simulate_throughput("q3de", num_instructions=20,
                                 strike_prob_per_slot=1e-4,
                                 strike_duration_slots=10,
                                 rng=np.random.default_rng(3))
    assert result.throughput > 0
