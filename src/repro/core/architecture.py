"""The Q3DE control unit: detection -> expansion + re-execution.

:class:`Q3DEControlUnit` wires the red-dotted-square components of Fig. 1
around a single logical qubit's syndrome stream.  Each code cycle the
unit:

1. pushes the incoming syndrome layer into the (rollback-retaining)
   syndrome queue and the anomaly detection unit's counters;
2. on a detection, estimates the anomalous region (median position, one
   window back in time), queues ``op_expand`` with the MBBE lifetime, and
   rolls the decoding state back for anomaly-aware re-execution;
3. ticks the expansion controller so expirations shrink the code back.

The unit is deliberately event-level: Monte-Carlo logical-error studies
live in :mod:`repro.sim`, throughput studies in :mod:`repro.arch`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.arch.buffers import (
    MatchingQueue,
    MatchRecord,
    SyndromeQueue,
    optimal_batch_cycles,
)
from repro.arch.pauli_frame import ClassicalRegister, PauliFrame
from repro.core.anomaly import AnomalyDetectionUnit, DetectionEvent
from repro.core.expansion import ExpansionController
from repro.core.reexecution import (
    RollbackController,
    RollbackDenied,
    RollbackOutcome,
)
from repro.core.statistics import SyndromeStatistics
from repro.noise.models import AnomalousRegion


@dataclass(frozen=True)
class Q3DEConfig:
    """Tunable parameters of the control unit."""

    distance: int
    c_win: int = 300
    n_th: int = 20
    alpha: float = 0.01
    anomaly_size: int = 4
    anomaly_lifetime_cycles: int = 25_000
    expanded_distance: Optional[int] = None

    def __post_init__(self) -> None:
        if self.distance < 2:
            raise ValueError("distance must be >= 2")
        if self.c_win < 1:
            raise ValueError("c_win must be positive")


@dataclass
class CycleReport:
    """What happened during one control-unit cycle."""

    cycle: int
    detection: Optional[DetectionEvent] = None
    rollback: Optional[RollbackOutcome] = None
    rollback_denied: bool = False
    distance_changes: list[int] = field(default_factory=list)


class Q3DEControlUnit:
    """Cycle-level orchestration of detection, expansion, re-execution."""

    def __init__(self, config: Q3DEConfig, stats: SyndromeStatistics,
                 qubit: int = 0):
        self.config = config
        self.qubit = qubit
        d = config.distance
        shape = (d - 1, d)
        self.detector = AnomalyDetectionUnit(
            shape, stats, config.c_win, config.n_th, config.alpha,
            mask_cycles=config.anomaly_lifetime_cycles)
        window = config.c_win + optimal_batch_cycles(config.c_win)
        self.syndrome_queue = SyndromeQueue(shape, window)
        self.matching_queue = MatchingQueue(config.c_win)
        self.pauli_frame = PauliFrame(num_qubits=max(1, qubit + 1))
        self.register = ClassicalRegister()
        self.expansion = ExpansionController(
            default_distance=d,
            expanded_distance=config.expanded_distance,
        )
        self.rollback = RollbackController(
            self.syndrome_queue, self.matching_queue, self.pauli_frame,
            self.register, distance=d, c_lat=config.c_win,
        )
        self.cycle = -1
        self.known_regions: list[AnomalousRegion] = []
        self.detections: list[DetectionEvent] = []

    # ------------------------------------------------------------------
    def step(self, activity_layer: np.ndarray,
             cut_parity: int = 0) -> CycleReport:
        """Process one code cycle of syndrome activity.

        ``activity_layer`` is the difference-lattice layer for this cycle;
        ``cut_parity`` is the decoder's north-cut correction parity
        attributed to this cycle (fed to the matching queue journal).
        """
        self.cycle += 1
        report = CycleReport(cycle=self.cycle)
        self.syndrome_queue.push(self.cycle, activity_layer)
        self.matching_queue.record(MatchRecord(
            cycle=self.cycle, cut_parity=cut_parity,
            num_matches=int(np.sum(activity_layer))))

        detection = self.detector.observe(activity_layer)
        if detection is not None:
            self.detections.append(detection)
            report.detection = detection
            self._react(detection, report)

        report.distance_changes = self.expansion.tick(self.cycle)
        return report

    # ------------------------------------------------------------------
    def _react(self, detection: DetectionEvent, report: CycleReport) -> None:
        """III-A (expand) and III-B (re-execute) of Fig. 4."""
        cfg = self.config
        self.expansion.request(
            self.qubit, self.cycle, keep_cycles=cfg.anomaly_lifetime_cycles)
        half = cfg.anomaly_size // 2
        region = AnomalousRegion(
            row_lo=max(0, detection.row - half),
            col_lo=max(0, detection.col - half),
            size=cfg.anomaly_size,
            t_lo=detection.onset_estimate,
            t_hi=detection.cycle + cfg.anomaly_lifetime_cycles,
        )
        self.known_regions.append(region)
        try:
            report.rollback = self.rollback.execute(detection.cycle)
        except RollbackDenied:
            report.rollback_denied = True

    # ------------------------------------------------------------------
    @property
    def current_distance(self) -> int:
        return self.expansion.state_of(self.qubit).current_distance

    def memory_bits(self) -> dict[str, int]:
        """Per-unit buffer footprint (cross-checked against Table III)."""
        node_count = int(np.prod(self.syndrome_queue.shape))
        return {
            "syndrome_queue": self.syndrome_queue.memory_bits(),
            "active_node_counter": self.detector.memory_bits(),
            "matching_queue": self.matching_queue.memory_bits(node_count),
        }
