"""RL003 corpus: environment reads outside the knob owner."""

import os
from os import getenv


def sneaky_knobs():
    workers = int(os.environ.get("REPRO_WORKERS", "0"))   # RL003
    backend = os.getenv("REPRO_BACKEND", "numpy")         # RL003
    scale = getenv("REPRO_SCALE")                         # RL003 (import)
    return workers, backend, scale
