"""RL003 corpus twin: this file IS the registered knob owner.

The corpus manifest lists it under ``[rl003] owners``, mirroring
``src/repro/config.py`` — reads here are the contract, not a breach.
"""

import os

ENV_WORKERS = "REPRO_WORKERS"


def workers(default: int = 0) -> int:
    return max(0, int(os.environ.get(ENV_WORKERS, default)))


def backend(default: str = "numpy") -> str:
    return os.getenv("REPRO_BACKEND", default).strip().lower()
