"""Shared fixtures for the test suite."""

import sys
from pathlib import Path

import numpy as np
import pytest

# The reprolint package lives under tools/ (it is a dev tool, not part
# of the shipped repro package); make it importable for its test suite.
_TOOLS_DIR = str(Path(__file__).resolve().parents[1] / "tools")
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)


@pytest.fixture
def rng():
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


def make_rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)
