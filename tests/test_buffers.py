"""Tests for rollback-capable control-unit buffers (Sec. VI-C)."""

import numpy as np
import pytest

from repro.arch.buffers import (
    HistoryEntry,
    InstructionHistoryBuffer,
    MatchingQueue,
    MatchRecord,
    SyndromeQueue,
    optimal_batch_cycles,
)


class TestOptimalBatch:
    def test_sqrt_rule(self):
        assert optimal_batch_cycles(300) == round((600) ** 0.5)

    def test_minimum_one(self):
        assert optimal_batch_cycles(1) >= 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            optimal_batch_cycles(0)


class TestSyndromeQueue:
    def _layer(self, fill=0):
        return np.full((4, 5), fill, dtype=np.uint8)

    def test_push_and_retention(self):
        q = SyndromeQueue((4, 5), window=3)
        for t in range(5):
            q.push(t, self._layer(t % 2))
        assert len(q) == 3
        assert q.oldest_cycle() == 2
        assert q.latest_cycle() == 4

    def test_out_of_order_push_rejected(self):
        q = SyndromeQueue((4, 5), window=3)
        q.push(0, self._layer())
        with pytest.raises(ValueError):
            q.push(2, self._layer())

    def test_shape_mismatch_rejected(self):
        q = SyndromeQueue((4, 5), window=3)
        with pytest.raises(ValueError):
            q.push(0, np.zeros((3, 3), dtype=np.uint8))

    def test_matched_layers_are_retained(self):
        q = SyndromeQueue((4, 5), window=4)
        for t in range(4):
            q.push(t, self._layer())
        q.mark_matched(1)
        assert len(q.layers_since(0)) == 4
        recs = {r.cycle: r.matched for r in q.layers_since(0)}
        assert recs[1] is True and recs[2] is False

    def test_mark_unknown_cycle_raises(self):
        q = SyndromeQueue((4, 5), window=2)
        q.push(0, self._layer())
        with pytest.raises(KeyError):
            q.mark_matched(5)

    def test_layers_since_filters(self):
        q = SyndromeQueue((4, 5), window=10)
        for t in range(6):
            q.push(t, self._layer(t % 2))
        assert [r.cycle for r in q.layers_since(3)] == [3, 4, 5]

    def test_memory_bits(self):
        q = SyndromeQueue((30, 31), window=300 + 24)
        assert q.memory_bits() == 2 * 930 * 324


class TestMatchingQueue:
    def test_batches_close_at_cbat(self):
        q = MatchingQueue(c_win=50, c_bat=10)
        for t in range(25):
            q.record(MatchRecord(t, cut_parity=0, num_matches=1))
        assert len(q) == 3  # two closed batches + one open

    def test_cut_parity_accumulates_per_batch(self):
        q = MatchingQueue(c_win=50, c_bat=10)
        q.record(MatchRecord(0, cut_parity=1, num_matches=1))
        q.record(MatchRecord(1, cut_parity=1, num_matches=1))
        q.record(MatchRecord(2, cut_parity=1, num_matches=1))
        assert q.total_cut_parity() == 1

    def test_rollback_drops_touched_batches(self):
        q = MatchingQueue(c_win=100, c_bat=10)
        for t in range(35):
            q.record(MatchRecord(t, cut_parity=0, num_matches=1))
        dropped = q.rollback_to(15)
        # Batches starting at 10, 20, 30 all touch cycles >= 15.
        assert [b.start_cycle for b in dropped] == [10, 20, 30]
        assert len(q) == 1

    def test_rollback_respects_batch_granularity(self):
        q = MatchingQueue(c_win=100, c_bat=10)
        for t in range(20):
            q.record(MatchRecord(t, cut_parity=0, num_matches=1))
        dropped = q.rollback_to(19)
        assert [b.start_cycle for b in dropped] == [10]

    def test_capacity_bounded_by_window(self):
        q = MatchingQueue(c_win=50, c_bat=10)
        for t in range(500):
            q.record(MatchRecord(t, cut_parity=0, num_matches=1))
        assert len(q) <= 50 // 10 + 1

    def test_default_batch_is_optimal(self):
        q = MatchingQueue(c_win=300)
        assert q.c_bat == optimal_batch_cycles(300)

    def test_memory_bits(self):
        q = MatchingQueue(c_win=300)
        import math
        expected = 2 * 930 * math.ceil(300 / q.c_bat)
        assert q.memory_bits(930) == expected

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            MatchingQueue(c_win=10, c_bat=0)


class TestHistoryBuffer:
    def test_records_and_filters(self):
        buf = InstructionHistoryBuffer()
        for t in (3, 7, 11):
            buf.record(HistoryEntry(t, instruction_uid=t, qubit=0,
                                    swapped_xz=False))
        assert len(buf) == 3
        assert [e.cycle for e in buf.entries_since(7)] == [7, 11]

    def test_capacity_bound(self):
        buf = InstructionHistoryBuffer(capacity=5)
        for t in range(10):
            buf.record(HistoryEntry(t, t, 0, False))
        assert len(buf) == 5
        assert buf.entries_since(0)[0].cycle == 5
