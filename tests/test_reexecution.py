"""Tests for the rollback controller (decoder re-execution, Sec. VI-C)."""

import numpy as np
import pytest

from repro.arch.buffers import MatchingQueue, MatchRecord, SyndromeQueue
from repro.arch.pauli_frame import ClassicalRegister, PauliFrame
from repro.core.reexecution import RollbackController, RollbackDenied


def build(window=40, d=9, c_lat=20):
    shape = (d - 1, d)
    sq = SyndromeQueue(shape, window)
    mq = MatchingQueue(c_win=window, c_bat=5)
    frame = PauliFrame(1)
    reg = ClassicalRegister()
    ctl = RollbackController(sq, mq, frame, reg, distance=d, c_lat=c_lat)
    return ctl, sq, mq, frame, reg


def run_cycles(ctl, sq, mq, frame, cycles, shape=(8, 9)):
    rng = np.random.default_rng(0)
    for t in range(cycles):
        sq.push(t, (rng.random(shape) < 0.05).astype(np.uint8))
        mq.record(MatchRecord(t, cut_parity=int(rng.integers(0, 2)),
                              num_matches=1))
        if t % 7 == 0:
            frame.apply(t, 0, flip_x=True)


class TestRollback:
    def test_depth_is_clat_plus_d(self):
        ctl, *_ = build(d=9, c_lat=20)
        assert ctl.rollback_depth() == 29

    def test_rollback_returns_replay_layers(self):
        ctl, sq, mq, frame, reg = build(window=40, d=9, c_lat=20)
        run_cycles(ctl, sq, mq, frame, 50)
        out = ctl.execute(detection_cycle=49)
        assert out.rollback_cycle == 20  # 49 - 29
        assert out.replay_start_cycle == 20
        assert len(out.replay_layers) == 30  # cycles 20..49

    def test_rollback_undoes_frame_updates(self):
        ctl, sq, mq, frame, reg = build(window=40, d=9, c_lat=20)
        run_cycles(ctl, sq, mq, frame, 50)
        before = frame.journal_length
        out = ctl.execute(detection_cycle=49)
        assert out.undone_frame_updates > 0
        assert frame.journal_length == before - out.undone_frame_updates

    def test_rollback_drops_matching_batches(self):
        ctl, sq, mq, frame, reg = build(window=40, d=9, c_lat=20)
        run_cycles(ctl, sq, mq, frame, 50)
        out = ctl.execute(detection_cycle=49)
        assert out.dropped_batches > 0

    def test_rollback_uncorrects_registers(self):
        ctl, sq, mq, frame, reg = build(window=40, d=9, c_lat=20)
        run_cycles(ctl, sq, mq, frame, 50)
        reg.write_raw(0, 1, cycle=30)
        reg.mark_corrected(0, 1, cycle=40)
        out = ctl.execute(detection_cycle=49)
        assert out.uncorrected_registers == [0]
        assert reg.read(0) is None

    def test_rollback_denied_when_host_already_read(self):
        ctl, sq, mq, frame, reg = build(window=40, d=9, c_lat=20)
        run_cycles(ctl, sq, mq, frame, 50)
        reg.write_raw(0, 1, cycle=30)
        reg.mark_corrected(0, 1, cycle=40)
        reg.read(0)
        with pytest.raises(RollbackDenied):
            ctl.execute(detection_cycle=49)

    def test_rollback_allowed_for_old_reads(self):
        ctl, sq, mq, frame, reg = build(window=40, d=9, c_lat=20)
        run_cycles(ctl, sq, mq, frame, 50)
        reg.write_raw(0, 1, cycle=5)
        reg.mark_corrected(0, 1, cycle=10)
        reg.read(0)  # corrected before the rollback point: fine
        out = ctl.execute(detection_cycle=49)
        assert out.uncorrected_registers == []

    def test_rollback_clamped_to_retained_window(self):
        ctl, sq, mq, frame, reg = build(window=10, d=9, c_lat=20)
        run_cycles(ctl, sq, mq, frame, 50)
        out = ctl.execute(detection_cycle=49)
        # Full depth would be cycle 20, but only cycles 40..49 remain.
        assert out.rollback_cycle == 40
        assert len(out.replay_layers) == 10

    def test_read_stall_bound(self):
        ctl, *_ = build(d=9, c_lat=20)
        # Sec. VIII-B: the read waits d + c_lat instead of d cycles.
        assert ctl.read_stall_cycles() == 29
        assert ctl.read_stall_cycles() / 9 == pytest.approx(1 + 20 / 9)
