"""Pauli frame and classical register with reversible updates (Sec. VI-C).

Every update to the Pauli frame is journaled so the rollback controller
can revert the frame to its state at any retained cycle; classical
register entries carry the "error-corrected" mark and a read flag so the
controller can detect when a rollback would have to rewind the host CPU
(which aborts the rollback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class FrameUpdate:
    """One journaled Pauli-frame update (all updates are involutions)."""

    cycle: int
    qubit: int
    flip_x: bool
    flip_z: bool


class PauliFrame:
    """Per-logical-qubit X/Z correction parities with an undo journal."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one logical qubit")
        self.num_qubits = num_qubits
        self.x = [0] * num_qubits
        self.z = [0] * num_qubits
        self._journal: list[FrameUpdate] = []

    def apply(self, cycle: int, qubit: int,
              flip_x: bool = False, flip_z: bool = False) -> None:
        """Record a correction (XOR into the frame) at a given cycle."""
        if not 0 <= qubit < self.num_qubits:
            raise ValueError("qubit out of range")
        if not (flip_x or flip_z):
            return
        if flip_x:
            self.x[qubit] ^= 1
        if flip_z:
            self.z[qubit] ^= 1
        self._journal.append(FrameUpdate(cycle, qubit, flip_x, flip_z))

    def rollback_to(self, cycle: int) -> list[FrameUpdate]:
        """Undo every update recorded at or after ``cycle``.

        Returns the undone updates, oldest first (the re-executed decoding
        pass will regenerate its own).
        """
        undone: list[FrameUpdate] = []
        while self._journal and self._journal[-1].cycle >= cycle:
            upd = self._journal.pop()
            if upd.flip_x:
                self.x[upd.qubit] ^= 1
            if upd.flip_z:
                self.z[upd.qubit] ^= 1
            undone.append(upd)
        undone.reverse()
        return undone

    def trim_journal(self, before_cycle: int) -> int:
        """Drop journal entries older than ``before_cycle`` (no longer
        needed once rollback past them is impossible).  Returns the number
        dropped."""
        kept = [u for u in self._journal if u.cycle >= before_cycle]
        dropped = len(self._journal) - len(kept)
        self._journal = kept
        return dropped

    @property
    def journal_length(self) -> int:
        return len(self._journal)


@dataclass
class RegisterEntry:
    """One classical-register slot for a logical measurement outcome."""

    raw_value: int
    measured_cycle: int
    corrected: bool = False
    corrected_cycle: Optional[int] = None
    correction: int = 0
    read_by_host: bool = False

    @property
    def value(self) -> int:
        """The outcome as currently best known (raw XOR correction)."""
        return self.raw_value ^ self.correction


class ClassicalRegister:
    """The classical register of Fig. 1, with error-corrected marks."""

    def __init__(self):
        self._entries: dict[int, RegisterEntry] = {}

    def write_raw(self, index: int, value: int, cycle: int) -> None:
        """Store a not-yet-corrected measurement outcome."""
        self._entries[index] = RegisterEntry(
            raw_value=value & 1, measured_cycle=cycle)

    def mark_corrected(self, index: int, correction: int, cycle: int) -> None:
        """Apply the Pauli-frame correction once decoding catches up."""
        entry = self._entries[index]
        entry.correction = correction & 1
        entry.corrected = True
        entry.corrected_cycle = cycle

    def read(self, index: int) -> Optional[int]:
        """Host-CPU read: only error-corrected entries are served."""
        entry = self._entries.get(index)
        if entry is None or not entry.corrected:
            return None
        entry.read_by_host = True
        return entry.value

    def entry(self, index: int) -> Optional[RegisterEntry]:
        return self._entries.get(index)

    def entries_corrected_after(self, cycle: int) -> list[int]:
        """Indices whose correction happened at or after ``cycle``."""
        return [i for i, e in self._entries.items()
                if e.corrected and e.corrected_cycle is not None
                and e.corrected_cycle >= cycle]

    def any_read_corrected_after(self, cycle: int) -> bool:
        """True iff the host already consumed a value we'd need to revoke."""
        return any(self._entries[i].read_by_host
                   for i in self.entries_corrected_after(cycle))

    def uncorrect(self, index: int) -> None:
        """Rollback: mark an entry not-error-corrected again."""
        entry = self._entries[index]
        entry.corrected = False
        entry.corrected_cycle = None
        entry.correction = 0
