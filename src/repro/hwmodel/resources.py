"""Structural FF/LUT/throughput cost model of the greedy decoding unit.

The decoding unit keeps an *active nodes queue* (ANQ) of ``E`` entries;
each code cycle it evaluates all-to-all candidate paths between entries
(and to the boundary/anomaly), picks the shortest pair via a comparator
tree, and emits it.  BASE evaluates path lengths in 8-bit arithmetic with
one candidate path per pair; Q3DE widens the datapath to 16 bits and
considers the six candidate routes of Fig. 6(c).

Cost model (coefficients calibrated to the paper's four post-layout
configurations; see DESIGN.md "Substitutions"):

* ``FF  = ff_base + ff_per_entry_bit * bits * E``
  -- entry registers and pipeline registers scale with entry count and
  datapath width;
* ``LUT = lut_pair_per_bit * bits * E^2 + lut_path_unit * E``
  -- the all-to-all comparison network scales with ``E^2 * bits``, the
  per-entry path-evaluation units with ``E`` (Q3DE's six-way candidate
  mux makes its per-entry unit larger);
* ``cycles/match = lat_linear * E + lat_quad * E^2``, throughput =
  ``f_clk / cycles`` in matches/us at 400 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import poisson

from repro.core.statistics import expected_activity_rate

#: Zynq UltraScale+ XCZU7EV totals, for utilisation percentages.
DEVICE_FF_TOTAL = 460_800
DEVICE_LUT_TOTAL = 230_400
CLOCK_MHZ = 400.0

_FF_BASE = 4_800.0
_FF_PER_ENTRY_BIT = 13.5
_LUT_PAIR_PER_BIT = 0.281
_LUT_PATH_UNIT = {"base": 276.0, "q3de": 331.0}
_LAT_LINEAR = {"base": 1.53, "q3de": 1.91}
_LAT_QUAD = {"base": 0.0154, "q3de": 0.011}


@dataclass(frozen=True)
class DecoderHardwareModel:
    """One Table IV configuration: ``E`` ANQ entries, BASE or Q3DE."""

    anq_entries: int
    q3de: bool

    def __post_init__(self) -> None:
        if self.anq_entries < 2:
            raise ValueError("the ANQ needs at least two entries")

    @property
    def variant(self) -> str:
        return "q3de" if self.q3de else "base"

    @property
    def path_bits(self) -> int:
        """Path-length datapath width: Q3DE's weighted paths need 16 bits."""
        return 16 if self.q3de else 8

    @property
    def candidate_paths(self) -> int:
        """Candidate routes evaluated per pair (Fig. 6c lists six)."""
        return 6 if self.q3de else 2

    # ------------------------------------------------------------------
    def flip_flops(self) -> int:
        return round(_FF_BASE
                     + _FF_PER_ENTRY_BIT * self.path_bits * self.anq_entries)

    def luts(self) -> int:
        e = self.anq_entries
        return round(_LUT_PAIR_PER_BIT * self.path_bits * e * e
                     + _LUT_PATH_UNIT[self.variant] * e)

    def ff_utilisation(self) -> float:
        return self.flip_flops() / DEVICE_FF_TOTAL

    def lut_utilisation(self) -> float:
        return self.luts() / DEVICE_LUT_TOTAL

    def cycles_per_match(self) -> float:
        e = self.anq_entries
        return _LAT_LINEAR[self.variant] * e + _LAT_QUAD[self.variant] * e * e

    def throughput_matches_per_us(self) -> float:
        """Matches per microsecond at the 400 MHz clock."""
        return CLOCK_MHZ / self.cycles_per_match()

    def table_row(self) -> dict[str, float]:
        """One row of Table IV."""
        return {
            "config": f"{self.anq_entries} - {self.variant.upper()}",
            "FF": self.flip_flops(),
            "FF%": round(100 * self.ff_utilisation()),
            "LUT": self.luts(),
            "LUT%": round(100 * self.lut_utilisation()),
            "throughput": round(self.throughput_matches_per_us(), 2),
        }


def lut_overhead_ratio(anq_entries: int) -> float:
    """Q3DE's LUT overhead over BASE at equal entry count (~40 %)."""
    base = DecoderHardwareModel(anq_entries, q3de=False).luts()
    q3de = DecoderHardwareModel(anq_entries, q3de=True).luts()
    return q3de / base - 1.0


def required_anq_entries(p: float, distance: int,
                         p_l_target: float = 1e-15,
                         drain_cycles: float = 2.0) -> int:
    """ANQ entries so overflow is rarer than the logical error rate.

    Active nodes arrive at roughly ``2 d^2 mu(p)`` per code cycle (both
    lattices); the queue must absorb a ``drain_cycles`` burst before the
    pipeline catches up, with overflow probability below ``p_l_target``.
    The arrival count is Poisson to excellent approximation, so the
    requirement is its upper quantile (via the survival function, which
    stays accurate at 1e-15 tails).

    Paper reference points: about 30 entries for (p=1e-4, d=15) and about
    70 for (p=1e-3, d=31) at p_L = 1e-15.  With the default two-cycle
    drain window this model lands at the same order (the paper's numbers
    carry additional safety margin for MBBE bursts).
    """
    if drain_cycles <= 0:
        raise ValueError("drain window must be positive")
    mu = expected_activity_rate(p)
    rate = 2.0 * distance * distance * mu * drain_cycles
    raw = poisson.isf(p_l_target, rate)
    entries = -1 if np.isnan(raw) else int(raw)
    if entries < 0:
        # scipy's isf underflows for extreme tails at small rates; walk
        # the log survival function instead (exact and stable).
        log_target = np.log(p_l_target)
        k = 0
        while poisson.logsf(k, rate) > log_target:
            k += 1
        entries = k
    return max(2, entries + 1)


def paper_table4_rows() -> list[dict[str, float]]:
    """The paper's published Table IV, for side-by-side bench output."""
    return [
        {"config": "40 - BASE", "FF": 8_991, "FF%": 4, "LUT": 14_679,
         "LUT%": 6, "throughput": 4.66},
        {"config": "40 - Q3DE", "FF": 13_855, "FF%": 6, "LUT": 20_279,
         "LUT%": 9, "throughput": 4.25},
        {"config": "80 - BASE", "FF": 13_211, "FF%": 6, "LUT": 36_668,
         "LUT%": 16, "throughput": 1.81},
        {"config": "80 - Q3DE", "FF": 22_751, "FF%": 10, "LUT": 54_638,
         "LUT%": 24, "throughput": 1.79},
    ]
