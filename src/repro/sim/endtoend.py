"""End-to-end Q3DE experiment: detect, estimate, re-decode.

The Fig. 8 experiments give the decoder the *true* anomalous region (the
paper's "with rollback" idealization).  This experiment closes the loop
the way the architecture actually runs it:

1. a cosmic ray strikes mid-run at a position the decoder does not know;
2. the anomaly detection unit watches the live syndrome stream;
3. on detection, the anomalous region is *estimated* (median position,
   onset one window back) and decoding is re-executed with weighted
   edges over that estimate;
4. the shot is scored three ways -- naive decoding, detection-driven
   re-execution, and oracle re-execution (true region) -- so the cost of
   imperfect detection is measurable.

The paper's claim that detection is accurate enough (Fig. 7 position
error of a node or two) implies the detected-region decoder should sit
close to the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.statistics import SyndromeStatistics, expected_activity_rate
from repro.decoding.graph import SyndromeLattice
from repro.noise.models import AnomalousRegion


def estimate_strike_region(distance: int, anomaly_size: int,
                           event_row: int, event_col: int,
                           onset_estimate: int) -> AnomalousRegion:
    """The control unit's region estimate from a detection event.

    Shared by the sequential and batched experiment paths so the two
    engines always score ``detected`` against the same box: the assumed
    ``anomaly_size`` centred on the flagged position (clipped to the
    lattice), starting at the estimated onset.
    """
    half = anomaly_size // 2
    rows, cols = distance - 1, distance
    return AnomalousRegion(
        row_lo=int(np.clip(event_row - half, 0,
                           max(0, rows - anomaly_size))),
        col_lo=int(np.clip(event_col - half, 0,
                           max(0, cols - anomaly_size))),
        size=anomaly_size,
        t_lo=max(0, onset_estimate),
    )


@dataclass(frozen=True)
class EndToEndResult:
    """Failure counts over the campaign, per decoding strategy."""

    shots: int
    naive_failures: int
    detected_failures: int
    oracle_failures: int
    detections: int
    mean_latency: float

    @property
    def detection_rate(self) -> float:
        return self.detections / self.shots

    def rates(self) -> dict[str, float]:
        return {
            "naive": self.naive_failures / self.shots,
            "detected": self.detected_failures / self.shots,
            "oracle": self.oracle_failures / self.shots,
        }


class EndToEndExperiment:
    """Detection-driven re-execution over repeated strike shots.

    Args:
        distance: code distance.
        p: normal physical error rate per cycle.
        p_ano: anomalous error rate.
        anomaly_size: true (and assumed) region size ``d_ano``.
        onset: cycle at which the strike lands.
        cycles: total noisy rounds per shot.
        c_win: detection window.
        n_th: detection count threshold.
    """

    def __init__(
        self,
        distance: int,
        p: float,
        p_ano: float = 0.5,
        anomaly_size: int = 4,
        onset: int = 150,
        cycles: int = 300,
        c_win: int = 100,
        n_th: int = 8,
        alpha: float = 0.01,
    ):
        if onset >= cycles:
            raise ValueError("the strike must land inside the run")
        self.distance = distance
        self.p = p
        self.p_ano = p_ano
        self.anomaly_size = anomaly_size
        self.onset = onset
        self.cycles = cycles
        self.c_win = c_win
        self.n_th = n_th
        self.alpha = alpha
        self.lattice = SyndromeLattice(distance)
        self.stats = SyndromeStatistics.from_activity_rate(
            expected_activity_rate(p))

    # ------------------------------------------------------------------
    def run(self, shots: int,
            rng: Optional[np.random.Generator] = None,
            workers: int = 0,
            batch_size: Optional[int] = None,
            seed: Optional[int] = None,
            packing: str = "bits") -> EndToEndResult:
        """Run the campaign and aggregate failure rates.

        This is now a thin shim over the unified campaign API — it
        builds a :class:`repro.campaigns.EndToEndSpec` and calls
        :func:`repro.campaigns.run`, so its results are bit-identical
        per ``(seed, batch_size)`` to the pre-redesign
        ``BatchShotRunner`` path and to a directly run spec.  Prefer the
        campaign API for new code (sweeps, executors, checkpoint/resume,
        provenance).

        The staged shot kernel (region-bucketed decoding, bit-packed
        sampling by default — ``packing="bits"`` is outcome-identical
        to the ``"none"`` float reference per ``(seed, batch_size)``)
        is the only engine: ``workers = 0`` (default) runs it
        in-process over whole-request chunks (``batch_size = shots``,
        shrunk by :func:`repro.sim.batch.default_chunk_shots` when the
        chunk's activity tensors would not fit in memory);
        ``workers > 1`` fans batches over a process pool.  Campaigns
        are reproducible from ``(seed, batch_size)`` (``seed`` drawn
        from ``rng`` when not given).  The retired per-cycle reference
        loop lives in ``tests/reference_engines.py``, reachable only
        from the equivalence suite.
        """
        if shots < 1:
            raise ValueError("need at least one shot")
        # reprolint: disable=RL001 -- rng=None is the caller's explicit
        # opt-out of reproducibility; campaigns always pass a seeded rng
        rng = rng if rng is not None else np.random.default_rng()
        from repro import campaigns
        if seed is None:
            seed = int(rng.integers(2 ** 63))
        spec = campaigns.EndToEndSpec(
            distance=self.distance, p=self.p, shots=shots,
            p_ano=self.p_ano, anomaly_size=self.anomaly_size,
            onset=self.onset, cycles=self.cycles, c_win=self.c_win,
            n_th=self.n_th, alpha=self.alpha, seed=seed,
            batch_size=batch_size, packing=packing)
        executor = campaigns.default_executor(workers)
        return campaigns.run(spec, executor=executor).detail
