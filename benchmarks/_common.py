"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports.  Monte-Carlo depth is controlled
by environment variables so CI stays fast while full-fidelity runs remain
one command away:

* ``REPRO_SAMPLES``  -- samples per Monte-Carlo data point (default 200;
  the paper used >= 1e5 over ~6 days of CPU time).
* ``REPRO_SCALE``    -- multiplier on all workload sizes (default 1.0).
* ``REPRO_WORKERS``  -- shot-engine parallelism (default 1: batched
  in-process vectorized path; ``0`` forces the sequential per-shot
  loops; ``> 1`` fans batches over a process pool of that size).
* ``REPRO_BACKEND``  -- array backend for the packed kernels (``numpy``
  default; ``cupy`` is experimental and falls back with a warning).
* ``REPRO_JSON``     -- machine-readable bench trajectory: ``1``
  (default) lets benches merge their stage throughputs and speedup
  ratios into ``BENCH_<name>.json`` via :func:`emit_json`; ``0``
  disables.  ``--json`` on the command line forces it on.
* ``REPRO_JSON_DIR`` -- where those JSON files land (default: this
  ``benchmarks/`` directory).

See ``benchmarks/README.md`` for the workflow and the JSON schema.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Iterable, Optional


def mc_samples(default: int = 200) -> int:
    """Samples per Monte-Carlo point, from the environment."""
    return max(1, int(float(os.environ.get("REPRO_SAMPLES", default))
                      * scale()))


def mc_workers(default: int = 1) -> int:
    """Shot-engine worker count, from the environment."""
    return max(0, int(os.environ.get("REPRO_WORKERS", default)))


def scale() -> float:
    """Global workload multiplier, from the environment."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def json_enabled() -> bool:
    """Whether benches should write their machine-readable JSON."""
    if "--json" in sys.argv:
        return True
    return os.environ.get("REPRO_JSON", "1").strip().lower() not in (
        "0", "false", "no", "off", "")


def emit_json(name: str, section: str, payload: dict) -> Optional[str]:
    """Merge one bench section into ``BENCH_<name>.json``.

    Each bench function contributes its stage throughputs / speedup
    ratios under its own ``section`` key, so one file accumulates the
    whole script's trajectory and stays diffable across PRs.  Returns
    the path written, or ``None`` when disabled.
    """
    if not json_enabled():
        return None
    out_dir = os.environ.get("REPRO_JSON_DIR",
                             os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    doc: dict = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            doc = {}
    try:
        from repro.sim import backend
        backend_name = backend.name
    except Exception:  # pragma: no cover - repro not importable
        backend_name = "unknown"
    doc["bench"] = name
    doc.pop("env", None)  # pre-refactor file-global env block
    # No timestamp on purpose: the file is committed as the cross-PR
    # perf trajectory, and a stamp would dirty it on every no-op rerun.
    # The env rides inside each section so a casual low-sample rerun of
    # one bench can never mislabel the sections it did not touch.
    sections = doc.setdefault("sections", {})
    sections[section] = dict(payload)
    sections[section]["env"] = {
        "samples": mc_samples(),
        "workers": mc_workers(),
        "scale": scale(),
        "backend": backend_name,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def print_table(title: str, header: Iterable[str],
                rows: Iterable[Iterable]) -> None:
    """Render an aligned ASCII table (bench output, mirrors the paper)."""
    header = [str(h) for h in header]
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 1e-3 or abs(cell) >= 1e5:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
