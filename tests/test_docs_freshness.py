"""tools/check_docs.py: the documented CLI surface must be the real one."""

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_docs  # noqa: E402


def test_repo_docs_are_fresh(capsys):
    assert check_docs.main(ROOT) == 0
    assert "clean" in capsys.readouterr().out


def test_parser_extraction_sees_every_subcommand():
    assert check_docs.registered_subcommands(ROOT) == {
        "run", "validate", "hash", "worker", "serve", "gc"}


def test_catalog_extraction_sees_every_scenario():
    assert check_docs.registered_scenarios(ROOT) == {
        "overlapping-strikes", "back-to-back-strikes",
        "heterogeneous-base-rate", "drifting-base-rate",
        "leakage-burst", "decoder-frontier"}
    assert check_docs.documented_scenarios(ROOT) \
        == check_docs.registered_scenarios(ROOT)


def test_catalog_drift_is_detected(tmp_path, capsys):
    (tmp_path / "src/repro/campaigns").mkdir(parents=True)
    (tmp_path / "src/repro/scenarios").mkdir()
    (tmp_path / "docs").mkdir()
    (tmp_path / "src/repro/campaigns/cli.py").write_text(
        'def build():\n    sub.add_parser("run")\n')
    (tmp_path / "src/repro/scenarios/catalog.py").write_text(
        '@register_scenario("real-entry")\n'
        'def _real():\n    pass\n')
    # The table lists a ghost entry and omits the real one.
    (tmp_path / "README.md").write_text(
        "Use `python -m repro run`.\n"
        "## Scenario catalog\n"
        "| entry | engine | what |\n"
        "|---|---|---|\n"
        "| `ghost-entry` | memory | nothing |\n")
    assert check_docs.main(tmp_path) == 1
    out = capsys.readouterr().out
    assert "ghost-entry" in out  # documented but unregistered
    assert "real-entry" in out  # registered but undocumented


def test_drift_is_detected(tmp_path, capsys):
    (tmp_path / "src/repro/campaigns").mkdir(parents=True)
    (tmp_path / "docs").mkdir()
    (tmp_path / "src/repro/campaigns/cli.py").write_text(
        'def build():\n    sub.add_parser("run")\n    sub.add_parser("hash")\n')
    # README shows a ghost subcommand and omits a real one.
    (tmp_path / "README.md").write_text(
        "Use `python -m repro run` or `python -m repro explode`.\n")
    assert check_docs.main(tmp_path) == 1
    out = capsys.readouterr().out
    assert "explode" in out  # documented but unregistered
    assert "`hash`" in out  # registered but undocumented
