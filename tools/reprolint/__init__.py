"""repro-lint: the repo's reproducibility-contract checker.

PRs 1-5 certified every fast path bit-identical per ``(seed,
batch_size)``.  The contracts that certification rests on — RNG streams
threaded from a ``SeedSequence``, seam-routed kernels reaching arrays
only through :mod:`repro.sim.backend`, frozen JSON-round-trippable
campaign specs, ``repro/config.py`` owning every ``REPRO_*`` read, and
a deterministic checkpoint wire format — are mechanical properties of
the source.  This package turns them into AST-enforced rules so a
careless ``np.random.default_rng()`` or a stray host-``numpy`` call in
a seam kernel fails CI instead of silently eroding the certification.

Pure stdlib (``ast`` + ``tomllib``); no runtime dependency on the
``repro`` package, so the linter runs before the tree even imports.

Usage::

    python -m reprolint src benchmarks examples [--json]

Rules (see ``docs/CONTRACTS.md`` for the full contract text):

=======  ==============================================================
RL000    lint hygiene: unparsable file, or a ``# reprolint:`` disable
         comment without a ``-- justification``
RL001    seed discipline: no legacy ``np.random.*`` global-state RNG,
         no entropy-seeded (argless) generator construction
RL002    backend-seam purity: seam-routed kernels touch arrays only
         through the backend handle, per ``seam_manifest.toml``
RL003    env-knob ownership: ``os.environ`` / ``os.getenv`` only in
         ``repro/config.py``
RL004    spec discipline: every ``register_campaign``-registered spec
         is a ``frozen=True`` dataclass with JSON-representable fields
RL005    checkpoint-wire hygiene: no pickle/eval/wall-clock/unordered-
         set constructs in the checkpoint and spec-hash modules
=======  ==============================================================

Suppressing a finding requires a justification::

    x = risky()  # reprolint: disable=RL001 -- caller opted out of repro
"""

from reprolint.engine import (  # noqa: F401  (public API re-exports)
    Diagnostic,
    LintReport,
    Rule,
    all_rules,
    run_paths,
)
from reprolint.manifest import Manifest, load_manifest  # noqa: F401

__version__ = "1.0.0"

#: Schema version of the ``--json`` output document.
JSON_SCHEMA_VERSION = 1
