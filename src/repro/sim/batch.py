"""Batched shot engine for Monte-Carlo campaigns.

The paper's headline results are >= 1e5-sample campaigns; running each
shot through per-cycle Python loops caps benches at a few hundred.  This
module is the production hot path:

* **Vectorized shot kernels** — noise sampling, syndrome extraction and
  cut parities are computed for a whole batch of shots in a handful of
  NumPy calls (:meth:`PhenomenologicalNoise.sample_batch`,
  :meth:`SyndromeLattice.detection_events_batch`); only the matching
  itself runs per shot, through the pruned fast-greedy core that is
  certified exactly equal to the sequential decoder.

* **Process fan-out** — ``workers > 1`` decodes batches on a
  ``multiprocessing`` pool.  Each worker builds its kernel (and decoder)
  once and reuses it for every batch it is handed.

* **Reproducibility** — one :class:`numpy.random.SeedSequence` spawns a
  child seed per batch, so a campaign's outcomes depend only on
  ``(seed, batch_size)`` — never on the worker count or on scheduling.

* **Streaming estimates** — per-shot outcomes stream into a
  :class:`BinomialEstimate`; a campaign can stop early once the Wilson
  interval is tight enough instead of burning a fixed shot budget.

``workers = 0`` everywhere falls back to the original sequential path.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.statistics import (SyndromeStatistics, detection_threshold,
                                   expected_activity_rate)
from repro.decoding.graph import SyndromeLattice
from repro.decoding.greedy import greedy_cut_parity
from repro.decoding.mwpm import MWPMDecoder
from repro.decoding.weights import DistanceModel, relative_anomalous_weight
from repro.noise.models import AnomalousRegion, PhenomenologicalNoise
from repro.sim.endtoend import estimate_strike_region
from repro.sim.montecarlo import BinomialEstimate, wilson_interval


# ----------------------------------------------------------------------
# Shared kernel pieces
# ----------------------------------------------------------------------
def _overwrite_anomalous(v: np.ndarray, h: np.ndarray, m: np.ndarray,
                         shot: int, region: AnomalousRegion,
                         distance: int, p: float, p_ano: float,
                         rng: np.random.Generator) -> None:
    """Resample one shot's error arrays at ``p_ano`` inside ``region``.

    The batched kernels draw the whole batch at the base rate first;
    per-shot regions then only touch their own cells, mirroring
    ``PhenomenologicalNoise.sample`` with that region.
    """
    masks = PhenomenologicalNoise(distance, p, p_ano,
                                  region).anomalous_masks
    cycles = v.shape[1]
    t_hi = region.t_hi if region.t_hi is not None else cycles
    t_lo, t_hi = max(0, region.t_lo), min(cycles, t_hi)
    if t_hi <= t_lo:
        return
    span = t_hi - t_lo
    for arr, mask in zip((v, h, m), masks):
        arr[shot, t_lo:t_hi][:, mask] = (
            rng.random((span, int(mask.sum()))) < p_ano)


def _windowed_over(activity: np.ndarray, c_win: int,
                   v_th: float) -> tuple[np.ndarray, np.ndarray]:
    """Sliding-window counter state for one shot's activity stream.

    Returns ``(over, n_over)`` where index ``k`` corresponds to cycle
    ``t = k + c_win - 1`` (the unit stays silent until its window
    fills): ``over[k]`` is the above-threshold node map, ``n_over[k]``
    its count.  Exactly the counter update of
    :meth:`AnomalyDetectionUnit.observe` under the fixed discard
    semantics, where masks never touch a scored detection (pre-onset
    flags clear their masks; the first accepted flag ends the shot).
    """
    cum = np.cumsum(activity, axis=0, dtype=np.int32)
    if len(cum) < c_win:
        empty = np.zeros((0,) + activity.shape[1:], dtype=bool)
        return empty, np.zeros(0, dtype=np.int64)
    windowed = cum[c_win - 1:].copy()
    windowed[1:] -= cum[:-c_win]
    over = windowed > v_th
    return over, over.sum(axis=(1, 2))


# ----------------------------------------------------------------------
# Shot kernels
# ----------------------------------------------------------------------
class MemoryShotKernel:
    """Batched version of :meth:`MemoryExperiment.run_once`.

    ``run_batch(shots, rng)`` returns an ``(shots,)`` int8 array of
    logical-failure indicators, distributionally identical to ``shots``
    sequential ``run_once`` calls (the same error model and the exact
    same matching; only the order in which the uniforms are drawn
    differs).
    """

    #: column of ``run_batch`` output that feeds the streamed estimate
    success_column = 0
    default_batch_size = 512

    def __init__(self, distance: int, p: float,
                 region: Optional[AnomalousRegion] = None,
                 p_ano: float = 0.5, decoder: str = "greedy",
                 informed: bool = False, cycles: Optional[int] = None):
        self.distance = distance
        self.p = p
        self.region = region
        self.p_ano = p_ano
        self.decoder = decoder
        self.informed = informed
        self.cycles = cycles if cycles is not None else distance
        self._state = None

    def prepare(self) -> None:
        """Build noise/lattice/decoder once (per process, per worker)."""
        if self._state is not None:
            return
        noise = PhenomenologicalNoise(self.distance, self.p, self.p_ano,
                                      self.region)
        lattice = SyndromeLattice(self.distance)
        if self.informed and self.region is not None:
            w_ano = relative_anomalous_weight(self.p, self.p_ano)
            model = DistanceModel(self.distance, self.region, w_ano)
        else:
            model = DistanceModel(self.distance)
        mwpm = MWPMDecoder(model) if self.decoder == "mwpm" else None
        self._state = (noise, lattice, model, mwpm)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_state"] = None  # rebuilt lazily inside each worker
        return state

    def run_batch(self, shots: int, rng: np.random.Generator) -> np.ndarray:
        self.prepare()
        noise, lattice, model, mwpm = self._state
        v, h, m = noise.sample_batch(shots, self.cycles, rng)
        nodes_per_shot = lattice.detection_events_batch(v, h, m)
        error_parity = lattice.error_cut_parity(v)
        out = np.empty(shots, dtype=np.int8)
        for s, nodes in enumerate(nodes_per_shot):
            if len(nodes) == 0:
                correction = 0
            elif mwpm is not None:
                correction = mwpm.decode(nodes).correction_cut_parity
            else:
                correction = greedy_cut_parity(model, nodes)
            out[s] = error_parity[s] ^ correction
        return out


class EndToEndShotKernel:
    """Batched version of :meth:`EndToEndExperiment.run_shot`.

    Output rows are ``(naive, detected, oracle, latency)`` with
    ``latency = -1`` on a missed detection.  The per-cycle detection
    scan is replaced by a windowed-count computation over the whole
    activity stream (exact under the discard-pre-onset semantics: masks
    from discarded events are cleared, and the first accepted event ends
    the shot, so no mask can ever touch a scored detection).
    """

    success_column = 1  # detected-strategy failures drive early stopping
    default_batch_size = 64

    def __init__(self, distance: int, p: float, p_ano: float,
                 anomaly_size: int, onset: int, cycles: int,
                 c_win: int, n_th: int, alpha: float):
        self.distance = distance
        self.p = p
        self.p_ano = p_ano
        self.anomaly_size = anomaly_size
        self.onset = onset
        self.cycles = cycles
        self.c_win = c_win
        self.n_th = n_th
        self.alpha = alpha
        self._state = None

    def prepare(self) -> None:
        if self._state is not None:
            return
        lattice = SyndromeLattice(self.distance)
        stats = SyndromeStatistics.from_activity_rate(
            expected_activity_rate(self.p))
        v_th = detection_threshold(stats, self.c_win, self.alpha)
        base_noise = PhenomenologicalNoise(self.distance, self.p, self.p_ano)
        naive_model = DistanceModel(self.distance)
        w_ano = relative_anomalous_weight(self.p, self.p_ano)
        self._state = (lattice, v_th, base_noise, naive_model, w_ano)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_state"] = None
        return state

    def _failure(self, model, lattice, nodes, v) -> int:
        return lattice.error_cut_parity(v) ^ greedy_cut_parity(model, nodes)

    def run_batch(self, shots: int, rng: np.random.Generator) -> np.ndarray:
        self.prepare()
        lattice, v_th, base_noise, naive_model, w_ano = self._state
        d, cycles, c_win = self.distance, self.cycles, self.c_win

        regions = [AnomalousRegion.random(d, self.anomaly_size, rng,
                                          t_lo=self.onset)
                   for _ in range(shots)]
        v, h, m = base_noise.sample_batch(shots, cycles, rng)
        # Regions differ per shot, so the anomalous overwrite is the one
        # per-shot sampling step (touching only the region's cells).
        for s, region in enumerate(regions):
            _overwrite_anomalous(v, h, m, s, region, d, self.p,
                                 self.p_ano, rng)
        activity = lattice.per_cycle_activity(v, h, m)

        out = np.empty((shots, 4), dtype=np.int64)
        for s in range(shots):
            over, n_over = _windowed_over(activity[s], c_win, v_th)
            start = max(self.onset - (c_win - 1), 0)
            fired = np.flatnonzero(n_over[start:] > self.n_th)

            event_cycle = None
            stop = cycles
            estimated = None
            latency = -1
            if len(fired):
                event_cycle = int(fired[0]) + start + c_win - 1
                stop = min(cycles, event_cycle + d)
                flag_rows, flag_cols = np.nonzero(
                    over[event_cycle - (c_win - 1)])
                estimated = estimate_strike_region(
                    d, self.anomaly_size, int(np.median(flag_rows)),
                    int(np.median(flag_cols)),
                    max(0, event_cycle - c_win))
                latency = event_cycle - self.onset

            vs, hs, ms = v[s, :stop], h[s, :stop], m[s, :stop]
            nodes = lattice.detection_events(vs, hs, ms)
            naive = self._failure(naive_model, lattice, nodes, vs)
            oracle_model = DistanceModel(d, regions[s], w_ano)
            oracle = self._failure(oracle_model, lattice, nodes, vs)
            if estimated is not None:
                detected = self._failure(
                    DistanceModel(d, estimated, w_ano), lattice, nodes, vs)
            else:
                detected = naive
            out[s] = (naive, detected, oracle, latency)
        return out


class DetectionTrialKernel:
    """Batched detection trials (Fig. 7) for the shot engine.

    Output rows are ``(false_positive, detected, latency, position_error)``
    with ``latency = -1`` and ``position_error = nan`` on a miss.  Uses
    the same windowed-count scan as :class:`EndToEndShotKernel`: exact
    under the discard semantics, where pre-onset flags clear their masks
    and the first post-onset flag ends the trial.
    """

    success_column = 1
    default_batch_size = 16

    def __init__(self, distance: int, p: float, p_ano: float,
                 anomaly_size: int, c_win: int, n_th: int, alpha: float,
                 normal_cycles: int, post_cycles: int):
        self.distance = distance
        self.p = p
        self.p_ano = p_ano
        self.anomaly_size = anomaly_size
        self.c_win = c_win
        self.n_th = n_th
        self.alpha = alpha
        self.normal_cycles = normal_cycles
        self.post_cycles = post_cycles
        self._state = None

    def prepare(self) -> None:
        if self._state is not None:
            return
        stats = SyndromeStatistics.from_activity_rate(
            expected_activity_rate(self.p))
        v_th = detection_threshold(stats, self.c_win, self.alpha)
        base_noise = PhenomenologicalNoise(self.distance, self.p, self.p_ano)
        self._state = (v_th, base_noise, SyndromeLattice(self.distance))

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_state"] = None
        return state

    def run_batch(self, shots: int, rng: np.random.Generator) -> np.ndarray:
        self.prepare()
        v_th, base_noise, lattice = self._state
        c_win, onset = self.c_win, self.normal_cycles
        total = self.normal_cycles + self.post_cycles

        regions = [AnomalousRegion.random(self.distance, self.anomaly_size,
                                          rng, t_lo=onset)
                   for _ in range(shots)]
        v, h, m = base_noise.sample_batch(shots, total, rng)
        for s, region in enumerate(regions):
            _overwrite_anomalous(v, h, m, s, region, self.distance,
                                 self.p, self.p_ano, rng)
        activity = lattice.per_cycle_activity(v, h, m)

        out = np.empty((shots, 4), dtype=np.float64)
        for s in range(shots):
            over, n_over = _windowed_over(activity[s], c_win, v_th)
            if not len(n_over):
                out[s] = (0.0, 0.0, -1.0, np.nan)
                continue
            # Windowed index k corresponds to cycle t = k + c_win - 1.
            pre = max(0, onset - (c_win - 1))
            false_positive = bool(np.any(n_over[:pre] > self.n_th))
            fired = np.flatnonzero(n_over[pre:] > self.n_th)
            if len(fired):
                cycle = int(fired[0]) + pre + c_win - 1
                flag_r, flag_c = np.nonzero(over[cycle - (c_win - 1)])
                region = regions[s]
                centre_r = region.row_lo + (self.anomaly_size - 1) / 2.0
                centre_c = region.col_lo + (self.anomaly_size - 1) / 2.0
                err = math.hypot(int(np.median(flag_r)) - centre_r,
                                 int(np.median(flag_c)) - centre_c)
                out[s] = (false_positive, 1.0, cycle - onset, err)
            else:
                out[s] = (false_positive, 0.0, -1.0, np.nan)
        return out


# ----------------------------------------------------------------------
# Worker-pool plumbing
# ----------------------------------------------------------------------
_WORKER_KERNEL = None


def _pool_init(kernel) -> None:
    global _WORKER_KERNEL
    _WORKER_KERNEL = kernel
    _WORKER_KERNEL.prepare()  # decoder built once, reused per batch


def _pool_run(task) -> np.ndarray:
    shots, seed = task
    return _WORKER_KERNEL.run_batch(shots, np.random.default_rng(seed))


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
@dataclass
class BatchRunResult:
    """Outcome of a batched campaign."""

    outcomes: np.ndarray  # (shots,) or (shots, k) per-shot outcomes
    estimate: Optional[BinomialEstimate]  # streamed success-column counts
    requested: int

    @property
    def shots(self) -> int:
        return len(self.outcomes)

    @property
    def stopped_early(self) -> bool:
        return self.shots < self.requested


class BatchShotRunner:
    """Runs a shot kernel over batches, in process or on a worker pool.

    Args:
        kernel: object with ``run_batch(shots, rng) -> np.ndarray``,
            ``prepare()``, ``success_column`` and ``default_batch_size``.
        workers: 0 or 1 runs in-process; ``workers > 1`` fans batches out
            over a ``multiprocessing`` pool of that size.
        batch_size: shots per batch (``None`` = kernel default).  Part of
            the reproducibility contract: outcomes depend on
            ``(seed, batch_size)`` only.
        seed: campaign seed for the shared ``SeedSequence``.
    """

    def __init__(self, kernel, workers: int = 0,
                 batch_size: Optional[int] = None,
                 seed: Optional[int] = None):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.kernel = kernel
        self.workers = workers
        self.batch_size = (batch_size if batch_size is not None
                           else kernel.default_batch_size)
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.seed = seed
        self.last_estimate: Optional[BinomialEstimate] = None

    # ------------------------------------------------------------------
    def _batches(self, shots: int) -> list[tuple[int, np.random.SeedSequence]]:
        sizes = [self.batch_size] * (shots // self.batch_size)
        if shots % self.batch_size:
            sizes.append(shots % self.batch_size)
        children = np.random.SeedSequence(self.seed).spawn(len(sizes))
        return list(zip(sizes, children))

    def run(self, shots: int,
            target_rel_width: Optional[float] = None,
            min_shots: int = 0) -> BatchRunResult:
        """Run up to ``shots`` shots, streaming batch outcomes.

        With ``target_rel_width`` the campaign stops as soon as the
        Wilson interval of the success-column estimate is narrower than
        ``target_rel_width *`` its mean (and at least ``min_shots`` and
        one full batch have been run): the adaptive mode that replaces
        fixed >= 1e5-shot budgets.
        """
        if shots < 1:
            raise ValueError("need at least one shot")
        tasks = self._batches(shots)
        collected: list[np.ndarray] = []
        successes = trials = 0

        def tight_enough() -> bool:
            if target_rel_width is None or trials < max(min_shots, 1):
                return False
            if successes == 0:
                return False
            lo, hi = wilson_interval(successes, trials)
            mean = successes / trials
            return (hi - lo) <= target_rel_width * mean

        def ingest(batch: np.ndarray) -> bool:
            nonlocal successes, trials
            collected.append(batch)
            column = batch if batch.ndim == 1 \
                else batch[:, self.kernel.success_column]
            successes += int(np.count_nonzero(column))
            trials += len(batch)
            return tight_enough()

        if self.workers <= 1:
            self.kernel.prepare()
            for size, child in tasks:
                batch = self.kernel.run_batch(
                    size, np.random.default_rng(child))
                if ingest(batch):
                    break
        else:
            with multiprocessing.Pool(
                    self.workers, initializer=_pool_init,
                    initargs=(self.kernel,)) as pool:
                for batch in pool.imap(_pool_run, tasks):
                    if ingest(batch):
                        break  # context manager terminates the pool

        outcomes = np.concatenate(collected)
        self.last_estimate = (BinomialEstimate(successes, trials)
                              if trials else None)
        return BatchRunResult(outcomes=outcomes,
                              estimate=self.last_estimate,
                              requested=shots)
