"""Exact shortest paths on the weighted space-time decoding grid.

The fast :class:`repro.decoding.weights.DistanceModel` evaluates a small
set of candidate routes (direct, via the anomalous box) in O(1) per
pair -- the trick that keeps the paper's greedy decoder constant-time
per path query (Fig. 6c).  This module provides the ground truth it
approximates: a Dijkstra search over the explicit 3-D grid with
per-edge weights (1 for normal edges, ``w_ano`` inside the anomalous
region).  It is used by tests to certify the approximation and is exact
for any ``w_ano``, at grid-search cost.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.decoding.weights import NORTH, SOUTH
from repro.noise.models import AnomalousRegion


class GridDijkstra:
    """Exact weighted distances on the (time, row, col) decoding grid.

    Args:
        distance: code distance ``d`` (rows ``0..d-2``, cols ``0..d-1``).
        time_extent: number of difference-lattice layers.
        region: optional anomalous region.
        w_ano: weight of edges with *both* endpoints inside the region
            (boundary-crossing edges count as anomalous too: the region
            is defined over the qubits, and any edge incident on an
            anomalous qubit is suspect -- matching the noise model's
            mask construction).
    """

    def __init__(self, distance: int, time_extent: int,
                 region: Optional[AnomalousRegion] = None,
                 w_ano: float = 0.0):
        self.distance = distance
        self.time_extent = time_extent
        self.region = region
        self.w_ano = float(w_ano)

    # ------------------------------------------------------------------
    def _in_region(self, node: tuple[int, int, int]) -> bool:
        if self.region is None:
            return False
        t, i, j = node
        if not self.region.active_at(t):
            return False
        return self.region.contains_node(i, j)

    def _edge_weight(self, a, b) -> float:
        """An edge is anomalous if either endpoint is in the region."""
        if self._in_region(a) or self._in_region(b):
            return self.w_ano
        return 1.0

    def _neighbors(self, node):
        t, i, j = node
        for dt, di, dj in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0),
                           (0, 0, 1), (0, 0, -1)):
            tt, ii, jj = t + dt, i + di, j + dj
            if (0 <= tt < self.time_extent
                    and 0 <= ii < self.distance - 1
                    and 0 <= jj < self.distance):
                yield (tt, ii, jj)

    # ------------------------------------------------------------------
    def distances_from(self, source: tuple[int, int, int]) -> dict:
        """Single-source exact distances to every grid node."""
        dist = {source: 0.0}
        heap = [(0.0, source)]
        while heap:
            cost, node = heapq.heappop(heap)
            if cost > dist.get(node, float("inf")):
                continue
            for nxt in self._neighbors(node):
                new = cost + self._edge_weight(node, nxt)
                if new < dist.get(nxt, float("inf")) - 1e-12:
                    dist[nxt] = new
                    heapq.heappush(heap, (new, nxt))
        return dist

    def node_distance(self, a, b) -> float:
        """Exact weighted distance between two nodes."""
        return self.distances_from(tuple(a))[tuple(b)]

    def boundary_distance(self, a) -> tuple[float, int]:
        """Exact weighted distance to the cheaper code boundary.

        The north boundary is one edge above row 0, the south one edge
        below row ``d-2``; the final boundary-crossing edge is anomalous
        iff the row-0 (row d-2) node it leaves from is.
        """
        dist = self.distances_from(tuple(a))
        best = (float("inf"), NORTH)
        for node, cost in dist.items():
            _, i, _ = node
            if i == 0:
                exit_w = self.w_ano if self._in_region(node) else 1.0
                if cost + exit_w < best[0]:
                    best = (cost + exit_w, NORTH)
            if i == self.distance - 2:
                exit_w = self.w_ano if self._in_region(node) else 1.0
                if cost + exit_w < best[0]:
                    best = (cost + exit_w, SOUTH)
        return best
