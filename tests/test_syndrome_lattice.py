"""Tests for syndrome extraction and the difference lattice."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.decoding.graph import SyndromeLattice
from repro.noise import PhenomenologicalNoise


def empty_errors(d, t):
    v = np.zeros((t, d, d), dtype=bool)
    h = np.zeros((t, d - 1, d - 1), dtype=bool)
    m = np.zeros((t, d - 1, d), dtype=bool)
    return v, h, m


class TestSyndromes:
    def test_no_errors_no_active_nodes(self):
        lat = SyndromeLattice(5)
        v, h, m = empty_errors(5, 5)
        assert len(lat.detection_events(v, h, m)) == 0

    def test_single_bulk_v_error_flips_two_nodes(self):
        lat = SyndromeLattice(5)
        v, h, m = empty_errors(5, 5)
        v[2, 2, 1] = True  # edge between node rows 1 and 2, column 1
        nodes = lat.detection_events(v, h, m)
        coords = {tuple(n) for n in nodes}
        assert coords == {(2, 1, 1), (2, 2, 1)}

    def test_north_boundary_edge_flips_one_node(self):
        lat = SyndromeLattice(5)
        v, h, m = empty_errors(5, 5)
        v[0, 0, 3] = True  # north boundary edge of column 3
        nodes = lat.detection_events(v, h, m)
        coords = {tuple(n) for n in nodes}
        assert coords == {(0, 0, 3)}

    def test_south_boundary_edge_flips_one_node(self):
        lat = SyndromeLattice(5)
        v, h, m = empty_errors(5, 5)
        v[1, 4, 2] = True  # south boundary edge (k = d-1)
        nodes = lat.detection_events(v, h, m)
        coords = {tuple(n) for n in nodes}
        assert coords == {(1, 3, 2)}

    def test_h_error_flips_horizontal_neighbours(self):
        lat = SyndromeLattice(5)
        v, h, m = empty_errors(5, 5)
        h[0, 2, 1] = True  # edge between nodes (2,1) and (2,2)
        nodes = lat.detection_events(v, h, m)
        coords = {tuple(n) for n in nodes}
        assert coords == {(0, 2, 1), (0, 2, 2)}

    def test_measurement_error_flips_two_time_layers(self):
        lat = SyndromeLattice(5)
        v, h, m = empty_errors(5, 5)
        m[2, 1, 1] = True
        nodes = lat.detection_events(v, h, m)
        coords = {tuple(n) for n in nodes}
        assert coords == {(2, 1, 1), (3, 1, 1)}

    def test_final_round_measurement_error_flips_last_two_layers(self):
        lat = SyndromeLattice(5)
        v, h, m = empty_errors(5, 5)
        m[4, 1, 1] = True  # last noisy round; perfect round is layer 5
        nodes = lat.detection_events(v, h, m)
        coords = {tuple(n) for n in nodes}
        assert coords == {(4, 1, 1), (5, 1, 1)}

    def test_error_in_second_cycle_appears_at_its_layer(self):
        lat = SyndromeLattice(5)
        v, h, m = empty_errors(5, 5)
        v[3, 2, 1] = True
        nodes = lat.detection_events(v, h, m)
        assert {tuple(n) for n in nodes} == {(3, 1, 1), (3, 2, 1)}

    def test_repeated_error_cancels(self):
        lat = SyndromeLattice(5)
        v, h, m = empty_errors(5, 5)
        v[1, 2, 1] = True
        v[2, 2, 1] = True  # same edge next cycle: flips back
        nodes = lat.detection_events(v, h, m)
        coords = {tuple(n) for n in nodes}
        # Activation at t=1, deactivation at t=2 on both nodes.
        assert coords == {(1, 1, 1), (1, 2, 1), (2, 1, 1), (2, 2, 1)}

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            SyndromeLattice(1)


class TestCutParity:
    def test_no_errors_even(self):
        v = np.zeros((4, 5, 5), dtype=bool)
        assert SyndromeLattice.error_cut_parity(v) == 0

    def test_single_north_edge_odd(self):
        v = np.zeros((4, 5, 5), dtype=bool)
        v[1, 0, 2] = True
        assert SyndromeLattice.error_cut_parity(v) == 1

    def test_two_north_edges_even(self):
        v = np.zeros((4, 5, 5), dtype=bool)
        v[1, 0, 2] = True
        v[2, 0, 4] = True
        assert SyndromeLattice.error_cut_parity(v) == 0

    def test_non_north_edges_ignored(self):
        v = np.ones((4, 5, 5), dtype=bool)
        v[:, 0, :] = False
        assert SyndromeLattice.error_cut_parity(v) == 0


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 7), st.integers(1, 8), st.integers(0, 10_000))
    def test_active_node_count_is_even_counting_boundaries(self, d, t, seed):
        """Every error flips 0 or 2 nodes *including* virtual boundaries.

        Nodes from boundary-adjacent data edges come alone, but the total
        parity of active nodes plus boundary-terminating errors is even.
        We check the weaker invariant that decoding is well-posed: the
        difference lattice equals what re-deriving from layers gives.
        """
        rng = np.random.default_rng(seed)
        noise = PhenomenologicalNoise(d, 0.1)
        v, h, m = noise.sample(t, rng)
        lat = SyndromeLattice(d)
        layers = lat.measured_layers(v, h, m)
        diff = lat.difference_lattice(layers)
        # XOR of all difference layers telescopes back to the last layer.
        assert np.array_equal(
            np.bitwise_xor.reduce(diff, axis=0), layers[-1])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 6), st.integers(1, 6), st.integers(0, 10_000))
    def test_bulk_data_errors_flip_exactly_two_nodes(self, d, t, seed):
        """With only one bulk data error, exactly two nodes activate."""
        rng = np.random.default_rng(seed)
        v, h, m = empty_errors(d, t)
        tt = int(rng.integers(0, t))
        if d >= 3:
            k = int(rng.integers(1, d - 1))
            j = int(rng.integers(0, d))
            v[tt, k, j] = True
            lat = SyndromeLattice(d)
            assert len(lat.detection_events(v, h, m)) == 2

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 6), st.integers(2, 8), st.integers(0, 10_000))
    def test_activity_stream_matches_difference_lattice(self, d, t, seed):
        rng = np.random.default_rng(seed)
        noise = PhenomenologicalNoise(d, 0.05)
        v, h, m = noise.sample(t, rng)
        lat = SyndromeLattice(d)
        stream = lat.per_cycle_activity(v, h, m)
        layers = lat.measured_layers(v, h, m)
        diff = lat.difference_lattice(layers)
        # The live stream is the noisy-round prefix of the analysis lattice.
        assert np.array_equal(stream, diff[:t])
