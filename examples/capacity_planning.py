"""Capacity planning: how many qubits does a target application need?

A systems architect sizing an FTQC installation asks: for a target
logical error rate of 1e-10 per cycle, how much chip area and qubit
density per logical qubit do we need -- and how much does Q3DE save?
Also sizes the classical side: decoder ANQ entries and control-unit
buffer memory, and sanity-checks instruction throughput.

This is Fig. 9 + Table III + Table IV + Fig. 10 driven as one design
exercise.

Run:  python examples/capacity_planning.py
"""

from repro import campaigns
from repro.arch.memory_overhead import MemoryOverheadModel
from repro.hwmodel.resources import (
    DecoderHardwareModel,
    required_anq_entries,
)

AREAS = (2.0, 8.0, 32.0)


def main():
    # Fig. 9 as one declarative sweep: a ScalingSpec per architecture.
    sweep = campaigns.Sweep(
        campaigns.ScalingSpec(areas=AREAS, horizon_cycles=20_000_000),
        axes={"use_q3de": [False, True]}, derive_seeds=False)
    curves = {overrides["use_q3de"]: result.detail
              for overrides, result in campaigns.run(sweep)}
    print("Qubit budget for p_L < 1e-10 (ratios vs the Sycamore "
          "reference):\n")
    print(f"{'chip area':>10}  {'density (baseline)':>19}  "
          f"{'density (Q3DE)':>15}  {'saving':>7}")
    for i, area in enumerate(AREAS):
        base, q3de = curves[False][i], curves[True][i]
        base_str = f"{base:.1f}" if base else ">max"
        q3de_str = f"{q3de:.1f}" if q3de else ">max"
        saving = f"{base / q3de:.1f}x" if base and q3de else "-"
        print(f"{area:>10}  {base_str:>19}  {q3de_str:>15}  {saving:>7}")

    d, p, c_win = 31, 1e-3, 300
    print(f"\nClassical side at the chosen design point "
          f"(d={d}, p={p}, c_win={c_win}):")
    mem = MemoryOverheadModel(d, c_win)
    for unit, kbit in mem.rows_kbit().items():
        print(f"  {unit.replace('_', ' '):<22} {kbit:7.1f} kbit "
              f"per logical qubit")
    print(f"  (that is {mem.overhead_ratio():.1f}x the MBBE-free "
          f"syndrome queue)")

    entries = required_anq_entries(p, d)
    hw = DecoderHardwareModel(max(40, entries), q3de=True)
    print(f"\n  decoder ANQ needs >= {entries} entries; a "
          f"{hw.anq_entries}-entry Q3DE unit costs "
          f"{hw.luts():,} LUTs ({hw.lut_utilisation():.0%} of a "
          f"ZU7EV) at {hw.throughput_matches_per_us():.2f} matches/us")

    def throughput(architecture, **overrides):
        spec = campaigns.ThroughputSpec(
            architecture=architecture, num_instructions=400, seed=0,
            **overrides)
        return campaigns.run(spec).detail

    free = throughput("mbbe_free")
    q3de = throughput("q3de", strike_prob_per_slot=1e-5,
                      strike_duration_slots=100)
    base = throughput("baseline")
    print(f"\nInstruction throughput (meas_ZZ per d cycles, 25 logical "
          f"qubits):")
    print(f"  MBBE-free {free.throughput:.2f} | Q3DE at realistic ray "
          f"rate {q3de.throughput:.2f} | baseline (2x distance) "
          f"{base.throughput:.2f}")
    print(f"\n  -> Q3DE keeps ~{q3de.throughput / free.throughput:.0%} "
          f"of ideal throughput where the naive fix keeps "
          f"~{base.throughput / free.throughput:.0%}.")


if __name__ == "__main__":
    main()
