"""`repro.scenarios`: model, spec, catalog, and the bit-identity contract.

The load-bearing assertion lives in :class:`TestLegacyBitIdentity`: a
scenario holding one fixed-position (memory) or one re-drawn-per-shot
(endtoend/detection) event over a uniform base rate must produce
**bit-identical** counts and estimates to the legacy
``AnomalousRegion`` campaign it generalizes, per ``(seed, batch_size)``,
packed and unpacked, on all three engines (docs/CONTRACTS.md).
"""

import dataclasses

import numpy as np
import pytest

from repro import campaigns
from repro.campaigns import (DetectionSpec, EndToEndSpec, MemorySpec,
                             ScenarioSpec, SpecError, Sweep,
                             spec_from_json, spec_hash, spec_to_json)
from repro.noise.models import AnomalousRegion
from repro.scenarios import (Scenario, ScenarioError, StrikeEvent,
                             catalog_spec, register_scenario,
                             scenario_catalog)
from repro.scenarios.catalog import _CATALOG

CATALOG_NAMES = [
    "overlapping-strikes", "back-to-back-strikes",
    "heterogeneous-base-rate", "drifting-base-rate",
    "leakage-burst", "decoder-frontier",
]


# ----------------------------------------------------------------------
# StrikeEvent
# ----------------------------------------------------------------------
class TestStrikeEvent:
    def test_validation(self):
        with pytest.raises(ScenarioError, match="onset"):
            StrikeEvent(onset=-1, size=2)
        with pytest.raises(ScenarioError, match="size"):
            StrikeEvent(onset=0, size=0)
        with pytest.raises(ScenarioError, match="duration"):
            StrikeEvent(onset=0, size=2, duration=0)
        with pytest.raises(ScenarioError, match="both row and col"):
            StrikeEvent(onset=0, size=2, row=1)
        with pytest.raises(ScenarioError, match="probability"):
            StrikeEvent(onset=0, size=2, p_ano=1.5)
        with pytest.raises(ScenarioError, match="burst source"):
            StrikeEvent(onset=0, size=2, source="gamma_ray")

    def test_window_and_position_properties(self):
        open_ended = StrikeEvent(onset=10, size=3)
        assert open_ended.t_hi is None and not open_ended.fixed
        bounded = StrikeEvent(onset=10, size=3, duration=40, row=1, col=2)
        assert bounded.t_hi == 50 and bounded.fixed

    def test_region_for_fixed_events(self):
        event = StrikeEvent(onset=5, size=3, duration=20, row=1, col=2)
        assert event.region() == AnomalousRegion(1, 2, 3, t_lo=5, t_hi=25)
        with pytest.raises(ScenarioError, match="random position"):
            StrikeEvent(onset=5, size=3).region()

    def test_resolve_region_draws_like_the_legacy_path(self):
        """A positionless event consumes the rng exactly as the legacy
        per-shot region draw, so streams stay aligned."""
        event = StrikeEvent(onset=5, size=3, duration=20)
        got = event.resolve_region(9, np.random.default_rng(3))
        want = AnomalousRegion.random(9, 3, np.random.default_rng(3),
                                      t_lo=5, t_hi=25)
        assert got == want

    def test_burst_source_routing(self):
        from repro.core.policy import ReactionPolicy
        from repro.noise.leakage import BurstSource
        tagged = StrikeEvent(onset=0, size=1, source="leakage")
        assert tagged.burst_source is BurstSource.LEAKAGE
        assert tagged.recommended_policy is ReactionPolicy.RELOCATE
        untagged = StrikeEvent(onset=0, size=1)
        assert untagged.burst_source is None
        assert untagged.recommended_policy is None

    def test_dict_round_trip_rejects_unknown_fields(self):
        event = StrikeEvent(onset=3, size=2, duration=7, row=0, col=1,
                            p_ano=0.25, source="atom_loss")
        assert StrikeEvent.from_dict(event.to_dict()) == event
        with pytest.raises(ScenarioError, match="unknown"):
            StrikeEvent.from_dict({"onset": 0, "size": 1, "oops": 2})


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------
class TestScenario:
    def test_events_are_validated_and_frozen(self):
        scenario = Scenario(events=[StrikeEvent(onset=0, size=2,
                                                row=0, col=0)])
        assert isinstance(scenario.events, tuple)
        with pytest.raises(ScenarioError, match="StrikeEvent"):
            Scenario(events=({"onset": 0},))

    def test_rate_field_validation(self):
        with pytest.raises(ScenarioError, match="equal length"):
            Scenario(rate_field=[[1.0, 1.0, 1.0], [1.0, 1.0]])
        with pytest.raises(ScenarioError, match="measurement-node"):
            Scenario(rate_field=[[1.0, 1.0], [1.0, 1.0]])
        with pytest.raises(ScenarioError, match="positive"):
            Scenario(rate_field=[[1.0, 0.0, 1.0], [1.0, 1.0, 1.0]])
        scenario = Scenario(rate_field=[[2.0, 1.0, 1.0],
                                        [1.0, 1.0, 3.0]])
        assert scenario.rate_field_distance == 3
        assert not scenario.uniform_base

    def test_drift_validation(self):
        with pytest.raises(ScenarioError, match="at least one"):
            Scenario(drift=())
        with pytest.raises(ScenarioError, match="positive"):
            Scenario(drift=(1.0, -0.5))
        assert Scenario(drift=[1, 2]).drift == (1.0, 2.0)

    def test_legacy_equivalent_is_exactly_the_degenerate_case(self):
        fixed = StrikeEvent(onset=0, size=2, row=1, col=1, p_ano=0.4)
        assert Scenario(events=(fixed,)).legacy_equivalent() \
            == (AnomalousRegion(1, 1, 2, t_lo=0, t_hi=None), 0.4)
        # Anything richer has no legacy counterpart.
        roaming = StrikeEvent(onset=0, size=2)
        assert Scenario(events=(roaming,)).legacy_equivalent() is None
        assert Scenario(events=(fixed, fixed)).legacy_equivalent() is None
        assert Scenario(events=(fixed,),
                        drift=(1.0, 2.0)).legacy_equivalent() is None
        assert Scenario().legacy_equivalent() is None

    def test_json_round_trip(self):
        scenario = Scenario(
            events=(StrikeEvent(onset=2, size=2, duration=5, row=1,
                                col=1, p_ano=0.3, source="leakage"),
                    StrikeEvent(onset=4, size=3)),
            rate_field=[[2.0, 1.0, 1.0], [1.0, 1.0, 3.0]],
            drift=(1.0, 1.5))
        assert Scenario.from_json(scenario.to_json()) == scenario
        with pytest.raises(ScenarioError, match="JSON"):
            Scenario.from_json("{nope")
        with pytest.raises(ScenarioError, match="unknown"):
            Scenario.from_dict({"events": [], "extra": 1})

    def test_rate_arrays_expand_nodes_to_edges(self):
        scenario = Scenario(rate_field=[[2.0, 1.0, 1.0],
                                        [1.0, 1.0, 4.0]],
                            drift=(1.0, 10.0))
        p = 0.01
        thr_v, thr_h, thr_m = scenario.rate_arrays(3, p, cycles=3)
        assert thr_v.shape == (3, 3, 3)
        assert thr_h.shape == (3, 2, 2)
        assert thr_m.shape == (3, 2, 3)
        # Node multipliers pass through on measurement edges.
        assert thr_m[0, 0, 0] == pytest.approx(2.0 * p)
        # A data edge takes the max over its incident nodes.
        assert thr_v[0, 0, 0] == pytest.approx(2.0 * p)   # below node (0,0)
        assert thr_v[0, 1, 0] == pytest.approx(2.0 * p)   # above it too
        assert thr_h[0, 1, 1] == pytest.approx(4.0 * p)
        # The drift profile scales cycles (last value holds) and the
        # result clips to probability range.
        assert thr_m[1, 0, 0] == pytest.approx(10.0 * 2.0 * p)
        assert thr_m[2, 0, 0] == thr_m[1, 0, 0]
        hot = Scenario(rate_field=[[200.0, 1.0, 1.0],
                                   [1.0, 1.0, 1.0]])
        assert hot.rate_arrays(3, p, cycles=1)[2][0, 0, 0] == 1.0
        # Uniform scenarios have no arrays: the scalar path is exact.
        assert Scenario().rate_arrays(3, p, cycles=1) is None

    def test_rate_field_distance_mismatch_is_an_error(self):
        scenario = Scenario(rate_field=[[1.0, 1.0, 1.0],
                                        [1.0, 1.0, 1.0]])
        with pytest.raises(ScenarioError, match="distance"):
            scenario.rate_arrays(5, 0.01, cycles=2)

    def test_from_burst_events_keeps_the_source_tag(self):
        from repro.noise.leakage import BurstEvent, BurstSource
        burst = BurstEvent(BurstSource.ATOM_LOSS, cycle=7, row=2, col=3,
                           size=1, duration_cycles=50, p_ano=0.5)
        scenario = Scenario.from_burst_events([burst])
        event = scenario.events[0]
        assert event.onset == 7 and event.duration == 50
        assert event.row == 2 and event.col == 3
        assert event.source == "atom_loss"
        assert Scenario.from_json(scenario.to_json()) == scenario


# ----------------------------------------------------------------------
# ScenarioSpec
# ----------------------------------------------------------------------
def _fixed_event(**overrides):
    kwargs = dict(onset=0, size=2, row=1, col=1, p_ano=0.4)
    kwargs.update(overrides)
    return StrikeEvent(**kwargs)


class TestScenarioSpec:
    def test_memory_mode_needs_fixed_positions(self):
        ScenarioSpec(distance=5, p=0.01, shots=8,
                     scenario=Scenario(events=(_fixed_event(),)))
        with pytest.raises(SpecError, match="fixed"):
            ScenarioSpec(distance=5, p=0.01, shots=8,
                         scenario=Scenario(
                             events=(StrikeEvent(onset=0, size=2),)))
        with pytest.raises(SpecError, match="detection-mode knob"):
            ScenarioSpec(distance=5, p=0.01, shots=8, post_cycles=10,
                         scenario=Scenario(events=(_fixed_event(),)))

    def test_endtoend_mode_needs_an_explicit_horizon(self):
        events = (StrikeEvent(onset=30, size=2),)
        ScenarioSpec(distance=5, p=0.01, shots=8, mode="endtoend",
                     cycles=60, scenario=Scenario(events=events))
        with pytest.raises(SpecError, match="at least one event"):
            ScenarioSpec(distance=5, p=0.01, shots=8, mode="endtoend",
                         cycles=60)
        with pytest.raises(SpecError, match="explicit cycles"):
            ScenarioSpec(distance=5, p=0.01, shots=8, mode="endtoend",
                         scenario=Scenario(events=events))
        with pytest.raises(SpecError, match="inside the run"):
            ScenarioSpec(distance=5, p=0.01, shots=8, mode="endtoend",
                         cycles=20, scenario=Scenario(events=events))

    def test_detection_mode_derives_its_window(self):
        events = (StrikeEvent(onset=40, size=2, duration=80),)
        spec = ScenarioSpec(distance=5, p=0.002, shots=4,
                            mode="detection", c_win=20,
                            scenario=Scenario(events=events))
        assert spec.resolved_cycles() == (40, 80)  # post = 4 * c_win
        assert spec.total_cycles() == 120
        with pytest.raises(SpecError, match="derives cycles"):
            ScenarioSpec(distance=5, p=0.002, shots=4, mode="detection",
                         cycles=100, c_win=20,
                         scenario=Scenario(events=events))
        with pytest.raises(SpecError, match="pre-strike window"):
            ScenarioSpec(distance=5, p=0.002, shots=4, mode="detection",
                         c_win=20, scenario=Scenario(
                             events=(StrikeEvent(onset=0, size=2),)))

    def test_rate_field_must_match_the_distance(self):
        with pytest.raises(SpecError, match="distance"):
            ScenarioSpec(distance=5, p=0.01, shots=8,
                         scenario=Scenario(
                             rate_field=[[1.0, 1.0, 1.0],
                                         [1.0, 1.0, 1.0]]))

    def test_wire_dict_scenarios_are_coerced(self):
        spec = ScenarioSpec(
            distance=5, p=0.01, shots=8,
            scenario={"events": [{"onset": 0, "size": 2,
                                  "row": 1, "col": 1}]})
        assert isinstance(spec.scenario, Scenario)
        with pytest.raises(SpecError, match="invalid scenario"):
            ScenarioSpec(distance=5, p=0.01, shots=8,
                         scenario={"events": [{"onset": -3, "size": 2}]})

    def test_spec_json_round_trip_and_stable_hash(self):
        spec = ScenarioSpec(
            distance=5, p=0.008, shots=64, mode="memory", cycles=12,
            scenario=Scenario(events=(_fixed_event(),),
                              drift=(1.0, 1.5)),
            seed=9, batch_size=16)
        clone = spec_from_json(spec_to_json(spec))
        assert clone == spec
        assert spec_hash(clone) == spec_hash(spec)


# ----------------------------------------------------------------------
# The catalog
# ----------------------------------------------------------------------
class TestCatalog:
    def test_catalog_lists_the_documented_entries(self):
        catalog = scenario_catalog()
        assert list(catalog) == CATALOG_NAMES
        for name, blurb in catalog.items():
            assert blurb, f"{name} needs a one-line description"

    def test_every_entry_materializes_and_round_trips(self):
        for name in CATALOG_NAMES:
            spec = catalog_spec(name)
            base = spec.base if isinstance(spec, Sweep) else spec
            assert isinstance(base, ScenarioSpec)
            clone = spec_from_json(spec_to_json(base))
            assert clone == base and spec_hash(clone) == spec_hash(base)

    def test_overrides_reach_the_spec_or_the_sweep_base(self):
        assert catalog_spec("leakage-burst", shots=5).shots == 5
        sweep = catalog_spec("decoder-frontier", shots=5)
        assert isinstance(sweep, Sweep) and sweep.base.shots == 5
        assert sweep.axes == {"decoder": ("greedy", "mwpm")}

    def test_unknown_and_duplicate_names_are_errors(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            catalog_spec("no-such-entry")
        try:
            @register_scenario("tmp-test-entry")
            def _tmp():
                """Temporary."""
                return catalog_spec("leakage-burst")
            with pytest.raises(ScenarioError, match="already registered"):
                @register_scenario("tmp-test-entry")
                def _tmp2():
                    """Duplicate."""
                    return catalog_spec("leakage-burst")
        finally:
            _CATALOG.pop("tmp-test-entry", None)

    def test_catalog_runs_end_to_end(self):
        """Cheapened catalog entries run through campaigns.run and a
        serialized replay is bit-identical."""
        spec = catalog_spec("overlapping-strikes", shots=32,
                            batch_size=16)
        result = campaigns.run(spec)
        assert result.kind == "scenario"
        assert result.counts["samples"] == 32
        replay = campaigns.run(spec_from_json(spec_to_json(spec)))
        assert replay.counts == result.counts
        assert replay.estimates == result.estimates

    def test_rate_field_and_drift_entries_run(self):
        for name in ("heterogeneous-base-rate", "drifting-base-rate"):
            result = campaigns.run(catalog_spec(name, shots=24,
                                                batch_size=8))
            assert result.counts["samples"] == 24

    def test_detection_entries_run(self):
        for name in ("back-to-back-strikes", "leakage-burst"):
            result = campaigns.run(catalog_spec(name, shots=2,
                                                batch_size=2))
            assert result.counts["trials"] == 2

    def test_decoder_frontier_sweeps_both_families(self):
        sweep = catalog_spec("decoder-frontier", shots=8, batch_size=4)
        result = campaigns.run(sweep)
        decoders = [overrides["decoder"] for overrides, _ in result]
        assert decoders == ["greedy", "mwpm"]
        for _, point in result:
            assert point.counts["samples"] == 8


# ----------------------------------------------------------------------
# The contract: single-event scenario ≡ legacy region, bit for bit
# ----------------------------------------------------------------------
def _pairs():
    memory_legacy = MemorySpec(
        distance=5, p=0.02, samples=64, region=AnomalousRegion(1, 1, 2),
        p_ano=0.4, informed=True, cycles=8, seed=11, batch_size=16)
    memory_scenario = ScenarioSpec(
        distance=5, p=0.02, shots=64, mode="memory", informed=True,
        cycles=8, seed=11, batch_size=16,
        scenario=Scenario(events=(StrikeEvent(onset=0, size=2, row=1,
                                              col=1, p_ano=0.4),)))
    endtoend_legacy = EndToEndSpec(
        distance=5, p=1e-2, shots=16, p_ano=0.5, anomaly_size=2,
        onset=30, cycles=60, c_win=20, n_th=4, seed=5, batch_size=8)
    endtoend_scenario = ScenarioSpec(
        distance=5, p=1e-2, shots=16, mode="endtoend", cycles=60,
        c_win=20, n_th=4, seed=5, batch_size=8,
        scenario=Scenario(events=(StrikeEvent(onset=30, size=2,
                                              p_ano=0.5),)))
    detection_legacy = DetectionSpec(
        distance=5, p=2e-3, p_ano=0.1, anomaly_size=2, c_win=20,
        n_th=4, trials=8, normal_cycles=40, post_cycles=80, seed=3,
        batch_size=4)
    detection_scenario = ScenarioSpec(
        distance=5, p=2e-3, shots=8, mode="detection", c_win=20,
        n_th=4, post_cycles=80, seed=3, batch_size=4,
        scenario=Scenario(events=(StrikeEvent(onset=40, size=2,
                                              duration=80, p_ano=0.1),)))
    return [("memory", memory_legacy, memory_scenario),
            ("endtoend", endtoend_legacy, endtoend_scenario),
            ("detection", detection_legacy, detection_scenario)]


class TestLegacyBitIdentity:
    @pytest.mark.parametrize("packing", ["bits", "none"])
    @pytest.mark.parametrize("mode_name, legacy, scenario",
                             _pairs(), ids=lambda v: v if
                             isinstance(v, str) else "")
    def test_single_event_scenario_equals_legacy_campaign(
            self, mode_name, legacy, scenario, packing):
        legacy = dataclasses.replace(legacy, packing=packing)
        scenario = dataclasses.replace(scenario, packing=packing)
        want = campaigns.run(legacy)
        got = campaigns.run(scenario)
        # Bit identity: counts AND estimates, not statistical closeness.
        drop = {"samples", "shots", "trials"}
        assert {k: v for k, v in got.counts.items() if k not in drop} \
            == {k: v for k, v in want.counts.items() if k not in drop}
        assert got.counts.get("samples", got.counts.get("shots",
                              got.counts.get("trials"))) \
            == want.counts.get("samples", want.counts.get("shots",
                               want.counts.get("trials")))
        assert got.estimates == want.estimates

    def test_memory_collapse_is_structural(self):
        """The memory engine folds the degenerate scenario to the
        legacy kernel arguments — identity by construction."""
        from repro.campaigns.runner import shot_engine
        _, _, scenario = _pairs()[0]
        kernel, shots, _ = shot_engine(scenario)
        assert kernel.scenario is None
        assert kernel.region == AnomalousRegion(1, 1, 2, t_lo=0,
                                                t_hi=None)
        assert kernel.p_ano == 0.4
        assert shots == 64
