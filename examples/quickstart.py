"""Quickstart: encode, strike, detect, expand, re-decode.

Walks the whole Q3DE story on one logical qubit in under a minute,
using the unified campaign API (`repro.campaigns`) — declarative specs,
one `run()` entry point, uniform results with provenance:

1. build a distance-9 surface-code memory and measure its logical error
   rate with a `MemorySpec` campaign;
2. strike it with a cosmic ray (a 4-qubit anomalous region at p_ano=0.5)
   and watch the logical error rate collapse;
3. decode again with the anomaly position known (Q3DE's re-executed,
   weighted decoding) and recover much of the loss — the three
   measurements are three `dataclasses.replace` variants of one base
   spec (parameter *grids* get `campaigns.Sweep`; see docs/API.md);
4. run the live control unit on the syndrome stream: detection fires,
   `op_expand` doubles the code distance, and the decoder rolls back.

Every campaign here can equally be saved as JSON and run as
`python -m repro run spec.json` — try:

    python - <<'EOF'
    from repro import campaigns
    spec = campaigns.MemorySpec(distance=9, p=0.01, samples=400, seed=42)
    print(campaigns.spec_to_json(spec, indent=2))
    EOF

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AnomalousRegion,
    PhenomenologicalNoise,
    Q3DEConfig,
    Q3DEControlUnit,
    SyndromeLattice,
    campaigns,
)
from repro.sim.detection import calibrated_statistics

DISTANCE = 9
P = 0.01
ANOMALY_SIZE = 4
SAMPLES = 400


def main():
    print(f"Surface code memory: d={DISTANCE}, p={P}, "
          f"{SAMPLES} Monte-Carlo shots each\n")

    print("Step 1-3: the effect of an MBBE, and what informed decoding buys")
    from dataclasses import replace
    base = campaigns.MemorySpec(distance=DISTANCE, p=P, samples=SAMPLES,
                                anomaly_size=ANOMALY_SIZE, seed=42)
    # "centered" resolves against the spec's own distance, so the same
    # declarative region works at any d.
    measurements = [
        ("MBBE free", base),
        ("cosmic-ray region, naive decoding",
         replace(base, region="centered")),
        ("cosmic-ray region, Q3DE weighted decoding",
         replace(base, region="centered", informed=True)),
    ]
    for label, spec in measurements:
        result = campaigns.run(spec)
        print(f"  {label:<42} p_L/run = "
              f"{result.estimates['per_run']:.4f}   "
              f"p_L/cycle = {result.estimates['per_cycle']:.5f}")
    print(f"  (spec hash of the last campaign: "
          f"{result.provenance.spec_hash}; backend "
          f"{result.provenance.backend}, engine chunks "
          f"{result.provenance.chunks})")

    print("\nStep 4: the live control unit (detection -> expand + rollback)")
    config = Q3DEConfig(distance=DISTANCE, c_win=100, n_th=8,
                        anomaly_size=ANOMALY_SIZE,
                        anomaly_lifetime_cycles=5000)
    unit = Q3DEControlUnit(config, calibrated_statistics(P))

    onset = 250
    live_region = AnomalousRegion.centered(DISTANCE, ANOMALY_SIZE,
                                           t_lo=onset)
    noise = PhenomenologicalNoise(DISTANCE, P, region=live_region)
    rng = np.random.default_rng(7)
    v, h, m = noise.sample(600, rng)
    stream = SyndromeLattice(DISTANCE).per_cycle_activity(v, h, m)

    for layer in stream:
        report = unit.step(layer)
        if report.detection is not None:
            det = report.detection
            print(f"  cycle {det.cycle}: MBBE detected at node "
                  f"({det.row}, {det.col}), {det.num_flagged} counters "
                  f"over threshold (true onset: cycle {onset})")
            if report.rollback is not None:
                rb = report.rollback
                print(f"    decoder rolled back to cycle "
                      f"{rb.rollback_cycle}; {len(rb.replay_layers)} "
                      f"layers queued for weighted re-execution")
        for qubit in report.distance_changes:
            print(f"  cycle {report.cycle}: logical qubit {qubit} code "
                  f"distance -> {unit.current_distance}")

    print(f"\n  final code distance: {unit.current_distance} "
          f"(expanded = {unit.current_distance != DISTANCE})")
    bits = unit.memory_bits()
    print("  control-unit buffer footprint: "
          + ", ".join(f"{k}={v / 1000:.1f} kbit" for k, v in bits.items()))


if __name__ == "__main__":
    main()
