"""Analytic models: effective error rate (Eq. 1) and first-order
code-distance analysis (Sec. VI-A, Eq. 4)."""

from repro.analysis.effective_rate import (
    effective_logical_error_rate,
    mbbe_increase_ratio,
)
from repro.analysis.firstorder import (
    min_normal_flips,
    effective_distance_reduction,
    predicted_reduction,
)

__all__ = [
    "effective_logical_error_rate",
    "mbbe_increase_ratio",
    "min_normal_flips",
    "effective_distance_reduction",
    "predicted_reduction",
]
