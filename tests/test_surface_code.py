"""Tests for the planar surface-code layout and stabilizer structure."""

import pytest

from repro.stab.pauli import Pauli
from repro.stab.tableau import StabilizerSimulator
from repro.surface_code import PlanarSurfaceCode, Site, StabilizerMap


class TestCounts:
    @pytest.mark.parametrize("d", [2, 3, 4, 5, 7, 9])
    def test_data_qubit_count(self, d):
        code = PlanarSurfaceCode(d)
        assert code.num_data_qubits == d * d + (d - 1) * (d - 1)

    @pytest.mark.parametrize("d", [2, 3, 4, 5, 7])
    def test_stabilizer_counts(self, d):
        code = PlanarSurfaceCode(d)
        assert code.num_z_stabilizers == d * (d - 1)
        assert code.num_x_stabilizers == d * (d - 1)

    @pytest.mark.parametrize("d", [2, 3, 5])
    def test_one_logical_qubit(self, d):
        # k = n - (number of independent stabilizers) must be 1.
        code = PlanarSurfaceCode(d)
        n = code.num_data_qubits
        stabs = code.num_z_stabilizers + code.num_x_stabilizers
        assert n - stabs == 1

    def test_distance_below_two_rejected(self):
        with pytest.raises(ValueError):
            PlanarSurfaceCode(1)


class TestSiteClassification:
    def test_site_roles_are_disjoint_and_exhaustive(self):
        code = PlanarSurfaceCode(4)
        for r in range(code.grid_size):
            for c in range(code.grid_size):
                site = Site(r, c)
                roles = [code.is_data_site(site),
                         code.is_z_ancilla_site(site),
                         code.is_x_ancilla_site(site)]
                assert sum(roles) == 1

    def test_stabilizer_support_weights(self):
        code = PlanarSurfaceCode(5)
        for anc in code.z_ancilla_sites + code.x_ancilla_sites:
            weight = len(code.stabilizer_support(anc))
            assert weight in (3, 4)  # boundary vs bulk

    def test_bulk_stabilizer_has_weight_four(self):
        code = PlanarSurfaceCode(5)
        assert len(code.stabilizer_support(Site(3, 4))) == 4

    def test_support_of_data_site_rejected(self):
        code = PlanarSurfaceCode(3)
        with pytest.raises(ValueError):
            code.stabilizer_support(Site(0, 0))


class TestCommutation:
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_all_stabilizers_commute(self, d):
        code = PlanarSurfaceCode(d)
        stabs = code.z_stabilizer_paulis() + code.x_stabilizer_paulis()
        for i in range(len(stabs)):
            for j in range(i + 1, len(stabs)):
                assert stabs[i].commutes_with(stabs[j])

    @pytest.mark.parametrize("d", [2, 3, 5])
    def test_logicals_commute_with_stabilizers(self, d):
        code = PlanarSurfaceCode(d)
        lx, lz = code.logical_x(), code.logical_z()
        for stab in code.z_stabilizer_paulis() + code.x_stabilizer_paulis():
            assert lx.commutes_with(stab)
            assert lz.commutes_with(stab)

    @pytest.mark.parametrize("d", [2, 3, 5])
    def test_logical_x_anticommutes_with_logical_z(self, d):
        code = PlanarSurfaceCode(d)
        assert not code.logical_x().commutes_with(code.logical_z())

    @pytest.mark.parametrize("d", [3, 5])
    def test_logical_weight_equals_distance(self, d):
        code = PlanarSurfaceCode(d)
        assert code.logical_x().weight == d
        assert code.logical_z().weight == d

    def test_parallel_logicals_are_equivalent_up_to_stabilizers(self):
        # logical X in column 0 and column 1 differ by a product of
        # X-stabilizers: both anticommute with Z_L, commute with stabs.
        code = PlanarSurfaceCode(3)
        x0, x1 = code.logical_x(0), code.logical_x(1)
        diff = x0 * x1
        for stab in code.z_stabilizer_paulis():
            assert diff.commutes_with(stab)
        assert diff.commutes_with(code.logical_z())


class TestDecodingCoords:
    def test_z_node_grid_shape(self):
        code = PlanarSurfaceCode(5)
        coords = [code.z_node_coords(a) for a in code.z_ancilla_sites]
        rows = {r for r, _ in coords}
        cols = {c for _, c in coords}
        assert rows == set(range(4))   # d-1 rows
        assert cols == set(range(5))   # d cols

    def test_x_node_grid_shape(self):
        code = PlanarSurfaceCode(5)
        coords = [code.x_node_coords(a) for a in code.x_ancilla_sites]
        rows = {r for r, _ in coords}
        cols = {c for _, c in coords}
        assert rows == set(range(5))
        assert cols == set(range(4))

    def test_wrong_kind_coords_rejected(self):
        code = PlanarSurfaceCode(3)
        with pytest.raises(ValueError):
            code.z_node_coords(code.x_ancilla_sites[0])

    def test_x_error_flips_adjacent_z_syndromes(self):
        """A single X error flips exactly its neighbouring Z stabilizers."""
        code = PlanarSurfaceCode(3)
        for q, site in enumerate(code.data_sites):
            err = Pauli.single(code.num_data_qubits, q, "X")
            flipped = [anc for anc, stab in
                       zip(code.z_ancilla_sites, code.z_stabilizer_paulis(), strict=True)
                       if not stab.commutes_with(err)]
            expected = [anc for anc in code.z_ancilla_sites
                        if site in anc.neighbors()]
            assert flipped == expected
            assert len(flipped) in (1, 2)


class TestStabilizerMap:
    def test_for_code_covers_all_ancillas(self):
        code = PlanarSurfaceCode(4)
        smap = StabilizerMap.for_code(code)
        assert len(smap) == code.num_z_stabilizers + code.num_x_stabilizers

    def test_for_code_covers_all_data(self):
        code = PlanarSurfaceCode(4)
        smap = StabilizerMap.for_code(code)
        assert smap.data_sites() == set(code.data_sites)

    def test_snapshot_is_independent(self):
        code = PlanarSurfaceCode(3)
        smap = StabilizerMap.for_code(code)
        snap = smap.snapshot()
        smap.remove(code.z_ancilla_sites[0])
        assert code.z_ancilla_sites[0] in snap
        assert code.z_ancilla_sites[0] not in smap

    def test_of_kind_partitions(self):
        code = PlanarSurfaceCode(3)
        smap = StabilizerMap.for_code(code)
        assert (len(smap.of_kind("Z")) + len(smap.of_kind("X"))
                == len(smap))


class TestEncodedState:
    """Project |0..0> into the code space with the tableau simulator."""

    @pytest.mark.parametrize("d", [2, 3])
    def test_logical_zero_is_z_eigenstate(self, d):
        import numpy as np
        code = PlanarSurfaceCode(d)
        sim = StabilizerSimulator(code.num_data_qubits,
                                  rng=np.random.default_rng(7))
        for stab in code.x_stabilizer_paulis():
            sim.measure_pauli(stab)
        # After projection the logical Z value is still deterministic +1.
        assert sim.expectation(code.logical_z()) == 1
        # And every stabilizer is now deterministic.
        for stab in code.z_stabilizer_paulis():
            assert sim.expectation_is_deterministic(stab)

    def test_logical_x_flips_encoded_zero(self):
        import numpy as np
        code = PlanarSurfaceCode(3)
        sim = StabilizerSimulator(code.num_data_qubits,
                                  rng=np.random.default_rng(8))
        for stab in code.x_stabilizer_paulis():
            sim.measure_pauli(stab)
        sim.apply_pauli(code.logical_x())
        assert sim.expectation(code.logical_z()) == -1
