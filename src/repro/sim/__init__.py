"""Monte-Carlo experiment drivers for the paper's evaluations."""

from repro.sim import backend
from repro.sim.montecarlo import BinomialEstimate, wilson_interval
from repro.sim.memory import MemoryExperiment, LogicalErrorEstimate
from repro.sim.detection import (
    DetectionTrialResult,
    DetectionPerformance,
    run_detection_trials,
    analytic_required_window,
)
from repro.sim.endtoend import EndToEndExperiment, EndToEndResult
from repro.sim.batch import (
    BatchRunResult,
    BatchShotRunner,
    DECODE_MODES,
    DetectionShotKernel,
    EndToEndShotKernel,
    MatchingCache,
    MemoryShotKernel,
    PACKING_MODES,
)
from repro.sim import bitops


def __getattr__(name: str):
    """Deprecated-name access: ``DetectionTrialKernel`` warns on use."""
    if name == "DetectionTrialKernel":
        from repro.sim import batch
        return batch.DetectionTrialKernel  # emits the DeprecationWarning
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "backend",
    "BatchRunResult",
    "BatchShotRunner",
    "MatchingCache",
    "DECODE_MODES",
    "PACKING_MODES",
    "bitops",
    "DetectionShotKernel",
    # "DetectionTrialKernel" resolves via __getattr__ with a
    # DeprecationWarning; deliberately NOT in __all__ so that
    # star-imports don't warn (PEP 562 deprecation pattern).
    "EndToEndShotKernel",
    "MemoryShotKernel",
    "BinomialEstimate",
    "wilson_interval",
    "MemoryExperiment",
    "LogicalErrorEstimate",
    "DetectionTrialResult",
    "DetectionPerformance",
    "run_detection_trials",
    "analytic_required_window",
    "EndToEndExperiment",
    "EndToEndResult",
]
