"""Tests for the CLT syndrome statistics (Sec. IV-A)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.statistics import (
    SyndromeStatistics,
    detection_threshold,
    expected_activity_rate,
    recommended_count_threshold,
)


class TestSyndromeStatistics:
    def test_from_activity_rate(self):
        stats = SyndromeStatistics.from_activity_rate(0.25)
        assert stats.mu == 0.25
        assert stats.sigma == pytest.approx(math.sqrt(0.25 * 0.75))

    def test_calibrate_recovers_rate(self):
        rng = np.random.default_rng(0)
        stream = (rng.random(200_000) < 0.1).astype(int)
        stats = SyndromeStatistics.calibrate(stream)
        assert stats.mu == pytest.approx(0.1, abs=0.005)
        assert stats.sigma == pytest.approx(math.sqrt(0.09), abs=0.01)

    def test_calibrate_empty_rejected(self):
        with pytest.raises(ValueError):
            SyndromeStatistics.calibrate(np.array([]))

    def test_calibrate_uses_unbiased_sigma(self):
        """Regression: arr.std() (ddof=0) understated sigma — and thus
        V_th — by sqrt(1 - 1/n) on short calibration streams."""
        stream = np.array([0, 0, 0, 1])
        stats = SyndromeStatistics.calibrate(stream)
        assert stats.sigma == pytest.approx(float(np.std(stream, ddof=1)))
        assert stats.sigma > float(np.std(stream))

    def test_calibrate_matches_known_bernoulli_variance(self):
        """Averaged over many short streams, calibrate's variance is
        unbiased for the known Bernoulli variance mu(1-mu); the old
        ddof=0 estimator sits a factor (n-1)/n below it."""
        rng = np.random.default_rng(1)
        mu, n = 0.5, 12
        streams = (rng.random((20_000, n)) < mu).astype(int)
        var_calibrated = np.mean(
            [SyndromeStatistics.calibrate(s).sigma ** 2 for s in streams])
        var_biased = np.mean(np.var(streams, axis=1))
        true_var = mu * (1 - mu)
        assert var_calibrated == pytest.approx(true_var, abs=0.01)
        assert var_biased < true_var * (n - 0.5) / n  # clearly low

    def test_calibrate_all_equal_stream_floors_sigma(self):
        """An all-zero (or all-one, or single-sample) stream must not
        yield sigma = 0: V_th would collapse onto the mean."""
        for stream in ([0] * 50, [1] * 50, [0]):
            stats = SyndromeStatistics.calibrate(np.array(stream))
            assert stats.sigma > 0
            n = len(stream)
            q = 1.0 / (n + 2.0)
            assert stats.sigma == pytest.approx(math.sqrt(q * (1 - q)))

    def test_invalid_mu_rejected(self):
        with pytest.raises(ValueError):
            SyndromeStatistics(1.5, 0.1)


class TestActivityRate:
    def test_zero_noise(self):
        assert expected_activity_rate(0.0) == 0.0

    def test_half_noise_saturates(self):
        assert expected_activity_rate(0.5) == pytest.approx(0.5)

    def test_small_p_linear(self):
        # For small p the odd-parity probability is about degree * p.
        assert expected_activity_rate(1e-4) == pytest.approx(6e-4, rel=0.01)

    def test_matches_simulation(self):
        """Analytic bulk rate must match the real syndrome process."""
        from repro.decoding.graph import SyndromeLattice
        from repro.noise import PhenomenologicalNoise
        rng = np.random.default_rng(3)
        d, p = 9, 0.01
        noise = PhenomenologicalNoise(d, p)
        v, h, m = noise.sample(8000, rng)
        stream = SyndromeLattice(d).per_cycle_activity(v, h, m)
        bulk = stream[1:, 3, 3]  # interior node, skip the first layer
        assert bulk.mean() == pytest.approx(expected_activity_rate(p),
                                            rel=0.15)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            expected_activity_rate(0.6)


class TestDetectionThreshold:
    def test_threshold_above_mean(self):
        stats = SyndromeStatistics.from_activity_rate(0.01)
        v_th = detection_threshold(stats, c_win=300, alpha=0.01)
        assert v_th > 300 * 0.01

    def test_threshold_grows_with_confidence(self):
        stats = SyndromeStatistics.from_activity_rate(0.01)
        loose = detection_threshold(stats, 300, alpha=0.1)
        tight = detection_threshold(stats, 300, alpha=0.001)
        assert tight > loose

    def test_false_positive_rate_matches_alpha(self):
        """Empirical check of Eq. (3) on the even-cycle counting model."""
        rng = np.random.default_rng(7)
        mu = 0.05
        stats = SyndromeStatistics.from_activity_rate(mu)
        c_win, alpha = 400, 0.05
        v_th = detection_threshold(stats, c_win, alpha)
        counts = rng.binomial(c_win, mu, size=20_000)
        rate = float(np.mean(counts > v_th))
        assert rate == pytest.approx(alpha, abs=0.02)

    def test_invalid_inputs_rejected(self):
        stats = SyndromeStatistics.from_activity_rate(0.01)
        with pytest.raises(ValueError):
            detection_threshold(stats, 0)
        with pytest.raises(ValueError):
            detection_threshold(stats, 10, alpha=0.0)

    def test_degenerate_sigma_rejected(self):
        """Regression: sigma = 0 collapsed V_th onto the mean (V_th = 0
        for mu = 0), so the first active observation flagged an MBBE."""
        for stats in (SyndromeStatistics(0.0, 0.0),
                      SyndromeStatistics(0.3, 0.0),
                      SyndromeStatistics.from_activity_rate(0.0)):
            with pytest.raises(ValueError, match="sigma"):
                detection_threshold(stats, 100)

    def test_calibrated_all_zero_stream_does_not_flag_first_activity(self):
        """End to end: a unit calibrated on a quiet stream must tolerate
        stray active observations instead of crying MBBE.  With the old
        sigma = 0 calibration V_th was exactly 0, so the first cycle
        with any activity (here two nodes, n_ano = 2 > n_th) flagged."""
        from repro.core.anomaly import AnomalyDetectionUnit
        stats = SyndromeStatistics.calibrate(np.zeros(500))
        c_win = 200
        v_th = detection_threshold(stats, c_win)
        assert v_th > 1  # a single stray count stays under threshold
        unit = AnomalyDetectionUnit((4, 5), stats, c_win=c_win, n_th=1)
        quiet = np.zeros((4, 5))
        stray = np.zeros((4, 5))
        stray[2, 2] = stray[1, 3] = 1
        for _ in range(c_win - 1):
            assert unit.observe(quiet) is None
        assert unit.observe(stray) is None  # window full; still no flag

    @settings(max_examples=30, deadline=None)
    @given(st.floats(1e-4, 0.3), st.integers(10, 2000))
    def test_threshold_monotone_in_window(self, mu, c_win):
        stats = SyndromeStatistics.from_activity_rate(mu)
        assert (detection_threshold(stats, c_win + 100)
                > detection_threshold(stats, c_win))


class TestCountThreshold:
    def test_paper_regime_has_valid_interval(self):
        # p_L = 1e-10, alpha = 0.01, d_ano = 4: criterion nonempty?
        lo, hi = recommended_count_threshold(1e-10, 0.01, 4)
        assert lo < hi
        assert lo < 20 < hi or hi <= 20  # n_th = 20 is the paper's pick

    def test_interval_empty_means_tolerant(self):
        lo, hi = recommended_count_threshold(1e-30, 0.5, 2)
        assert lo > hi  # already tolerant per the paper's remark

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            recommended_count_threshold(0.0, 0.01, 4)
        with pytest.raises(ValueError):
            recommended_count_threshold(0.5, 1.0, 4)
