"""Incremental refinement: grow a cached estimate instead of recomputing.

A chunked campaign's outcomes are a pure function of ``(seed,
batch_size, chunk index)`` (:func:`repro.sim.batch.chunk_plan`), and the
plan's per-chunk seeds are *prefix-stable*: ``SeedSequence(seed)``
spawns child ``i`` with spawn key ``(i,)`` whatever the total chunk
count, so two specs that differ only in their shot request share every
full-size chunk of the smaller plan.  That makes "the same campaign,
more shots" resumable rather than recomputable: seed the bigger spec's
checkpoint shard with the sibling shard's compatible chunk records and
let the ordinary resume path (:mod:`repro.campaigns.checkpoint`) do the
rest.  The refined result is bit-identical to an uninterrupted single
run of the larger request per ``(seed, batch_size)`` — the same
invariant class as checkpoint resume and the distributed chaos suite,
and test-enforced the same way (``tests/test_refine.py``,
docs/CONTRACTS.md).

Refinement is *opportunistic*: anything that prevents a provably
bit-identical seed — no sibling shard, a corrupt one, a pinned
``batch_size`` that disagrees with the recorded one — silently degrades
to a fresh run, never to an error.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Optional

from repro.campaigns.checkpoint import (FORMAT, CheckpointError,
                                        CheckpointStore, ShardFile,
                                        chunk_record)
from repro.campaigns.specs import (DetectionSpec, EndToEndSpec, MemorySpec,
                                   ScenarioSpec, SpecError, spec_from_dict,
                                   spec_hash, spec_to_dict)
from repro.sim.batch import chunk_plan

#: Which spec field carries a chunked campaign's shot request — the one
#: axis refinement may vary.  Kinds without a chunked shot engine
#: (streaming, scaling, throughput) are deliberately absent.
SHOT_FIELDS: dict[type, str] = {
    MemorySpec: "samples",
    EndToEndSpec: "shots",
    DetectionSpec: "trials",
    ScenarioSpec: "shots",
}

#: The same map keyed by wire kind name (for code holding spec JSON).
SHOT_FIELDS_BY_KIND: dict[str, str] = {
    cls.kind: name for cls, name in SHOT_FIELDS.items()  # type: ignore[attr-defined]
}


def shots_field(spec: object) -> Optional[str]:
    """The spec's shot-request field name, or ``None`` if not refinable."""
    return SHOT_FIELDS.get(type(spec))


@dataclasses.dataclass(frozen=True)
class RefinementBase:
    """A sibling shard a refinement can seed from."""

    spec: object
    path: Path
    batch_size: int
    #: Upper bound on usable records (full chunks shared by both plans).
    aligned_chunks: int


def _read_header(path: Path) -> Optional[dict]:
    """The shard's header line, or ``None`` if unreadable/foreign."""
    try:
        with open(path, encoding="utf-8") as fh:
            line = fh.readline()
        header = json.loads(line)
    except (OSError, ValueError):
        return None
    if not isinstance(header, dict) or header.get("type") != "header" \
            or header.get("format") != FORMAT:
        return None
    return header


def find_refinement_base(store: CheckpointStore,
                         spec: object) -> Optional[RefinementBase]:
    """The best sibling shard for ``spec`` in ``store``, if any.

    A sibling is a shard whose header spec equals ``spec`` in every
    field but the shot request, recorded under a batch size compatible
    with ``spec`` (equal to a pinned ``spec.batch_size``; anything for
    an unpinned spec, which adopts the recorded size on resume).  Among
    siblings the one sharing the most full-size chunks with ``spec``'s
    plan wins; ties break deterministically (larger request, then
    filename).
    """
    field = shots_field(spec)
    if field is None or not store.directory.is_dir():
        return None
    own = f"{spec_hash(spec)}.jsonl"
    best: Optional[tuple[int, int, str, RefinementBase]] = None
    for path in sorted(store.directory.glob("*.jsonl")):
        if path.name == own:
            continue
        header = _read_header(path)
        if header is None:
            continue
        batch = header.get("batch_size")
        if not isinstance(batch, int) or batch < 1:
            continue
        pinned = getattr(spec, "batch_size", None)
        if pinned is not None and batch != pinned:
            continue
        try:
            base = spec_from_dict(header.get("spec"))
        except SpecError:
            continue
        if type(base) is not type(spec):
            continue
        # An unpinned spec adopts whatever batch size the shard records
        # (the ordinary resume rule), so the sibling's own ``batch_size``
        # field is free to differ in that case.
        fields = {field: getattr(spec, field)}
        if pinned is None:
            fields["batch_size"] = None
        if dataclasses.replace(base, **fields) != spec:
            continue
        aligned = min(int(getattr(base, field)),
                      int(getattr(spec, field))) // batch
        if aligned < 1:
            continue
        key = (aligned, int(getattr(base, field)), path.name)
        if best is None or key > best[:3]:
            best = (*key, RefinementBase(spec=base, path=path,
                                         batch_size=batch,
                                         aligned_chunks=aligned))
    return best[3] if best is not None else None


def seed_refinement(store: Optional[CheckpointStore],
                    spec: object) -> int:
    """Seed ``spec``'s shard from its best sibling; returns chunks seeded.

    No-op (returning 0) whenever a provably-identical seed is not
    possible: no store, a non-refinable kind, ``spec``'s own shard
    already exists (plain resume handles it), no sibling, a sibling
    that fails its CRC/consistency checks, or a batch-size conflict.

    The seeded shard is written whole to a temporary file and lands via
    ``os.replace``, so a concurrent reader (the service's partial
    endpoint) never sees a half-seeded shard, and every copied record
    is re-encoded through :func:`repro.campaigns.checkpoint.chunk_record`
    — one wire format, one CRC.
    """
    if store is None:
        return 0
    field = shots_field(spec)
    if field is None:
        return 0
    target = store.shard(spec)
    if target.path.exists():
        return 0
    base = find_refinement_base(store, spec)
    if base is None:
        return 0
    shard = ShardFile(base.path, base.spec)
    try:
        done = shard.load()
    except CheckpointError:
        return 0  # opportunistic: a damaged sibling just means no seed
    batch = shard.recorded_batch_size
    if batch is None or batch < 1:
        return 0
    pinned = getattr(spec, "batch_size", None)
    if pinned is not None and batch != pinned:
        return 0
    plan = chunk_plan(int(getattr(spec, field)), batch,
                      getattr(spec, "seed"))
    usable = [(index, done[index]) for index in sorted(done)
              if index < len(plan) and len(done[index][0]) == plan[index][0]]
    if not usable:
        return 0

    from repro import config
    header = {"type": "header", "format": FORMAT,
              "spec_hash": target.spec_hash,
              "kind": getattr(spec, "kind", "?"),
              "batch_size": batch,
              "spec": spec_to_dict(spec)}
    target.path.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.path.with_name(f".{target.path.name}.tmp-{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for index, (outcome, cache_stats) in usable:
            fh.write(json.dumps(chunk_record(index, outcome, cache_stats))
                     + "\n")
        fh.flush()
        if config.checkpoint_fsync():
            os.fsync(fh.fileno())
    os.replace(tmp, target.path)
    return len(usable)
