"""Batched shot engine vs the sequential per-shot path.

Times the Fig. 8 workload (the repo's heaviest Monte-Carlo hot path) at
equal sample counts through the sequential engine, the float batch
engine and the bit-packed batch engine, and prints the speedup table.
The acceptance bars: the batch engine pays for itself >= 5x over the
sequential path, and the bit-packed sampling + syndrome-extraction
stage delivers >= 3x additional throughput over the float stage with
per-shot sample storage cut ~50x (8 bytes per sampled bit materialized
by the float64 draw vs one bit per bit plus a fixed 64-shot scratch
block).

The batched results are also cross-checked for determinism and for the
packed backend's certification contract: same ``(seed, batch_size)``
must give *bit-identical* failure counts through ``packing="bits"`` and
``packing="none"`` — speed must not cost reproducibility.
"""

import time
import tracemalloc

import numpy as np
import pytest

from repro.decoding.graph import SyndromeLattice
from repro.noise import AnomalousRegion
from repro.noise.models import PACKED_SAMPLE_CHUNK, PhenomenologicalNoise
from repro.sim.memory import MemoryExperiment

from _common import mc_samples, mc_workers, print_table, scale

DISTANCES = [9, 13]
PHYSICAL_RATES = [8e-3, 1.5e-2, 2.5e-2]
ANOMALY_SIZE = 4


def _points():
    """The Fig. 8 rate grid: free / naive / informed per (d, p)."""
    points = []
    for d in DISTANCES:
        region = AnomalousRegion.centered(d, ANOMALY_SIZE)
        for p in PHYSICAL_RATES:
            points.append((f"d={d} p={p} free", d, p, None, False))
            points.append((f"d={d} p={p} naive", d, p, region, False))
            points.append((f"d={d} p={p} rollback", d, p, region, True))
    return points


def _campaign(samples: int, workers: int,
              packing: str = "bits") -> tuple[float, list[int]]:
    start = time.perf_counter()
    failures = []
    for idx, (_, d, p, region, informed) in enumerate(_points()):
        exp = MemoryExperiment(d, p, region=region, informed=informed)
        est = exp.run(samples, np.random.default_rng(idx),
                      workers=workers, seed=idx, packing=packing)
        failures.append(est.failures)
    return time.perf_counter() - start, failures


@pytest.mark.benchmark(group="batch")
def bench_batch_engine_speedup(benchmark):
    """Whole Fig. 8 grid: sequential vs batched (float and bit-packed)."""
    samples = mc_samples()
    workers = max(1, mc_workers())

    def run():
        seq_time, _ = _campaign(samples, workers=0)
        flt_time, flt_failures = _campaign(samples, workers, packing="none")
        bit_time, bit_failures = _campaign(samples, workers, packing="bits")
        rep_time, rep_failures = _campaign(samples, workers, packing="bits")
        return (seq_time, flt_time, bit_time,
                flt_failures, bit_failures, rep_failures)

    (seq_time, flt_time, bit_time, flt_failures, bit_failures,
     rep_failures) = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        f"Batch engine speedup (Fig. 8 grid, {samples} samples/point, "
        f"workers={workers})",
        ["engine", "wall clock (s)", "speedup"],
        [["sequential (workers=0)", f"{seq_time:.2f}", "1.0x"],
         ["batched float (packing=none)", f"{flt_time:.2f}",
          f"{seq_time / flt_time:.1f}x"],
         ["batched bit-packed (packing=bits)", f"{bit_time:.2f}",
          f"{seq_time / bit_time:.1f}x"]])

    # Reproducibility: the same seeds must give the same counts, and the
    # packed backend must be bit-identical to the float reference.
    assert bit_failures == rep_failures
    assert bit_failures == flt_failures, \
        "packed backend broke the bit-identical certification contract"
    # The acceptance bar: the batch engine pays for itself >= 5x.
    speedup = seq_time / min(flt_time, bit_time)
    assert speedup >= 5.0, f"batch speedup {speedup:.2f}x < 5x"


def _float_stage(noise: PhenomenologicalNoise, lattice: SyndromeLattice,
                 shots: int, cycles: int, rng) -> None:
    v, h, m = noise.sample_batch(shots, cycles, rng)
    lattice.detection_events_batch(v, h, m)
    lattice.error_cut_parity(v)


def _packed_stage(noise: PhenomenologicalNoise, lattice: SyndromeLattice,
                  shots: int, cycles: int, rng) -> None:
    v, h, m = noise.sample_batch_packed(shots, cycles, rng)
    lattice.detection_events_packed(v, h, m)
    lattice.error_cut_parity_packed(v)


def _time_and_peak(fn, repeats: int = 3) -> tuple[float, int]:
    fn(0)  # warm-up (allocators, ufunc dispatch)
    start = time.perf_counter()
    for r in range(repeats):
        fn(r)
    elapsed = (time.perf_counter() - start) / repeats
    tracemalloc.start()
    fn(0)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return elapsed, peak


@pytest.mark.benchmark(group="batch")
def bench_packed_sampling_stage(benchmark):
    """Sampling + syndrome extraction: float vs bit-packed backend.

    This is the stage the bit-packed backend rewrites (the matching
    itself is shared, shot by shot, between both backends), measured at
    a campaign-scale batch on the Fig. 8 grid.  Bars: >= 3x aggregate
    throughput, ~50x smaller per-shot sample storage (reported model:
    8 B float64 draw + 1 B bool stored per sampled bit, against 1 bit
    stored plus the fixed 64-shot scratch block), and the measured
    whole-stage peak (which also carries the active-node coordinate
    arrays both backends hand to the decoder) >= 10x smaller.
    """
    # Batch size of a paper-scale packed campaign, not the MC depth knob.
    # The storage model amortizes the fixed 64-shot scratch block over
    # the batch, so REPRO_SCALE may grow the batch but never shrink it
    # below the regime the ~50x claim (and its assertion) is about.
    shots = max(8192, int(8192 * scale()))
    rows = []
    float_total = packed_total = 0.0
    mem_ratios = []
    storage_ratios = []

    def run():
        nonlocal float_total, packed_total
        for d in DISTANCES:
            p = PHYSICAL_RATES[-1]  # activity, not rate, drives the stage
            noise = PhenomenologicalNoise(
                d, p, 0.5, AnomalousRegion.centered(d, ANOMALY_SIZE))
            lattice = SyndromeLattice(d)
            flt_t, flt_peak = _time_and_peak(
                lambda r: _float_stage(noise, lattice, shots, d,
                                       np.random.default_rng(r)))
            bit_t, bit_peak = _time_and_peak(
                lambda r: _packed_stage(noise, lattice, shots, d,
                                        np.random.default_rng(r)))
            float_total += flt_t
            packed_total += bit_t
            mem_ratios.append(flt_peak / bit_peak)

            # Per-shot sample storage model, from real array sizes.
            bits_per_shot = d * (d * d + (d - 1) ** 2 + (d - 1) * d)
            float_bytes = 9.0 * bits_per_shot  # 8 B draw + 1 B stored
            packed_bytes = (bits_per_shot / 8.0
                            + 9.0 * bits_per_shot
                            * PACKED_SAMPLE_CHUNK / shots)
            storage_ratios.append(float_bytes / packed_bytes)
            rows.append([f"d={d} p={p}",
                         f"{flt_t * 1e3:.0f} / {bit_t * 1e3:.0f}",
                         f"{flt_t / bit_t:.1f}x",
                         f"{flt_peak / 1e6:.0f} / {bit_peak / 1e6:.1f}",
                         f"{flt_peak / bit_peak:.0f}x",
                         f"{float_bytes / 1e3:.0f} / "
                         f"{packed_bytes / 1e3:.2f}",
                         f"{float_bytes / packed_bytes:.0f}x"])

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        f"Bit-packed sampling + extraction stage ({shots} shots/batch)",
        ["point", "float/bits (ms)", "speedup",
         "peak float/bits (MB)", "peak ratio",
         "sample KB/shot float/bits", "storage ratio"],
        rows)

    throughput = float_total / packed_total
    assert throughput >= 3.0, \
        f"packed stage throughput {throughput:.2f}x < 3x"
    assert min(storage_ratios) >= 40.0, \
        f"sample storage reduction {min(storage_ratios):.0f}x < ~50x"
    assert min(mem_ratios) >= 10.0, \
        f"measured stage peak reduction {min(mem_ratios):.0f}x < 10x"


@pytest.mark.benchmark(group="batch")
def bench_batch_single_point_timing(benchmark):
    """Time the heaviest single point (d=13, p=2.5e-2, informed)."""
    samples = mc_samples()
    exp = MemoryExperiment(13, 2.5e-2,
                           region=AnomalousRegion.centered(13, ANOMALY_SIZE),
                           informed=True)
    est = benchmark.pedantic(
        exp.run, args=(samples,),
        kwargs=dict(workers=max(1, mc_workers()), seed=5),
        rounds=1, iterations=1)
    assert est.samples == samples
