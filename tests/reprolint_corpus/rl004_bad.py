"""RL004 corpus: registered spec classes that break the wire contract."""

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.campaigns import register_campaign


@dataclass
class MutableSpec:                        # RL004: not frozen
    kind = "corpus-mutable"
    distance: int
    p: float


class BareSpec:                           # RL004: not a dataclass at all
    kind = "corpus-bare"


@dataclass(frozen=True)
class LeakySpec:
    kind = "corpus-leaky"
    distance: int
    payload: Any                          # RL004: erases the wire schema
    nodes: set                            # RL004: nondeterministic order
    raw: np.ndarray                       # RL004: no JSON round-trip
    extra: Optional[bytes] = None         # RL004: no JSON encoding


@dataclass
class MutableEvent:
    """Nested in a spec, but mutable — embedding it breaks the hash."""

    onset: int = 0


@dataclass(frozen=True)
class LeakyEvent:
    """Frozen, but one of its own fields cannot ride the wire."""

    onset: int = 0
    members: set = None


@dataclass(frozen=True)
class NestedSpec:
    kind = "corpus-nested"
    distance: int = 3
    event: MutableEvent = None            # RL004: nested not frozen
    burst: Optional[LeakyEvent] = None    # RL004: nested field is a set


@register_campaign(MutableSpec)
def _run_mutable(spec, executor, store):
    return None


@register_campaign(BareSpec)
def _run_bare(spec, executor, store):
    return None


@register_campaign(LeakySpec)
def _run_leaky(spec, executor, store):
    return None


@register_campaign(NestedSpec)
def _run_nested(spec, executor, store):
    return None
