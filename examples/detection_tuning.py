"""Detection tuning: choosing c_win and n_th for a device.

A device bring-up engineer has measured a physical error rate p and wants
the anomaly detection unit configured: how long a counting window is
needed, what V_th falls out of the CLT model (Eq. 3), and what n_th keeps
both error modes below the logical error rate (Sec. IV-A's criterion)?

Sweeps the anomaly strength ratio p_ano/p the way Fig. 7 does and prints
an operating table.

Run:  python examples/detection_tuning.py
"""

from repro.core.statistics import (
    detection_threshold,
    recommended_count_threshold,
)
from repro.sim.detection import (
    analytic_required_window,
    calibrated_statistics,
    empirical_required_window,
)

DISTANCE = 21
P = 1e-3
ANOMALY_SIZE = 4
N_TH = 20  # the paper's heuristic choice
TARGET_LOGICAL_RATE = 1e-10
ALPHA = 0.01


def main():
    stats = calibrated_statistics(P)
    print(f"Device: d={DISTANCE}, p={P}; calibrated activity "
          f"mu={stats.mu:.4f}, sigma={stats.sigma:.4f}\n")

    lo, hi = recommended_count_threshold(TARGET_LOGICAL_RATE, ALPHA,
                                         ANOMALY_SIZE)
    print(f"n_th criterion (Sec. IV-A): {lo:.1f} < n_th < {hi:.1f} "
          f"for p_L = {TARGET_LOGICAL_RATE}, alpha = {ALPHA}; "
          f"the paper heuristically uses n_th = {N_TH}.")
    print("(A very small window makes the integer threshold coarse, so "
          "the per-counter\nfalse-positive rate exceeds alpha; the "
          "empirical search below accounts for that\nwhere the pure CLT "
          "bound cannot.)\n")

    print(f"{'p_ano/p':>8}  {'c_win (CLT)':>12}  {'c_win (found)':>14}  "
          f"{'V_th':>7}  {'latency':>8}  {'pos err':>8}")
    for ratio in (10, 20, 50, 100):
        p_ano = P * ratio
        analytic = analytic_required_window(P, p_ano, alpha=ALPHA)
        c_win, perf = empirical_required_window(
            DISTANCE, P, p_ano, ANOMALY_SIZE, n_th=N_TH,
            alpha=ALPHA, trials=5, seed=ratio)
        v_th = detection_threshold(stats, c_win, ALPHA)
        latency = (f"{perf.mean_latency:.0f}"
                   if perf.detections else "-")
        pos = (f"{perf.mean_position_error:.2f}"
               if perf.detections else "-")
        print(f"{ratio:>8}  {analytic:>12}  {c_win:>14}  {v_th:>7.2f}  "
              f"{latency:>8}  {pos:>8}")

    print("\nReading the table: stronger anomalies (larger p_ano/p) need "
          "much shorter windows,\nso they are caught sooner; position "
          "estimates stay within ~2 lattice nodes, which\nis what the "
          "weighted re-decoding needs to place the anomalous region.")


if __name__ == "__main__":
    main()
