"""Cross-PR bench trajectory guard: compare two ``BENCH_*.json`` files.

The committed ``BENCH_batch.json`` is the repo's machine-readable perf
trajectory; every bench section records the ratios and wall clocks it
measured plus the env knobs it ran under.  This tool compares a freshly
emitted file against the committed baseline, section by section, and
exits nonzero when a *directional* metric regressed beyond the
tolerance:

* higher-is-better — keys containing ``speedup``, ``throughput`` or
  ``ratio``: regression when ``fresh < base * (1 - tolerance)``;
* lower-is-better — wall clocks (``wall_clock*`` or ``*_s`` keys) and
  latencies (``*_us``/``*_ms`` leaves and percentile-prefixed latency
  keys such as ``p99_round_latency_us``): regression when
  ``fresh > base * (1 + tolerance)``.  These are machine-dependent, so
  they only participate with ``--all-metrics``; the default run judges
  the (machine-robust) ratio metrics.  Rate-style ``*_per_us`` leaves
  (``matches_per_us``) are throughput-shaped domain values, not
  latencies, and are untouched by this class.
* certification booleans (``*_bit_equal`` flags): any flip off the
  baseline's ``true`` is a regression at every setting.

Everything else (domain values: logical error rates, required windows,
instruction throughputs) is reported as *drift* beyond the tolerance —
informational, never fatal, since Monte-Carlo noise moves them at low
sample counts.

Sections whose recorded env (samples/scale/workers/backend) differs
between the two files are skipped (apples to oranges) unless
``--ignore-env`` is given.  See benchmarks/README.md for the CI wiring.

Usage::

    python benchmarks/compare_bench.py FRESH.json BASELINE.json \
        [--tolerance 0.2] [--all-metrics] [--ignore-env]
"""

from __future__ import annotations

import argparse
import json
import re
import sys

#: Env keys that must match for a section comparison to be meaningful.
ENV_KEYS = ("samples", "scale", "workers", "backend")

HIGHER_BETTER = ("speedup", "throughput")
#: ``ratio`` counts only as a key-word *ending* a path word (optionally
#: ``_min``/``_max``): ``throughput_ratio`` and ``storage_ratio_min``
#: are engine bars, but a label like fig07's ``pano_over_p_10`` (or any
#: ``ratio_<n>`` style sweep label) is domain data, not a bar.
_RATIO_KEY = re.compile(r"ratio(_min|_max)?($|[.\[])")
LOWER_BETTER = ("wall_clock",)
#: Lower-is-better latency leaves: explicit sub-second unit suffixes
#: (``*_us``/``*_ms``) and percentile-prefixed latency keys
#: (``p50_round_latency_us``).  The ``(?<!per)`` lookbehind keeps
#: rate-style ``*_per_us`` leaves (``matches_per_us`` — a throughput)
#: out; ``*_latency_cycles`` (fig07) has no unit suffix and stays
#: domain drift — detection latency in cycles is seed-determined, not
#: machine-dependent.
_LATENCY_LEAF = re.compile(r"(?<!per)_(us|ms)$|^p\d{1,3}_\w*latency")


def classify(path: str) -> str:
    """Direction of a dotted metric path: ``higher``/``lower``/``drift``.

    The key families are disjoint by construction:
    ``*_ratio``/``speedup_*``/``*throughput*`` are engine bars,
    ``wall_clock_s``/``*_s``/``*_us``/``p99_*latency*`` are timings,
    the rest is domain.
    """
    leaf = path.rsplit(".", 1)[-1]
    if (any(tag in path for tag in LOWER_BETTER) or leaf.endswith("_s")
            or _LATENCY_LEAF.search(leaf)):
        return "lower"
    if any(tag in path for tag in HIGHER_BETTER) \
            or _RATIO_KEY.search(path):
        return "higher"
    return "drift"


def _walk(node, path=""):
    """Yield ``(dotted_path, value)`` for scalar leaves of a section."""
    if isinstance(node, dict):
        for key, value in node.items():
            if key == "env":
                continue
            yield from _walk(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for idx, value in enumerate(node):
            label = idx
            if isinstance(value, dict) and "point" in value:
                label = str(value["point"]).replace(" ", "_")
            yield from _walk(value, f"{path}[{label}]")
    elif isinstance(node, (bool, int, float)) and not isinstance(node, str):
        yield path, node


def compare(fresh: dict, base: dict, tolerance: float = 0.2,
            all_metrics: bool = False, ignore_env: bool = False):
    """Compare two bench documents; returns (regressions, drifts, notes).

    ``regressions`` is the fatal list; ``drifts`` informational;
    ``notes`` skipped sections / missing counterparts.
    """
    regressions: list[str] = []
    drifts: list[str] = []
    notes: list[str] = []
    fresh_sections = fresh.get("sections", {})
    base_sections = base.get("sections", {})

    for name in sorted(base_sections):
        if name not in fresh_sections:
            notes.append(f"section '{name}' missing from fresh run")
            continue
        fsec, bsec = fresh_sections[name], base_sections[name]
        fenv, benv = fsec.get("env", {}), bsec.get("env", {})
        if not ignore_env and any(fenv.get(k) != benv.get(k)
                                  for k in ENV_KEYS):
            notes.append(
                f"section '{name}' skipped: env mismatch "
                f"(fresh {fenv} vs baseline {benv})")
            continue
        bleaves = dict(_walk(bsec))
        fleaves = dict(_walk(fsec))
        for path, bval in bleaves.items():
            if path not in fleaves:
                notes.append(f"{name}.{path} missing from fresh run")
                continue
            fval = fleaves[path]
            where = f"{name}.{path}"
            if isinstance(bval, bool) or isinstance(fval, bool):
                if bool(fval) != bool(bval):
                    regressions.append(
                        f"{where}: certification flag flipped "
                        f"{bval} -> {fval}")
                continue
            direction = classify(path)
            if direction == "lower" and not all_metrics:
                continue
            if direction == "higher":
                if fval < bval * (1.0 - tolerance):
                    regressions.append(
                        f"{where}: {fval:.4g} < baseline {bval:.4g} "
                        f"- {tolerance:.0%}")
            elif direction == "lower":
                if fval > bval * (1.0 + tolerance):
                    regressions.append(
                        f"{where}: {fval:.4g} > baseline {bval:.4g} "
                        f"+ {tolerance:.0%}")
            else:
                scale = max(abs(bval), 1e-12)
                if abs(fval - bval) > tolerance * scale:
                    drifts.append(
                        f"{where}: {bval:.4g} -> {fval:.4g}")
    for name in sorted(fresh_sections):
        if name not in base_sections:
            notes.append(f"new section '{name}' (no baseline yet)")
    return regressions, drifts, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare a fresh bench JSON against the committed "
                    "baseline; exit 1 on perf regression.")
    parser.add_argument("fresh", help="freshly emitted BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="relative regression tolerance "
                             "(default 0.2 = 20%%)")
    parser.add_argument("--all-metrics", action="store_true",
                        help="also judge wall-clock metrics "
                             "(machine-dependent; off by default)")
    parser.add_argument("--ignore-env", action="store_true",
                        help="compare sections even when their recorded "
                             "env knobs differ")
    args = parser.parse_args(argv)

    docs = []
    for path in (args.fresh, args.baseline):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                docs.append(json.load(fh))
        except (OSError, ValueError) as exc:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
            return 2

    regressions, drifts, notes = compare(
        docs[0], docs[1], tolerance=args.tolerance,
        all_metrics=args.all_metrics, ignore_env=args.ignore_env)

    for note in notes:
        print(f"[note]  {note}")
    for drift in drifts:
        print(f"[drift] {drift}")
    for reg in regressions:
        print(f"[REGRESSION] {reg}")
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance")
        return 1
    print(f"\nno regressions beyond {args.tolerance:.0%} tolerance "
          f"({len(drifts)} drift(s), {len(notes)} note(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
