"""Tests for the anomaly-detection experiments (Fig. 7)."""

import math

import pytest

from repro.sim.detection import (
    analytic_required_window,
    calibrated_statistics,
    empirical_required_window,
    run_detection_trials,
)


class TestAnalyticWindow:
    def test_monotone_decreasing_in_ratio(self):
        p = 1e-3
        windows = [analytic_required_window(p, p * r)
                   for r in (5, 10, 30, 100)]
        assert windows == sorted(windows, reverse=True)

    def test_diverges_near_ratio_one(self):
        p = 1e-3
        assert analytic_required_window(p, 2 * p) > \
            analytic_required_window(p, 50 * p) * 10

    def test_equal_rates_rejected(self):
        with pytest.raises(ValueError):
            analytic_required_window(1e-3, 1e-3)

    def test_saturated_anomaly_rate(self):
        # p_ano above 0.5 clips to 0.5 (activity cannot exceed 1/2).
        w1 = analytic_required_window(1e-3, 0.5)
        w2 = analytic_required_window(1e-3, 0.9)
        assert w1 == w2

    def test_result_is_positive_integer(self):
        w = analytic_required_window(1e-3, 0.1)
        assert isinstance(w, int) and w >= 1


class TestCalibration:
    def test_statistics_match_rate(self):
        stats = calibrated_statistics(1e-3)
        assert 0 < stats.mu < 0.01
        assert stats.sigma == pytest.approx(
            math.sqrt(stats.mu * (1 - stats.mu)))


class TestTrials:
    def test_strong_anomaly_always_detected(self):
        perf = run_detection_trials(
            distance=13, p=1e-3, p_ano=0.1, anomaly_size=4,
            c_win=200, n_th=10, trials=6, seed=0)
        assert perf.miss_rate == 0.0
        assert perf.false_positive_rate == 0.0

    def test_latency_within_window_scale(self):
        perf = run_detection_trials(
            distance=13, p=1e-3, p_ano=0.1, anomaly_size=4,
            c_win=200, n_th=10, trials=6, seed=1)
        assert perf.mean_latency < 2 * 200

    def test_position_error_small(self):
        perf = run_detection_trials(
            distance=13, p=1e-3, p_ano=0.1, anomaly_size=4,
            c_win=200, n_th=10, trials=6, seed=2)
        assert perf.mean_position_error < 4.0

    def test_tiny_window_fails_the_error_criteria(self):
        # A 10-cycle window cannot hit 1% detection errors for a weak
        # anomaly: either the coarse threshold trips on normal noise
        # (false positives) or the anomaly is missed.
        perf = run_detection_trials(
            distance=13, p=1e-3, p_ano=3e-3, anomaly_size=4,
            c_win=10, n_th=10, trials=5, post_cycles=100, seed=3)
        assert perf.miss_rate + perf.false_positive_rate >= 0.2

    def test_trial_counts_add_up(self):
        perf = run_detection_trials(
            distance=9, p=1e-3, p_ano=0.05, anomaly_size=3,
            c_win=150, n_th=8, trials=5, seed=4)
        assert perf.trials == 5
        assert 0 <= perf.detections <= 5


class TestEmpiricalWindow:
    def test_returns_window_meeting_targets(self):
        c_win, perf = empirical_required_window(
            distance=13, p=1e-3, p_ano=0.1, anomaly_size=4,
            n_th=10, trials=6, seed=5)
        assert c_win >= analytic_required_window(1e-3, 0.1)
        assert perf.miss_rate <= 1 / 6 + 1e-9

    def test_larger_ratio_needs_smaller_window(self):
        w_weak, _ = empirical_required_window(
            distance=13, p=1e-3, p_ano=0.02, anomaly_size=4,
            n_th=10, trials=4, seed=6)
        w_strong, _ = empirical_required_window(
            distance=13, p=1e-3, p_ano=0.3, anomaly_size=4,
            n_th=10, trials=4, seed=7)
        assert w_strong <= w_weak
