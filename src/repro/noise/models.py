"""Per-cycle Pauli noise with optional anomalous regions.

An :class:`AnomalousRegion` is an axis-aligned box on the decoding lattice
(rows x cols x time) whose qubits have the elevated physical error rate
``p_ano``.  :class:`PhenomenologicalNoise` samples per-cycle error arrays
for the Z-decoding lattice of a distance-``d`` planar code:

* ``v`` -- vertical data-edge flips, shape ``(T, d, d)``: entry
  ``(t, k, j)`` is the edge between node rows ``k-1`` and ``k`` of lattice
  column ``j`` (``k = 0`` touches the north boundary, ``k = d-1`` the
  south boundary);
* ``h`` -- horizontal data-edge flips, shape ``(T, d-1, d-1)``: entry
  ``(t, i, j)`` is the edge between nodes ``(i, j)`` and ``(i, j+1)``;
* ``m`` -- syndrome-measurement flips, shape ``(T, d-1, d)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenarios.model import Scenario


@dataclass(frozen=True)
class AnomalousRegion:
    """A box of anomalous qubits on the decoding lattice.

    Rows/cols address lattice *nodes*; the box covers nodes with
    ``row_lo <= i < row_lo + size`` and ``col_lo <= j < col_lo + size``
    (plus the data edges incident on them), matching an anomaly of
    ``size = d_ano`` qubits across.  Time bounds are in code cycles;
    ``t_hi = None`` means "until the end of the window".
    """

    row_lo: int
    col_lo: int
    size: int
    t_lo: int = 0
    t_hi: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("anomaly size must be >= 1")
        if self.row_lo < 0 or self.col_lo < 0 or self.t_lo < 0:
            raise ValueError("region origin must be non-negative")
        if self.t_hi is not None and self.t_hi < self.t_lo:
            raise ValueError("t_hi must be >= t_lo")

    @property
    def row_hi(self) -> int:
        return self.row_lo + self.size

    @property
    def col_hi(self) -> int:
        return self.col_lo + self.size

    def active_at(self, t: int) -> bool:
        """True iff the region is anomalous during cycle ``t``."""
        return self.t_lo <= t and (self.t_hi is None or t < self.t_hi)

    def contains_node(self, i: int, j: int) -> bool:
        """True iff lattice node (i, j) lies inside the box."""
        return (self.row_lo <= i < self.row_hi
                and self.col_lo <= j < self.col_hi)

    @classmethod
    def centered(cls, distance: int, size: int,
                 t_lo: int = 0, t_hi: Optional[int] = None) -> "AnomalousRegion":
        """A size x size region centered on a distance-``distance`` lattice."""
        rows, cols = distance - 1, distance
        row_lo = max(0, (rows - size) // 2)
        col_lo = max(0, (cols - size) // 2)
        return cls(row_lo, col_lo, size, t_lo, t_hi)

    @classmethod
    def random(cls, distance: int, size: int, rng,
               t_lo: int = 0, t_hi: Optional[int] = None) -> "AnomalousRegion":
        """A size x size region at a uniform position on the lattice.

        The single place strike positions are drawn (sequential and
        batched experiment paths must sample identically): row origin
        first, then column origin.
        """
        rows, cols = distance - 1, distance
        row_lo = int(rng.integers(0, max(1, rows - size)))
        col_lo = int(rng.integers(0, max(1, cols - size)))
        return cls(row_lo, col_lo, size, t_lo, t_hi)


def build_anomalous_masks(distance: int,
                          region: Optional[AnomalousRegion]):
    """Boolean spatial masks of anomalous edges/measurements.

    Returns ``(v_mask, h_mask, m_mask)`` for the decoding lattice of a
    distance-``distance`` code: the data edges incident on the region's
    nodes and the region's syndrome measurements.  Shared by
    :class:`PhenomenologicalNoise` and the shot kernels' per-shot
    region overwrites (which must not pay a noise-model construction
    per shot just to read the masks).
    """
    d = distance
    v_mask = np.zeros((d, d), dtype=bool)
    h_mask = np.zeros((d - 1, d - 1), dtype=bool)
    m_mask = np.zeros((d - 1, d), dtype=bool)
    if region is None:
        return v_mask, h_mask, m_mask
    for i in range(max(0, region.row_lo), min(d - 1, region.row_hi)):
        for j in range(max(0, region.col_lo), min(d, region.col_hi)):
            m_mask[i, j] = True
            # Edges incident on node (i, j): vertical k=i and k=i+1,
            # horizontal (i, j-1) and (i, j).
            v_mask[i, j] = True
            v_mask[i + 1, j] = True
            if j - 1 >= 0 and j - 1 < d - 1:
                h_mask[i, j - 1] = True
            if j < d - 1:
                h_mask[i, j] = True
    return v_mask, h_mask, m_mask


#: Shots drawn per float scratch block inside ``sample_batch_packed``.
#: Word-aligned (a multiple of 64) so every block fills whole uint64
#: words; one word keeps the float scratch of the largest Fig. 8 point
#: around a megabyte, so the packed batch itself dominates peak memory.
PACKED_SAMPLE_CHUNK = 64


class PhenomenologicalNoise:
    """Samples per-cycle error arrays for the Z-decoding lattice.

    Args:
        distance: the code distance ``d``.
        p: physical error rate per code cycle for normal qubits.  On the
            lattice this is both the data-edge and measurement flip rate
            (X or Y each occur with probability ``p/2``).
        p_ano: physical error rate for anomalous qubits (default 0.5, the
            paper's Sec. III / VII setting).
        region: optional anomalous region.
        scenario: optional :class:`repro.scenarios.model.Scenario`
            generalizing ``region`` to many (possibly overlapping)
            fixed-position events over an optionally heterogeneous /
            drifting base rate.  Mutually exclusive with ``region``.
            A single-event uniform-base scenario draws the *identical*
            uniform stream as the equivalent ``region`` path, so its
            samples are bit-identical per ``(seed, batch_size)``
            (docs/CONTRACTS.md).
    """

    def __init__(
        self,
        distance: int,
        p: float,
        p_ano: float = 0.5,
        region: Optional[AnomalousRegion] = None,
        scenario: Optional["Scenario"] = None,
    ):
        if not 0.0 <= p <= 1.0 or not 0.0 <= p_ano <= 1.0:
            raise ValueError("error rates must be probabilities")
        if distance < 2:
            raise ValueError("distance must be >= 2")
        if scenario is not None and region is not None:
            raise ValueError("pass either region or scenario, not both")
        self.distance = distance
        self.p = p
        self.p_ano = p_ano
        self.region = region
        self.scenario = scenario
        self._masks = build_anomalous_masks(distance, region)
        self._overlays: tuple = ()
        self._thr_cache: dict = {}
        if scenario is not None:
            if not scenario.fixed:
                raise ValueError(
                    "noise-level scenarios need fixed event positions; "
                    "per-shot random positions are the shot kernels' job")
            if (scenario.rate_field_distance is not None
                    and scenario.rate_field_distance != distance):
                raise ValueError(
                    f"scenario rate_field implies distance "
                    f"{scenario.rate_field_distance}, noise model has "
                    f"distance {distance}")
            self._overlays = tuple(
                (event.region(),
                 build_anomalous_masks(distance, event.region()),
                 event.p_ano)
                for event in scenario.events)

    @property
    def anomalous_masks(self):
        """(v_mask, h_mask, m_mask) boolean arrays of anomalous positions."""
        return self._masks

    # ------------------------------------------------------------------
    def sample(self, cycles: int, rng: np.random.Generator):
        """Sample error arrays for ``cycles`` code cycles.

        Returns ``(v, h, m)`` boolean arrays of shapes
        ``(T, d, d)``, ``(T, d-1, d-1)``, ``(T, d-1, d)``.
        """
        v, h, m = self.sample_batch(1, cycles, rng)
        return v[0], h[0], m[0]

    def sample_batch(self, shots: int, cycles: int,
                     rng: np.random.Generator):
        """Sample error arrays for a whole batch of shots at once.

        Returns ``(v, h, m)`` boolean arrays of shapes
        ``(shots, T, d, d)``, ``(shots, T, d-1, d-1)``,
        ``(shots, T, d-1, d)``.  One generator call per array keeps the
        per-shot Python overhead of a Monte-Carlo campaign out of the
        sampling path entirely.
        """
        if shots < 1:
            raise ValueError("need at least one shot")
        if self.scenario is not None:
            return self._sample_batch_scenario(shots, cycles, rng)
        d = self.distance
        v = rng.random((shots, cycles, d, d)) < self.p
        h = rng.random((shots, cycles, d - 1, d - 1)) < self.p
        m = rng.random((shots, cycles, d - 1, d)) < self.p
        if self.region is not None and self.p_ano != self.p:
            v_mask, h_mask, m_mask = self._masks
            t_lo = self.region.t_lo
            t_hi = self.region.t_hi if self.region.t_hi is not None else cycles
            t_lo, t_hi = max(0, t_lo), min(cycles, t_hi)
            if t_hi > t_lo:
                span = t_hi - t_lo
                v[:, t_lo:t_hi][:, :, v_mask] = (
                    rng.random((shots, span, int(v_mask.sum()))) < self.p_ano)
                h[:, t_lo:t_hi][:, :, h_mask] = (
                    rng.random((shots, span, int(h_mask.sum()))) < self.p_ano)
                m[:, t_lo:t_hi][:, :, m_mask] = (
                    rng.random((shots, span, int(m_mask.sum()))) < self.p_ano)
        return v, h, m

    def sample_batch_packed(self, shots: int, cycles: int,
                            rng: np.random.Generator):
        """Bit-packed :meth:`sample_batch`: 64 shots per uint64 word.

        Returns ``(v, h, m)`` uint64 arrays of shapes
        ``(words, T, d, d)``, ``(words, T, d-1, d-1)``,
        ``(words, T, d-1, d)`` with ``words = ceil(shots / 64)``; lane
        ``s % 64`` of word ``s // 64`` holds shot ``s`` (see
        :mod:`repro.sim.bitops`).

        Draws the *identical* uniform stream as :meth:`sample_batch` —
        each array is filled in word-aligned shot blocks whose
        concatenation is the same C-ordered sequence one big
        ``rng.random`` call would produce — so for a given generator
        state the packed bits equal the float path's bits exactly, while
        the float scratch never exceeds one
        :data:`PACKED_SAMPLE_CHUNK`-shot block (~1 bit stored per
        sampled bit instead of 8 bytes).
        """
        from repro.sim.bitops import pack_shots, word_count

        if shots < 1:
            raise ValueError("need at least one shot")
        if self.scenario is not None:
            return self._sample_batch_packed_scenario(shots, cycles, rng)
        d = self.distance
        words = word_count(shots)
        shapes = ((d, d), (d - 1, d - 1), (d - 1, d))

        def blocks():
            for start in range(0, shots, PACKED_SAMPLE_CHUNK):
                n = min(PACKED_SAMPLE_CHUNK, shots - start)
                yield start // 64, word_count(n), n

        packed = []
        for shape in shapes:
            arr = np.empty((words, cycles) + shape, dtype=np.uint64)
            for w0, nw, n in blocks():
                arr[w0:w0 + nw] = pack_shots(
                    rng.random((n, cycles) + shape) < self.p)
            packed.append(arr)

        if self.region is not None and self.p_ano != self.p:
            t_lo = self.region.t_lo
            t_hi = (self.region.t_hi if self.region.t_hi is not None
                    else cycles)
            t_lo, t_hi = max(0, t_lo), min(cycles, t_hi)
            if t_hi > t_lo:
                span = t_hi - t_lo
                for arr, mask in zip(packed, self._masks, strict=True):
                    k = int(mask.sum())
                    for w0, nw, n in blocks():
                        arr[w0:w0 + nw, t_lo:t_hi][:, :, mask] = pack_shots(
                            rng.random((n, span, k)) < self.p_ano)
        return tuple(packed)

    # ------------------------------------------------------------------
    # Scenario sampling (multi-event, heterogeneous/drifting base)
    # ------------------------------------------------------------------
    def _thresholds(self, cycles: int):
        """Per-cycle base-rate arrays, or ``None`` for a uniform base.

        Cached per ``cycles`` — the expansion is pure in (scenario, p,
        distance, cycles) and every chunk of a campaign asks for the
        same window.
        """
        if self.scenario is None or self.scenario.uniform_base:
            return None
        cached = self._thr_cache.get(cycles)
        if cached is None:
            cached = self.scenario.rate_arrays(self.distance, self.p, cycles)
            self._thr_cache[cycles] = cached
        return cached

    def _overlay_window(self, region: AnomalousRegion, cycles: int):
        """The clipped ``(t_lo, t_hi)`` of an event inside the window."""
        t_hi = region.t_hi if region.t_hi is not None else cycles
        return max(0, region.t_lo), min(cycles, t_hi)

    def _sample_batch_scenario(self, shots: int, cycles: int,
                               rng: np.random.Generator):
        """:meth:`sample_batch` for a scenario noise model.

        Draw discipline (the bit-identity contract): the base arrays
        draw in v, h, m order with one generator call each — a uniform
        base compares against the scalar ``p`` exactly as the legacy
        path — then events overwrite in declaration order, each drawing
        v, h, m overlay blocks of the same shapes the legacy region
        overwrite draws.  A single-event uniform-base scenario is
        therefore bit-identical to the legacy ``region`` path.
        """
        d = self.distance
        thr = self._thresholds(cycles)
        if thr is None:
            v = rng.random((shots, cycles, d, d)) < self.p
            h = rng.random((shots, cycles, d - 1, d - 1)) < self.p
            m = rng.random((shots, cycles, d - 1, d)) < self.p
        else:
            thr_v, thr_h, thr_m = thr
            v = rng.random((shots, cycles, d, d)) < thr_v
            h = rng.random((shots, cycles, d - 1, d - 1)) < thr_h
            m = rng.random((shots, cycles, d - 1, d)) < thr_m
        for region, masks, p_ano in self._overlays:
            if thr is None and p_ano == self.p:
                continue  # the legacy "region at base rate" no-op gate
            t_lo, t_hi = self._overlay_window(region, cycles)
            if t_hi <= t_lo:
                continue
            span = t_hi - t_lo
            for arr, mask in zip((v, h, m), masks, strict=True):
                arr[:, t_lo:t_hi][:, :, mask] = (
                    rng.random((shots, span, int(mask.sum()))) < p_ano)
        return v, h, m

    def _sample_batch_packed_scenario(self, shots: int, cycles: int,
                                      rng: np.random.Generator):
        """:meth:`sample_batch_packed` for a scenario noise model.

        Same word-aligned block structure as the legacy packed path
        (arrays outer, :data:`PACKED_SAMPLE_CHUNK`-shot blocks inner,
        overlays after the base), so the packed bits equal
        :meth:`_sample_batch_scenario`'s bits for any scenario, and a
        single-event uniform-base scenario equals the legacy packed
        region path stream for stream.
        """
        from repro.sim.bitops import pack_shots, word_count

        d = self.distance
        words = word_count(shots)
        shapes = ((d, d), (d - 1, d - 1), (d - 1, d))
        thr = self._thresholds(cycles)

        def blocks():
            for start in range(0, shots, PACKED_SAMPLE_CHUNK):
                n = min(PACKED_SAMPLE_CHUNK, shots - start)
                yield start // 64, word_count(n), n

        packed = []
        for idx, shape in enumerate(shapes):
            arr = np.empty((words, cycles) + shape, dtype=np.uint64)
            for w0, nw, n in blocks():
                u = rng.random((n, cycles) + shape)
                arr[w0:w0 + nw] = pack_shots(
                    u < (self.p if thr is None else thr[idx]))
            packed.append(arr)

        for region, masks, p_ano in self._overlays:
            if thr is None and p_ano == self.p:
                continue
            t_lo, t_hi = self._overlay_window(region, cycles)
            if t_hi <= t_lo:
                continue
            span = t_hi - t_lo
            for arr, mask in zip(packed, masks, strict=True):
                k = int(mask.sum())
                for w0, nw, n in blocks():
                    arr[w0:w0 + nw, t_lo:t_hi][:, :, mask] = pack_shots(
                        rng.random((n, span, k)) < p_ano)
        return tuple(packed)
