"""Pluggable array backend: NumPy by default, CuPy when requested.

The packed shot engine is word-wise uint64 arithmetic (XOR scans,
popcounts, argwhere) plus the bucketed distance tensors of the batched
decoder — exactly the operations a GPU runs well.  This module is the
seam: every kernel that creates or transforms those arrays asks it for
the array module instead of hard-coding ``numpy``.

Selection is by the ``REPRO_BACKEND`` environment variable, read once at
import:

* unset / ``numpy`` — NumPy.  This is the certified reference path; the
  seam resolves to the ``numpy`` module itself so there is no
  indirection cost on any hot path.
* ``cupy`` — CuPy, if it imports *and* can touch a device; otherwise a
  warning is emitted and the backend falls back to NumPy.  The CuPy
  path is experimental: it shares every line of kernel code through
  this seam but is only exercised where a GPU is present.
* anything else — a warning and NumPy.

Helpers:

* :func:`get_array_module` — NumPy/CuPy dispatch on the arrays actually
  passed (the ``cupy.get_array_module`` idiom).  When CuPy was never
  loaded this is a single attribute check.
* :func:`to_numpy` / :func:`asarray` — host/device boundary crossings;
  identity under NumPy.
* :func:`xor_accumulate` / :func:`xor_reduce` — the two uint64 scan
  primitives of the packed kernels.  NumPy has them as ufunc methods;
  the generic path is a log-depth doubling scan in plain slicing ops so
  any array library with basic indexing can run it.
"""

from __future__ import annotations

import warnings

import numpy

from repro import config

#: Environment variable holding the backend choice (owned, like every
#: ``REPRO_*`` knob, by :mod:`repro.config`; kept here as a re-export
#: for callers that referenced it).
ENV_VAR = config.ENV_BACKEND

#: Recognized backend names.
BACKENDS = ("numpy", "cupy")

#: The active array module (``numpy`` or ``cupy``).
xp = numpy

#: The active backend name.
name = "numpy"

_cupy = None  # the cupy module, when (and only when) it is usable


def _try_cupy():
    """Import CuPy and prove a device op works; None when unusable."""
    try:
        import cupy
        cupy.zeros(1).sum()  # fails cleanly when no device is present
        return cupy
    except Exception as exc:  # ImportError or any CUDA runtime error
        warnings.warn(
            f"{ENV_VAR}=cupy requested but CuPy is unusable ({exc!r}); "
            "falling back to the NumPy backend",
            RuntimeWarning, stacklevel=3)
        return None


def select_backend(requested: str | None = None) -> str:
    """(Re)resolve the backend; returns the name actually active.

    Called once at import with the environment value; tests may call it
    again to exercise the resolution logic.  Unknown names and an
    unusable CuPy degrade to NumPy with a warning, never an error.
    """
    global xp, name, _cupy
    if requested is None:
        requested = config.backend()
    requested = (requested or "numpy").strip().lower() or "numpy"
    if requested not in BACKENDS:
        warnings.warn(
            f"unknown {ENV_VAR}={requested!r}; using the NumPy backend "
            f"(choices: {BACKENDS})", RuntimeWarning, stacklevel=2)
        requested = "numpy"
    if requested == "cupy":
        _cupy = _try_cupy()
        if _cupy is not None:
            xp, name = _cupy, "cupy"
            return name
    xp, name = numpy, "numpy"
    return name


def get_array_module(*arrays):
    """The array module (numpy or cupy) owning ``arrays``.

    With the NumPy backend this never inspects the arrays — the answer
    is always ``numpy`` — so the seam costs one global read per call.
    """
    if _cupy is None:
        return numpy
    for a in arrays:
        if isinstance(a, _cupy.ndarray):
            return _cupy
    return numpy


def to_numpy(a):
    """Move an array to the host (identity for NumPy arrays)."""
    if _cupy is not None and isinstance(a, _cupy.ndarray):
        return _cupy.asnumpy(a)
    return a


def asarray(a, dtype=None):
    """Put an array on the active backend's device."""
    return xp.asarray(a, dtype=dtype)


def xor_accumulate(a, axis: int):
    """Cumulative XOR along ``axis`` (the packed time scan).

    NumPy: the ``bitwise_xor.accumulate`` ufunc method.  Other
    backends: an in-place Hillis–Steele doubling scan — ``log2(n)``
    slice XORs, bit-identical to the sequential scan.
    """
    m = get_array_module(a)
    if m is numpy:
        return numpy.bitwise_xor.accumulate(a, axis=axis)
    out = m.ascontiguousarray(a).copy()
    view = m.moveaxis(out, axis, 0)
    n = view.shape[0]
    shift = 1
    while shift < n:
        view[shift:] ^= view[:-shift].copy()
        shift *= 2
    return out


def xor_reduce(a, axis: int):
    """XOR reduction along ``axis`` (the packed parity fold)."""
    m = get_array_module(a)
    if m is numpy:
        return numpy.bitwise_xor.reduce(a, axis=axis)
    view = m.moveaxis(a, axis, 0)
    out = view[0].copy()
    for k in range(1, view.shape[0]):
        out ^= view[k]
    return out


select_backend()
