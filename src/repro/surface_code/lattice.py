"""Planar surface-code lattice layout.

The distance-``d`` planar (unrotated) surface code lives on a
``(2d-1) x (2d-1)`` grid of *sites*:

* data qubits at sites with both coordinates even, or both odd
  (``d**2 + (d-1)**2`` of them);
* Z-type ancillas (plaquettes) at sites with odd row, even column
  (``(d-1) * d`` of them) -- these detect X errors;
* X-type ancillas (vertices) at sites with even row, odd column
  (``d * (d-1)`` of them) -- these detect Z errors.

With this orientation the Z-ancilla (X-error) decoding graph is a
``(d-1)``-row by ``d``-column grid whose boundary edges exit through the
north (site row 0) and south (site row ``2d-2``) code boundaries, and the
X-ancilla graph is its transpose with west/east boundaries.  The logical X
operator is a north-south column of X's; the logical Z operator is a
west-east row of Z's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.stab.pauli import Pauli


@dataclass(frozen=True, order=True)
class Site:
    """A lattice site, addressed as (row, col) on the (2d-1)^2 grid."""

    row: int
    col: int

    def neighbors(self) -> list["Site"]:
        """The four nearest-neighbor sites (may fall outside the lattice)."""
        return [
            Site(self.row - 1, self.col),
            Site(self.row + 1, self.col),
            Site(self.row, self.col - 1),
            Site(self.row, self.col + 1),
        ]


class PlanarSurfaceCode:
    """A distance-``d`` planar surface code patch.

    Attributes:
        distance: the code distance ``d`` (any integer >= 2).
        data_sites: ordered list of data-qubit sites; the position in this
            list is the qubit's index for Pauli operators.
    """

    def __init__(self, distance: int):
        if distance < 2:
            raise ValueError("code distance must be at least 2")
        self.distance = distance
        self.grid_size = 2 * distance - 1
        self.data_sites: list[Site] = sorted(
            site for site in self._all_sites() if self.is_data_site(site)
        )
        self._data_index = {site: i for i, site in enumerate(self.data_sites)}
        self.z_ancilla_sites: list[Site] = sorted(
            site for site in self._all_sites() if self.is_z_ancilla_site(site)
        )
        self.x_ancilla_sites: list[Site] = sorted(
            site for site in self._all_sites() if self.is_x_ancilla_site(site)
        )

    # ------------------------------------------------------------------
    # Site classification
    # ------------------------------------------------------------------
    def _all_sites(self) -> Iterator[Site]:
        for r in range(self.grid_size):
            for c in range(self.grid_size):
                yield Site(r, c)

    def contains(self, site: Site) -> bool:
        """True iff the site lies on the (2d-1)^2 grid."""
        return (0 <= site.row < self.grid_size
                and 0 <= site.col < self.grid_size)

    @staticmethod
    def is_data_site(site: Site) -> bool:
        """Data qubits sit where row and column have equal parity."""
        return site.row % 2 == site.col % 2

    @staticmethod
    def is_z_ancilla_site(site: Site) -> bool:
        """Z ancillas (plaquettes, detect X errors) sit at (odd, even)."""
        return site.row % 2 == 1 and site.col % 2 == 0

    @staticmethod
    def is_x_ancilla_site(site: Site) -> bool:
        """X ancillas (vertices, detect Z errors) sit at (even, odd)."""
        return site.row % 2 == 0 and site.col % 2 == 1

    # ------------------------------------------------------------------
    # Counts
    # ------------------------------------------------------------------
    @property
    def num_data_qubits(self) -> int:
        return len(self.data_sites)

    @property
    def num_z_stabilizers(self) -> int:
        return len(self.z_ancilla_sites)

    @property
    def num_x_stabilizers(self) -> int:
        return len(self.x_ancilla_sites)

    @property
    def num_physical_qubits(self) -> int:
        """Data plus ancilla qubits on the patch."""
        return (self.num_data_qubits + self.num_z_stabilizers
                + self.num_x_stabilizers)

    def data_index(self, site: Site) -> int:
        """Index of a data qubit in the canonical ordering."""
        return self._data_index[site]

    # ------------------------------------------------------------------
    # Stabilizer supports
    # ------------------------------------------------------------------
    def stabilizer_support(self, ancilla: Site) -> list[int]:
        """Data-qubit indices monitored by the given ancilla site."""
        if not (self.is_z_ancilla_site(ancilla)
                or self.is_x_ancilla_site(ancilla)):
            raise ValueError(f"{ancilla} is not an ancilla site")
        return [
            self._data_index[s]
            for s in ancilla.neighbors()
            if self.contains(s) and self.is_data_site(s)
        ]

    def z_stabilizer_paulis(self) -> list[Pauli]:
        """All Z-plaquette stabilizers as Pauli operators on data qubits."""
        return [self._stabilizer_pauli(a, "Z") for a in self.z_ancilla_sites]

    def x_stabilizer_paulis(self) -> list[Pauli]:
        """All X-vertex stabilizers as Pauli operators on data qubits."""
        return [self._stabilizer_pauli(a, "X") for a in self.x_ancilla_sites]

    def _stabilizer_pauli(self, ancilla: Site, kind: str) -> Pauli:
        pauli = Pauli.identity(self.num_data_qubits)
        for q in self.stabilizer_support(ancilla):
            if kind == "Z":
                pauli.z[q] = 1
            else:
                pauli.x[q] = 1
        return pauli

    # ------------------------------------------------------------------
    # Logical operators
    # ------------------------------------------------------------------
    def logical_x(self, column: int = 0) -> Pauli:
        """Logical X: a north-south column of X on data sites (2k, 2*column)."""
        if not 0 <= column < self.distance:
            raise ValueError("column out of range")
        pauli = Pauli.identity(self.num_data_qubits)
        for k in range(self.distance):
            pauli.x[self._data_index[Site(2 * k, 2 * column)]] = 1
        return pauli

    def logical_z(self, row: int = 0) -> Pauli:
        """Logical Z: a west-east row of Z on data sites (2*row, 2k)."""
        if not 0 <= row < self.distance:
            raise ValueError("row out of range")
        pauli = Pauli.identity(self.num_data_qubits)
        for k in range(self.distance):
            pauli.z[self._data_index[Site(2 * row, 2 * k)]] = 1
        return pauli

    # ------------------------------------------------------------------
    # Decoding-lattice correspondence
    # ------------------------------------------------------------------
    def z_node_coords(self, ancilla: Site) -> tuple[int, int]:
        """Map a Z-ancilla site to (row, col) on the (d-1) x d Z-lattice."""
        if not self.is_z_ancilla_site(ancilla):
            raise ValueError(f"{ancilla} is not a Z-ancilla site")
        return (ancilla.row - 1) // 2, ancilla.col // 2

    def x_node_coords(self, ancilla: Site) -> tuple[int, int]:
        """Map an X-ancilla site to (row, col) on the d x (d-1) X-lattice."""
        if not self.is_x_ancilla_site(ancilla):
            raise ValueError(f"{ancilla} is not an X-ancilla site")
        return ancilla.row // 2, (ancilla.col - 1) // 2

    def __repr__(self) -> str:
        return (f"PlanarSurfaceCode(distance={self.distance}, "
                f"data={self.num_data_qubits}, "
                f"stabilizers={self.num_z_stabilizers}+{self.num_x_stabilizers})")
