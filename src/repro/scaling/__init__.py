"""Scalability analysis: required chip area and qubit density (Fig. 9)."""

from repro.scaling.model import (
    ScalingParameters,
    average_logical_error_rate,
    required_density,
    density_curve,
)

__all__ = [
    "ScalingParameters",
    "average_logical_error_rate",
    "required_density",
    "density_curve",
]
