"""Cycle-approximate model of the ANQ matching pipeline.

Mirrors the dataflow described in Sec. VIII-D: per code cycle the
positions and boundary/anomaly distances of active nodes are pushed into
the ANQ; the unit then repeatedly (a) evaluates all-to-all candidate
paths in a pipelined fashion, (b) reduces them through a comparator tree
to the global shortest pair, and (c) pops that pair to the Pauli frame
and matching queue.

The model counts hardware cycles per drain using the same structural
latency terms as :mod:`repro.hwmodel.resources`, and can also *execute*
the matching in software to measure algorithmic throughput on the host
(useful for regression-tracking our own greedy decoder).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.decoding.greedy import GreedyDecoder
from repro.decoding.weights import DistanceModel
from repro.hwmodel.resources import CLOCK_MHZ, DecoderHardwareModel


@dataclass(frozen=True)
class DrainEstimate:
    """Cost of draining one burst of active nodes."""

    nodes: int
    matches: int
    hardware_cycles: float

    @property
    def hardware_us(self) -> float:
        return self.hardware_cycles / CLOCK_MHZ

    @property
    def matches_per_us(self) -> float:
        if self.hardware_us == 0:
            return float("inf")
        return self.matches / self.hardware_us


@dataclass(frozen=True)
class StreamSLO:
    """Per-round latency budget for an online decode path.

    The paper's real-time requirement (Sec. VIII-D) is that the
    detection/decode pipeline keeps pace with syndrome rounds arriving
    every code cycle.  For the *software* streaming driver
    (:mod:`repro.streaming`) the analogous service-level objective is
    that the p99 per-round wall clock stays inside one code cycle.
    """

    code_cycle_us: float = 1.0

    def met_by(self, p99_us: float) -> bool:
        """True when the observed p99 round latency fits the budget."""
        return p99_us <= self.code_cycle_us

    def headroom(self, p99_us: float) -> float:
        """Budget / observed p99 (``> 1`` means the SLO is met)."""
        if p99_us <= 0:
            return float("inf")
        return self.code_cycle_us / p99_us


class ANQPipelineModel:
    """Drain-cost estimates for a hardware configuration."""

    def __init__(self, hardware: DecoderHardwareModel):
        self.hardware = hardware

    def drain(self, num_nodes: int) -> DrainEstimate:
        """Estimate cycles to match ``num_nodes`` queued active nodes.

        Steady-state model: new syndromes stream in every code cycle, so
        the ANQ stays near its design occupancy and every pop pays the
        full-occupancy evaluation cost (the paper's throughput numbers
        are quoted at design capacity).  A pair pop retires two entries,
        a boundary pop one; we model alternating pops.
        """
        remaining = num_nodes
        cycles = 0.0
        matches = 0
        per_match = self.hardware.cycles_per_match()
        while remaining > 0:
            retired = 2 if remaining >= 2 else 1
            remaining -= retired
            matches += 1
            cycles += per_match
        return DrainEstimate(num_nodes, matches, cycles)

    def sustains_code_cycle(self, active_nodes_per_cycle: float,
                            code_cycle_us: float = 1.0) -> bool:
        """Sec. VIII-D criterion: average matching speed must beat the
        average active-node arrival rate."""
        per_us = self.hardware.throughput_matches_per_us()
        return per_us >= active_nodes_per_cycle / 2.0 / code_cycle_us


def measure_software_throughput(
    num_nodes: int = 60,
    distance: int = 21,
    window: int = 21,
    repeats: int = 50,
    seed: int = 0,
) -> float:
    """Matches per second of our software greedy decoder (host-side).

    Generates random active-node bursts and times
    :class:`repro.decoding.GreedyDecoder` over them.
    """
    rng = np.random.default_rng(seed)
    decoder = GreedyDecoder(DistanceModel(distance))
    bursts = []
    for _ in range(repeats):
        nodes = np.column_stack([
            rng.integers(0, window, num_nodes),
            rng.integers(0, distance - 1, num_nodes),
            rng.integers(0, distance, num_nodes),
        ])
        bursts.append(nodes)
    start = time.perf_counter()
    matches = 0
    for nodes in bursts:
        matches += len(decoder.decode(nodes).matches)
    elapsed = time.perf_counter() - start
    return matches / elapsed
