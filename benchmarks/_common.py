"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports.  Monte-Carlo depth is controlled
by the ``REPRO_*`` environment knobs so CI stays fast while
full-fidelity runs remain one command away.  The knobs themselves —
``REPRO_SAMPLES``, ``REPRO_SCALE``, ``REPRO_WORKERS``,
``REPRO_BACKEND``, ``REPRO_JSON``, ``REPRO_JSON_DIR`` — are owned and
documented by :mod:`repro.config` (one reader, call-time resolution);
the thin wrappers here keep the bench scripts' historical names and the
``--json`` command-line override.

See ``benchmarks/README.md`` for the workflow and the JSON schema.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Iterable, Optional

from repro import config


def mc_samples(default: int = 200) -> int:
    """Samples per Monte-Carlo point (``REPRO_SAMPLES`` x ``REPRO_SCALE``)."""
    return config.samples(default)


def mc_workers(default: int = 1) -> int:
    """Shot-engine worker count (``REPRO_WORKERS``)."""
    return config.workers(default)


def scale() -> float:
    """Global workload multiplier (``REPRO_SCALE``)."""
    return config.scale()


def json_enabled() -> bool:
    """Whether benches should write their machine-readable JSON."""
    return config.json_enabled(sys.argv)


def emit_json(name: str, section: str, payload: dict) -> Optional[str]:
    """Merge one bench section into ``BENCH_<name>.json``.

    Each bench function contributes its stage throughputs / speedup
    ratios under its own ``section`` key, so one file accumulates the
    whole script's trajectory and stays diffable across PRs.  Returns
    the path written, or ``None`` when disabled.
    """
    if not json_enabled():
        return None
    out_dir = config.json_dir(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    doc: dict = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            doc = {}
    try:
        from repro.sim import backend
        backend_name = backend.name
    except Exception:  # pragma: no cover - repro not importable
        backend_name = "unknown"
    doc["bench"] = name
    doc.pop("env", None)  # pre-refactor file-global env block
    # No timestamp on purpose: the file is committed as the cross-PR
    # perf trajectory, and a stamp would dirty it on every no-op rerun.
    # The env rides inside each section so a casual low-sample rerun of
    # one bench can never mislabel the sections it did not touch.
    sections = doc.setdefault("sections", {})
    sections[section] = dict(payload)
    sections[section]["env"] = {
        "samples": mc_samples(),
        "workers": mc_workers(),
        "scale": scale(),
        "backend": backend_name,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def print_table(title: str, header: Iterable[str],
                rows: Iterable[Iterable]) -> None:
    """Render an aligned ASCII table (bench output, mirrors the paper)."""
    header = [str(h) for h in header]
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths, strict=True))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 1e-3 or abs(cell) >= 1e5:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
