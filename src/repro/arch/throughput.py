"""Instruction-throughput simulation (paper Fig. 10, Sec. VIII-B).

Replays a stream of ``meas_ZZ`` instructions on randomly chosen logical-
qubit pairs over an 11 x 11 block plane (25 logical qubits) under three
architectures:

* ``mbbe_free`` -- no cosmic rays; ops take 1 slot (d code cycles);
* ``baseline``  -- default code distance doubled: immune to MBBEs but
  every op takes 2 slots;
* ``q3de``      -- ops take 1 slot; cosmic rays strike each block with
  probability ``d tau_cyc f_ano`` per slot and last ``tau_ano / (d
  tau_cyc)`` slots; struck vacant blocks are avoided, struck logical
  qubits expand to 2x2 blocks (their ops take 2 slots meanwhile).

Throughput is reported as completed instructions per slot, i.e. per ``d``
code cycles, matching the paper's y-axis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.arch.isa import Instruction, InstructionKind
from repro.arch.qubit_plane import BlockState, QubitPlane
from repro.arch.scheduler import GreedyScheduler


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of one throughput run."""

    architecture: str
    instructions: int
    slots: int
    strikes: int

    @property
    def throughput(self) -> float:
        """Completed instructions per d code cycles."""
        return self.instructions / max(1, self.slots)


def random_meas_zz_stream(num_instructions: int, num_qubits: int,
                          rng: np.random.Generator) -> deque:
    """The paper's workload: meas_ZZ on random distinct qubit pairs."""
    queue: deque = deque()
    for i in range(num_instructions):
        a, b = rng.choice(num_qubits, size=2, replace=False)
        queue.append(Instruction(
            InstructionKind.MEAS_ZZ, (int(a), int(b)), register=i))
    return queue


def simulate_throughput(
    architecture: str,
    num_instructions: int = 1000,
    strike_prob_per_slot: float = 0.0,
    strike_duration_slots: int = 100,
    rows: int = 11,
    cols: int = 11,
    rng: Optional[np.random.Generator] = None,
    max_slots: int = 100_000,
) -> ThroughputResult:
    """Run one architecture over the random meas_ZZ workload.

    Args:
        architecture: ``"mbbe_free"``, ``"baseline"`` or ``"q3de"``.
        strike_prob_per_slot: per-block MBBE probability per slot,
            the paper's x-axis ``d tau_cyc f_ano``.
        strike_duration_slots: anomaly lifetime in slots,
            the paper's ``tau_ano / (d tau_cyc)``.
    """
    if architecture not in ("mbbe_free", "baseline", "q3de"):
        raise ValueError(f"unknown architecture {architecture!r}")
    # reprolint: disable=RL001 -- rng=None is the caller's explicit
    # opt-out of reproducibility; campaigns always pass a seeded rng
    rng = rng if rng is not None else np.random.default_rng()
    plane = QubitPlane(rows, cols)
    latency = 2 if architecture == "baseline" else 1
    scheduler = GreedyScheduler(plane, base_latency_slots=latency)
    queue = random_meas_zz_stream(num_instructions, plane.num_logical, rng)

    strikes = 0
    with_mbbes = architecture == "q3de" and strike_prob_per_slot > 0.0
    expansion_deadline: dict[int, int] = {}
    slot = 0
    while (queue or scheduler.executing) and slot < max_slots:
        if with_mbbes:
            strikes += _inject_strikes(
                plane, expansion_deadline, slot, strike_prob_per_slot,
                strike_duration_slots, rng)
            _expire_expansions(plane, expansion_deadline, slot)
            plane.expire_anomalies(slot)
        scheduler.step(queue, slot)
        slot += 1
    # Drain bookkeeping: count everything that finished.
    return ThroughputResult(
        architecture=architecture,
        instructions=scheduler.completed,
        slots=slot,
        strikes=strikes,
    )


def _inject_strikes(plane: QubitPlane, expansion_deadline: dict[int, int],
                    slot: int, prob: float, duration: int,
                    rng: np.random.Generator) -> int:
    """Sample per-block strikes for one slot; expand struck logical qubits."""
    hits = rng.random((plane.rows, plane.cols)) < prob
    count = 0
    for r, c in np.argwhere(hits):
        count += 1
        blk = plane.strike(int(r), int(c), slot + duration)
        if blk.state is BlockState.LOGICAL and blk.logical_id is not None:
            qubit = blk.logical_id
            if plane.expand_logical(qubit, slot):
                expansion_deadline[qubit] = max(
                    expansion_deadline.get(qubit, 0), slot + duration)
        elif blk.state is BlockState.EXPANSION and blk.logical_id is not None:
            expansion_deadline[blk.logical_id] = max(
                expansion_deadline.get(blk.logical_id, 0), slot + duration)
    return count


def _expire_expansions(plane: QubitPlane, expansion_deadline: dict[int, int],
                       slot: int) -> None:
    for qubit in [q for q, until in expansion_deadline.items()
                  if until <= slot]:
        plane.shrink_logical(qubit)
        del expansion_deadline[qubit]


def _q3de_sweep_point(freq: float, num_instructions: int,
                      duration_slots: int, seed: int) -> float:
    return simulate_throughput(
        "q3de", num_instructions, freq, duration_slots,
        rng=np.random.default_rng(seed)).throughput


def throughput_sweep(
    frequencies: list[float],
    duration_slots: int,
    num_instructions: int = 1000,
    seed: int = 7,
    workers: int = 0,
) -> dict[str, list[float]]:
    """Fig. 10's series: throughput vs strike frequency per architecture.

    Every sweep point carries its own derived seed, so results are
    identical whether the points run inline or (``workers > 1``) fan out
    over a process pool.
    """
    out: dict[str, list[float]] = {"mbbe_free": [], "baseline": [], "q3de": []}
    tasks = [(freq, num_instructions, duration_slots, seed + idx)
             for idx, freq in enumerate(frequencies)]
    if workers > 1:
        import multiprocessing
        with multiprocessing.Pool(workers) as pool:
            out["q3de"] = pool.starmap(_q3de_sweep_point, tasks)
    else:
        out["q3de"] = [_q3de_sweep_point(*task) for task in tasks]
    rng = np.random.default_rng(seed)
    free = simulate_throughput(
        "mbbe_free", num_instructions, rng=rng).throughput
    rng = np.random.default_rng(seed)
    base = simulate_throughput(
        "baseline", num_instructions, rng=rng).throughput
    out["mbbe_free"] = [free] * len(frequencies)
    out["baseline"] = [base] * len(frequencies)
    return out
