"""Tests for code deformation: op_expand geometry and state preservation."""

import numpy as np
import pytest

from repro.stab.tableau import StabilizerSimulator
from repro.surface_code import PlanarSurfaceCode
from repro.surface_code.deformation import (
    embedded_patch_map,
    encode_logical_zero,
    execute_plan,
    patch_data_sites,
    plan_expansion,
    plan_shrink,
    stabilizer_pauli,
)


@pytest.fixture
def host():
    """A distance-4 host code with a distance-2 NW sub-patch."""
    return PlanarSurfaceCode(4)


class TestEmbeddedPatch:
    def test_patch_map_counts(self, host):
        smap = embedded_patch_map(host, 2)
        small = PlanarSurfaceCode(2)
        assert len(smap) == (small.num_z_stabilizers
                             + small.num_x_stabilizers)

    def test_patch_data_sites_counts(self, host):
        sites = patch_data_sites(host, 2)
        assert len(sites) == PlanarSurfaceCode(2).num_data_qubits

    def test_patch_stabilizers_commute(self, host):
        smap = embedded_patch_map(host, 3)
        paulis = [stabilizer_pauli(host, s) for s in smap.stabilizers.values()]
        for i in range(len(paulis)):
            for j in range(i + 1, len(paulis)):
                assert paulis[i].commutes_with(paulis[j])

    def test_full_patch_is_whole_code(self, host):
        smap = embedded_patch_map(host, 4)
        assert len(smap) == host.num_z_stabilizers + host.num_x_stabilizers

    def test_invalid_patch_sizes_rejected(self, host):
        with pytest.raises(ValueError):
            embedded_patch_map(host, 1)
        with pytest.raises(ValueError):
            embedded_patch_map(host, 5)


class TestPlans:
    def test_expansion_noop_when_already_full(self, host):
        plan = plan_expansion(host, 4)
        assert plan.steps == ()

    def test_expansion_initializes_every_new_qubit_once(self, host):
        plan = plan_expansion(host, 2)
        initialized = []
        for step in plan.steps:
            initialized.extend(step.init_zero)
            initialized.extend(step.init_plus)
        patch = set(patch_data_sites(host, 2))
        expected = [s for s in host.data_sites if s not in patch]
        assert sorted(initialized) == sorted(expected)
        assert len(initialized) == len(set(initialized))

    def test_expansion_south_uses_plus_east_uses_zero(self, host):
        plan = plan_expansion(host, 2)
        limit = 3  # 2*2 - 1
        south, east = plan.steps
        assert all(s.row >= limit and s.col < limit for s in south.init_plus)
        assert not south.init_zero
        assert all(s.col >= limit for s in east.init_zero)
        assert not east.init_plus

    def test_expansion_latency_scales_with_target(self, host):
        plan = plan_expansion(host, 2)
        assert plan.latency_cycles == len(plan.steps) + 4

    def test_shrink_measures_out_every_extension_qubit(self, host):
        plan = plan_shrink(host, 2)
        measured = []
        for step in plan.steps:
            measured.extend(step.measure_x)
            measured.extend(step.measure_z)
        patch = set(patch_data_sites(host, 2))
        expected = [s for s in host.data_sites if s not in patch]
        assert sorted(measured) == sorted(expected)

    def test_shrink_noop_at_same_distance(self, host):
        assert plan_shrink(host, 4).steps == ()

    def test_final_map_of_expansion_is_full_code(self, host):
        plan = plan_expansion(host, 2)
        final = plan.steps[-1].new_map
        assert len(final) == host.num_z_stabilizers + host.num_x_stabilizers


class TestStatePreservation:
    """op_expand / shrink must preserve the encoded logical state."""

    def _encode_patch_zero(self, host, d_patch, seed):
        sim = StabilizerSimulator(host.num_data_qubits,
                                  rng=np.random.default_rng(seed))
        smap = embedded_patch_map(host, d_patch)
        encode_logical_zero(sim, host, smap)
        return sim

    def _patch_logical_z(self, host, d_patch):
        """Logical Z of the sub-patch: Z along its north row."""
        from repro.stab.pauli import Pauli
        from repro.surface_code.lattice import Site
        pauli = Pauli.identity(host.num_data_qubits)
        for k in range(d_patch):
            pauli.z[host.data_index(Site(0, 2 * k))] = 1
        return pauli

    def test_expansion_preserves_logical_zero(self, host):
        for seed in range(4):
            sim = self._encode_patch_zero(host, 2, seed)
            plan = plan_expansion(host, 2)
            execute_plan(sim, host, plan)
            # After expansion the state is a full-code logical Z
            # eigenstate: the host's logical Z is deterministic +1.
            assert sim.expectation(host.logical_z()) == 1

    def test_expansion_preserves_logical_one(self, host):
        from repro.surface_code.lattice import Site
        from repro.stab.pauli import Pauli
        for seed in range(4):
            sim = self._encode_patch_zero(host, 2, seed)
            # Patch logical X: X down column 0 of the sub-patch.
            lx = Pauli.identity(host.num_data_qubits)
            for k in range(2):
                lx.x[host.data_index(Site(2 * k, 0))] = 1
            sim.apply_pauli(lx)
            plan = plan_expansion(host, 2)
            execute_plan(sim, host, plan)
            assert sim.expectation(host.logical_z()) == -1

    def test_expansion_makes_all_full_code_stabilizers_deterministic(
            self, host):
        sim = self._encode_patch_zero(host, 2, seed=9)
        execute_plan(sim, host, plan_expansion(host, 2))
        for stab in host.z_stabilizer_paulis() + host.x_stabilizer_paulis():
            assert sim.expectation_is_deterministic(stab)

    @staticmethod
    def _shrink_z_correction(host, records):
        """Pauli-frame sign for the patch logical Z after a shrink.

        The patch logical Z equals the pre-shrink logical Z times the
        removed row-0 Z outcomes (east step removes cols >= limit).
        """
        from repro.surface_code.lattice import Site
        east_record = records[0]
        row0_sites = [s for s in east_record.data_outcomes if s.row == 0]
        assert row0_sites, "east shrink must remove row-0 qubits"
        return -1 if east_record.data_parity(row0_sites) else 1

    def test_expand_then_shrink_round_trip_zero(self, host):
        for seed in range(6):
            sim = self._encode_patch_zero(host, 2, seed)
            execute_plan(sim, host, plan_expansion(host, 2))
            records = execute_plan(sim, host, plan_shrink(host, 2))
            patch_z = self._patch_logical_z(host, 2)
            sign = self._shrink_z_correction(host, records)
            assert sim.expectation(patch_z) * sign == 1

    def test_expand_then_shrink_round_trip_one(self, host):
        from repro.surface_code.lattice import Site
        from repro.stab.pauli import Pauli
        for seed in range(6):
            sim = self._encode_patch_zero(host, 2, seed)
            lx = Pauli.identity(host.num_data_qubits)
            for k in range(2):
                lx.x[host.data_index(Site(2 * k, 0))] = 1
            sim.apply_pauli(lx)
            execute_plan(sim, host, plan_expansion(host, 2))
            records = execute_plan(sim, host, plan_shrink(host, 2))
            sign = self._shrink_z_correction(host, records)
            assert sim.expectation(self._patch_logical_z(host, 2)) * sign == -1

    def test_expansion_preserves_plus_state(self, host):
        """|+_L> of the patch survives expansion: X_L' is deterministic."""
        from repro.surface_code.lattice import Site
        from repro.stab.pauli import Pauli
        for seed in range(4):
            sim = StabilizerSimulator(host.num_data_qubits,
                                      rng=np.random.default_rng(seed))
            # Prepare patch |+_L>: init all patch qubits |+>, measure
            # patch Z-stabilizers (X-stabs already satisfied).
            for site in patch_data_sites(host, 2):
                sim.h(host.data_index(site))
            smap = embedded_patch_map(host, 2)
            for stab in smap.stabilizers.values():
                sim.measure_pauli(stabilizer_pauli(host, stab))
            execute_plan(sim, host, plan_expansion(host, 2))
            # The host's logical X (full column) must now be deterministic
            # (its sign may depend on recorded measurement outcomes).
            assert sim.expectation(host.logical_x()) != 0

    def test_simulator_size_mismatch_rejected(self, host):
        sim = StabilizerSimulator(3)
        with pytest.raises(ValueError):
            execute_plan(sim, host, plan_expansion(host, 2))
