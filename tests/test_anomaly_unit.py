"""Tests for the anomaly detection unit (Sec. IV-B)."""

import numpy as np
import pytest

from repro.core.anomaly import AnomalyDetectionUnit
from repro.core.statistics import SyndromeStatistics


def unit(shape=(8, 9), mu=0.01, c_win=100, n_th=5, alpha=0.01,
         mask_cycles=1000):
    stats = SyndromeStatistics.from_activity_rate(mu)
    return AnomalyDetectionUnit(shape, stats, c_win, n_th, alpha,
                                mask_cycles)


def stream(u, layers):
    events = []
    for layer in layers:
        evt = u.observe(layer)
        if evt is not None:
            events.append(evt)
    return events


class TestCounters:
    def test_counts_track_sliding_window(self):
        u = unit(c_win=3)
        layer = np.ones((8, 9), dtype=int)
        zero = np.zeros((8, 9), dtype=int)
        u.observe(layer)
        u.observe(layer)
        u.observe(zero)
        assert u.counts[0, 0] == 2
        u.observe(zero)
        assert u.counts[0, 0] == 1  # first ones layer slid out
        u.observe(zero)
        assert u.counts[0, 0] == 0

    def test_no_detection_before_window_fills(self):
        u = unit(c_win=50, n_th=1)
        hot = np.ones((8, 9), dtype=int)
        for _ in range(49):
            assert u.observe(hot) is None

    def test_shape_mismatch_rejected(self):
        u = unit()
        with pytest.raises(ValueError):
            u.observe(np.zeros((3, 3)))

    def test_invalid_nth_rejected(self):
        with pytest.raises(ValueError):
            unit(n_th=0)

    def test_reset_clears_state(self):
        u = unit(c_win=5)
        for _ in range(5):
            u.observe(np.ones((8, 9), dtype=int))
        u.reset()
        assert u.cycle == -1
        assert not u.window_filled
        assert u.counts.sum() == 0


class TestDetection:
    def _noisy_layers(self, rng, cycles, hot_box=None, mu=0.01,
                      hot_rate=0.4):
        layers = rng.random((cycles, 8, 9)) < mu
        layers = layers.astype(int)
        if hot_box is not None:
            r0, c0, size = hot_box
            hot = rng.random((cycles, size, size)) < hot_rate
            layers[:, r0:r0 + size, c0:c0 + size] = hot.astype(int)
        return layers

    def test_detects_hot_region(self):
        rng = np.random.default_rng(0)
        u = unit(c_win=100, n_th=5)
        quiet = self._noisy_layers(rng, 100)
        hot = self._noisy_layers(rng, 200, hot_box=(2, 3, 3))
        events = stream(u, np.concatenate([quiet, hot]))
        assert events
        evt = events[0]
        assert 2 <= evt.row <= 4
        assert 3 <= evt.col <= 5

    def test_detection_latency_reasonable(self):
        rng = np.random.default_rng(1)
        u = unit(c_win=100, n_th=5)
        quiet = self._noisy_layers(rng, 100)
        hot = self._noisy_layers(rng, 300, hot_box=(2, 3, 3))
        events = stream(u, np.concatenate([quiet, hot]))
        assert events[0].cycle - 100 < 150

    def test_no_false_positives_on_quiet_stream(self):
        rng = np.random.default_rng(2)
        u = unit(c_win=100, n_th=5, alpha=0.001)
        layers = self._noisy_layers(rng, 2000)
        assert stream(u, layers) == []

    def test_onset_estimate_one_window_back(self):
        rng = np.random.default_rng(3)
        u = unit(c_win=100, n_th=5)
        quiet = self._noisy_layers(rng, 150)
        hot = self._noisy_layers(rng, 200, hot_box=(2, 3, 3))
        evt = stream(u, np.concatenate([quiet, hot]))[0]
        assert evt.onset_estimate == evt.cycle - 100

    def test_masking_suppresses_repeat_detections(self):
        rng = np.random.default_rng(4)
        u = unit(c_win=100, n_th=5, mask_cycles=10_000)
        quiet = self._noisy_layers(rng, 100)
        hot = self._noisy_layers(rng, 600, hot_box=(2, 3, 3))
        events = stream(u, np.concatenate([quiet, hot]))
        assert len(events) == 1

    def test_second_anomaly_detected_elsewhere_while_masked(self):
        rng = np.random.default_rng(5)
        u = unit(c_win=100, n_th=5, mask_cycles=100_000)
        quiet = self._noisy_layers(rng, 100)
        first = self._noisy_layers(rng, 300, hot_box=(0, 0, 3))
        both = self._noisy_layers(rng, 300, hot_box=(0, 0, 3))
        both[:, 5:8, 5:8] = (rng.random((300, 3, 3)) < 0.4).astype(int)
        events = stream(u, np.concatenate([quiet, first, both]))
        assert len(events) >= 2
        second = events[1]
        assert second.row >= 4 and second.col >= 4

    def test_num_flagged_reported(self):
        rng = np.random.default_rng(6)
        u = unit(c_win=100, n_th=5)
        quiet = self._noisy_layers(rng, 100)
        hot = self._noisy_layers(rng, 300, hot_box=(2, 3, 3))
        evt = stream(u, np.concatenate([quiet, hot]))[0]
        assert evt.num_flagged > 5


class TestMemory:
    def test_counter_memory_formula(self):
        u = unit(shape=(30, 31), c_win=300)
        bits = u.memory_bits()
        # 2 * 930 counters * ceil(log2(301)) = 2 * 930 * 9
        assert bits == 2 * 930 * 9
