"""Qubit-count scalability model (paper Sec. VIII-A, Fig. 9).

For a target logical error rate (10^-10), what chip area and qubit
density must each logical qubit be given?  Following the paper:

* logical error rate model: ``p_L(d_eff) = 0.1 * (p/p_th)^floor((d_eff+1)/2)``
  with ``p/p_th = 0.1``;
* code distance grows with the physical qubit budget:
  ``d = d_ref * sqrt(area_ratio * density_ratio)`` (2 d^2 qubits per patch);
* MBBE frequency scales linearly with chip area, anomaly size (in qubits)
  with ``sqrt(density)`` (a fixed physical diffusion radius covers more
  qubits when they are packed tighter; the paper states the anomalous
  region grows linearly with density, i.e. in qubit *count*);
* an active anomaly of size ``c`` behaves as a code-distance reduction of
  ``2c`` for the baseline and ``c`` with Q3DE's informed decoding
  (Sec. VI-A); Q3DE additionally expands the code after the detection
  latency ``c_lat``, so only ``c_lat`` cycles are exposed per event.

The evaluation is event-driven over a 10^8-cycle horizon: strikes arrive
by a Poisson process, each contributing its exposure window at the
reduced effective distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.noise.cosmic_ray import CosmicRayModel


@dataclass(frozen=True)
class ScalingParameters:
    """Inputs of the Fig. 9 evaluation (paper baseline defaults)."""

    p_over_pth: float = 0.1
    cycle_s: float = 1e-6
    anomaly_size: int = 4          # d_ano at reference density
    frequency_hz: float = 0.1      # f_ano at reference area
    lifetime_s: float = 25e-3      # tau_ano
    c_lat: int = 30                # Q3DE exposure per event (cycles)
    d_ref: int = 11                # code distance at area=density=1
    target_logical_rate: float = 1e-10
    horizon_cycles: int = 100_000_000

    def logical_rate(self, d_eff: float) -> float:
        """The paper's p_L(d) = 0.1 (p/p_th)^floor((d_eff+1)/2)."""
        if d_eff < 1:
            return 1.0
        return min(1.0, 0.1 * self.p_over_pth ** math.floor((d_eff + 1) / 2))

    def code_distance(self, area_ratio: float, density_ratio: float) -> int:
        """d from the physical-qubit budget (2 d^2 qubits per patch)."""
        d = int(self.d_ref * math.sqrt(area_ratio * density_ratio))
        return max(3, d)

    def anomaly_qubits(self, density_ratio: float) -> int:
        """Anomaly size in qubit units at the given density."""
        return max(1, round(self.anomaly_size * math.sqrt(density_ratio)))

    def event_rate_hz(self, area_ratio: float) -> float:
        return self.frequency_hz * area_ratio


def average_logical_error_rate(
    params: ScalingParameters,
    area_ratio: float,
    density_ratio: float,
    use_q3de: bool,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Time-averaged p_L over the event-driven horizon.

    Strikes land at positions uniform over the patch; the effective
    code-distance reduction ``c`` equals the anomaly's qubit extent
    (clipped by the patch size).  Baseline: exposed for the full anomaly
    lifetime at ``d - 2c``.  Q3DE: exposed ``c_lat`` cycles at ``d - c``,
    protected (expanded) for the remainder.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    d = params.code_distance(area_ratio, density_ratio)
    base_rate = params.logical_rate(d)
    c = min(params.anomaly_qubits(density_ratio), d - 1)

    horizon = params.horizon_cycles
    model = CosmicRayModel(
        frequency_hz=params.event_rate_hz(area_ratio),
        lifetime_s=params.lifetime_s,
        anomaly_size=c,
        cycle_s=params.cycle_s,
        rows=max(1, d - 1),
        cols=max(1, d),
        rng=rng,
    )
    total = 0.0
    for start, end, strike in model.iter_event_windows(horizon):
        span = end - start
        if strike is None:
            total += span * base_rate
            continue
        if use_q3de:
            exposed = min(span, params.c_lat)
            total += exposed * params.logical_rate(d - c)
            total += (span - exposed) * base_rate
        else:
            total += span * params.logical_rate(d - 2 * c)
    return total / horizon


def required_density(
    params: ScalingParameters,
    area_ratio: float,
    use_q3de: bool,
    max_density: float = 4000.0,
    seed: int = 0,
) -> Optional[float]:
    """Smallest density ratio achieving the target logical rate.

    Scans a geometric grid of density ratios (the paper raises density
    until the rate crosses 10^-10); returns ``None`` when even
    ``max_density`` is insufficient.
    """
    density = max(1.0 / area_ratio, 0.01)
    step = 1.2
    while density <= max_density:
        rate = average_logical_error_rate(
            params, area_ratio, density, use_q3de,
            rng=np.random.default_rng(seed))
        if rate < params.target_logical_rate:
            return density
        density *= step
    return None


def density_curve(
    params: ScalingParameters,
    area_ratios: list[float],
    use_q3de: bool,
    seed: int = 0,
) -> list[Optional[float]]:
    """Required density across chip areas: one Fig. 9 series."""
    return [required_density(params, area, use_q3de, seed=seed)
            for area in area_ratios]


def sweep_anomaly_size(params: ScalingParameters, sizes: list[int],
                       area_ratios: list[float], use_q3de: bool,
                       seed: int = 0) -> dict[int, list[Optional[float]]]:
    """Fig. 9 left panel: one curve per anomaly size."""
    return {
        size: density_curve(replace(params, anomaly_size=size),
                            area_ratios, use_q3de, seed)
        for size in sizes
    }


def sweep_duration(params: ScalingParameters, factors: list[float],
                   area_ratios: list[float], use_q3de: bool,
                   seed: int = 0) -> dict[float, list[Optional[float]]]:
    """Fig. 9 middle panel: one baseline curve per error-duration factor."""
    return {
        f: density_curve(replace(params, lifetime_s=params.lifetime_s * f),
                         area_ratios, use_q3de, seed)
        for f in factors
    }


def sweep_frequency(params: ScalingParameters, factors: list[float],
                    area_ratios: list[float], use_q3de: bool,
                    seed: int = 0) -> dict[float, list[Optional[float]]]:
    """Fig. 9 right panel: one curve per anomaly-frequency factor."""
    return {
        f: density_curve(replace(params, frequency_hz=params.frequency_hz * f),
                         area_ratios, use_q3de, seed)
        for f in factors
    }
