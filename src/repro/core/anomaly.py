"""The anomaly detection unit (paper Sec. IV-B).

Keeps, for every syndrome node, the number of active observations within
the latest ``c_win`` cycles (the ``active node counter``); flags an MBBE
when more than ``n_th`` counters exceed the confidence threshold ``V_th``.
The anomaly position is estimated as the median of the above-threshold
node coordinates.  After a detection, the implicated counters are masked
for the expected anomaly lifetime so a second, concurrent MBBE elsewhere
remains detectable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.statistics import SyndromeStatistics, detection_threshold


@dataclass(frozen=True)
class DetectionEvent:
    """A detected MBBE: when it was flagged and where it is centred.

    ``onset_estimate`` is the control unit's estimate of when the anomaly
    began: counts build over the detection window, so the onset is taken
    one window before the flag.
    """

    cycle: int
    row: int
    col: int
    num_flagged: int
    onset_estimate: int


class AnomalyDetectionUnit:
    """Sliding-window active-node counting with CLT thresholds.

    Args:
        shape: node-grid shape ``(rows, cols)``.
        stats: calibrated normal-qubit activity statistics.  Must have
            ``sigma > 0`` (an all-equal calibration stream would set
            ``V_th`` to the mean and flag on the first active
            observation); :func:`detection_threshold` rejects degenerate
            statistics at construction time.
        c_win: window length in cycles.
        n_th: number of above-threshold counters that signals an MBBE.
        alpha: per-counter false-positive rate (confidence ``1 - alpha``).
        mask_cycles: how long to mask counters around a detection (the
            expected anomaly lifetime, in cycles).
    """

    def __init__(
        self,
        shape: tuple[int, int],
        stats: SyndromeStatistics,
        c_win: int,
        n_th: int = 20,
        alpha: float = 0.01,
        mask_cycles: int = 25_000,
    ):
        if n_th < 1:
            raise ValueError("n_th must be >= 1")
        self.shape = shape
        self.stats = stats
        self.c_win = c_win
        self.n_th = n_th
        self.alpha = alpha
        self.mask_cycles = mask_cycles
        self.v_th = detection_threshold(stats, c_win, alpha)
        self.counts = np.zeros(shape, dtype=np.int32)
        self._window: deque[np.ndarray] = deque()
        self._mask_until = np.full(shape, -1, dtype=np.int64)
        self.cycle = -1

    # ------------------------------------------------------------------
    def observe(self, activity: np.ndarray) -> Optional[DetectionEvent]:
        """Feed one cycle of node activity; returns a detection if flagged.

        ``activity`` is a 0/1 array of node-grid shape.  Implements the
        counter update V <- V + v_new - v_oldest of Sec. IV-B.
        """
        activity = np.asarray(activity, dtype=np.int32)
        if activity.shape != self.shape:
            raise ValueError("activity shape mismatch")
        self.cycle += 1
        self._window.append(activity)
        self.counts += activity
        if len(self._window) > self.c_win:
            self.counts -= self._window.popleft()
        if len(self._window) < self.c_win:
            return None  # Window not yet full; thresholds not meaningful.
        over = (self.counts > self.v_th) & (self._mask_until < self.cycle)
        n_ano = int(over.sum())
        if n_ano <= self.n_th:
            return None
        rows, cols = np.nonzero(over)
        row = int(np.median(rows))
        col = int(np.median(cols))
        self._mask_detected(rows, cols)
        return DetectionEvent(
            cycle=self.cycle,
            row=row,
            col=col,
            num_flagged=n_ano,
            onset_estimate=max(0, self.cycle - self.c_win),
        )

    def _mask_detected(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Mask counters around the detected region (Sec. IV-B).

        The paper removes "the detected positions around the median" from
        the n_ano count for the anomaly lifetime, so a second concurrent
        MBBE elsewhere stays detectable while this one does not re-fire.
        We mask the bounding box of the flagged nodes plus a one-node
        margin (nodes at the region edge cross the threshold later than
        the core, so masking only the flagged set would re-trigger).
        """
        margin = 1
        r_lo = max(0, int(rows.min()) - margin)
        r_hi = min(self.shape[0], int(rows.max()) + margin + 1)
        c_lo = max(0, int(cols.min()) - margin)
        c_hi = min(self.shape[1], int(cols.max()) + margin + 1)
        until = self.cycle + self.mask_cycles
        self._mask_until[r_lo:r_hi, c_lo:c_hi] = np.maximum(
            self._mask_until[r_lo:r_hi, c_lo:c_hi], until)

    # ------------------------------------------------------------------
    @property
    def window_filled(self) -> bool:
        return len(self._window) >= self.c_win

    def reset(self) -> None:
        """Clear window, counters and masks (e.g. after recalibration)."""
        self.counts[:] = 0
        self._window.clear()
        self._mask_until[:] = -1
        self.cycle = -1

    def clear_masks(self) -> None:
        """Drop all detection masks, keeping window and counters.

        Used when the consumer rejects a detection as spurious: the mask
        laid down by :meth:`observe` would otherwise blind the unit to a
        real MBBE at the same position for ``mask_cycles``.
        """
        self._mask_until[:] = -1

    def memory_bits(self) -> int:
        """Storage footprint of the active node counter (Table III row 2).

        One ``log2(c_win)``-bit counter per node, for both syndrome
        lattices (the paper's ``2 d^2 log2 c_win``).
        """
        bits_per_counter = int(np.ceil(np.log2(self.c_win + 1)))
        return 2 * int(np.prod(self.shape)) * bits_per_counter
