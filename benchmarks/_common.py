"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports.  Monte-Carlo depth is controlled
by environment variables so CI stays fast while full-fidelity runs remain
one command away:

* ``REPRO_SAMPLES``  -- samples per Monte-Carlo data point (default 200;
  the paper used >= 1e5 over ~6 days of CPU time).
* ``REPRO_SCALE``    -- multiplier on all workload sizes (default 1.0).
* ``REPRO_WORKERS``  -- shot-engine parallelism (default 1: batched
  in-process vectorized path; ``0`` forces the sequential per-shot
  loops; ``> 1`` fans batches over a process pool of that size).
"""

from __future__ import annotations

import os
from typing import Iterable


def mc_samples(default: int = 200) -> int:
    """Samples per Monte-Carlo point, from the environment."""
    return max(1, int(float(os.environ.get("REPRO_SAMPLES", default))
                      * scale()))


def mc_workers(default: int = 1) -> int:
    """Shot-engine worker count, from the environment."""
    return max(0, int(os.environ.get("REPRO_WORKERS", default)))


def scale() -> float:
    """Global workload multiplier, from the environment."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def print_table(title: str, header: Iterable[str],
                rows: Iterable[Iterable]) -> None:
    """Render an aligned ASCII table (bench output, mirrors the paper)."""
    header = [str(h) for h in header]
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 1e-3 or abs(cell) >= 1e5:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
