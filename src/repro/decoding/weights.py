"""Distance models for matching: uniform and anomaly-aware (Fig. 6c).

On the uniform lattice the matching distance between nodes equals the
Manhattan distance in ``(t, i, j)``, and a node's boundary distance is
``min(i + 1, d - 1 - i)`` (north vs south).  When an anomalous region is
known, edges inside it carry weight ``w_ano = log((1-p_ano)/p_ano) /
log((1-p)/p)`` instead of 1, and the shortest connection may detour
through the region.  As in the paper's greedy decoder, we evaluate a
small set of candidate paths -- direct, and via the anomalous box -- and
take the cheapest; for ``p_ano = 0.5`` (``w_ano = 0``) this is the exact
shortest path on the weighted grid.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.noise.models import AnomalousRegion

#: Boundary identifiers used in matches.
NORTH = -1
SOUTH = -2


def region_signature(region: Optional[AnomalousRegion]) -> tuple:
    """Hashable key of a region's decode-relevant geometry.

    Two shots whose regions share a signature (box origin/size and time
    window — plus the model-level ``w_ano``, which callers key
    separately) see identical matching distances for identical nodes,
    so the region-bucketed decode engine may group them into one
    bucket.  ``None`` (no region) maps to the empty tuple.
    """
    if region is None:
        return ()
    return (region.row_lo, region.col_lo, region.size, region.t_lo,
            -1 if region.t_hi is None else region.t_hi)


def llr_weight(p: float) -> float:
    """The log-likelihood edge weight ``-log(p / (1 - p))`` of a flip rate."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1) for a finite weight")
    return -math.log(p / (1.0 - p))


def relative_anomalous_weight(p: float, p_ano: float) -> float:
    """Weight of an anomalous edge relative to a normal edge (clipped >= 0).

    ``p_ano = 0.5`` gives exactly 0; ``p_ano > 0.5`` is clipped to 0 (a
    negative-weight edge would make matching ill-posed; hyper-depolarized
    qubits carry no information either way).
    """
    if p_ano >= 0.5:
        return 0.0
    return llr_weight(p_ano) / llr_weight(p)


class DistanceModel:
    """Node-to-node and node-to-boundary matching distances.

    Args:
        distance: code distance ``d`` (sets the boundary geometry).
        region: optional known anomalous region (time bounds in *difference
            lattice* layers).  ``None`` gives the uniform model.
        w_ano: weight of anomalous edges relative to normal edges.
    """

    def __init__(self, distance: int,
                 region: Optional[AnomalousRegion] = None,
                 w_ano: float = 0.0):
        self.distance = distance
        self.region = region
        self.w_ano = float(w_ano)

    # ------------------------------------------------------------------
    # Vectorized primitives (nodes as (n, 3) arrays of (t, i, j))
    # ------------------------------------------------------------------
    def _box_bounds(self, t_max: int):
        reg = self.region
        t_hi = reg.t_hi if reg.t_hi is not None else t_max + 1
        lo = np.array([reg.t_lo, reg.row_lo, reg.col_lo], dtype=float)
        hi = np.array([t_hi - 1, reg.row_hi - 1, reg.col_hi - 1], dtype=float)
        # Clip the box to the lattice interior.
        hi[1] = min(hi[1], self.distance - 2)
        hi[2] = min(hi[2], self.distance - 1)
        return lo, hi

    def pairwise(self, nodes: np.ndarray) -> np.ndarray:
        """All-pairs matching distances for an ``(n, 3)`` node array."""
        nodes = np.asarray(nodes, dtype=float)
        direct = np.abs(nodes[:, None, :] - nodes[None, :, :]).sum(axis=2)
        if self.region is None:
            return direct
        lo, hi = self._box_bounds(int(nodes[:, 0].max(initial=0)))
        clamped = np.clip(nodes, lo, hi)
        to_box = np.abs(nodes - clamped).sum(axis=1)
        inside = np.abs(clamped[:, None, :] - clamped[None, :, :]).sum(axis=2)
        via = to_box[:, None] + to_box[None, :] + self.w_ano * inside
        return np.minimum(direct, via)

    def pairwise_int(self, nodes: np.ndarray) -> Optional[np.ndarray]:
        """All-pairs distances as an ``int16`` matrix, when exact.

        Matching distances are integer-valued whenever the nodes have
        integer coordinates and the model is uniform or has a zero-weight
        region (``p_ano = 0.5``, the paper's MBBE model).  In that regime
        this returns the same values as :meth:`pairwise` using ``int16``
        component outers — a fraction of the memory traffic of the float
        broadcast, which is what the batched shot engine's decode loop
        lives on.  Returns ``None`` when the integer path would not be
        exact (non-integer nodes, or a region with ``w_ano != 0``).
        """
        nodes = np.asarray(nodes)
        if not np.issubdtype(nodes.dtype, np.integer):
            return None
        if self.region is not None and self.w_ano != 0.0:
            return None
        # Worst-case int16 magnitude is 12x the largest coordinate (a
        # via distance sums two 3-component box approaches), so cap all
        # participating values — node coordinates AND box bounds, which
        # can be huge for an explicit far-future t_hi — at 2000.
        limit = 2000
        if nodes.size and int(np.abs(nodes).max()) > limit:
            return None
        if self.region is not None:
            lo, hi = self._box_bounds(int(nodes[:, 0].max(initial=0)))
            if max(float(np.abs(lo).max()), float(np.abs(hi).max())) > limit:
                return None
        pts = nodes.astype(np.int16)
        t, i, j = pts[:, 0], pts[:, 1], pts[:, 2]
        direct = (np.abs(t[:, None] - t[None, :])
                  + np.abs(i[:, None] - i[None, :])
                  + np.abs(j[:, None] - j[None, :]))
        if self.region is None:
            return direct
        clamped = np.clip(pts, lo.astype(np.int16), hi.astype(np.int16))
        to_box = np.abs(pts - clamped).sum(axis=1, dtype=np.int16)
        # Crossing a w_ano = 0 box is free: the via path is just the two
        # box approaches.
        via = to_box[:, None] + to_box[None, :]
        return np.minimum(direct, via)

    def pairwise_fast(self, nodes: np.ndarray) -> np.ndarray:
        """Float-exact fast path for :meth:`pairwise`.

        Uses :meth:`pairwise_int` when the integer path is exact (the
        distances are identical small integers, so converting back to
        float64 preserves every distance-ordered tie-break), otherwise
        falls back to the float broadcast of :meth:`pairwise`.
        """
        dist = self.pairwise_int(nodes)
        if dist is None:
            return self.pairwise(nodes)
        return dist.astype(np.float64)

    # ------------------------------------------------------------------
    # Batched primitives (stacked shots as (S, n, 3) tensors)
    # ------------------------------------------------------------------
    def _box_bounds_batch(self, t_max: np.ndarray):
        """Per-shot box bounds for an ``(S,)`` vector of shot t-maxima.

        Matches :meth:`_box_bounds` shot for shot: with an open time
        window the box top is each shot's own ``t_max``.
        Returns ``(lo, hi)`` with ``lo`` shape ``(3,)`` and ``hi``
        shape ``(S, 1, 3)`` (broadcastable over an ``(S, n, 3)`` stack).
        """
        reg = self.region
        lo = np.array([reg.t_lo, reg.row_lo, reg.col_lo], dtype=float)
        hi = np.empty((len(t_max), 1, 3), dtype=float)
        hi[:, 0, 0] = (reg.t_hi - 1 if reg.t_hi is not None
                       else t_max.astype(float))
        hi[:, 0, 1] = min(reg.row_hi - 1, self.distance - 2)
        hi[:, 0, 2] = min(reg.col_hi - 1, self.distance - 1)
        return lo, hi

    def pairwise_batch(self, nodes: np.ndarray) -> np.ndarray:
        """:meth:`pairwise` over a stacked ``(S, n, 3)`` batch of shots.

        Returns the ``(S, n, n)`` distance tensor; row ``s`` equals
        ``pairwise(nodes[s])`` exactly (the per-shot open-window box top
        is each shot's own ``t_max``, reproduced here with a
        per-shot clip bound).  This is the general float batch
        primitive (any ``w_ano``); the decode engine's hot path is the
        arena-fused integer specialization of the same math in
        :mod:`repro.decoding.batched`, and both are certified against
        the per-shot methods by the equivalence suite.
        """
        nodes = np.asarray(nodes, dtype=float)
        direct = np.abs(nodes[:, :, None, :]
                        - nodes[:, None, :, :]).sum(axis=3)
        if self.region is None:
            return direct
        lo, hi = self._box_bounds_batch(
            nodes[:, :, 0].max(axis=1, initial=0))
        clamped = np.clip(nodes, lo, hi)
        to_box = np.abs(nodes - clamped).sum(axis=2)
        inside = np.abs(clamped[:, :, None, :]
                        - clamped[:, None, :, :]).sum(axis=3)
        via = (to_box[:, :, None] + to_box[:, None, :]
               + self.w_ano * inside)
        return np.minimum(direct, via)

    def boundary_batch(self, nodes: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`boundary` over a stacked ``(S, n, 3)`` batch.

        Returns ``(dist, side)`` of shape ``(S, n)`` each, equal shot
        for shot to the per-shot method.
        """
        nodes = np.asarray(nodes, dtype=float)
        north = nodes[:, :, 1] + 1.0
        south = (self.distance - 1) - nodes[:, :, 1]
        if self.region is not None:
            lo, hi = self._box_bounds_batch(
                nodes[:, :, 0].max(axis=1, initial=0))
            clamped = np.clip(nodes, lo, hi)
            to_box = np.abs(nodes - clamped).sum(axis=2)
            north_via = (to_box + self.w_ano * (clamped[:, :, 1] - lo[1])
                         + (lo[1] + 1.0))
            south_via = (to_box
                         + self.w_ano * (hi[:, :, 1] - clamped[:, :, 1])
                         + (self.distance - 1 - hi[:, :, 1]))
            north = np.minimum(north, north_via)
            south = np.minimum(south, south_via)
        side = np.where(north <= south, NORTH, SOUTH)
        return np.minimum(north, south), side

    def boundary(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Distance to the nearest boundary and which one.

        Returns ``(dist, side)`` with ``side`` in ``{NORTH, SOUTH}``.
        """
        nodes = np.asarray(nodes, dtype=float)
        north = nodes[:, 1] + 1.0
        south = (self.distance - 1) - nodes[:, 1]
        if self.region is not None:
            lo, hi = self._box_bounds(int(nodes[:, 0].max(initial=0)))
            clamped = np.clip(nodes, lo, hi)
            to_box = np.abs(nodes - clamped).sum(axis=1)
            north_via = (to_box + self.w_ano * (clamped[:, 1] - lo[1])
                         + (lo[1] + 1.0))
            south_via = (to_box + self.w_ano * (hi[1] - clamped[:, 1])
                         + (self.distance - 1 - hi[1]))
            north = np.minimum(north, north_via)
            south = np.minimum(south, south_via)
        side = np.where(north <= south, NORTH, SOUTH)
        return np.minimum(north, south), side

    # ------------------------------------------------------------------
    # Scalar conveniences (used by tests and the hardware model)
    # ------------------------------------------------------------------
    def node_distance(self, a, b) -> float:
        """Matching distance between two (t, i, j) nodes."""
        arr = np.array([a, b], dtype=float)
        return float(self.pairwise(arr)[0, 1])

    def boundary_distance(self, a) -> tuple[float, int]:
        """Matching distance from a node to its cheaper boundary."""
        dist, side = self.boundary(np.array([a], dtype=float))
        return float(dist[0]), int(side[0])


class MultiRegionDistanceModel:
    """Matching distances with several (possibly overlapping) regions.

    The candidate-path family generalizes :class:`DistanceModel`:
    direct Manhattan, or a detour via any *single* anomalous box (each
    with its own weight) — the cheapest wins.  Chained multi-box
    detours are not enumerated, matching the paper's candidate-path
    greedy construction; for disjoint strike windows (the catalog's
    back-to-back case) the single-box set is exhaustive.

    Composes with both decoder families as-is: greedy
    (:func:`repro.decoding.greedy.greedy_cut_parity`) and
    :class:`repro.decoding.mwpm.MWPMDecoder` consume only
    ``pairwise`` / ``boundary``.  ``region`` is ``None`` and
    ``pairwise_int`` declines on purpose: the single-box zero-clique
    prematch is invalid under overlapping boxes (zero distance is not
    transitive across disjoint boxes), so the generic float acceptance
    path — which is exact — must be taken.  The batched engine's
    eligibility guards key on the ``regions`` attribute
    (:mod:`repro.decoding.batched`).

    Args:
        distance: code distance ``d``.
        regions: the anomalous boxes, one per strike event.
        w_ano: one weight for all boxes, or one weight per box.
    """

    def __init__(self, distance: int, regions,
                 w_ano=0.0):
        self.distance = distance
        self.regions = tuple(regions)
        if not self.regions:
            raise ValueError("need at least one region (else use "
                             "DistanceModel)")
        if np.ndim(w_ano) == 0:
            w_anos = (float(w_ano),) * len(self.regions)
        else:
            w_anos = tuple(float(w) for w in w_ano)
        if len(w_anos) != len(self.regions):
            raise ValueError("need one w_ano per region (or a scalar)")
        self.w_anos = w_anos
        #: Single-box specializations (zero cliques, float bucket tier)
        #: must not engage — see the class docstring.
        self.region = None
        self.w_ano = max(w_anos)
        self._models = tuple(
            DistanceModel(distance, reg, w)
            for reg, w in zip(self.regions, w_anos, strict=True))

    def pairwise(self, nodes: np.ndarray) -> np.ndarray:
        """All-pairs matching distances for an ``(n, 3)`` node array."""
        nodes = np.asarray(nodes, dtype=float)
        out = np.abs(nodes[:, None, :] - nodes[None, :, :]).sum(axis=2)
        t_max = int(nodes[:, 0].max(initial=0))
        for sub in self._models:
            lo, hi = sub._box_bounds(t_max)
            clamped = np.clip(nodes, lo, hi)
            to_box = np.abs(nodes - clamped).sum(axis=1)
            inside = np.abs(clamped[:, None, :]
                            - clamped[None, :, :]).sum(axis=2)
            via = to_box[:, None] + to_box[None, :] + sub.w_ano * inside
            out = np.minimum(out, via)
        return out

    def pairwise_int(self, nodes: np.ndarray) -> Optional[np.ndarray]:
        """Always ``None``: the integer specialization's zero-clique
        prematch assumes one box, so multi-region decodes take the
        generic float path."""
        return None

    def pairwise_fast(self, nodes: np.ndarray) -> np.ndarray:
        return self.pairwise(nodes)

    def boundary(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Distance to the nearest boundary and which one.

        Per boundary, the minimum over the direct approach and the
        detour via each box (the same per-box via math as
        :meth:`DistanceModel.boundary`).
        """
        nodes = np.asarray(nodes, dtype=float)
        north = nodes[:, 1] + 1.0
        south = (self.distance - 1) - nodes[:, 1]
        t_max = int(nodes[:, 0].max(initial=0))
        for sub in self._models:
            lo, hi = sub._box_bounds(t_max)
            clamped = np.clip(nodes, lo, hi)
            to_box = np.abs(nodes - clamped).sum(axis=1)
            north_via = (to_box + sub.w_ano * (clamped[:, 1] - lo[1])
                         + (lo[1] + 1.0))
            south_via = (to_box + sub.w_ano * (hi[1] - clamped[:, 1])
                         + (self.distance - 1 - hi[1]))
            north = np.minimum(north, north_via)
            south = np.minimum(south, south_via)
        side = np.where(north <= south, NORTH, SOUTH)
        return np.minimum(north, south), side

    def node_distance(self, a, b) -> float:
        """Matching distance between two (t, i, j) nodes."""
        arr = np.array([a, b], dtype=float)
        return float(self.pairwise(arr)[0, 1])

    def boundary_distance(self, a) -> tuple[float, int]:
        """Matching distance from a node to its cheaper boundary."""
        dist, side = self.boundary(np.array([a], dtype=float))
        return float(dist[0]), int(side[0])
