"""RL002 corpus twin: the same kernels through the backend seam."""

import numpy as np

from repro.sim import backend


def xor_scan_packed(words):
    acc = backend.xor_accumulate(words, axis=0)
    xp = backend.get_array_module(acc)
    return xp.moveaxis(acc, 0, -1)


def pack_lanes(bits):
    xp = backend.get_array_module(bits)
    if xp is np:
        return np.packbits(bits, axis=-1)  # documented host fast path
    out = xp.zeros(bits.shape[:-1], dtype=xp.uint64)
    return out


def host_summary(words):
    # Not seam-scoped: plain host helper, free to use numpy.
    return np.count_nonzero(words)
