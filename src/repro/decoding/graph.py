"""Syndrome-difference lattice: from sampled errors to active nodes.

For a distance-``d`` planar code's Z-lattice, syndrome nodes live on a
``(d-1) x d`` grid.  ``T`` noisy measurement rounds plus one final perfect
round give ``T + 1`` difference layers; a node ``(t, i, j)`` is *active*
when consecutive syndrome values differ (paper Fig. 2).

All extraction methods operate on the trailing ``(T, rows, cols)`` axes,
so a whole batch of shots can be processed in one call by passing
``(shots, T, rows, cols)`` arrays (the batched shot engine's layout);
time is always axis ``-3``.
"""

from __future__ import annotations

import numpy as np


class SyndromeLattice:
    """Computes syndrome layers and active nodes from error arrays.

    Args:
        distance: the code distance ``d``; node grid is ``(d-1) x d``.
    """

    def __init__(self, distance: int):
        if distance < 2:
            raise ValueError("distance must be >= 2")
        self.distance = distance
        self.node_rows = distance - 1
        self.node_cols = distance

    # ------------------------------------------------------------------
    def true_syndromes(self, v: np.ndarray, h: np.ndarray) -> np.ndarray:
        """Noiseless cumulative syndromes, shape ``(..., T, d-1, d)``.

        ``v``/``h`` are per-cycle data-edge flip arrays as produced by
        :class:`repro.noise.PhenomenologicalNoise.sample` (optionally with
        leading batch axes).  Entry ``t`` is the syndrome after the errors
        of cycles ``0..t``.
        """
        cum_v = np.cumsum(v, axis=-3) & 1
        cum_h = np.cumsum(h, axis=-3) & 1
        synd = (cum_v[..., :-1, :] ^ cum_v[..., 1:, :]).astype(np.uint8)
        synd[..., :-1] ^= cum_h.astype(np.uint8)
        synd[..., 1:] ^= cum_h.astype(np.uint8)
        return synd

    def measured_layers(self, v: np.ndarray, h: np.ndarray,
                        m: np.ndarray) -> np.ndarray:
        """Measured syndrome layers: T noisy rounds + 1 final perfect round.

        Shape ``(..., T + 1, d-1, d)``.
        """
        true = self.true_syndromes(v, h)
        cycles = v.shape[-3]
        shape = v.shape[:-3] + (cycles + 1, self.node_rows, self.node_cols)
        layers = np.empty(shape, dtype=np.uint8)
        layers[..., :cycles, :, :] = true ^ m.astype(np.uint8)
        layers[..., cycles, :, :] = true[..., cycles - 1, :, :]
        return layers

    def difference_lattice(self, layers: np.ndarray) -> np.ndarray:
        """Element-wise XOR of consecutive layers (first layer vs zero)."""
        diff = layers.copy()
        diff[..., 1:, :, :] ^= layers[..., :-1, :, :]
        return diff

    def active_nodes(self, diff: np.ndarray) -> np.ndarray:
        """Coordinates ``(t, i, j)`` of active nodes, shape ``(n, 3)``."""
        return np.argwhere(diff.astype(bool))

    def detection_events(self, v: np.ndarray, h: np.ndarray,
                         m: np.ndarray) -> np.ndarray:
        """Convenience: error arrays straight to active-node coordinates."""
        layers = self.measured_layers(v, h, m)
        return self.active_nodes(self.difference_lattice(layers))

    def detection_events_batch(self, v: np.ndarray, h: np.ndarray,
                               m: np.ndarray) -> list[np.ndarray]:
        """Per-shot active-node arrays for a ``(shots, T, ...)`` batch.

        Returns a list of ``(n_s, 3)`` coordinate arrays, one per shot,
        extracted with a single pass over the whole batch.
        """
        layers = self.measured_layers(v, h, m)
        coords = np.argwhere(self.difference_lattice(layers).astype(bool))
        shots = v.shape[0]
        # ``argwhere`` output is sorted by the leading (shot) axis, so one
        # searchsorted recovers the per-shot slices without a Python scan.
        bounds = np.searchsorted(coords[:, 0], np.arange(shots + 1))
        return [coords[bounds[s]:bounds[s + 1], 1:] for s in range(shots)]

    # ------------------------------------------------------------------
    @staticmethod
    def error_cut_parity(v: np.ndarray):
        """Parity of error flips crossing the north-boundary cut.

        The residual operator is a logical X iff error XOR correction
        crosses the north cut an odd number of times; the error part of
        that parity is the total number of flips of the ``k = 0`` vertical
        edges over all cycles, mod 2.  For a single shot (3D input)
        returns an ``int``; for batched input returns an integer array
        over the leading axes.
        """
        parity = v[..., 0, :].sum(axis=(-2, -1)).astype(np.int64) & 1
        if v.ndim == 3:
            return int(parity)
        return parity

    def per_cycle_activity(self, v: np.ndarray, h: np.ndarray,
                           m: np.ndarray) -> np.ndarray:
        """Per-cycle node activity stream for the anomaly detection unit.

        Returns the difference lattice restricted to the noisy rounds
        (shape ``(..., T, d-1, d)``): what the `anomaly detection unit`
        sees as cycles stream in (the final perfect round is an analysis
        artifact, not part of the live stream).
        """
        true = self.true_syndromes(v, h)
        noisy = true ^ m.astype(np.uint8)
        diff = noisy.copy()
        diff[..., 1:, :, :] ^= noisy[..., :-1, :, :]
        return diff
