"""Code-deformation geometry for ``op_expand`` (paper Fig. 5).

Expanding a patch from distance ``d`` to ``d_exp`` takes three steps:

1. initialize the unused data qubits adjacent to the patch (``|0>`` when
   growing along the north-south axis, ``|+>`` when growing east-west);
2. switch the stabilizer map to the expanded pattern and keep measuring;
3. (to shrink) measure the extension qubits out in the matching basis and
   restore the original stabilizer map.

To avoid re-indexing qubits mid-computation we model the patch as embedded
in the *expanded* code's lattice: the distance-``d`` patch occupies the
north-west corner of the distance-``d_exp`` grid, and expansion merely
activates the remaining sites.  This mirrors real hardware, where the
physical qubits for the expansion are present but unused (white circles in
Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.stab.pauli import Pauli
from repro.stab.tableau import StabilizerSimulator
from repro.surface_code.lattice import PlanarSurfaceCode, Site
from repro.surface_code.stabilizers import Stabilizer, StabilizerMap


def embedded_patch_map(code: PlanarSurfaceCode, patch_distance: int) -> StabilizerMap:
    """Stabilizer map of a distance-``patch_distance`` sub-patch.

    The sub-patch occupies sites with row and col < ``2*patch_distance - 1``
    in the north-west corner of ``code``'s grid.
    """
    if not 2 <= patch_distance <= code.distance:
        raise ValueError("patch distance must be within the host code")
    limit = 2 * patch_distance - 1
    smap = StabilizerMap()
    for ancilla in code.z_ancilla_sites + code.x_ancilla_sites:
        if ancilla.row >= limit or ancilla.col >= limit:
            continue
        kind = "Z" if code.is_z_ancilla_site(ancilla) else "X"
        support = tuple(
            s for s in ancilla.neighbors()
            if code.contains(s) and code.is_data_site(s)
            and s.row < limit and s.col < limit
        )
        smap.add(Stabilizer(ancilla, kind, support))
    return smap


def patch_data_sites(code: PlanarSurfaceCode, patch_distance: int) -> list[Site]:
    """Data sites belonging to the embedded sub-patch."""
    limit = 2 * patch_distance - 1
    return [s for s in code.data_sites if s.row < limit and s.col < limit]


@dataclass(frozen=True)
class DeformationStep:
    """One geometric step of a deformation.

    Attributes:
        init_plus: data sites to initialize in ``|+>`` before the switch.
        init_zero: data sites to initialize in ``|0>`` before the switch.
        measure_x: data sites measured out in the X basis (shrink only).
        measure_z: data sites measured out in the Z basis (shrink only).
        new_map: the stabilizer map to measure after this step.
    """

    init_plus: tuple[Site, ...] = ()
    init_zero: tuple[Site, ...] = ()
    measure_x: tuple[Site, ...] = ()
    measure_z: tuple[Site, ...] = ()
    new_map: StabilizerMap = field(default_factory=StabilizerMap)


@dataclass(frozen=True)
class ExpansionPlan:
    """An ordered list of deformation steps, plus bookkeeping.

    ``latency_cycles`` is the architectural latency charged by the control
    unit: each step needs one round of stabilizer measurements, and the new
    code must be measured for ``d_exp`` rounds before its extra distance is
    fully effective.
    """

    steps: tuple[DeformationStep, ...]
    from_distance: int
    to_distance: int

    @property
    def latency_cycles(self) -> int:
        return len(self.steps) + self.to_distance


def plan_expansion(code: PlanarSurfaceCode, from_distance: int) -> ExpansionPlan:
    """Plan growing the NW sub-patch of ``from_distance`` to the full code.

    Southward growth extends the logical-X strings (which terminate on the
    north/south boundaries), so the new qubits are initialized in ``|+>``:
    the extended logical X then equals the old one times known +1 X's, and
    logical Z is untouched.  Eastward growth extends the logical-Z strings
    and initializes in ``|0>`` symmetrically.  Growth is done south-first,
    then east, each step ending on its intermediate stabilizer map.
    """
    d_exp = code.distance
    if not 2 <= from_distance <= d_exp:
        raise ValueError("from_distance must be within the host code")
    if from_distance == d_exp:
        return ExpansionPlan((), from_distance, d_exp)
    limit = 2 * from_distance - 1
    steps: list[DeformationStep] = []

    # Step A: grow south (rows >= limit), keeping cols < limit.
    south_sites = tuple(
        s for s in code.data_sites if s.row >= limit and s.col < limit
    )
    if south_sites:
        inter_map = _column_limited_map(code, col_limit=limit)
        steps.append(DeformationStep(init_plus=south_sites, new_map=inter_map))

    # Step B: grow east (cols >= limit), all rows.
    east_sites = tuple(s for s in code.data_sites if s.col >= limit)
    if east_sites:
        full_map = StabilizerMap.for_code(code)
        steps.append(DeformationStep(init_zero=east_sites, new_map=full_map))

    return ExpansionPlan(tuple(steps), from_distance, d_exp)


def plan_shrink(code: PlanarSurfaceCode, to_distance: int) -> ExpansionPlan:
    """Plan shrinking the full code back to its NW sub-patch.

    Extension qubits are measured out in the basis matching how they were
    introduced (Fig. 5 step 3): east extension in Z, south extension in X.
    """
    if not 2 <= to_distance <= code.distance:
        raise ValueError("to_distance must be within the host code")
    if to_distance == code.distance:
        return ExpansionPlan((), code.distance, to_distance)
    limit = 2 * to_distance - 1
    east_sites = tuple(s for s in code.data_sites if s.col >= limit)
    south_sites = tuple(
        s for s in code.data_sites if s.row >= limit and s.col < limit
    )
    steps: list[DeformationStep] = []
    if east_sites:
        steps.append(DeformationStep(
            measure_z=east_sites,
            new_map=_column_limited_map(code, col_limit=limit),
        ))
    if south_sites:
        steps.append(DeformationStep(
            measure_x=south_sites,
            new_map=embedded_patch_map(code, to_distance),
        ))
    return ExpansionPlan(tuple(steps), code.distance, to_distance)


def _column_limited_map(code: PlanarSurfaceCode, col_limit: int) -> StabilizerMap:
    """Stabilizer map of the tall patch spanning all rows, cols < limit."""
    smap = StabilizerMap()
    for ancilla in code.z_ancilla_sites + code.x_ancilla_sites:
        if ancilla.col >= col_limit:
            continue
        kind = "Z" if code.is_z_ancilla_site(ancilla) else "X"
        support = tuple(
            s for s in ancilla.neighbors()
            if code.contains(s) and code.is_data_site(s) and s.col < col_limit
        )
        smap.add(Stabilizer(ancilla, kind, support))
    return smap


# ----------------------------------------------------------------------
# Execution on the stabilizer simulator (verification substrate)
# ----------------------------------------------------------------------
def stabilizer_pauli(code: PlanarSurfaceCode, stab: Stabilizer) -> Pauli:
    """A StabilizerMap entry as a Pauli on the code's data qubits."""
    pauli = Pauli.identity(code.num_data_qubits)
    for site in stab.support:
        q = code.data_index(site)
        if stab.kind == "Z":
            pauli.z[q] = 1
        else:
            pauli.x[q] = 1
    return pauli


@dataclass(frozen=True)
class StepRecord:
    """Measurement record of one executed deformation step.

    ``stabilizer_outcomes`` seed the syndrome history of the new map;
    ``data_outcomes`` (shrink only) feed the Pauli-frame correction: e.g.
    after an east shrink, the patch logical Z equals the pre-shrink
    logical Z times the parity of the Z outcomes of the removed row-0
    data qubits.
    """

    stabilizer_outcomes: dict[Site, int]
    data_outcomes: dict[Site, int]

    def data_parity(self, sites: "tuple[Site, ...] | list[Site]") -> int:
        """Parity of the recorded outcomes over the given sites."""
        parity = 0
        for site in sites:
            parity ^= self.data_outcomes[site]
        return parity


def execute_plan(
    sim: StabilizerSimulator,
    code: PlanarSurfaceCode,
    plan: ExpansionPlan,
) -> list[StepRecord]:
    """Run a deformation plan on a tableau simulator.

    ``sim`` must act on exactly ``code.num_data_qubits`` qubits (ancillas
    are implicit: stabilizer measurements are executed as direct Pauli
    measurements).  Returns one :class:`StepRecord` per step -- the
    measurement record that the Pauli frame would consume.
    """
    if sim.num_qubits != code.num_data_qubits:
        raise ValueError("simulator size must match the code's data qubits")
    records: list[StepRecord] = []
    for step in plan.steps:
        data_outcomes: dict[Site, int] = {}
        for site in step.init_zero:
            # Reset to |0>: measure Z and flip if needed.
            q = code.data_index(site)
            if sim.measure_z(q) == 1:
                sim.x_gate(q)
        for site in step.init_plus:
            q = code.data_index(site)
            if sim.measure_z(q) == 1:
                sim.x_gate(q)
            sim.h(q)
        for site in step.measure_z:
            data_outcomes[site] = sim.measure_z(code.data_index(site))
        for site in step.measure_x:
            data_outcomes[site] = sim.measure_x(code.data_index(site))
        stab_outcomes: dict[Site, int] = {}
        for stab in step.new_map.stabilizers.values():
            stab_outcomes[stab.ancilla] = sim.measure_pauli(
                stabilizer_pauli(code, stab))
        records.append(StepRecord(stab_outcomes, data_outcomes))
    return records


def encode_logical_zero(
    sim: StabilizerSimulator,
    code: PlanarSurfaceCode,
    smap: StabilizerMap,
) -> dict[Site, int]:
    """Project ``|0...0>`` into the +1 logical-Z code space of ``smap``.

    Measures every stabilizer in the map; X-type outcomes are random and
    are *corrected* by applying Z chains is unnecessary for our purposes --
    instead we record outcomes so observables can be interpreted relative
    to the frame.  Z-type stabilizers are already satisfied on ``|0...0>``.
    Returns the outcome record.
    """
    outcomes: dict[Site, int] = {}
    for stab in smap.stabilizers.values():
        outcomes[stab.ancilla] = sim.measure_pauli(stabilizer_pauli(code, stab))
    return outcomes
