"""Beyond cosmic rays: the scenario catalog on burst errors (Sec. IX).

Ions and neutral atoms do not sit on a substrate, so cosmic rays barely
touch them -- but atom loss, leakage out of the qubit space, and
calibration drift produce the same signature: a region whose error rate
jumps until a slow repair completes.  The :mod:`repro.scenarios`
catalog captures those regimes (and the decoder trade-offs under them)
as declarative, JSON-round-trippable campaign specs, so this example is
a thin driver: list the catalog, pick an entry, run it through the one
campaign entry point.

It also shows the bridge from a *sampled* ion-trap burst timeline
(:mod:`repro.noise.leakage`) to a :class:`repro.scenarios.Scenario` —
the measured hardware history becomes a replayable campaign — and each
burst source's recommended reaction policy.

Run:  python examples/beyond_cosmic_rays.py            # the tour
      python examples/beyond_cosmic_rays.py --list     # catalog table
      python examples/beyond_cosmic_rays.py --scenario leakage-burst \
          --shots 20
"""

import argparse

import numpy as np

from repro import campaigns
from repro.noise.leakage import ion_trap_processes
from repro.scenarios import Scenario, catalog_spec, scenario_catalog

DISTANCE = 13
CYCLE_S = 1e-4  # ~100 us cycles for ions
TIMELINE_HOURS = 2.0


def list_catalog() -> None:
    """Print the catalog table the docs (and CI) keep honest."""
    print(f"{'entry':<26} description")
    print("-" * 72)
    for name, blurb in scenario_catalog().items():
        print(f"{name:<26} {blurb}")


def run_entry(name: str, shots: int) -> None:
    """Materialize one catalog entry and run it."""
    spec = catalog_spec(name, shots=shots)
    print(f"running {name!r} at {shots} shots "
          f"(spec kind: {getattr(spec, 'kind', 'sweep')})")
    result = campaigns.run(spec)
    if isinstance(result, campaigns.SweepResult):
        for overrides, point in result:
            print(f"  {overrides}:")
            for key, value in point.estimates.items():
                print(f"    {key:<24} {value:.4g}")
        return
    for key, value in result.estimates.items():
        print(f"  {key:<24} {value:.4g}")


def timeline_to_scenario() -> None:
    """A sampled ion-trap burst history replayed as a scenario spec."""
    rows, cols = DISTANCE - 1, DISTANCE
    total_cycles = int(TIMELINE_HOURS * 3600 / CYCLE_S)
    events = []
    for proc in ion_trap_processes(rows, cols, np.random.default_rng(11)):
        events.extend(proc.sample(total_cycles))
    events.sort(key=lambda e: e.cycle)
    print(f"\nIon-trap lattice {rows}x{cols}, {TIMELINE_HOURS} h "
          f"({total_cycles:.1e} cycles): {len(events)} burst events")
    print(f"{'cycle':>12}  {'source':<18}  {'size':>4}  policy")
    for event in events[:8]:
        print(f"{event.cycle:>12}  {event.source.value:<18}  "
              f"{event.size:>4}  {event.recommended_policy.value}")
    if len(events) > 8:
        print(f"  ... and {len(events) - 8} more")

    scenario = Scenario.from_burst_events(events[:3])
    print("\nFirst three events as a replayable scenario "
          f"({len(scenario.to_json())} bytes of JSON); every event keeps "
          "its source tag and recommended policy:")
    for strike in scenario.events:
        print(f"  onset={strike.onset} size={strike.size} "
              f"source={strike.source} -> "
              f"{strike.recommended_policy.value}")


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Drive the repro.scenarios catalog from the "
                    "command line.")
    parser.add_argument("--list", action="store_true",
                        help="print the scenario catalog and exit")
    parser.add_argument("--scenario", metavar="NAME",
                        help="run one catalog entry")
    parser.add_argument("--shots", type=int, default=16,
                        help="shot request for --scenario (default 16)")
    args = parser.parse_args()

    if args.list:
        list_catalog()
        return
    if args.scenario:
        run_entry(args.scenario, args.shots)
        return

    # The tour: the catalog, one burst-regime campaign, the bridge from
    # sampled hardware history to a replayable scenario.
    list_catalog()
    print()
    run_entry("leakage-burst", shots=8)
    timeline_to_scenario()


if __name__ == "__main__":
    main()
