"""Docs-freshness check: the documented CLI must be the real CLI.

Stdlib-only (it AST-parses the CLI module instead of importing it, so
it runs without numpy in a bare CI job).  Two directions:

* every ``python -m repro <subcommand>`` mentioned in README.md or
  docs/*.md must name a subcommand the parser actually registers;
* every registered subcommand must be mentioned in README.md — the
  front door may not silently fall behind the CLI.

The same discipline covers the scenario catalog: README's
"Scenario catalog" table must list exactly the entries registered via
``@register_scenario(...)`` in ``src/repro/scenarios/catalog.py`` —
no ghosts, no omissions.

Run: ``python tools/check_docs.py`` (exit 1 on drift).
"""

import ast
import re
import sys
from pathlib import Path

CLI = Path("src/repro/campaigns/cli.py")
CATALOG = Path("src/repro/scenarios/catalog.py")
DOCS = ("README.md", "docs")

#: ``python -m repro run|validate spec.json`` → ["run", "validate"].
MENTION = re.compile(r"python -m repro\s+([a-z0-9|-]+)")

#: A catalog-table row: ``| `entry-name` | ... |``.
TABLE_ROW = re.compile(r"^\|\s*`([a-z0-9-]+)`\s*\|")


def registered_subcommands(root: Path) -> set:
    """Names passed to ``add_parser(...)`` in the CLI module."""
    tree = ast.parse((root / CLI).read_text(encoding="utf-8"))
    names = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_parser"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            names.add(node.args[0].value)
    return names


def documented_subcommands(root: Path):
    """Every CLI mention in the docs, as (file, subcommand) pairs."""
    paths = [root / "README.md"]
    paths.extend(sorted((root / "docs").glob("*.md")))
    for path in paths:
        if not path.is_file():
            continue
        for match in MENTION.finditer(path.read_text(encoding="utf-8")):
            for name in match.group(1).split("|"):
                yield path.relative_to(root), name


def registered_scenarios(root: Path) -> set:
    """Names passed to ``register_scenario(...)`` in the catalog module.

    Empty when the catalog module does not exist (pre-scenario trees,
    the drift-test fixtures).
    """
    path = root / CATALOG
    if not path.is_file():
        return set()
    tree = ast.parse(path.read_text(encoding="utf-8"))
    names = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "register_scenario"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            names.add(node.args[0].value)
    return names


def documented_scenarios(root: Path) -> set:
    """Entry names in README's "Scenario catalog" table."""
    readme = root / "README.md"
    if not readme.is_file():
        return set()
    names = set()
    in_section = False
    for line in readme.read_text(encoding="utf-8").splitlines():
        if line.startswith("## "):
            in_section = line.strip() == "## Scenario catalog"
            continue
        if in_section:
            match = TABLE_ROW.match(line)
            if match:
                names.add(match.group(1))
    return names


def _catalog_problems(root: Path) -> list:
    real = registered_scenarios(root)
    if not real:
        return []  # no catalog module: nothing to keep honest
    documented = documented_scenarios(root)
    problems = []
    for name in sorted(documented - real):
        problems.append(
            f"README.md: scenario-catalog table lists `{name}`, which "
            f"{CATALOG} does not register "
            f"(has: {', '.join(sorted(real))})")
    for name in sorted(real - documented):
        problems.append(
            f"README.md: scenario `{name}` is registered in {CATALOG} "
            "but missing from the Scenario catalog table")
    return problems


def main(root: Path = Path(__file__).resolve().parent.parent) -> int:
    real = registered_subcommands(root)
    if not real:
        print(f"check_docs: no subcommands found in {CLI} — parser moved?")
        return 1
    problems = []
    seen_in_readme = set()
    for path, name in documented_subcommands(root):
        if name not in real:
            problems.append(
                f"{path}: documents `python -m repro {name}`, which the "
                f"CLI does not register (has: {', '.join(sorted(real))})")
        elif path.name == "README.md":
            seen_in_readme.add(name)
    for name in sorted(real - seen_in_readme):
        problems.append(
            f"README.md: subcommand `{name}` is registered in {CLI} "
            "but never shown as `python -m repro " + name + "`")
    problems.extend(_catalog_problems(root))
    for problem in problems:
        print(f"check_docs: {problem}")
    if not problems:
        scenarios = registered_scenarios(root)
        print(f"check_docs: clean ({len(real)} subcommands, "
              f"{len(scenarios)} catalog scenarios, "
              "README + docs/ in sync)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
