"""Integration tests: the Q3DE control unit over a live syndrome stream."""

import numpy as np
import pytest

from repro.core import Q3DEConfig, Q3DEControlUnit
from repro.core.statistics import SyndromeStatistics
from repro.decoding.graph import SyndromeLattice
from repro.noise import AnomalousRegion, PhenomenologicalNoise
from repro.sim.detection import calibrated_statistics


def make_unit(d=9, p=0.01, c_win=100, n_th=8, lifetime=5000):
    config = Q3DEConfig(distance=d, c_win=c_win, n_th=n_th,
                        anomaly_size=4, anomaly_lifetime_cycles=lifetime)
    return Q3DEControlUnit(config, calibrated_statistics(p))


def activity_stream(d, p, cycles, region=None, seed=0):
    rng = np.random.default_rng(seed)
    noise = PhenomenologicalNoise(d, p, region=region)
    v, h, m = noise.sample(cycles, rng)
    return SyndromeLattice(d).per_cycle_activity(v, h, m)


class TestQuietOperation:
    def test_no_detection_on_clean_stream(self):
        unit = make_unit()
        for layer in activity_stream(9, 0.01, 400):
            report = unit.step(layer)
            assert report.detection is None
        assert unit.current_distance == 9

    def test_buffers_track_cycles(self):
        unit = make_unit()
        stream = activity_stream(9, 0.01, 50)
        for layer in stream:
            unit.step(layer)
        assert unit.cycle == 49
        assert unit.syndrome_queue.latest_cycle() == 49

    def test_memory_report_keys(self):
        unit = make_unit()
        bits = unit.memory_bits()
        assert set(bits) == {"syndrome_queue", "active_node_counter",
                             "matching_queue"}
        assert all(v > 0 for v in bits.values())


class TestMBBEReaction:
    def _run_with_strike(self, unit, d=9, p=0.01, onset=200, total=600,
                         seed=1):
        region = AnomalousRegion(2, 3, 4, t_lo=onset)
        stream = activity_stream(d, p, total, region=region, seed=seed)
        reports = [unit.step(layer) for layer in stream]
        return reports

    def test_detection_fires_after_onset(self):
        unit = make_unit()
        reports = self._run_with_strike(unit)
        detections = [r for r in reports if r.detection is not None]
        assert detections
        assert detections[0].cycle >= 200

    def test_detection_triggers_expansion(self):
        unit = make_unit()
        self._run_with_strike(unit)
        assert unit.current_distance == 18  # doubled

    def test_detection_triggers_rollback(self):
        unit = make_unit()
        reports = self._run_with_strike(unit)
        det = next(r for r in reports if r.detection is not None)
        assert det.rollback is not None
        assert det.rollback.replay_layers

    def test_rollback_point_precedes_detection(self):
        unit = make_unit()
        reports = self._run_with_strike(unit)
        det = next(r for r in reports if r.detection is not None)
        assert det.rollback.rollback_cycle < det.cycle

    def test_region_estimate_recorded(self):
        unit = make_unit()
        self._run_with_strike(unit)
        assert unit.known_regions
        region = unit.known_regions[0]
        # True region rows 2..5, cols 3..6; estimate within a node or two.
        assert abs(region.row_lo - 2) <= 2
        assert abs(region.col_lo - 3) <= 2

    def test_expansion_shrinks_after_lifetime(self):
        unit = make_unit(lifetime=300)
        region = AnomalousRegion(2, 3, 4, t_lo=150, t_hi=250)
        stream = activity_stream(9, 0.01, 900, region=region, seed=2)
        for layer in stream:
            unit.step(layer)
        assert unit.current_distance == 9  # shrunk back

    def test_rollback_denied_when_host_consumed_data(self):
        unit = make_unit()
        # Simulate a host read of a freshly corrected register entry.
        quiet = activity_stream(9, 0.01, 150, seed=3)
        for layer in quiet:
            unit.step(layer)
        unit.register.write_raw(0, 1, cycle=unit.cycle)
        unit.register.mark_corrected(0, 0, cycle=unit.cycle)
        unit.register.read(0)
        region = AnomalousRegion(2, 3, 4, t_lo=0)
        hot = activity_stream(9, 0.01, 300, region=region, seed=4)
        reports = [unit.step(layer) for layer in hot]
        det = next((r for r in reports if r.detection is not None), None)
        assert det is not None
        assert det.rollback_denied
        assert det.rollback is None


class TestConfig:
    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            Q3DEConfig(distance=1)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            Q3DEConfig(distance=9, c_win=0)

    def test_custom_expanded_distance(self):
        config = Q3DEConfig(distance=9, expanded_distance=13)
        unit = Q3DEControlUnit(
            config, SyndromeStatistics.from_activity_rate(0.05))
        assert unit.expansion.expanded_distance == 13
