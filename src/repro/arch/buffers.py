"""Rollback-capable control-unit buffers (paper Sec. VI-C, Table III).

* :class:`SyndromeQueue` -- keeps the last ``c_win + c_bat`` syndrome
  layers *even after they are matched*, so the decoder can be rolled back
  and re-executed without snapshots.
* :class:`MatchingQueue` -- the decoder's output journal, aggregated in
  batches of ``c_bat`` cycles; the paper shows ``c_bat = sqrt(2 c_win)``
  minimizes total buffer memory.
* :class:`InstructionHistoryBuffer` -- records Pauli-frame-affecting
  instruction commits so frame updates can be replayed after a rollback.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Optional

import numpy as np


def optimal_batch_cycles(c_win: int) -> int:
    """The memory-minimizing matching-queue batch size sqrt(2 c_win)."""
    if c_win < 1:
        raise ValueError("window must be positive")
    return max(1, round(math.sqrt(2.0 * c_win)))


@dataclass(frozen=True)
class SyndromeLayerRecord:
    """One retained syndrome layer plus its decode status."""

    cycle: int
    layer: np.ndarray
    matched: bool = False


class SyndromeQueue:
    """FIFO of recent syndrome layers with rollback retention.

    Without Q3DE the queue may discard a layer as soon as its active nodes
    are matched; with Q3DE it must retain ``window`` layers regardless, so
    that decoding can restart from any retained cycle.
    """

    def __init__(self, shape: tuple[int, int], window: int):
        if window < 1:
            raise ValueError("window must hold at least one layer")
        self.shape = shape
        self.window = window
        self._layers: deque[SyndromeLayerRecord] = deque()

    def push(self, cycle: int, layer: np.ndarray) -> None:
        layer = np.asarray(layer, dtype=np.uint8)
        if layer.shape != self.shape:
            raise ValueError("layer shape mismatch")
        if self._layers and cycle != self._layers[-1].cycle + 1:
            raise ValueError("layers must be pushed in cycle order")
        self._layers.append(SyndromeLayerRecord(cycle, layer))
        while len(self._layers) > self.window:
            self._layers.popleft()

    def mark_matched(self, cycle: int) -> None:
        """Flag a layer as fully matched (it is still retained)."""
        for i, rec in enumerate(self._layers):
            if rec.cycle == cycle:
                self._layers[i] = SyndromeLayerRecord(
                    rec.cycle, rec.layer, True)
                return
        raise KeyError(f"cycle {cycle} not retained")

    def layers_since(self, cycle: int) -> list[SyndromeLayerRecord]:
        """All retained layers with cycle >= the given cycle."""
        return [rec for rec in self._layers if rec.cycle >= cycle]

    def oldest_cycle(self) -> Optional[int]:
        return self._layers[0].cycle if self._layers else None

    def latest_cycle(self) -> Optional[int]:
        return self._layers[-1].cycle if self._layers else None

    def __len__(self) -> int:
        return len(self._layers)

    def memory_bits(self) -> int:
        """Table III row 1: ``2 d^2 (c_win + sqrt(2 c_win))`` bits.

        One bit per node per retained layer, both lattices; the window
        already includes the extra ``c_bat`` layers."""
        return 2 * int(np.prod(self.shape)) * self.window


@dataclass(frozen=True)
class MatchRecord:
    """A decoder output: correction parity contributions for one cycle."""

    cycle: int
    cut_parity: int  # north-cut crossings mod 2 attributed to this cycle
    num_matches: int


@dataclass
class MatchBatch:
    """``c_bat`` cycles of matching results, summed (Sec. VI-C)."""

    start_cycle: int
    cut_parity: int = 0
    num_matches: int = 0
    closed: bool = False


class MatchingQueue:
    """Batched journal of decoder outputs.

    The full per-cycle record would dominate buffer memory; summing each
    ``c_bat``-cycle batch (plus boundary-pair bookkeeping, represented by
    the per-batch parity) cuts it by ``c_bat`` at the cost of re-decoding
    a whole batch on rollback.
    """

    def __init__(self, c_win: int, c_bat: Optional[int] = None):
        self.c_win = c_win
        self.c_bat = c_bat if c_bat is not None else optimal_batch_cycles(c_win)
        if self.c_bat < 1:
            raise ValueError("batch size must be positive")
        self._batches: deque[MatchBatch] = deque()

    def record(self, match: MatchRecord) -> None:
        """Append one cycle's matching summary."""
        if not self._batches or self._batches[-1].closed:
            self._batches.append(MatchBatch(start_cycle=match.cycle))
        batch = self._batches[-1]
        batch.cut_parity ^= match.cut_parity
        batch.num_matches += match.num_matches
        if match.cycle - batch.start_cycle + 1 >= self.c_bat:
            batch.closed = True
        max_batches = math.ceil(self.c_win / self.c_bat) + 1
        while len(self._batches) > max_batches:
            self._batches.popleft()

    def rollback_to(self, cycle: int) -> list[MatchBatch]:
        """Drop every batch touching cycles >= ``cycle``.

        Returns the dropped batches (whole batches are re-decoded, which
        is why the rollback granularity is ``c_bat``).
        """
        dropped: list[MatchBatch] = []
        while self._batches:
            last = self._batches[-1]
            end = last.start_cycle + self.c_bat - 1
            if end >= cycle:
                dropped.append(self._batches.pop())
            else:
                break
        dropped.reverse()
        return dropped

    def total_cut_parity(self) -> int:
        """Accumulated north-cut parity over all retained batches."""
        parity = 0
        for batch in self._batches:
            parity ^= batch.cut_parity
        return parity

    def __len__(self) -> int:
        return len(self._batches)

    def memory_bits(self, node_count: int) -> int:
        """Table III row 3: ``2 d^2 sqrt(c_win / 2)`` bits.

        One bit per node per retained batch, both lattices; the number of
        retained batches is ``c_win / c_bat = sqrt(c_win / 2)``."""
        batches = math.ceil(self.c_win / self.c_bat)
        return 2 * node_count * batches


@dataclass(frozen=True)
class HistoryEntry:
    """An instruction commit that touched the Pauli frame."""

    cycle: int
    instruction_uid: int
    qubit: int
    swapped_xz: bool  # e.g. op_H exchanges the frame's X and Z bits


class InstructionHistoryBuffer:
    """Journal of frame-affecting instruction commits (Fig. 1).

    Needed because the Pauli frame is updated both by the decoder and by
    logical instructions; on rollback the instruction-driven updates must
    be replayed in order.
    """

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._entries: deque[HistoryEntry] = deque(maxlen=capacity)

    def record(self, entry: HistoryEntry) -> None:
        self._entries.append(entry)

    def entries_since(self, cycle: int) -> list[HistoryEntry]:
        return [e for e in self._entries if e.cycle >= cycle]

    def __len__(self) -> int:
        return len(self._entries)
