"""Tests for the Table III memory-overhead model."""

import pytest

from repro.arch.memory_overhead import MemoryOverheadModel


@pytest.fixture
def paper_model():
    """The paper's Table III setting: d = 31, c_win = 300."""
    return MemoryOverheadModel(distance=31, c_win=300)


class TestTable3:
    def test_syndrome_queue_623_kbit(self, paper_model):
        assert paper_model.syndrome_queue_bits() / 1000 == pytest.approx(
            623, rel=0.01)

    def test_active_node_counter_16_kbit(self, paper_model):
        assert paper_model.active_node_counter_bits() / 1000 == pytest.approx(
            16, rel=0.03)

    def test_matching_queue_24_kbit(self, paper_model):
        assert paper_model.matching_queue_bits() / 1000 == pytest.approx(
            24, rel=0.03)

    def test_baseline_58_kbit(self, paper_model):
        assert paper_model.baseline_syndrome_queue_bits() / 1000 == \
            pytest.approx(58, rel=0.05)

    def test_overhead_about_ten_times(self, paper_model):
        assert paper_model.overhead_ratio() == pytest.approx(10, rel=0.1)

    def test_rows_kbit_keys(self, paper_model):
        rows = paper_model.rows_kbit()
        assert set(rows) == {"syndrome_queue", "active_node_counter",
                             "matching_queue"}


class TestScaling:
    def test_overhead_shrinks_when_cwin_close_to_d(self):
        # The paper: if c_win ~ d the overhead becomes almost negligible.
        big_win = MemoryOverheadModel(31, 300).overhead_ratio()
        small_win = MemoryOverheadModel(31, 31).overhead_ratio()
        assert small_win < big_win / 5

    def test_total_dominated_by_syndrome_queue(self, paper_model):
        assert (paper_model.syndrome_queue_bits()
                > 0.9 * paper_model.total_bits())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MemoryOverheadModel(1, 300)
        with pytest.raises(ValueError):
            MemoryOverheadModel(31, 0)

    def test_agrees_with_live_buffers(self):
        """The closed forms must match the real data structures."""
        from repro.arch.buffers import (MatchingQueue, SyndromeQueue,
                                        optimal_batch_cycles)
        d, c_win = 31, 300
        model = MemoryOverheadModel(d, c_win)
        shape = (d - 1, d)  # (d-1)*d ~ d^2 nodes per lattice
        queue = SyndromeQueue(shape, c_win + optimal_batch_cycles(c_win))
        # Same order of magnitude (the model uses the d^2 idealization).
        assert queue.memory_bits() == pytest.approx(
            model.syndrome_queue_bits(), rel=0.05)
        mq = MatchingQueue(c_win)
        assert mq.memory_bits((d - 1) * d) == pytest.approx(
            model.matching_queue_bits(), rel=0.1)
