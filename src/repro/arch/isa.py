"""The succinct FTQC instruction set (paper Table II).

``op_expand`` is the Q3DE-original instruction: it asks the stabilizer
assignment unit to grow a logical qubit's code distance and keep it grown
for the expected MBBE lifetime.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional


class InstructionKind(enum.Enum):
    """Table II of the paper."""

    INIT_ZERO = "init_zero"   # initialize a logical qubit in |0>
    INIT_A = "init_A"         # initialize a noisy |A> magic state
    INIT_Y = "init_Y"         # initialize a noisy |Y> state
    OP_H = "op_H"             # logical Hadamard
    MEAS_Z = "meas_Z"         # logical Z measurement
    MEAS_ZZ = "meas_ZZ"       # joint ZZ measurement (lattice surgery)
    READ = "read"             # ship an error-corrected outcome to the host
    OP_EXPAND = "op_expand"   # Q3DE: temporally expand a code distance


#: Kinds that produce a logical measurement outcome.
MEASUREMENT_KINDS = frozenset(
    {InstructionKind.MEAS_Z, InstructionKind.MEAS_ZZ})

#: Kinds that occupy qubit-plane space while executing.
PLANE_KINDS = frozenset(
    set(InstructionKind) - {InstructionKind.READ})

_ids = itertools.count()


@dataclass
class Instruction:
    """One FTQC instruction.

    Attributes:
        kind: the opcode.
        targets: logical-qubit ids the instruction acts on (empty for
            ``read``).
        register: classical-register index (measurements write it, ``read``
            reads it).
        uid: unique program-order id (assigned automatically).
    """

    kind: InstructionKind
    targets: tuple[int, ...] = ()
    register: Optional[int] = None
    uid: int = field(default_factory=lambda: next(_ids))

    def __post_init__(self) -> None:
        arity = {
            InstructionKind.INIT_ZERO: 1,
            InstructionKind.INIT_A: 1,
            InstructionKind.INIT_Y: 1,
            InstructionKind.OP_H: 1,
            InstructionKind.MEAS_Z: 1,
            InstructionKind.MEAS_ZZ: 2,
            InstructionKind.READ: 0,
            InstructionKind.OP_EXPAND: 1,
        }[self.kind]
        if len(self.targets) != arity:
            raise ValueError(
                f"{self.kind.value} takes {arity} target(s), "
                f"got {len(self.targets)}")
        if self.kind in MEASUREMENT_KINDS and self.register is None:
            raise ValueError(f"{self.kind.value} needs a register")
        if self.kind is InstructionKind.READ and self.register is None:
            raise ValueError("read needs a register")

    @property
    def is_measurement(self) -> bool:
        return self.kind in MEASUREMENT_KINDS

    def latency_cycles(self, distance: int) -> int:
        """Execution latency; most instructions take d code cycles."""
        if self.kind is InstructionKind.READ:
            return 0
        return distance

    def conflicts_with(self, other: "Instruction") -> bool:
        """Conservative commutation test for out-of-order commit.

        Two instructions may be reordered when they act on disjoint
        logical qubits (and neither is a ``read``, which orders against
        the classical register instead of the plane).
        """
        if self.kind is InstructionKind.READ or other.kind is InstructionKind.READ:
            return (self.register is not None
                    and self.register == other.register)
        return bool(set(self.targets) & set(other.targets))


class InstructionQueue:
    """FIFO instruction queue with commit-when-ready semantics (Sec. II-B).

    Instructions commit in order unless an earlier, still-waiting
    instruction commutes with them (disjoint targets), in which case they
    may be issued out of order -- the behaviour the greedy scheduler
    exploits.
    """

    def __init__(self, instructions: Iterable[Instruction] = ()):
        self._queue: deque[Instruction] = deque(instructions)

    def push(self, instruction: Instruction) -> None:
        self._queue.append(instruction)

    def push_front(self, instruction: Instruction) -> None:
        """Priority insert, used for adaptive ``op_expand`` injection."""
        self._queue.appendleft(instruction)

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self):
        return iter(self._queue)

    def ready_candidates(self, limit: Optional[int] = None) -> list[Instruction]:
        """Instructions eligible to commit now, in priority order.

        An instruction is a candidate if it conflicts with no earlier
        queued instruction (the earlier ones are still waiting, so a
        conflicting later one must wait too).
        """
        candidates: list[Instruction] = []
        for idx, inst in enumerate(self._queue):
            if limit is not None and idx >= limit:
                break
            if any(inst.conflicts_with(earlier)
                   for earlier in itertools.islice(self._queue, idx)):
                continue
            candidates.append(inst)
        return candidates

    def remove(self, instruction: Instruction) -> None:
        self._queue.remove(instruction)
