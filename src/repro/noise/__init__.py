"""Noise models: per-cycle Pauli channels and the cosmic-ray MBBE model.

The paper's simulation noise model (Sec. VII-A): at the start of every
code cycle each data and ancillary qubit independently suffers a Pauli
X, Y, or Z error with probability ``p/2`` each (``p_ano/2`` inside an
anomalous region).  On a single decoding lattice this reduces to
data-edge flip probability ``p`` and measurement-flip probability ``p``.

:mod:`repro.noise.cosmic_ray` models the MBBE process itself: Poisson
strike arrivals with frequency ``f_ano``, an anomalous region of size
``d_ano``, and an exponentially decaying lifetime with constant
``tau_ano`` = 25 ms (McEwen et al.).
"""

from repro.noise.models import AnomalousRegion, PhenomenologicalNoise
from repro.noise.cosmic_ray import CosmicRayModel, CosmicRayStrike
from repro.noise.leakage import BurstEvent, BurstProcess, BurstSource

__all__ = [
    "AnomalousRegion",
    "PhenomenologicalNoise",
    "CosmicRayModel",
    "CosmicRayStrike",
    "BurstEvent",
    "BurstProcess",
    "BurstSource",
]
