"""Stabilizer-circuit substrate.

This subpackage provides a from-scratch implementation of the
Aaronson--Gottesman (CHP) stabilizer formalism used to verify the
surface-code machinery on small instances:

* :mod:`repro.stab.pauli` -- symplectic Pauli-operator algebra.
* :mod:`repro.stab.tableau` -- a stabilizer tableau simulator supporting
  H, S, CX, CZ, X, Y, Z gates and single-qubit measurements.

The Q3DE paper itself relies on direct Pauli-frame error simulation, but a
stabilizer simulator lets us check that the stabilizer maps, logical
operators, and code-deformation steps defined in :mod:`repro.surface_code`
are quantum-mechanically consistent (e.g. that ``op_expand`` preserves the
encoded logical state).
"""

from repro.stab.pauli import Pauli
from repro.stab.tableau import StabilizerSimulator

__all__ = ["Pauli", "StabilizerSimulator"]
