"""Tests for the CHP stabilizer tableau simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stab.pauli import Pauli
from repro.stab.tableau import StabilizerSimulator


def sim(n, seed=0):
    return StabilizerSimulator(n, rng=np.random.default_rng(seed))


class TestBasics:
    def test_initial_state_measures_zero(self):
        s = sim(3)
        assert [s.measure_z(q) for q in range(3)] == [0, 0, 0]

    def test_x_flips_measurement(self):
        s = sim(1)
        s.x_gate(0)
        assert s.measure_z(0) == 1

    def test_h_then_h_is_identity(self):
        s = sim(1)
        s.h(0)
        s.h(0)
        assert s.measure_z(0) == 0

    def test_plus_state_measures_x_deterministically(self):
        s = sim(1)
        s.h(0)
        assert s.measure_x(0) == 0

    def test_s_squared_is_z(self):
        s = sim(1)
        s.h(0)  # |+>
        s.s(0)
        s.s(0)  # Z|+> = |->
        assert s.measure_x(0) == 1

    def test_y_on_plus_gives_minus(self):
        s = sim(1)
        s.h(0)
        s.y_gate(0)
        assert s.measure_x(0) == 1

    def test_cx_copies_in_z_basis(self):
        s = sim(2)
        s.x_gate(0)
        s.cx(0, 1)
        assert s.measure_z(1) == 1

    def test_cx_rejects_equal_control_target(self):
        with pytest.raises(ValueError):
            sim(2).cx(1, 1)

    def test_cz_phase_on_plus_plus(self):
        s = sim(2)
        s.h(0)
        s.h(1)
        s.cz(0, 1)
        s.cz(0, 1)  # CZ^2 = I
        assert s.measure_x(0) == 0
        assert s.measure_x(1) == 0

    def test_num_qubits_must_be_positive(self):
        with pytest.raises(ValueError):
            StabilizerSimulator(0)


class TestMeasurement:
    def test_random_measurement_collapses(self):
        s = sim(1, seed=5)
        s.h(0)
        first = s.measure_z(0)
        for _ in range(5):
            assert s.measure_z(0) == first

    def test_forced_random_outcome(self):
        s = sim(1)
        s.h(0)
        assert s.measure_z(0, forced=1) == 1
        assert s.measure_z(0) == 1

    def test_forcing_deterministic_outcome_wrong_raises(self):
        s = sim(1)
        with pytest.raises(ValueError):
            s.measure_z(0, forced=1)

    def test_bell_pair_correlations(self):
        for seed in range(6):
            s = sim(2, seed=seed)
            s.h(0)
            s.cx(0, 1)
            assert s.measure_z(0) == s.measure_z(1)

    def test_ghz_parity(self):
        for seed in range(4):
            s = sim(3, seed=seed)
            s.h(0)
            s.cx(0, 1)
            s.cx(0, 2)
            bits = [s.measure_z(q) for q in range(3)]
            assert len(set(bits)) == 1  # all equal

    def test_measure_pauli_zz_on_bell(self):
        s = sim(2, seed=1)
        s.h(0)
        s.cx(0, 1)
        assert s.measure_pauli(Pauli.from_label("ZZ")) == 0
        assert s.measure_pauli(Pauli.from_label("XX")) == 0

    def test_measure_pauli_negative_observable(self):
        s = sim(1)
        assert s.measure_pauli(Pauli.from_label("Z")) == 0
        assert s.measure_pauli(Pauli.from_label("-Z")) == 1

    def test_measure_pauli_rejects_imaginary_phase(self):
        s = sim(1)
        with pytest.raises(ValueError):
            s.measure_pauli(Pauli.from_label("iZ"))

    def test_measure_pauli_y_eigenstate(self):
        s = sim(1)
        s.h(0)
        s.s(0)  # S|+> = |+i>, a +1 eigenstate of Y
        assert s.measure_pauli(Pauli.from_label("Y")) == 0

    def test_measure_pauli_does_not_disturb_eigenstate(self):
        s = sim(2, seed=3)
        s.h(0)
        s.cx(0, 1)
        for _ in range(4):
            assert s.measure_pauli(Pauli.from_label("XX")) == 0
            assert s.measure_pauli(Pauli.from_label("ZZ")) == 0


class TestQueries:
    def test_expectation_deterministic_cases(self):
        s = sim(1)
        assert s.expectation(Pauli.from_label("Z")) == 1
        assert s.expectation(Pauli.from_label("X")) == 0
        s.x_gate(0)
        assert s.expectation(Pauli.from_label("Z")) == -1

    def test_stabilizer_generators_of_zero_state(self):
        s = sim(2)
        gens = s.stabilizer_generators()
        labels = {g.to_label() for g in gens}
        assert labels == {"+ZI", "+IZ"}

    def test_copy_is_independent(self):
        s = sim(1)
        t = s.copy()
        t.x_gate(0)
        assert s.measure_z(0) == 0
        assert t.measure_z(0) == 1

    def test_apply_pauli_frame_update(self):
        s = sim(2)
        s.apply_pauli(Pauli.from_label("XI"))
        assert s.measure_z(0) == 1
        assert s.measure_z(1) == 0


@st.composite
def clifford_circuit(draw, n, depth=st.integers(0, 20)):
    ops = []
    for _ in range(draw(depth)):
        kind = draw(st.sampled_from(["h", "s", "x", "z", "cx"]))
        if kind == "cx" and n >= 2:
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 1).filter(lambda q: q != a))
            ops.append(("cx", a, b))
        elif kind != "cx":
            ops.append((kind, draw(st.integers(0, n - 1))))
    return ops


def run_circuit(s, ops):
    for op in ops:
        if op[0] == "cx":
            s.cx(op[1], op[2])
        elif op[0] == "h":
            s.h(op[1])
        elif op[0] == "s":
            s.s(op[1])
        elif op[0] == "x":
            s.x_gate(op[1])
        elif op[0] == "z":
            s.z_gate(op[1])


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_stabilizers_always_commute(self, data):
        n = data.draw(st.integers(2, 5))
        s = sim(n, seed=data.draw(st.integers(0, 100)))
        run_circuit(s, data.draw(clifford_circuit(n)))
        gens = s.stabilizer_generators()
        for i in range(n):
            for j in range(i + 1, n):
                assert gens[i].commutes_with(gens[j])

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_stabilizers_have_plus_one_expectation(self, data):
        n = data.draw(st.integers(2, 4))
        s = sim(n, seed=data.draw(st.integers(0, 100)))
        run_circuit(s, data.draw(clifford_circuit(n)))
        for gen in s.stabilizer_generators():
            assert s.expectation(gen) == 1

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_repeated_z_measurement_is_stable(self, data):
        n = data.draw(st.integers(1, 4))
        s = sim(n, seed=data.draw(st.integers(0, 100)))
        run_circuit(s, data.draw(clifford_circuit(n)))
        q = data.draw(st.integers(0, n - 1))
        first = s.measure_z(q)
        assert s.measure_z(q) == first
