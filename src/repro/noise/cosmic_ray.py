"""Cosmic-ray strike process (McEwen et al. parameters).

Models MBBE events as a Poisson process: strikes arrive at frequency
``f_ano`` (per second, per logical-qubit region -- the paper multiplies
the 26-qubit-region rate by ten for logical-qubit-sized patches), hit a
uniformly random position, raise nearby qubits to error rate ``p_ano``
over a region of ``d_ano`` qubits across, and relax back with decay
constant ``tau_ano`` = 25 ms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

#: Published reference parameters (McEwen et al. / paper Sec. III & VIII).
SYCAMORE_FREQUENCY_HZ = 0.1
SYCAMORE_FREQUENCY_LOGICAL_HZ = 1.0  # x10 for logical-qubit-sized patches
SYCAMORE_LIFETIME_S = 25e-3
SYCAMORE_ANOMALY_SIZE = 4
CODE_CYCLE_S = 1e-6


@dataclass(frozen=True)
class CosmicRayStrike:
    """A single strike: when it landed, where, and how wide."""

    cycle: int
    row: int
    col: int
    size: int
    duration_cycles: int

    def active_at(self, cycle: int) -> bool:
        """True while the anomaly persists (fixed-duration model)."""
        return self.cycle <= cycle < self.cycle + self.duration_cycles

    def error_rate_at(self, cycle: int, p_ano: float, p: float,
                      tau_cycles: float) -> float:
        """Exponentially decaying anomalous error rate after the strike.

        The fixed-duration model used in the evaluations treats the rate
        as ``p_ano`` for ``duration_cycles``; this method exposes the
        physically-motivated decay ``p + (p_ano - p) * exp(-dt/tau)`` for
        studies that want it.
        """
        if cycle < self.cycle:
            return p
        dt = cycle - self.cycle
        return p + (p_ano - p) * math.exp(-dt / tau_cycles)


@dataclass
class CosmicRayModel:
    """Poisson MBBE arrival process over a lattice.

    Args:
        frequency_hz: strike rate ``f_ano`` for the monitored region.
        lifetime_s: anomaly lifetime ``tau_ano`` (the evaluations treat an
            anomaly as fully active for one lifetime).
        anomaly_size: region size ``d_ano`` in qubits across.
        cycle_s: code-cycle duration ``tau_cyc`` (1 us default).
        rows, cols: extent of the strike-position lattice.
    """

    frequency_hz: float = SYCAMORE_FREQUENCY_LOGICAL_HZ
    lifetime_s: float = SYCAMORE_LIFETIME_S
    anomaly_size: int = SYCAMORE_ANOMALY_SIZE
    cycle_s: float = CODE_CYCLE_S
    rows: int = 20
    cols: int = 21
    rng: np.random.Generator = field(
        default_factory=np.random.default_rng, repr=False)

    def __post_init__(self) -> None:
        if self.frequency_hz < 0:
            raise ValueError("frequency must be non-negative")
        if self.lifetime_s <= 0 or self.cycle_s <= 0:
            raise ValueError("durations must be positive")
        if self.anomaly_size < 1:
            raise ValueError("anomaly size must be >= 1")

    # ------------------------------------------------------------------
    @property
    def strike_probability_per_cycle(self) -> float:
        """Probability of a strike starting in any one code cycle."""
        return self.frequency_hz * self.cycle_s

    @property
    def lifetime_cycles(self) -> int:
        """Anomaly duration in code cycles."""
        return max(1, round(self.lifetime_s / self.cycle_s))

    @property
    def duty_fraction(self) -> float:
        """Fraction of time the region is anomalous, ``f_ano * tau_ano``."""
        return min(1.0, self.frequency_hz * self.lifetime_s)

    # ------------------------------------------------------------------
    def sample_strikes(self, total_cycles: int) -> list[CosmicRayStrike]:
        """All strikes landing within a window of ``total_cycles`` cycles.

        Strike count is Poisson; positions are uniform over the lattice
        (clamped so the region fits where possible).
        """
        expected = self.strike_probability_per_cycle * total_cycles
        count = int(self.rng.poisson(expected))
        strikes = []
        for _ in range(count):
            cycle = int(self.rng.integers(0, total_cycles))
            row = int(self.rng.integers(0, max(1, self.rows - self.anomaly_size + 1)))
            col = int(self.rng.integers(0, max(1, self.cols - self.anomaly_size + 1)))
            strikes.append(CosmicRayStrike(
                cycle=cycle, row=row, col=col, size=self.anomaly_size,
                duration_cycles=self.lifetime_cycles,
            ))
        return sorted(strikes, key=lambda s: s.cycle)

    def iter_event_windows(
        self, total_cycles: int
    ) -> Iterator[tuple[int, int, Optional[CosmicRayStrike]]]:
        """Yield ``(start, end, strike)`` segments tiling the window.

        ``strike`` is ``None`` for anomaly-free segments.  Overlapping
        strikes are serialized (the paper assumes multiple rays do not
        occur simultaneously); a strike starting inside another's window
        is deferred to the end of the earlier one.
        """
        cursor = 0
        for strike in self.sample_strikes(total_cycles):
            start = max(strike.cycle, cursor)
            if start >= total_cycles:
                break
            if start > cursor:
                yield cursor, start, None
            end = min(total_cycles, start + strike.duration_cycles)
            yield start, end, strike
            cursor = end
        if cursor < total_cycles:
            yield cursor, total_cycles, None
