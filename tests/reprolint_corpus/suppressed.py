"""Suppression-semantics corpus.

* A justified trailing suppression silences its own line.
* A justified standalone suppression silences the next code line, and
  the justification may wrap onto further comment lines.
* An unjustified suppression silences nothing and is itself an RL000.
* A suppression for the wrong rule id does not apply.
"""

import numpy as np


def justified_trailing():
    return np.random.default_rng()  # reprolint: disable=RL001 -- corpus: caller opted out


def justified_standalone():
    # reprolint: disable=RL001 -- corpus: caller opted out of
    # reproducibility, wrapped onto a second comment line
    return np.random.default_rng()


def unjustified():
    return np.random.default_rng()  # reprolint: disable=RL001


def wrong_rule():
    # reprolint: disable=RL003 -- corpus: wrong rule id on purpose
    return np.random.default_rng()
