"""Fig. 10: instruction throughput under cosmic rays.

Paper setup: 10^4 meas_ZZ instructions on random pairs of the 25 logical
qubits of an 11x11 block plane; MBBEs strike each block with probability
``d tau_cyc f_ano`` per d-cycle slot and last 100d or 1000d cycles.

Expected shape: MBBE-free ~6 instructions per d cycles; the baseline
(doubled default distance) sits at about half; Q3DE tracks MBBE-free at
realistic ray frequencies (~1e-5) and degrades only as the frequency
approaches 1e-2, with longer bursts hurting more.
"""

import time

import pytest

from repro import campaigns

from _common import emit_json, mc_workers, print_table, scale

FREQUENCIES = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2]


def _point_spec(architecture, n_inst, freq=0.0, duration_slots=100,
                seed=7) -> campaigns.ThroughputSpec:
    """One Fig. 10 point as a declarative ``ThroughputSpec``."""
    return campaigns.ThroughputSpec(
        architecture=architecture, num_instructions=n_inst,
        strike_prob_per_slot=freq, strike_duration_slots=duration_slots,
        seed=seed)


def _run_point(spec_json: str) -> float:
    """Pool-picklable point runner (specs travel as their JSON)."""
    spec = campaigns.spec_from_json(spec_json)
    return campaigns.run(spec).estimates["throughput"]


def _run_points(specs) -> list[float]:
    """Run point specs inline, or on a pool when REPRO_WORKERS > 1.

    Every point carries its own seed inside its spec, so results are
    identical either way — the legacy ``throughput_sweep(workers=)``
    contract, now spec-shaped.
    """
    payloads = [campaigns.spec_to_json(spec) for spec in specs]
    workers = mc_workers()
    if workers > 1:
        import multiprocessing
        with multiprocessing.Pool(workers) as pool:
            return pool.map(_run_point, payloads)
    return [_run_point(payload) for payload in payloads]


def _series(n_inst, duration_slots, seed=7) -> dict[str, list[float]]:
    """The sweep of ``throughput_sweep``, one spec per point.

    Per-point derived seeds (``seed + idx`` for the q3de curve) mirror
    the legacy helper so the series stay reproducible point by point.
    """
    q3de = _run_points([
        _point_spec("q3de", n_inst, freq, duration_slots, seed=seed + idx)
        for idx, freq in enumerate(FREQUENCIES)])
    flat = _run_points([_point_spec("mbbe_free", n_inst, seed=seed),
                        _point_spec("baseline", n_inst, seed=seed)])
    return {
        "q3de": q3de,
        "mbbe_free": [flat[0]] * len(FREQUENCIES),
        "baseline": [flat[1]] * len(FREQUENCIES),
    }


@pytest.mark.benchmark(group="fig10")
def bench_fig10_throughput_sweep(benchmark):
    """Regenerate all four Fig. 10 series."""
    n_inst = max(200, int(1000 * scale()))

    def run():
        start = time.perf_counter()
        short = _series(n_inst, duration_slots=100)
        long = _series(n_inst, duration_slots=1000)
        return short, long, time.perf_counter() - start

    short, long, wall = benchmark.pedantic(run, rounds=1, iterations=1)

    emit_json("batch", "fig10_throughput", {
        "instructions": n_inst,
        "wall_clock_s": wall,
        "instructions_per_d_cycles": {
            "mbbe_free": short["mbbe_free"][0],
            "baseline": short["baseline"][0],
            "q3de_realistic_freq": short["q3de"][1],
            "q3de_heavy_freq": short["q3de"][-1],
            "q3de_long_bursts_heavy": long["q3de"][-1]},
    })
    rows = []
    for i, freq in enumerate(FREQUENCIES):
        rows.append([freq, short["mbbe_free"][i], short["baseline"][i],
                     short["q3de"][i], long["q3de"][i]])
    print_table(
        "Fig. 10: instructions per d code cycles",
        ["d*tau_cyc*f_ano", "MBBE free", "baseline",
         "Q3DE tau/d=100", "Q3DE tau/d=1000"],
        rows)

    free = short["mbbe_free"][0]
    base = short["baseline"][0]
    # Baseline throughput is about half of MBBE-free.
    assert base == pytest.approx(free / 2, rel=0.25)
    # At realistic frequencies Q3DE matches MBBE-free within a few %.
    assert short["q3de"][1] >= 0.9 * free
    # Longer bursts are never better.
    assert long["q3de"][-1] <= short["q3de"][-1] + 0.5
    # Heavy rays degrade Q3DE below its calm-weather throughput.
    assert short["q3de"][-1] <= short["q3de"][0]


@pytest.mark.benchmark(group="fig10")
def bench_fig10_single_run_timing(benchmark):
    """Time one mid-frequency Q3DE run (the harness's hot path)."""
    spec = campaigns.ThroughputSpec(
        architecture="q3de", num_instructions=300,
        strike_prob_per_slot=1e-4, strike_duration_slots=100, seed=3)
    result = benchmark.pedantic(campaigns.run, args=(spec,),
                                rounds=3, iterations=1)
    assert result.counts["instructions"] == 300


def smoke() -> None:
    """One tiny grid point (bench_smoke marker: import-rot guard)."""
    spec = campaigns.ThroughputSpec(
        architecture="q3de", num_instructions=20,
        strike_prob_per_slot=1e-4, strike_duration_slots=10, seed=3)
    result = campaigns.run(spec)
    assert result.estimates["throughput"] > 0
    assert campaigns.spec_from_json(campaigns.spec_to_json(spec)) == spec
