"""Talk to the campaign service with nothing but the stdlib.

The service (`python -m repro serve STORE_DIR`, docs/SERVICE.md) fronts
the campaign layer with a content-addressed result cache: submit a spec
as JSON, get the cached result instantly if any server ever ran it,
watch partial Wilson-interval estimates stream while it computes, and
grow a cached campaign incrementally — "the same spec, more shots"
resumes its checkpoint instead of starting over.

This client is the whole protocol in ~100 lines of ``urllib``:

    # terminal 1
    PYTHONPATH=src python -m repro serve /tmp/repro-store --port 8765

    # terminal 2
    PYTHONPATH=src python - <<'EOF'
    from repro import campaigns
    spec = campaigns.MemorySpec(distance=7, p=0.01, samples=20000,
                                seed=42, batch_size=512)
    open("/tmp/spec.json", "w").write(campaigns.spec_to_json(spec))
    EOF
    PYTHONPATH=src python examples/service_client.py /tmp/spec.json
    PYTHONPATH=src python examples/service_client.py /tmp/spec.json \
        --refine-shots 40000        # computes only the second 20k

Run it twice: the second submission answers from the cache
(``cache_hit: true``), without a single shot simulated.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def request(url, body=None, tenant=None):
    """One JSON round-trip; returns (status, document)."""
    headers = {"Content-Type": "application/json"}
    if tenant:
        headers["X-Repro-Tenant"] = tenant
    req = urllib.request.Request(url, data=body, headers=headers,
                                 method="POST" if body else "GET")
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        with exc:
            return exc.code, json.load(exc)


def submit_and_wait(base, spec_doc, tenant, poll_s):
    """Submit a spec; stream partials until the result lands."""
    status, doc = request(f"{base}/campaigns",
                          json.dumps(spec_doc).encode(), tenant)
    if status == 400:
        sys.exit(f"rejected: {doc['error']}")
    if status == 200:  # served from the cache — no compute happened
        return doc
    h = doc["spec_hash"]
    print(f"accepted {h} ({'coalesced' if doc['coalesced'] else 'queued'})",
          file=sys.stderr)
    last = None
    while True:
        status, doc = request(f"{base}/campaigns/{h}")
        if status == 200:
            # The status endpoint serves from the store, so it reports
            # cache_hit=true — but *this* submission was the compute
            # (the POST said 202).  Keep the submitter's perspective.
            doc["cache_hit"] = False
            doc["result"]["provenance"]["cache_hit"] = False
            return doc
        if status == 500:
            sys.exit(f"campaign failed: {doc['error']}")
        status, partial = request(f"{base}/campaigns/{h}/partial")
        if status == 200 and partial.get("shots_done") not in (None, last):
            last = partial["shots_done"]
            lo, hi = partial["wilson_low"], partial["wilson_high"]
            bounds = (f"[{lo:.3g}, {hi:.3g}]"
                      if lo is not None else "[warming up]")
            print(f"  {last}/{partial['shots_requested']} shots, "
                  f"estimate {partial['estimate']} {bounds}",
                  file=sys.stderr)
        time.sleep(poll_s)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Submit a campaign spec to a repro service.")
    parser.add_argument("spec", help="spec JSON path, or - for stdin")
    parser.add_argument("--url", default="http://127.0.0.1:8765",
                        help="service base URL (default: %(default)s)")
    parser.add_argument("--poll", type=float, default=0.5, metavar="S",
                        help="seconds between partial polls")
    parser.add_argument("--tenant", default=None,
                        help="X-Repro-Tenant fairness label")
    parser.add_argument("--refine-shots", type=int, default=None,
                        metavar="N", help="re-submit with the shot request "
                        "raised to N (incremental refinement)")
    parser.add_argument("--output", default="-", metavar="PATH",
                        help="where to write the result JSON")
    args = parser.parse_args(argv)

    text = sys.stdin.read() if args.spec == "-" else \
        open(args.spec, encoding="utf-8").read()
    spec_doc = json.loads(text)

    if args.refine_shots is not None:
        # The shot-request field is the one axis refinement may vary.
        field = {"memory": "samples", "endtoend": "shots",
                 "detection": "trials"}.get(spec_doc.get("kind"))
        if field is None:
            sys.exit(f"kind {spec_doc.get('kind')!r} is not refinable")
        spec_doc[field] = args.refine_shots

    doc = submit_and_wait(args.url, spec_doc, args.tenant, args.poll)
    provenance = doc["result"]["provenance"]
    print(f"complete: cache_hit={doc['cache_hit']} "
          f"resumed_chunks={provenance.get('resumed_chunks')}",
          file=sys.stderr)
    rendered = json.dumps(doc, indent=2, sort_keys=True)
    if args.output == "-":
        print(rendered)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
