"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


def make_rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)
