"""FTQC architecture layer: ISA, control-unit buffers, plane, scheduler.

This subpackage models the classical half of Fig. 1: the instruction
queue and decoder/scheduler, the stabilizer assignment unit and qubit
plane, the Pauli frame and classical register, and the rollback-capable
buffers (syndrome queue, matching queue, instruction history buffer)
added by Q3DE.
"""

from repro.arch.isa import Instruction, InstructionKind, InstructionQueue
from repro.arch.pauli_frame import PauliFrame, ClassicalRegister
from repro.arch.buffers import SyndromeQueue, MatchingQueue, InstructionHistoryBuffer
from repro.arch.qubit_plane import QubitPlane, Block, BlockState
from repro.arch.scheduler import GreedyScheduler
from repro.arch.memory_overhead import MemoryOverheadModel

__all__ = [
    "Instruction",
    "InstructionKind",
    "InstructionQueue",
    "PauliFrame",
    "ClassicalRegister",
    "SyndromeQueue",
    "MatchingQueue",
    "InstructionHistoryBuffer",
    "QubitPlane",
    "Block",
    "BlockState",
    "GreedyScheduler",
    "MemoryOverheadModel",
]
