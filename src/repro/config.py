"""One home for the ``REPRO_*`` environment knobs.

Before the unified campaign API every entry point read its own slice of
the environment: the benches parsed ``REPRO_WORKERS`` / ``REPRO_SAMPLES``
/ ``REPRO_SCALE`` / ``REPRO_JSON`` / ``REPRO_JSON_DIR`` in
``benchmarks/_common.py`` while :mod:`repro.sim.backend` read
``REPRO_BACKEND`` at import.  This module is now the single reader; the
values are resolved *at call time* — spec resolution, bench start —
never cached at import, so a test or driver can flip the environment and
see the change.

Documented defaults
-------------------

===================  =========  =============================================
variable             default    meaning
===================  =========  =============================================
``REPRO_WORKERS``    ``0``      shot-engine parallelism: ``0`` = the
                                whole-request in-process path (what
                                ``campaigns.run`` uses when unset), ``1`` =
                                the in-process fan-out-chunked path, ``> 1``
                                = a process pool of that size.  The bench
                                harness (``benchmarks/_common.mc_workers``)
                                passes its own historical default of ``1``.
``REPRO_BACKEND``    ``numpy``  array backend for the packed kernels
                                (``cupy`` is experimental and falls back
                                with a warning)
``REPRO_SAMPLES``    ``200``    Monte-Carlo samples per bench data point
``REPRO_SCALE``      ``1.0``    multiplier on all bench workload sizes
``REPRO_JSON``       ``1``      benches merge machine-readable sections into
                                ``BENCH_<name>.json``; ``0`` disables
``REPRO_JSON_DIR``   bench dir  where those JSON files land
``REPRO_CHECKPOINT_FSYNC``  ``1``  durability of checkpoint shard appends:
                                ``1`` (default) flushes *and* fsyncs
                                every chunk record before the next chunk
                                runs; ``0`` keeps the flush but skips the
                                ``fsync`` (faster on network filesystems,
                                at the cost of possibly recomputing the
                                final chunks after a host crash — a torn
                                tail never corrupts the shard either way)
``REPRO_SERVICE_PORT``  ``8765``  default TCP port of ``python -m repro
                                serve`` (``--port`` overrides)
``REPRO_SERVICE_THREADS``  ``2``  campaign-scheduler worker threads in the
                                service: how many campaigns compute
                                concurrently (``--threads`` overrides)
``REPRO_SERVICE_EXECUTOR``  ``inline-chunked``  executor each service
                                campaign dispatches to, in the CLI's
                                ``--executor`` syntax (``inline``,
                                ``inline-chunked``, ``pool:N``,
                                ``queue:DIR``); the chunked default keeps
                                sibling specs' chunk plans aligned for
                                incremental refinement and gives the
                                partial-estimate endpoint chunk-granular
                                progress
===================  =========  =============================================
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

#: The environment variables this module owns.
ENV_WORKERS = "REPRO_WORKERS"
ENV_BACKEND = "REPRO_BACKEND"
ENV_SAMPLES = "REPRO_SAMPLES"
ENV_SCALE = "REPRO_SCALE"
ENV_JSON = "REPRO_JSON"
ENV_JSON_DIR = "REPRO_JSON_DIR"
ENV_CHECKPOINT_FSYNC = "REPRO_CHECKPOINT_FSYNC"
ENV_SERVICE_PORT = "REPRO_SERVICE_PORT"
ENV_SERVICE_THREADS = "REPRO_SERVICE_THREADS"
ENV_SERVICE_EXECUTOR = "REPRO_SERVICE_EXECUTOR"

#: Values of boolean-ish variables read as "off".
_FALSY = ("0", "false", "no", "off", "")


def workers(default: int = 0) -> int:
    """Shot-engine worker count (``REPRO_WORKERS``), floored at 0.

    The implicit default (0, the in-process whole-request path) is what
    :func:`repro.campaigns.executors.default_executor` resolves to when
    the variable is unset, so an unset environment and an explicit
    ``REPRO_WORKERS=0`` behave identically.
    """
    return max(0, int(os.environ.get(ENV_WORKERS, default)))


def backend(default: str = "numpy") -> str:
    """Requested array backend name (``REPRO_BACKEND``), lowercased.

    Resolution (existence of CuPy, device probing, fallback warnings)
    stays in :func:`repro.sim.backend.select_backend`; this is only the
    environment read.
    """
    return (os.environ.get(ENV_BACKEND, default) or default).strip().lower() \
        or default


def samples(default: int = 200) -> int:
    """Samples per Monte-Carlo bench point, scaled by :func:`scale`."""
    return max(1, int(float(os.environ.get(ENV_SAMPLES, default)) * scale()))


def scale(default: float = 1.0) -> float:
    """Global bench workload multiplier (``REPRO_SCALE``)."""
    return float(os.environ.get(ENV_SCALE, default))


def json_enabled(argv: Optional[Sequence[str]] = None) -> bool:
    """Whether benches should write their machine-readable JSON.

    ``--json`` in ``argv`` forces it on regardless of the environment.
    """
    if argv is not None and "--json" in argv:
        return True
    return os.environ.get(ENV_JSON, "1").strip().lower() not in _FALSY


def json_dir(default: str) -> str:
    """Directory for ``BENCH_<name>.json`` files (``REPRO_JSON_DIR``)."""
    return os.environ.get(ENV_JSON_DIR, default)


def checkpoint_fsync() -> bool:
    """Whether shard appends ``fsync`` each record (``REPRO_CHECKPOINT_FSYNC``).

    On by default: a chunk record must be durable before the next chunk
    runs for resume to be loss-free across host crashes.  Turning it off
    keeps the per-record flush (process kills stay safe) but lets the OS
    schedule the disk write.
    """
    return os.environ.get(ENV_CHECKPOINT_FSYNC, "1").strip().lower() \
        not in _FALSY


def service_port(default: int = 8765) -> int:
    """TCP port for ``python -m repro serve`` (``REPRO_SERVICE_PORT``)."""
    return int(os.environ.get(ENV_SERVICE_PORT, default))


def service_threads(default: int = 2) -> int:
    """Service scheduler worker threads (``REPRO_SERVICE_THREADS``).

    Floored at 1: the scheduler always has at least one campaign
    runner, whatever the environment says.
    """
    return max(1, int(os.environ.get(ENV_SERVICE_THREADS, default)))


def service_executor(default: str = "inline-chunked") -> str:
    """Executor the service dispatches campaigns to
    (``REPRO_SERVICE_EXECUTOR``, CLI ``--executor`` syntax).

    The chunked in-process default keeps chunk plans identical across
    sibling shot requests (the refinement prefix contract) and gives
    the partial-estimate endpoint chunk-granular progress; ``pool:N``
    or ``queue:DIR`` scale a single server over cores or hosts.
    """
    return (os.environ.get(ENV_SERVICE_EXECUTOR, default) or default).strip() \
        or default


def snapshot() -> dict:
    """The resolved knob values, for provenance blocks and debugging."""
    return {
        "workers": workers(),
        "backend": backend(),
        "samples": samples(),
        "scale": scale(),
        "json": json_enabled(),
        "checkpoint_fsync": checkpoint_fsync(),
        "service_port": service_port(),
        "service_threads": service_threads(),
        "service_executor": service_executor(),
    }
