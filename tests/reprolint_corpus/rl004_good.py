"""RL004 corpus twin: frozen, JSON-round-trippable registered specs."""

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.campaigns import register_campaign
from repro.noise.models import AnomalousRegion


@dataclass(frozen=True)
class CleanEvent:
    """A frozen value object nested in the spec: wire-legal without a
    manifest ``json_convertible`` entry, because RL004 recurses."""

    onset: int = 0
    size: int = 1
    weight: float = 1.0
    chain: "Optional[CleanEvent]" = None  # self-reference: still fine


@dataclass(frozen=True)
class CleanSpec:
    kind = "corpus-clean"

    distance: int
    p: float
    region: Union[AnomalousRegion, str, None] = None
    cycles: Optional[int] = None
    areas: tuple[float, ...] = (1.0, 2.0)
    axes: dict = field(default_factory=dict)
    label: "str" = "x"
    event: Optional[CleanEvent] = None
    bursts: tuple[CleanEvent, ...] = ()


@dataclass
class NotASpec:
    """Mutable and un-serializable — but never registered, so exempt."""

    anything: object = None


@register_campaign(CleanSpec)
def _run_clean(spec, executor, store):
    return None
