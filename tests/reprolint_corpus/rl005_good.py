"""RL005 corpus twin: the same wire module, deterministic and safe."""

import json
import zlib


def write_record(fh, outcome, meta):
    payload = json.dumps([outcome, meta], sort_keys=True,
                         separators=(",", ":"))
    record = {
        "data": payload,
        "crc": zlib.crc32(payload.encode("utf-8")),
    }
    fh.write(json.dumps(record, sort_keys=True))


def load_record(line: str):
    return json.loads(line)


def chunk_order(indices):
    out = []
    for index in sorted(set(indices)):   # sorted(): order pinned
        out.append(index)
    return sorted(set(out))
