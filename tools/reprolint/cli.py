"""``python -m reprolint``: the command-line front end.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage/configuration
error.  ``--json`` swaps the human diagnostics for the machine document
CI consumes (schema in :data:`reprolint.JSON_SCHEMA_VERSION`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from reprolint import __version__
from reprolint.engine import all_rules, run_paths
from reprolint.manifest import ManifestError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=("AST contract checker for the repo's "
                     "reproducibility, seam-purity, and seed-discipline "
                     "invariants (see docs/CONTRACTS.md)"))
    parser.add_argument("paths", nargs="*",
                        help="files and/or directories to lint")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable JSON report")
    parser.add_argument("--manifest", metavar="TOML",
                        help="contract manifest (default: the repo's "
                             "tools/reprolint/seam_manifest.toml)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--lint-tests", action="store_true",
                        help="apply test-exempt rules (RL001) to "
                             "test/fixture files too (corpus runs)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    parser.add_argument("--version", action="version",
                        version=f"reprolint {__version__}")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  [{rule.severity}]  {rule.name}: "
                  f"{rule.description}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m reprolint src)")

    select = [r for r in (args.select or "").split(",") if r.strip()] \
        or None
    try:
        report = run_paths(args.paths, manifest_path=args.manifest,
                           select=select, lint_tests=args.lint_tests)
    except (ManifestError, ValueError) as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2

    print(report.to_json() if args.json else report.render())
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
