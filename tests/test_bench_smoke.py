"""Benchmark smoke layer: every bench script must import and run.

``pytest -m bench_smoke`` imports every ``benchmarks/bench_*.py`` and
runs its ``smoke()`` — one tiny grid point per script — so benchmark
scripts cannot silently rot as the library underneath them moves.
"""

import importlib.util
import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_SCRIPTS = sorted(p.name for p in BENCH_DIR.glob("bench_*.py"))


def _load(name: str):
    if str(BENCH_DIR) not in sys.path:  # bench modules import _common
        sys.path.insert(0, str(BENCH_DIR))
    spec = importlib.util.spec_from_file_location(
        name.removesuffix(".py"), BENCH_DIR / name)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.bench_smoke
def test_bench_scripts_exist():
    assert BENCH_SCRIPTS, "no benchmark scripts found"


@pytest.mark.bench_smoke
@pytest.mark.parametrize("script", BENCH_SCRIPTS)
def test_bench_script_smokes(script, monkeypatch):
    """Import the script and run its one-point smoke entry."""
    monkeypatch.setenv("REPRO_JSON", "0")  # no artifacts from smokes
    module = _load(script)
    assert hasattr(module, "smoke"), \
        f"{script} has no smoke() entry point for the bench_smoke layer"
    module.smoke()
