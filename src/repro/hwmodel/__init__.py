"""Decoding-unit hardware model (paper Sec. VIII-D, Table IV).

The paper evaluates a greedy-based decoder (QECOOL re-targeted from SFQ
to an FPGA via Vitis HLS).  Offline we cannot run HLS, so this package
substitutes a *model* (documented in DESIGN.md):

* :mod:`repro.hwmodel.resources` -- structural FF/LUT/throughput cost
  model calibrated against the paper's four published post-layout rows;
* :mod:`repro.hwmodel.pipeline` -- a cycle-approximate software model of
  the ANQ (active nodes queue) matching pipeline that also measures the
  real algorithm's software throughput.

The reproduced *claims* are the ratios: Q3DE costs roughly 40 % more LUTs
than BASE at equal entry count, with near-parity throughput.
"""

from repro.hwmodel.resources import DecoderHardwareModel, required_anq_entries
from repro.hwmodel.pipeline import ANQPipelineModel, measure_software_throughput

__all__ = [
    "DecoderHardwareModel",
    "required_anq_entries",
    "ANQPipelineModel",
    "measure_software_throughput",
]
