"""Direct tests for :mod:`repro.noise.leakage` (Sec. IX burst sources)."""

import numpy as np
import pytest

from repro.core.policy import ReactionPolicy
from repro.noise.leakage import (RECOMMENDED_POLICY, BurstEvent,
                                 BurstProcess, BurstSource,
                                 ion_trap_processes)
from repro.noise.models import AnomalousRegion


def _process(**overrides):
    kwargs = dict(source=BurstSource.LEAKAGE, rate_per_cycle=2e-3,
                  size=2, duration_cycles=50, rows=8, cols=9,
                  rng=np.random.default_rng(7))
    kwargs.update(overrides)
    return BurstProcess(**kwargs)


class TestBurstProcess:
    def test_sample_is_deterministic_per_seed(self):
        a = _process(rng=np.random.default_rng(3)).sample(10_000)
        b = _process(rng=np.random.default_rng(3)).sample(10_000)
        assert a == b and len(a) > 0
        c = _process(rng=np.random.default_rng(4)).sample(10_000)
        assert a != c

    def test_events_are_sorted_and_in_bounds(self):
        events = _process().sample(50_000)
        assert len(events) > 10
        cycles = [e.cycle for e in events]
        assert cycles == sorted(cycles)
        for event in events:
            assert 0 <= event.cycle < 50_000
            # the size-2 box stays on the 8x9 lattice
            assert 0 <= event.row <= 8 - 2
            assert 0 <= event.col <= 9 - 2
            assert event.size == 2
            assert event.duration_cycles == 50
            assert event.source is BurstSource.LEAKAGE

    def test_arrival_count_tracks_the_rate(self):
        events = _process(rate_per_cycle=1e-2).sample(100_000)
        # Poisson(1000): a 10-sigma band is [684, 1316]
        assert 684 <= len(events) <= 1316

    def test_zero_rate_is_silent(self):
        assert _process(rate_per_cycle=0.0).sample(10_000) == []

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            _process(rate_per_cycle=-1e-3)
        with pytest.raises(ValueError, match="positive"):
            _process(size=0)
        with pytest.raises(ValueError, match="positive"):
            _process(duration_cycles=0)


class TestBurstEvent:
    def test_region_spans_the_event_window(self):
        event = BurstEvent(BurstSource.ATOM_LOSS, cycle=120, row=2,
                           col=3, size=1, duration_cycles=80)
        region = event.region()
        assert region == AnomalousRegion(2, 3, 1, t_lo=120, t_hi=200)
        clipped = event.region(t_hi=150)
        assert clipped.t_hi == 150 and clipped.t_lo == 120

    def test_recommended_policy_covers_every_source(self):
        assert set(RECOMMENDED_POLICY) == set(BurstSource)
        # cosmic rays expand in place; everything else needs repair
        # (reload / re-pump / re-calibrate), i.e. relocation.
        for source in BurstSource:
            expected = (ReactionPolicy.EXPAND
                        if source is BurstSource.COSMIC_RAY
                        else ReactionPolicy.RELOCATE)
            assert RECOMMENDED_POLICY[source] is expected
            event = BurstEvent(source, 0, 0, 0, 1, 1)
            assert event.recommended_policy is expected


class TestIonTrapProcesses:
    def test_reference_rates_and_shapes(self):
        rows, cols, cycle_s = 12, 13, 1e-4
        procs = ion_trap_processes(rows, cols,
                                   np.random.default_rng(1),
                                   cycle_s=cycle_s)
        by_source = {p.source: p for p in procs}
        assert set(by_source) == {
            BurstSource.ATOM_LOSS, BurstSource.CRYSTAL_SCRAMBLE,
            BurstSource.LEAKAGE, BurstSource.CALIBRATION_DRIFT}

        sites = rows * cols
        per_site_loss_hz = 1.0 / (14 * 86_400)
        loss = by_source[BurstSource.ATOM_LOSS]
        assert loss.rate_per_cycle == pytest.approx(
            per_site_loss_hz * sites * cycle_s)
        assert loss.size == 1

        scramble = by_source[BurstSource.CRYSTAL_SCRAMBLE]
        assert scramble.rate_per_cycle == pytest.approx(
            0.1 * loss.rate_per_cycle)
        assert scramble.size == max(rows, cols)  # the whole chain

        leak = by_source[BurstSource.LEAKAGE]
        assert leak.rate_per_cycle == pytest.approx(1e-7 * sites)
        assert leak.size == 1

        drift = by_source[BurstSource.CALIBRATION_DRIFT]
        assert drift.rate_per_cycle == pytest.approx(
            cycle_s / (4 * 3_600))
        assert drift.size == 3

        for proc in procs:
            assert proc.rows == rows and proc.cols == cols
            assert proc.duration_cycles >= 50_000

    def test_processes_share_one_rng_stream(self):
        """All four processes draw from the caller's generator, so one
        seed fixes the whole timeline."""
        def timeline(seed):
            events = []
            for proc in ion_trap_processes(6, 7,
                                           np.random.default_rng(seed)):
                events.extend(proc.sample(10_000_000))
            return events

        assert timeline(11) == timeline(11)
        assert timeline(11) != timeline(12)
