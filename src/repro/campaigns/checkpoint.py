"""Chunk-granular checkpoint/resume for long campaigns.

A checkpoint is a directory of JSONL *shard files*, one per spec, named
by the spec's hash (``<spec_hash>.jsonl``).  The first line is a header
carrying the full spec JSON; every later line is one finished chunk:
its index in the campaign's chunk plan, the outcome array (dtype, shape
and exact values — float64 round-trips losslessly through ``repr``),
the chunk's cache-counter deltas, and a CRC-32 of the payload.

Because a chunk's outcome is a pure function of ``(seed, batch_size,
chunk index)`` (the :func:`repro.sim.batch.chunk_plan` contract), a
killed campaign restarts from its shard file and produces outcomes
bit-identical to an uninterrupted run: restored chunks are ingested in
plan order, interleaved with freshly computed ones, through the same
streaming-estimate and early-stop code path.

Failure semantics are deliberately strict: a *truncated final line* is
the signature of a killed writer and is silently dropped (the chunk
recomputes), but any other malformation — garbage mid-file, a CRC
mismatch, a record for the wrong spec, duplicate chunk indices —
raises :class:`CheckpointError` rather than silently recomputing, since
it means the directory holds something other than what this campaign
wrote.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.campaigns.specs import spec_hash, spec_to_dict

#: Shard format version (bump on incompatible record changes).
FORMAT = 1

#: Outcome dtypes a shard may carry (guards eval-free reconstruction).
_DTYPES = ("int8", "int64", "float64")


class CheckpointError(RuntimeError):
    """A shard file exists but cannot be trusted."""


def _payload_crc(dtype: str, shape: list, data: list) -> int:
    doc = json.dumps([dtype, shape, data], separators=(",", ":"))
    return zlib.crc32(doc.encode("utf-8"))


def chunk_record(index: int, outcome: np.ndarray, cache_stats: tuple) -> dict:
    """One finished chunk as its CRC-stamped wire record.

    This is *the* chunk wire format: shard files append these records,
    and the distributed work queue (:mod:`repro.campaigns.distributed`)
    ships the identical record as a worker's result payload — one
    format, one CRC, one parser (:func:`decode_chunk`).
    """
    dtype = str(outcome.dtype)
    if dtype not in _DTYPES:
        raise CheckpointError(
            f"cannot checkpoint outcomes of dtype {dtype!r}")
    shape = list(outcome.shape)
    data = outcome.tolist()
    return {
        "type": "chunk",
        "index": int(index),
        "shots": int(len(outcome)),
        "dtype": dtype,
        "shape": shape,
        "data": data,
        "cache": [int(c) for c in cache_stats],
        "crc": _payload_crc(dtype, shape, data),
    }


def decode_chunk(
        record, where: str) -> tuple[int, np.ndarray, tuple[int, int, int]]:
    """Validate a chunk wire record back into ``(index, outcomes, stats)``.

    ``where`` names the record's origin for error messages (a shard
    line, a queue result file).  Raises :class:`CheckpointError` on any
    malformation — wrong type, missing fields, CRC mismatch, payload
    not matching its declared shape/dtype.
    """
    if not isinstance(record, dict) or record.get("type") != "chunk":
        raise CheckpointError(f"{where} is not a chunk record")
    try:
        index = record["index"]
        dtype, shape = record["dtype"], record["shape"]
        data, cache = record["data"], record["cache"]
        crc = record["crc"]
    except KeyError as exc:
        raise CheckpointError(f"{where} is missing field {exc}") from exc
    if not isinstance(index, int) or index < 0:
        raise CheckpointError(f"{where} has a bad chunk index")
    if dtype not in _DTYPES:
        raise CheckpointError(f"{where} has unsupported dtype {dtype!r}")
    if crc != _payload_crc(dtype, shape, data):
        raise CheckpointError(
            f"{where} failed its CRC — the record is corrupted; delete "
            "it to recompute from scratch")
    try:
        outcome = np.asarray(data, dtype=dtype).reshape(shape)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"{where} payload does not match its declared shape/dtype "
            f"({exc})") from exc
    if not (isinstance(cache, list) and len(cache) == 3
            and all(isinstance(c, int) for c in cache)):
        raise CheckpointError(f"{where} has a bad cache-stats triple")
    return index, outcome, (cache[0], cache[1], cache[2])


class ShardFile:
    """One spec's chunk records (``<dir>/<spec_hash>.jsonl``)."""

    def __init__(self, path: Union[str, Path], spec):
        self.path = Path(path)
        self.spec = spec
        self.spec_hash = spec_hash(spec)
        #: Effective chunk size the shard was written under (from the
        #: header, set by :meth:`load`).  Specs with ``batch_size=None``
        #: resolve it per executor, so a resume must adopt the recorded
        #: value to keep the chunk plan — and the outcomes — identical.
        self.recorded_batch_size: Optional[int] = None

    # ------------------------------------------------------------------
    def load(self) -> dict[int, tuple[np.ndarray, tuple[int, int, int]]]:
        """Restore finished chunks: ``{index: (outcomes, cache_stats)}``.

        Missing file means a fresh campaign (empty dict).  A truncated
        final line is dropped; everything else malformed raises
        :class:`CheckpointError`.
        """
        if not self.path.exists():
            return {}
        raw = self.path.read_text(encoding="utf-8")
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            return {}
        records = []
        for pos, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except ValueError as exc:
                if pos == len(lines) - 1:
                    break  # killed mid-write: recompute that chunk
                raise CheckpointError(
                    f"{self.path}: line {pos + 1} is not valid JSON "
                    f"({exc}); refusing to resume from a corrupted shard"
                ) from exc
        if not records:
            return {}
        self._check_header(records[0])
        chunks: dict[int, tuple[np.ndarray, tuple[int, int, int]]] = {}
        for pos, record in enumerate(records[1:], start=2):
            index, outcome, cache = self._parse_chunk(record, pos)
            if index in chunks:
                raise CheckpointError(
                    f"{self.path}: duplicate record for chunk {index}")
            chunks[index] = (outcome, cache)
        return chunks

    def _check_header(self, header) -> None:
        if not isinstance(header, dict) or header.get("type") != "header":
            raise CheckpointError(
                f"{self.path}: first line is not a shard header")
        if header.get("format") != FORMAT:
            raise CheckpointError(
                f"{self.path}: unsupported shard format "
                f"{header.get('format')!r} (expected {FORMAT})")
        if header.get("spec_hash") != self.spec_hash:
            raise CheckpointError(
                f"{self.path}: shard belongs to spec "
                f"{header.get('spec_hash')!r}, not {self.spec_hash!r}")
        batch_size = header.get("batch_size")
        if batch_size is not None and (not isinstance(batch_size, int)
                                       or batch_size < 1):
            raise CheckpointError(
                f"{self.path}: header has a bad batch_size "
                f"{batch_size!r}")
        self.recorded_batch_size = batch_size

    def _parse_chunk(self, record, pos: int):
        return decode_chunk(record, f"{self.path}: line {pos}")

    # ------------------------------------------------------------------
    def _drop_partial_tail(self) -> None:
        """Truncate a killed writer's partial final line before appending.

        ``load()`` ignores a truncated last line, but appending onto it
        would weld the new record to the garbage and move the damage
        mid-file — bricking the shard on the *next* resume.  Cutting
        back to the last complete newline keeps the recompute-the-last-
        chunk semantics stable across any number of kills.
        """
        if not self.path.exists() or self.path.stat().st_size == 0:
            return
        with open(self.path, "r+b") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) == b"\n":
                return
            # Scan back (in one bounded read) for the last newline.
            fh.seek(0)
            data = fh.read(size)
            keep = data.rfind(b"\n") + 1  # 0 when no newline at all
            fh.truncate(keep)

    def append(self, index: int, outcome: np.ndarray,
               cache_stats: tuple,
               batch_size: Optional[int] = None) -> None:
        """Durably record one finished chunk (header written lazily).

        ``batch_size`` is the campaign's *effective* chunk size; it goes
        into the header so a later resume rebuilds the exact same chunk
        plan even under a different executor.

        Every record is flushed before returning; whether it is also
        fsynced is the ``REPRO_CHECKPOINT_FSYNC`` knob
        (:func:`repro.config.checkpoint_fsync`, on by default).
        """
        from repro import config
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._drop_partial_tail()
        is_new = not self.path.exists() or self.path.stat().st_size == 0
        record = chunk_record(index, outcome, cache_stats)
        with open(self.path, "a", encoding="utf-8") as fh:
            if is_new:
                header = {"type": "header", "format": FORMAT,
                          "spec_hash": self.spec_hash,
                          "kind": getattr(self.spec, "kind", "?"),
                          "batch_size": batch_size,
                          "spec": spec_to_dict(self.spec)}
                fh.write(json.dumps(header) + "\n")
            fh.write(json.dumps(record) + "\n")
            fh.flush()
            if config.checkpoint_fsync():
                os.fsync(fh.fileno())


class CheckpointStore:
    """A directory of shard files, one per spec hash."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def shard(self, spec) -> ShardFile:
        return ShardFile(self.directory / f"{spec_hash(spec)}.jsonl",
                         spec)


def resolve_store(checkpoint) -> Optional[CheckpointStore]:
    """Coerce the public ``checkpoint=`` argument to a store.

    Accepts ``None``, a directory path, or a ready
    :class:`CheckpointStore`.
    """
    if checkpoint is None or isinstance(checkpoint, CheckpointStore):
        return checkpoint
    return CheckpointStore(checkpoint)
