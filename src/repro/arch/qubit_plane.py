"""The qubit plane: a block grid hosting logical qubits (paper Sec. II-B).

Following the paper's allocation (after Beverland et al.), logical qubits
occupy blocks at odd-indexed rows and columns of the block grid, leaving
vacant blocks between them for lattice-surgery routing: an 11 x 11 grid
hosts 5 x 5 = 25 logical qubits (Fig. 10 left).

Blocks can be: vacant, hosting a logical qubit, reserved by an executing
instruction, anomalous (struck by a cosmic ray), or absorbed into an
expanded logical qubit (Q3DE's 2x2-block expansion).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional


class BlockState(enum.Enum):
    VACANT = "vacant"
    LOGICAL = "logical"
    RESERVED = "reserved"        # in use by an executing instruction
    ANOMALOUS = "anomalous"      # struck; avoided by the scheduler
    EXPANSION = "expansion"      # absorbed into an expanded logical qubit


@dataclass
class Block:
    """One surface-code block on the plane."""

    row: int
    col: int
    state: BlockState = BlockState.VACANT
    logical_id: Optional[int] = None
    busy_until: int = -1          # slot index; RESERVED while slot < this
    anomalous_until: int = -1


class QubitPlane:
    """A rows x cols block grid with the paper's checkerboard allocation."""

    def __init__(self, rows: int = 11, cols: int = 11):
        if rows < 1 or cols < 1:
            raise ValueError("plane must be non-empty")
        self.rows = rows
        self.cols = cols
        self.blocks = [[Block(r, c) for c in range(cols)] for r in range(rows)]
        self.logical_positions: dict[int, tuple[int, int]] = {}
        self.expansions: dict[int, list[tuple[int, int]]] = {}
        qubit = 0
        for r in range(1, rows, 2):
            for c in range(1, cols, 2):
                self.blocks[r][c].state = BlockState.LOGICAL
                self.blocks[r][c].logical_id = qubit
                self.logical_positions[qubit] = (r, c)
                qubit += 1
        self.num_logical = qubit

    # ------------------------------------------------------------------
    def block(self, row: int, col: int) -> Block:
        return self.blocks[row][col]

    def in_bounds(self, row: int, col: int) -> bool:
        return 0 <= row < self.rows and 0 <= col < self.cols

    def neighbors(self, row: int, col: int) -> Iterator[tuple[int, int]]:
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            if self.in_bounds(row + dr, col + dc):
                yield row + dr, col + dc

    # ------------------------------------------------------------------
    # Anomaly and expansion management
    # ------------------------------------------------------------------
    def strike(self, row: int, col: int, until_slot: int) -> Block:
        """A cosmic ray hits a block; vacant blocks become ANOMALOUS
        (detected via direct data-qubit measurement and avoided)."""
        blk = self.blocks[row][col]
        blk.anomalous_until = max(blk.anomalous_until, until_slot)
        if blk.state is BlockState.VACANT:
            blk.state = BlockState.ANOMALOUS
        return blk

    def expire_anomalies(self, slot: int) -> list[tuple[int, int]]:
        """Return struck blocks to service once their anomaly has decayed."""
        recovered = []
        for row in self.blocks:
            for blk in row:
                if (blk.state is BlockState.ANOMALOUS
                        and blk.anomalous_until <= slot):
                    blk.state = BlockState.VACANT
                    recovered.append((blk.row, blk.col))
        return recovered

    def is_anomalous(self, row: int, col: int, slot: int) -> bool:
        return self.blocks[row][col].anomalous_until > slot

    def expand_logical(self, qubit: int, slot: int) -> bool:
        """Grow a struck logical qubit into a 2x2 block group (Sec. V-B).

        Absorbs up to three vacant neighbouring blocks (preferring the
        quadrant with free space).  Returns False if no vacant neighbour
        exists (the expansion stays queued).
        """
        if qubit in self.expansions:
            return True
        r, c = self.logical_positions[qubit]
        absorbed: list[tuple[int, int]] = []
        for dr, dc in ((0, 1), (1, 0), (1, 1), (0, -1), (-1, 0), (-1, -1),
                       (1, -1), (-1, 1)):
            if len(absorbed) == 3:
                break
            rr, cc = r + dr, c + dc
            if not self.in_bounds(rr, cc):
                continue
            blk = self.blocks[rr][cc]
            if blk.state is BlockState.VACANT and blk.busy_until < 0:
                blk.state = BlockState.EXPANSION
                blk.logical_id = qubit
                absorbed.append((rr, cc))
        if not absorbed:
            return False
        self.expansions[qubit] = absorbed
        return True

    def shrink_logical(self, qubit: int) -> None:
        """Release an expansion's absorbed blocks."""
        for rr, cc in self.expansions.pop(qubit, []):
            blk = self.blocks[rr][cc]
            blk.state = BlockState.VACANT
            blk.logical_id = None

    def is_expanded(self, qubit: int) -> bool:
        return qubit in self.expansions

    # ------------------------------------------------------------------
    # Routing availability
    # ------------------------------------------------------------------
    def routable(self, row: int, col: int, slot: int) -> bool:
        """True iff a block can carry a lattice-surgery path this slot."""
        blk = self.blocks[row][col]
        return (blk.state is BlockState.VACANT
                and blk.busy_until <= slot
                and blk.anomalous_until <= slot)

    def qubit_free(self, qubit: int, slot: int) -> bool:
        """True iff a logical qubit is not reserved by an executing op."""
        r, c = self.logical_positions[qubit]
        if self.blocks[r][c].busy_until > slot:
            return False
        return all(self.blocks[rr][cc].busy_until <= slot
                   for rr, cc in self.expansions.get(qubit, []))

    def reserve(self, cells: list[tuple[int, int]], until_slot: int) -> None:
        for r, c in cells:
            self.blocks[r][c].busy_until = max(
                self.blocks[r][c].busy_until, until_slot)
