"""The stage seam: structure, per-stage units, and golden certification.

The refactor contract for PR 7 is that re-basing the shot kernels on
:mod:`repro.sim.stages` changes *structure only*: for a given
``(seed, batch_size)`` every kernel's outputs must equal the
pre-refactor monolithic paths bit for bit.  The ``Golden*`` classes pin
SHA-256 digests and campaign counts captured by running the
pre-refactor kernels (commit b5da1d7) with these exact parameters — if
any staged path drifts, these fail first.
"""

import hashlib

import numpy as np
import pytest

from repro import campaigns
from repro.noise.models import AnomalousRegion
from repro.sim.batch import (DetectionShotKernel, EndToEndShotKernel,
                             MemoryShotKernel)
from repro.sim.stages import (ShotPipeline, Stage, StageContext, StageState,
                              _overwrite_anomalous)
from repro.sim import backend


def digest(a: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(a).tobytes()).hexdigest()[:16]


def memory_kernel() -> MemoryShotKernel:
    return MemoryShotKernel(5, 0.02,
                            region=AnomalousRegion.centered(5, 2),
                            p_ano=0.5)


def endtoend_kernel(**overrides) -> EndToEndShotKernel:
    params = dict(distance=5, p=0.01, p_ano=0.5, anomaly_size=2,
                  onset=30, cycles=70, c_win=20, n_th=3, alpha=0.01)
    params.update(overrides)
    return EndToEndShotKernel(**params)


def detection_kernel(**overrides) -> DetectionShotKernel:
    params = dict(distance=5, p=2e-3, p_ano=0.5, anomaly_size=2,
                  c_win=30, n_th=3, alpha=0.01, normal_cycles=60,
                  post_cycles=120)
    params.update(overrides)
    return DetectionShotKernel(**params)


# ----------------------------------------------------------------------
# Golden certification: staged kernels == pre-refactor outputs
# ----------------------------------------------------------------------
class TestGoldenKernels:
    """Digests captured from the pre-seam kernels (same seeds/params)."""

    @pytest.mark.parametrize("packing", ["none", "bits"])
    def test_memory_kernel_golden(self, packing):
        kernel = memory_kernel()
        run = (kernel.run_batch if packing == "none"
               else kernel.run_batch_packed)
        out = run(37, np.random.default_rng(123))
        assert digest(out) == "3601b4a71e36a6e5"

    @pytest.mark.parametrize("packing", ["none", "bits"])
    def test_endtoend_kernel_golden(self, packing):
        kernel = endtoend_kernel()
        run = (kernel.run_batch if packing == "none"
               else kernel.run_batch_packed)
        out = run(29, np.random.default_rng(7))
        assert digest(out) == "fc4151090cab8662"

    @pytest.mark.parametrize("packing", ["none", "bits"])
    def test_detection_kernel_golden(self, packing):
        kernel = detection_kernel()
        run = (kernel.run_batch if packing == "none"
               else kernel.run_batch_packed)
        out = run(21, np.random.default_rng(11))
        assert digest(out) == "c85adf7c9bab065f"


class TestGoldenCampaigns:
    """Campaign-level counts captured from the pre-seam engine."""

    def test_memory_campaign_golden(self):
        result = campaigns.run(campaigns.MemorySpec(
            distance=5, p=0.02, samples=200, region="centered",
            anomaly_size=2, seed=5))
        assert result.counts["failures"] == 113

    def test_endtoend_campaign_golden(self):
        result = campaigns.run(campaigns.EndToEndSpec(
            distance=5, p=0.01, shots=40, anomaly_size=2, onset=30,
            cycles=70, c_win=20, n_th=3, seed=9))
        assert result.counts["naive_failures"] == 19
        assert result.counts["detected_failures"] == 21
        assert result.counts["oracle_failures"] == 16
        assert result.counts["detections"] == 40

    def test_detection_campaign_golden(self):
        result = campaigns.run(campaigns.DetectionSpec(
            distance=5, p=2e-3, p_ano=0.5, anomaly_size=2, c_win=30,
            n_th=3, trials=24, seed=3))
        assert result.counts["false_positives"] == 4
        assert result.counts["detections"] == 24


# ----------------------------------------------------------------------
# Pipeline structure
# ----------------------------------------------------------------------
class TestPipelineStructure:
    def test_stage_names(self):
        assert memory_kernel().pipeline().names() == \
            ("sample", "extract", "decode", "accumulate")
        assert endtoend_kernel().pipeline().names() == \
            ("sample", "extract", "detect", "decode", "accumulate")
        assert detection_kernel().pipeline().names() == \
            ("sample", "extract", "detect")

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            ShotPipeline(())

    def test_run_until_unknown_stage(self):
        kernel = memory_kernel()
        with pytest.raises(ValueError, match="no stage named"):
            kernel.pipeline().run_until(
                "detect", kernel._context(4, np.random.default_rng(0),
                                          "none"))

    def test_base_stage_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Stage().run(StageContext(shots=1, packing="none"),
                        StageState())

    def test_context_carries_backend_seam(self):
        ctx = StageContext(shots=1, packing="bits")
        assert ctx.backend is backend

    def test_context_is_frozen(self):
        ctx = StageContext(shots=1, packing="bits")
        with pytest.raises(AttributeError):
            ctx.shots = 2

    def test_fresh_state_is_empty(self):
        state = StageState()
        assert state.v is None and state.outcomes is None


# ----------------------------------------------------------------------
# Stages as independently runnable units
# ----------------------------------------------------------------------
class TestMemoryStagesStepwise:
    def test_stepwise_equals_run_batch(self):
        shots, seed = 23, 42
        kernel = memory_kernel()
        ctx = kernel._context(shots, np.random.default_rng(seed), "none")
        state = StageState()
        sample, extract, decode, accumulate = kernel.pipeline().stages

        sample.run(ctx, state)
        assert state.v.shape == (shots, kernel.cycles, 5, 5)
        assert state.nodes_list is None  # not extracted yet

        extract.run(ctx, state)
        assert len(state.nodes_list) == shots
        assert state.parities.shape == (shots,)

        decode.run(ctx, state)
        assert state.matchings.shape == (shots,)

        accumulate.run(ctx, state)
        np.testing.assert_array_equal(
            state.outcomes, state.parities ^ state.matchings)
        np.testing.assert_array_equal(
            state.outcomes,
            memory_kernel().run_batch(shots, np.random.default_rng(seed)))

    def test_extract_stage_packed_matches_float(self):
        """The extract seam alone reproduces the float path's nodes."""
        shots, seed = 21, 3
        kernel = memory_kernel()
        pipeline = kernel.pipeline()
        states = {}
        for packing in ("none", "bits"):
            states[packing] = pipeline.run_until(
                "extract",
                kernel._context(shots, np.random.default_rng(seed),
                                packing))
        for a, b in zip(states["none"].nodes_list,
                        states["bits"].nodes_list, strict=True):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(states["none"].parities,
                                      states["bits"].parities)


class TestEndToEndStagesStepwise:
    def test_detect_stage_produces_decode_inputs(self):
        shots, seed = 9, 17
        kernel = endtoend_kernel()
        state = kernel.pipeline().run_until(
            "detect", kernel._context(shots, np.random.default_rng(seed),
                                      "bits"))
        assert len(state.nodes_list) == shots
        assert len(state.detections) == shots
        assert state.parities.shape == (shots,)
        assert all(isinstance(r, AnomalousRegion) for r in state.regions)

    def test_chunk_packed_matches_full_run(self):
        shots, seed = 13, 5
        kernel = endtoend_kernel()
        chunk = kernel._chunk_packed(shots, np.random.default_rng(seed))
        out = kernel._assemble(*chunk)
        np.testing.assert_array_equal(
            out,
            endtoend_kernel().run_batch_packed(
                shots, np.random.default_rng(seed)))

    @pytest.mark.parametrize("decode", ["batched", "pershot"])
    def test_decode_modes_agree_through_stages(self, decode):
        shots, seed = 11, 29
        out = endtoend_kernel(decode=decode).run_batch_packed(
            shots, np.random.default_rng(seed))
        ref = endtoend_kernel(decode="batched").run_batch(
            shots, np.random.default_rng(seed))
        np.testing.assert_array_equal(out, ref)


class TestDetectionStagesStepwise:
    @pytest.mark.parametrize("scan", ["batched", "pershot"])
    def test_scan_modes_agree_through_stages(self, scan):
        shots, seed = 12, 8
        out = detection_kernel(scan=scan).run_batch_packed(
            shots, np.random.default_rng(seed))
        ref = detection_kernel(scan="batched").run_batch(
            shots, np.random.default_rng(seed))
        np.testing.assert_array_equal(out, ref)

    def test_extract_stage_activity_shapes(self):
        shots, seed = 7, 2
        kernel = detection_kernel()
        total = kernel.normal_cycles + kernel.post_cycles
        state = kernel.pipeline().run_until(
            "extract", kernel._context(shots, np.random.default_rng(seed),
                                       "none"))
        assert state.activity.shape == (shots, total, 4, 5)


# ----------------------------------------------------------------------
# The re-exported overwrite helper keeps its import surface
# ----------------------------------------------------------------------
def test_overwrite_reexported_from_batch():
    from repro.sim import batch
    assert batch._overwrite_anomalous is _overwrite_anomalous
