"""Temporal code expansion controller (paper Sec. V).

When the anomaly detection unit flags a logical qubit, it inserts an
``op_expand`` into the *expansion queue*.  The controller grows the
qubit's code distance to ``d_exp >= d + 2 d_ano`` (doubling, in practice:
a 2x2 block of patches) as soon as plane space allows, keeps it expanded
for the expected MBBE lifetime, extends the keep time if a second
detection lands on an already-expanded qubit, and shrinks back afterwards.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional


def required_expanded_distance(d: int, d_ano: int) -> int:
    """The minimum useful expanded distance ``d + 2 d_ano`` (Sec. V-B)."""
    return d + 2 * d_ano


@dataclass(frozen=True)
class ExpansionRequest:
    """An ``op_expand`` sitting in the expansion queue."""

    qubit: int
    requested_cycle: int
    keep_cycles: int


@dataclass
class QubitCodeState:
    """Tracked per-logical-qubit encoding state."""

    default_distance: int
    current_distance: int
    expanded_until: Optional[int] = None
    expansion_started: Optional[int] = None

    @property
    def is_expanded(self) -> bool:
        return self.current_distance > self.default_distance


@dataclass
class ExpansionController:
    """Processes the expansion queue against plane-space availability.

    Args:
        default_distance: the default code distance ``d``.
        expanded_distance: the target ``d_exp`` (defaults to ``2 d``,
            the paper's 2x2-block doubling).
        expansion_latency: cycles from commit to full protection (one
            deformation round plus ``d_exp`` stabilizer rounds).
        space_available: callback asked whether the plane has room to
            expand a given qubit right now (the stabilizer assignment
            unit's answer); default always true.
    """

    default_distance: int
    expanded_distance: Optional[int] = None
    expansion_latency: Optional[int] = None
    space_available: Callable[[int], bool] = field(default=lambda qubit: True)
    queue: deque = field(default_factory=deque)
    states: dict[int, QubitCodeState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.expanded_distance is None:
            self.expanded_distance = 2 * self.default_distance
        if self.expanded_distance < self.default_distance:
            raise ValueError("expanded distance must be >= default")
        if self.expansion_latency is None:
            self.expansion_latency = 2 + self.expanded_distance

    # ------------------------------------------------------------------
    def state_of(self, qubit: int) -> QubitCodeState:
        if qubit not in self.states:
            self.states[qubit] = QubitCodeState(
                self.default_distance, self.default_distance)
        return self.states[qubit]

    def request(self, qubit: int, cycle: int, keep_cycles: int) -> None:
        """Queue an ``op_expand`` (called by the anomaly detection unit)."""
        self.queue.append(ExpansionRequest(qubit, cycle, keep_cycles))

    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> list[int]:
        """Advance one code cycle; returns qubits whose distance changed.

        Commits queued expansions when space allows; re-expansion requests
        on an already-expanded qubit extend its keep time (Sec. V-B);
        expired expansions shrink back to the default distance.
        """
        changed: list[int] = []
        pending: deque = deque()
        while self.queue:
            req = self.queue.popleft()
            state = self.state_of(req.qubit)
            if state.is_expanded:
                state.expanded_until = max(
                    state.expanded_until or cycle, cycle + req.keep_cycles)
                continue
            if not self.space_available(req.qubit):
                pending.append(req)
                continue
            state.current_distance = self.expanded_distance
            state.expansion_started = cycle
            state.expanded_until = cycle + req.keep_cycles
            changed.append(req.qubit)
        self.queue = pending

        for qubit, state in self.states.items():
            if (state.is_expanded and state.expanded_until is not None
                    and cycle >= state.expanded_until):
                state.current_distance = state.default_distance
                state.expanded_until = None
                state.expansion_started = None
                changed.append(qubit)
        return changed

    def protection_effective_at(self, qubit: int, cycle: int) -> bool:
        """True once the expanded code has been measured ``d_exp`` rounds."""
        state = self.state_of(qubit)
        return (state.is_expanded and state.expansion_started is not None
                and cycle >= state.expansion_started + self.expansion_latency)
