"""The five repo contracts, as AST rules (RL001-RL005).

Each rule states one invariant the bit-identical certification of PRs
1-5 rests on.  The rules resolve names through the file's actual
imports (``import numpy as np``, ``from numpy.random import
default_rng``, ...) rather than by string matching, so renaming an
alias neither evades nor confuses them.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from reprolint.engine import Diagnostic, FileContext, Rule, register_rule
from reprolint.manifest import Manifest, SeamModule


# ----------------------------------------------------------------------
# Shared import/name resolution
# ----------------------------------------------------------------------
class ImportMap:
    """Which local names are bound to which interesting modules."""

    def __init__(self, tree: ast.AST):
        self.numpy = set()          # names bound to the numpy module
        self.numpy_random = set()   # names bound to numpy.random
        self.from_numpy_random = {}  # local name -> numpy.random attr
        self.os = set()             # names bound to the os module
        self.from_os = {}           # local name -> os attr
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy" or \
                            alias.name.startswith("numpy."):
                        if alias.name == "numpy.random" and alias.asname:
                            self.numpy_random.add(local)
                        else:
                            self.numpy.add(local)
                    elif alias.name == "os" or alias.name.startswith("os."):
                        self.os.add(local)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy" and node.level == 0:
                    for alias in node.names:
                        if alias.name == "random":
                            self.numpy_random.add(alias.asname or "random")
                elif node.module == "numpy.random" and node.level == 0:
                    for alias in node.names:
                        self.from_numpy_random[alias.asname or alias.name] \
                            = alias.name
                elif node.module == "os" and node.level == 0:
                    for alias in node.names:
                        self.from_os[alias.asname or alias.name] = alias.name


def imports(ctx: FileContext) -> ImportMap:
    if "imports" not in ctx.cache:
        ctx.cache["imports"] = ImportMap(ctx.tree)
    return ctx.cache["imports"]


def dotted_parts(node) -> Optional[list]:
    """``np.random.default_rng`` -> ``["np", "random", "default_rng"]``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _argless(call: ast.Call) -> bool:
    return not call.args and not call.keywords


# ----------------------------------------------------------------------
# RL001 — seed discipline
# ----------------------------------------------------------------------
#: numpy.random module-level functions driving the hidden global RNG.
LEGACY_GLOBAL_RNG = frozenset({
    "seed", "get_state", "set_state",
    "rand", "randn", "randint", "random_integers", "random", "ranf",
    "random_sample", "sample", "bytes", "choice", "shuffle",
    "permutation", "uniform", "normal", "standard_normal", "binomial",
    "poisson", "exponential", "geometric", "beta", "gamma", "laplace",
    "lognormal", "multinomial", "multivariate_normal", "pareto",
    "triangular", "vonmises", "weibull", "zipf", "chisquare",
    "dirichlet", "f", "hypergeometric", "logistic", "logseries",
    "negative_binomial", "noncentral_chisquare", "noncentral_f",
    "power", "rayleigh", "standard_cauchy", "standard_exponential",
    "standard_gamma", "standard_t", "wald",
})

#: Constructors that fall back to OS entropy when called with no args.
ENTROPY_CTORS = frozenset({
    "default_rng", "SeedSequence", "PCG64", "PCG64DXSM", "MT19937",
    "Philox", "SFC64",
})


@register_rule
class SeedDiscipline(Rule):
    """No hidden-global or entropy-seeded RNG: generators are threaded.

    The reproducibility contract (PR 1 onward) is that every random
    stream derives from an explicit seed through ``SeedSequence``
    spawning, so a campaign is a pure function of its spec.  Both the
    legacy ``np.random.*`` global-state API and argless constructors
    (``default_rng()``, ``SeedSequence()``, bare bit generators) break
    that: they draw OS entropy invisible to any spec hash.
    """

    rule_id = "RL001"
    name = "seed-discipline"
    severity = "error"
    description = ("no numpy legacy global-RNG calls; no entropy-seeded "
                   "(argless) generator construction outside tests")

    def check(self, ctx: FileContext,
              manifest: Manifest) -> Iterator[Diagnostic]:
        if ctx.is_test_helper:
            return
        imap = imports(ctx)
        if not (imap.numpy or imap.numpy_random
                or imap.from_numpy_random):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                yield from self._check_attribute(ctx, imap, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, imap, node)

    def _resolve_random_attr(self, imap: ImportMap,
                             parts: list) -> Optional[str]:
        """The ``numpy.random`` attribute a dotted chain names, if any."""
        if len(parts) >= 3 and parts[0] in imap.numpy \
                and parts[1] == "random":
            return parts[2]
        if len(parts) >= 2 and parts[0] in imap.numpy_random:
            return parts[1]
        if parts and parts[0] in imap.from_numpy_random:
            return imap.from_numpy_random[parts[0]]
        return None

    def _check_attribute(self, ctx, imap, node) -> Iterator[Diagnostic]:
        parts = dotted_parts(node)
        if parts is None:
            return
        attr = self._resolve_random_attr(imap, parts)
        # Only report on the exact chain naming the function (not on
        # every enclosing attribute of a longer chain).
        if attr in LEGACY_GLOBAL_RNG and parts[-1] == attr:
            yield ctx.diagnostic(
                self, node,
                f"legacy global-state RNG 'numpy.random.{attr}' — derive "
                "a Generator from the campaign's threaded SeedSequence "
                "instead")

    def _check_call(self, ctx, imap, node) -> Iterator[Diagnostic]:
        parts = dotted_parts(node.func)
        if parts is None:
            return
        attr = self._resolve_random_attr(imap, parts)
        if attr in ENTROPY_CTORS and _argless(node):
            yield ctx.diagnostic(
                self, node,
                f"entropy-seeded 'numpy.random.{attr}()' (no seed "
                "argument) — reproducible code threads an explicit "
                "SeedSequence-derived seed")


# ----------------------------------------------------------------------
# RL002 — backend-seam purity
# ----------------------------------------------------------------------
@register_rule
class SeamPurity(Rule):
    """Seam-routed kernels reach arrays only through ``repro.sim.backend``.

    Modules registered in ``seam_manifest.toml`` promise that their
    scoped kernels run unchanged on any array backend (NumPy today,
    CuPy behind ``REPRO_BACKEND=cupy``).  A direct ``np.<attr>`` touch
    inside scope silently pins the kernel to the host; the manifest's
    per-module ``allow`` list names the *documented* host fast-path
    attributes (e.g. ``np.packbits`` behind an ``xp is np`` guard) —
    everything else must go through the backend handle.
    """

    rule_id = "RL002"
    name = "backend-seam-purity"
    severity = "error"
    description = ("seam-routed kernels use the repro.sim.backend handle; "
                   "direct numpy attributes only per the manifest "
                   "allow-list")

    def check(self, ctx: FileContext,
              manifest: Manifest) -> Iterator[Diagnostic]:
        module = manifest.seam_module_for(ctx.posix)
        if module is None:
            return
        imap = imports(ctx)
        yield from self._check_imports(ctx, module)
        yield from self._visit(ctx, imap, module, ctx.tree,
                               in_scope=module.whole_module)

    def _check_imports(self, ctx, module: SeamModule):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module \
                    and node.module.split(".")[0] == "numpy":
                bad = [a.name for a in node.names
                       if a.name not in module.allow]
                if bad:
                    yield ctx.diagnostic(
                        self, node,
                        f"seam-routed module imports {bad} straight from "
                        "numpy — route through repro.sim.backend (or add "
                        "a documented host fast path to the manifest "
                        "allow-list)")

    @staticmethod
    def _runtime_children(node):
        """Children of ``node``, minus type-annotation subtrees.

        Annotations (``v: np.ndarray``) are static typing, not array
        operations — only runtime attribute access pins a kernel to the
        host.
        """
        skip = set()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.returns is not None:
            skip.add(id(node.returns))
        if isinstance(node, (ast.arg, ast.AnnAssign)) \
                and node.annotation is not None:
            skip.add(id(node.annotation))
        for child in ast.iter_child_nodes(node):
            if id(child) not in skip:
                yield child

    def _visit(self, ctx, imap, module: SeamModule, node,
               in_scope: bool) -> Iterator[Diagnostic]:
        for child in self._runtime_children(node):
            child_scope = in_scope
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_scope = in_scope or module.scopes_function(child.name)
            if in_scope and isinstance(child, ast.Attribute) \
                    and isinstance(child.value, ast.Name) \
                    and child.value.id in imap.numpy \
                    and child.attr not in module.allow:
                yield ctx.diagnostic(
                    self, child,
                    f"direct numpy attribute "
                    f"'{child.value.id}.{child.attr}' in a seam-routed "
                    f"kernel — use the backend handle "
                    f"(repro.sim.backend / get_array_module), or list a "
                    f"documented host fast path in seam_manifest.toml")
            yield from self._visit(ctx, imap, module, child, child_scope)


# ----------------------------------------------------------------------
# RL003 — env-knob ownership
# ----------------------------------------------------------------------
@register_rule
class EnvKnobOwnership(Rule):
    """``os.environ`` / ``os.getenv`` live only in ``repro/config.py``.

    PR 5 moved every ``REPRO_*`` read behind :mod:`repro.config` so
    knob defaults, call-time resolution, and the provenance snapshot
    cannot drift apart.  Any other module reading the environment
    reintroduces an invisible input to a "reproducible" run.
    """

    rule_id = "RL003"
    name = "env-knob-ownership"
    severity = "error"
    description = ("environment reads (os.environ / os.getenv) are owned "
                   "by repro/config.py")

    _ENV_ATTRS = frozenset({"environ", "environb", "getenv", "putenv",
                            "unsetenv"})

    def check(self, ctx: FileContext,
              manifest: Manifest) -> Iterator[Diagnostic]:
        if manifest.is_env_owner(ctx.posix):
            return
        imap = imports(ctx)
        for local, attr in imap.from_os.items():
            if attr in self._ENV_ATTRS:
                node = self._import_node(ctx, attr)
                yield ctx.diagnostic(
                    self, node,
                    f"'from os import {attr}' outside the env-knob owner "
                    "— read knobs through repro.config")
        if not imap.os:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id in imap.os \
                    and node.attr in self._ENV_ATTRS:
                yield ctx.diagnostic(
                    self, node,
                    f"'os.{node.attr}' outside the env-knob owner "
                    f"(repro/config.py) — add a knob accessor to "
                    f"repro.config instead of reading the environment "
                    f"directly")

    @staticmethod
    def _import_node(ctx, attr):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "os" \
                    and any(a.name == attr for a in node.names):
                return node
        return ctx.tree


# ----------------------------------------------------------------------
# RL004 — spec discipline
# ----------------------------------------------------------------------
#: Builtin annotation heads that JSON round-trips structurally.
_JSON_SCALARS = frozenset({"int", "float", "str", "bool"})
_JSON_CONTAINERS = frozenset({"dict", "list", "tuple",
                              "Dict", "List", "Tuple",
                              "Mapping", "Sequence"})
_JSON_WRAPPERS = frozenset({"Optional", "Union", "Literal"})
_KNOWN_BAD = {
    "Any": "erases the wire schema",
    "object": "erases the wire schema",
    "bytes": "has no JSON encoding",
    "bytearray": "has no JSON encoding",
    "set": "serializes in nondeterministic order",
    "frozenset": "serializes in nondeterministic order",
    "Set": "serializes in nondeterministic order",
    "FrozenSet": "serializes in nondeterministic order",
    "Callable": "is not a value type",
    "ndarray": "does not JSON-round-trip (spec fields are plain values)",
}


@register_rule
class SpecDiscipline(Rule):
    """Registered campaign specs are frozen, JSON-round-trippable facts.

    ``spec_hash`` keys checkpoint shards and result provenance, so a
    registered spec type must be immutable (``@dataclass(frozen=True)``)
    and every field must survive the JSON wire format.  Detection is
    structural: the rule finds ``register_campaign(X)`` call sites
    anywhere in the linted tree and then audits the class definition of
    every ``X`` — naming conventions play no part.

    Field audits *recurse* through nested dataclasses: an annotation
    naming a dataclass defined anywhere in the linted tree is legal
    exactly when that dataclass is itself frozen and every one of its
    fields (transitively) survives the wire — so a spec can embed rich
    value objects (``Scenario`` holding ``StrikeEvent`` tuples) without
    each one needing a manifest ``json_convertible`` entry, while a
    mutable or set-carrying nested type is still a finding at the spec
    field that reaches it.  Self-referential nestings terminate (a
    cycle is audited once).
    """

    rule_id = "RL004"
    name = "spec-discipline"
    severity = "error"
    description = ("register_campaign'd spec classes must be frozen "
                   "dataclasses with JSON-representable fields")
    project_wide = True

    def check_project(self, contexts: list,
                      manifest: Manifest) -> Iterator[Diagnostic]:
        registered = set()
        dataclasses = {}  # class name -> its ClassDef, first wins
        for ctx in contexts:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Call):
                    name = self._registration_target(node)
                    if name is not None:
                        registered.add(name)
                elif isinstance(node, ast.ClassDef) \
                        and self._dataclass_frozen(node) is not None:
                    dataclasses.setdefault(node.name, node)
        if not registered:
            return
        for ctx in contexts:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef) \
                        and node.name in registered:
                    yield from self._check_spec_class(
                        ctx, node, manifest, dataclasses)

    @staticmethod
    def _registration_target(call: ast.Call) -> Optional[str]:
        func = call.func
        name = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else None
        if name != "register_campaign" or not call.args:
            return None
        target = call.args[0]
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return None

    def _check_spec_class(self, ctx, node: ast.ClassDef,
                          manifest: Manifest,
                          dataclasses: dict) -> Iterator[Diagnostic]:
        frozen = self._dataclass_frozen(node)
        if frozen is None:
            yield ctx.diagnostic(
                self, node,
                f"registered spec '{node.name}' is not a dataclass — "
                "campaign specs must be '@dataclass(frozen=True)'")
        elif frozen is not True:
            yield ctx.diagnostic(
                self, node,
                f"registered spec '{node.name}' is not frozen — its hash "
                "keys checkpoint shards, so it must be "
                "'@dataclass(frozen=True)'")
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign) \
                    or not isinstance(stmt.target, ast.Name):
                continue
            head = self._annotation_head(stmt.annotation)
            if head == "ClassVar":
                continue
            problem = self._json_problem(
                stmt.annotation, manifest.json_convertible,
                dataclasses, frozenset({node.name}))
            if problem:
                yield ctx.diagnostic(
                    self, stmt,
                    f"spec field '{node.name}.{stmt.target.id}' is not "
                    f"JSON-representable: {problem}")

    @staticmethod
    def _dataclass_frozen(node: ast.ClassDef):
        """None = not a dataclass; else the frozen=... value."""
        for deco in node.decorator_list:
            call = deco if isinstance(deco, ast.Call) else None
            target = call.func if call is not None else deco
            parts = dotted_parts(target)
            if parts and parts[-1] == "dataclass":
                if call is None:
                    return False  # bare @dataclass: frozen defaults off
                for kw in call.keywords:
                    if kw.arg == "frozen":
                        if isinstance(kw.value, ast.Constant):
                            return bool(kw.value.value)
                        return False  # non-literal: treat as unfrozen
                return False
        return None

    @staticmethod
    def _annotation_head(annotation) -> Optional[str]:
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        parts = dotted_parts(node)
        return parts[-1] if parts else None

    def _json_problem(self, node, convertible, dataclasses,
                      visiting) -> Optional[str]:
        """Why an annotation is not JSON-representable (None = fine).

        ``dataclasses`` maps class names to the dataclass definitions
        found in the linted tree; ``visiting`` is the set of class
        names already being audited up-stack (the cycle guard).
        """
        if isinstance(node, ast.Constant):
            if node.value is None or node.value is Ellipsis:
                return None
            if isinstance(node.value, str):  # quoted annotation
                try:
                    inner = ast.parse(node.value, mode="eval").body
                except SyntaxError:
                    return f"unparsable annotation {node.value!r}"
                return self._json_problem(inner, convertible,
                                          dataclasses, visiting)
            return f"unexpected literal {node.value!r}"
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = dotted_parts(node)
            name = name[-1] if name else None
            if name is None:
                return "unrecognized annotation"
            if name in _JSON_SCALARS or name in _JSON_CONTAINERS \
                    or name == "None":
                return None
            if name in convertible:
                return None
            if name in _KNOWN_BAD:
                return f"'{name}' {_KNOWN_BAD[name]}"
            if name in dataclasses:
                return self._nested_problem(name, convertible,
                                            dataclasses, visiting)
            return (f"'{name}' is not a JSON type (make it a frozen "
                    "dataclass with JSON-representable fields, or "
                    "declare it in the manifest's [rl004] "
                    "json_convertible list if the spec serializer "
                    "converts it)")
        if isinstance(node, ast.Subscript):
            head = self._annotation_head(node)
            if head in _KNOWN_BAD:
                return f"'{head}' {_KNOWN_BAD[head]}"
            if head == "Literal":
                return None
            if head not in _JSON_CONTAINERS and head not in _JSON_WRAPPERS:
                return f"'{head}[...]' is not a JSON container"
            inner = node.slice
            elements = inner.elts if isinstance(inner, ast.Tuple) \
                else [inner]
            for element in elements:
                problem = self._json_problem(element, convertible,
                                             dataclasses, visiting)
                if problem:
                    return problem
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return (self._json_problem(node.left, convertible,
                                       dataclasses, visiting)
                    or self._json_problem(node.right, convertible,
                                          dataclasses, visiting))
        return "unrecognized annotation construct"

    def _nested_problem(self, name, convertible, dataclasses,
                        visiting) -> Optional[str]:
        """Audit a nested dataclass reached from a spec field.

        The nesting is wire-legal when the dataclass is frozen and all
        its fields recursively survive JSON — the same bar the spec
        itself clears, because these values travel inside the hashed
        spec document.
        """
        if name in visiting:
            return None  # cycle: this class is already under audit
        node = dataclasses[name]
        if self._dataclass_frozen(node) is not True:
            return (f"nested dataclass '{name}' is not frozen — every "
                    "value embedded in a hashed spec must be immutable")
        visiting = visiting | {name}
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign) \
                    or not isinstance(stmt.target, ast.Name):
                continue
            if self._annotation_head(stmt.annotation) == "ClassVar":
                continue
            problem = self._json_problem(stmt.annotation, convertible,
                                         dataclasses, visiting)
            if problem:
                return (f"nested dataclass field "
                        f"'{name}.{stmt.target.id}': {problem}")
        return None


# ----------------------------------------------------------------------
# RL005 — checkpoint-wire hygiene
# ----------------------------------------------------------------------
#: Modules whose import into a wire module is a finding.
_WIRE_BANNED_MODULES = frozenset({"pickle", "cPickle", "dill", "marshal",
                                  "shelve", "joblib"})
#: ``module.attr`` calls injecting wall-clock / host entropy.
_WIRE_BANNED_CALLS = frozenset({
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
})


@register_rule
class WireHygiene(Rule):
    """The checkpoint/spec-hash wire format stays deterministic and safe.

    Shard files are re-read by later runs and their payloads feed CRCs
    and spec hashes, so the wire modules must not: deserialize
    arbitrary code (pickle & friends, ``eval``/``exec``), stamp
    wall-clock or host-entropy values into records, or serialize from
    unordered ``set`` iteration (insertion-ordered dicts are fine; set
    order is salted per process).
    """

    rule_id = "RL005"
    name = "checkpoint-wire-hygiene"
    severity = "error"
    description = ("no pickle/eval, wall-clock stamps, or unordered-set "
                   "iteration in the checkpoint wire modules")

    def check(self, ctx: FileContext,
              manifest: Manifest) -> Iterator[Diagnostic]:
        if not manifest.is_wire_module(ctx.posix):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                iter_node = node.iter
                if self._is_set_expr(iter_node):
                    anchor = node if isinstance(node, ast.For) \
                        else iter_node
                    yield ctx.diagnostic(
                        self, anchor,
                        "iteration over a set in a wire module — set "
                        "order is per-process; sort it (sorted(...)) "
                        "before anything reaches the wire")

    def _check_import(self, ctx, node) -> Iterator[Diagnostic]:
        if isinstance(node, ast.Import):
            names = [a.name.split(".")[0] for a in node.names]
        else:
            names = [(node.module or "").split(".")[0]]
        for name in names:
            if name in _WIRE_BANNED_MODULES:
                yield ctx.diagnostic(
                    self, node,
                    f"wire module imports '{name}' — the checkpoint "
                    "format is JSON + CRC by contract (arbitrary-code "
                    "deserialization is out)")

    def _check_call(self, ctx, node: ast.Call) -> Iterator[Diagnostic]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("eval", "exec"):
            yield ctx.diagnostic(
                self, node,
                f"'{func.id}()' in a wire module — shard payloads are "
                "parsed, never evaluated")
            return
        parts = dotted_parts(func)
        if parts and len(parts) >= 2 \
                and tuple(parts[-2:]) in _WIRE_BANNED_CALLS:
            yield ctx.diagnostic(
                self, node,
                f"'{'.'.join(parts)}()' in a wire module — wall-clock / "
                "host-entropy values must not feed records or spec "
                "hashes")
        if isinstance(func, ast.Name) and func.id in ("list", "tuple") \
                and node.args and self._is_set_expr(node.args[0]):
            yield ctx.diagnostic(
                self, node,
                f"'{func.id}(set(...))' in a wire module — set order is "
                "per-process; use sorted(...) so the wire stays "
                "deterministic")

    @staticmethod
    def _is_set_expr(node) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))
