"""Tests for the greedy lattice-surgery scheduler and throughput sim."""

from collections import deque

import numpy as np
import pytest

from repro.arch.isa import Instruction, InstructionKind
from repro.arch.qubit_plane import QubitPlane
from repro.arch.scheduler import GreedyScheduler
from repro.arch.throughput import (
    ThroughputResult,
    random_meas_zz_stream,
    simulate_throughput,
    throughput_sweep,
)


def zz(a, b, reg=0):
    return Instruction(InstructionKind.MEAS_ZZ, (a, b), register=reg)


class TestRouting:
    def test_adjacent_qubits_routable(self):
        plane = QubitPlane(5, 5)
        sched = GreedyScheduler(plane)
        # Qubits 0 and 1 at (1,1) and (1,3): vacant (1,2) connects them.
        assert sched.try_commit(zz(0, 1), slot=0)
        assert len(sched.executing) == 1

    def test_route_blocked_by_anomaly(self):
        plane = QubitPlane(3, 5)  # single row of qubits: (1,1), (1,3)
        plane.strike(1, 2, until_slot=100)
        # All detours through rows 0/2 around (1,2) remain; block them too.
        for cell in [(0, 1), (0, 2), (0, 3), (2, 1), (2, 2), (2, 3)]:
            plane.strike(*cell, until_slot=100)
        sched = GreedyScheduler(plane)
        assert not sched.try_commit(zz(0, 1), slot=0)

    def test_route_found_around_obstacle(self):
        plane = QubitPlane(3, 5)
        plane.strike(1, 2, until_slot=100)  # direct path blocked
        sched = GreedyScheduler(plane)
        assert sched.try_commit(zz(0, 1), slot=0)  # detour via row 0 or 2

    def test_busy_qubit_blocks_commit(self):
        plane = QubitPlane(5, 5)
        sched = GreedyScheduler(plane)
        assert sched.try_commit(zz(0, 1), slot=0)
        assert not sched.try_commit(zz(1, 2, reg=1), slot=0)

    def test_disjoint_ops_run_in_parallel(self):
        plane = QubitPlane(11, 11)
        sched = GreedyScheduler(plane)
        assert sched.try_commit(zz(0, 1), slot=0)
        assert sched.try_commit(zz(10, 11, reg=1), slot=0)
        assert len(sched.executing) == 2


class TestStep:
    def test_ops_finish_after_latency(self):
        plane = QubitPlane(5, 5)
        sched = GreedyScheduler(plane, base_latency_slots=1)
        queue = deque([zz(0, 1)])
        sched.step(queue, slot=0)
        assert not queue
        assert sched.completed == 0
        sched.step(queue, slot=1)
        assert sched.completed == 1

    def test_baseline_double_latency(self):
        plane = QubitPlane(5, 5)
        sched = GreedyScheduler(plane, base_latency_slots=2)
        queue = deque([zz(0, 1)])
        sched.step(queue, slot=0)
        sched.step(queue, slot=1)
        assert sched.completed == 0
        sched.step(queue, slot=2)
        assert sched.completed == 1

    def test_expanded_qubit_doubles_latency(self):
        plane = QubitPlane(11, 11)
        plane.expand_logical(0, slot=0)
        sched = GreedyScheduler(plane, base_latency_slots=1)
        queue = deque([zz(0, 1)])
        sched.step(queue, slot=0)
        sched.step(queue, slot=1)
        assert sched.completed == 0
        sched.step(queue, slot=2)
        assert sched.completed == 1

    def test_program_order_preserved_on_conflict(self):
        plane = QubitPlane(5, 5)
        sched = GreedyScheduler(plane)
        first = zz(0, 1)
        second = zz(1, 2, reg=1)
        queue = deque([first, second])
        sched.step(queue, slot=0)
        assert second in queue and first not in queue


class TestThroughputSim:
    def test_workload_has_distinct_targets(self):
        queue = random_meas_zz_stream(100, 25, np.random.default_rng(0))
        for inst in queue:
            assert inst.targets[0] != inst.targets[1]

    def test_all_instructions_complete(self):
        res = simulate_throughput("mbbe_free", num_instructions=50,
                                  rng=np.random.default_rng(1))
        assert res.instructions == 50

    def test_baseline_half_of_mbbe_free(self):
        free = simulate_throughput("mbbe_free", 400,
                                   rng=np.random.default_rng(2))
        base = simulate_throughput("baseline", 400,
                                   rng=np.random.default_rng(2))
        assert base.throughput == pytest.approx(free.throughput / 2,
                                                rel=0.15)

    def test_q3de_without_rays_matches_mbbe_free(self):
        free = simulate_throughput("mbbe_free", 300,
                                   rng=np.random.default_rng(3))
        q3de = simulate_throughput("q3de", 300, strike_prob_per_slot=0.0,
                                   rng=np.random.default_rng(3))
        assert q3de.throughput == pytest.approx(free.throughput, rel=0.01)

    def test_heavy_rays_degrade_q3de(self):
        calm = simulate_throughput("q3de", 300, strike_prob_per_slot=1e-6,
                                   strike_duration_slots=100,
                                   rng=np.random.default_rng(4))
        stormy = simulate_throughput("q3de", 300, strike_prob_per_slot=1e-3,
                                     strike_duration_slots=100,
                                     rng=np.random.default_rng(4),
                                     max_slots=5_000)
        assert stormy.throughput < calm.throughput

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            simulate_throughput("quantum-magic")

    def test_sweep_shapes(self):
        out = throughput_sweep([1e-5, 1e-4], duration_slots=100,
                               num_instructions=120)
        assert len(out["q3de"]) == 2
        assert out["mbbe_free"][0] == out["mbbe_free"][1]
        assert out["baseline"][0] < out["mbbe_free"][0]

    def test_result_throughput_property(self):
        res = ThroughputResult("q3de", instructions=60, slots=12, strikes=0)
        assert res.throughput == 5.0
