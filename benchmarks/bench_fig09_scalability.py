"""Fig. 9: required qubit density vs chip area for p_L < 1e-10.

Paper setup: p/p_th = 0.1, 1 us cycles, baseline d_ano=4, f_ano=0.1 Hz,
tau_ano=25 ms, c_lat=30; three panels sweep anomaly size, error duration,
and anomaly frequency.  Expected shape: without rays the required density
falls as 1/area; with rays the baseline (full-lifetime exposure at
d - 2c) needs far more density than Q3DE (c_lat-cycle exposure at d - c),
with up to ~10x qubit-count savings around density ratio ten.

Each panel is a declarative campaign: a ``Sweep`` of ``ScalingSpec``
run through ``repro.campaigns.run`` (``derive_seeds=False`` keeps the
paper's fixed event-stream seed on every point), so this bench doubles
as an API smoke test and emits its curves into ``BENCH_batch.json``.
"""

import time

import pytest

from repro import campaigns

from _common import emit_json, print_table, scale

AREAS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

BASE_LIFETIME_S = 25e-3
BASE_FREQUENCY_HZ = 0.1


def _base_spec() -> campaigns.ScalingSpec:
    return campaigns.ScalingSpec(
        areas=AREAS, horizon_cycles=int(20_000_000 * scale()))


def _panel(axes: dict) -> dict:
    """Run one panel's sweep; key results by the overrides tuple."""
    sweep = campaigns.Sweep(_base_spec(), axes=axes, derive_seeds=False)
    result = campaigns.run(sweep)
    return {tuple(sorted(o.items())): r.detail for o, r in result.points}


@pytest.mark.benchmark(group="fig9")
def bench_fig9_anomaly_size_panel(benchmark):
    """Left panel: one curve per anomaly size, Q3DE vs baseline."""
    sizes = [1, 2, 4]

    def run():
        start = time.perf_counter()
        curves = _panel({"use_q3de": [True, False], "anomaly_size": sizes})
        return curves, time.perf_counter() - start

    curves, wall = benchmark.pedantic(run, rounds=1, iterations=1)

    def curve(q3de, size):
        return curves[tuple(sorted({"use_q3de": q3de,
                                    "anomaly_size": size}.items()))]

    emit_json("batch", "fig09_scalability", {
        "wall_clock_s": wall,
        "horizon_cycles": _base_spec().horizon_cycles,
        "required_density": {
            f"{'q3de' if q else 'base'}_s{s}_area{a:g}": value
            for q in (True, False) for s in sizes
            for a, value in zip(AREAS, curve(q, s), strict=True)},
    })
    rows = []
    for i, area in enumerate(AREAS):
        row = [area]
        for size in sizes:
            row.append(curve(True, size)[i])
            row.append(curve(False, size)[i])
        rows.append(row)
    header = ["area"]
    for s in sizes:
        header += [f"Q3DE s={s}", f"base s={s}"]
    print_table("Fig. 9 (left): required density ratio (None = >max)",
                header, rows)

    for size in sizes:
        for q, b in zip(curve(True, size), curve(False, size), strict=True):
            if q is not None and b is not None:
                assert q <= b * 1.01


@pytest.mark.benchmark(group="fig9")
def bench_fig9_duration_panel(benchmark):
    """Middle panel: baseline vs error-duration factor, Q3DE reference."""
    factors = [1.0, 0.1, 0.01]
    lifetimes = [BASE_LIFETIME_S * f for f in factors]

    def run():
        base = _panel({"use_q3de": [False], "lifetime_s": lifetimes})
        q3de = campaigns.run(_base_spec()).detail
        return base, q3de

    base, q3de = benchmark.pedantic(run, rounds=1, iterations=1)

    def base_curve(lifetime):
        return base[tuple(sorted({"use_q3de": False,
                                  "lifetime_s": lifetime}.items()))]

    rows = []
    for i, area in enumerate(AREAS):
        rows.append([area, q3de[i]]
                    + [base_curve(lt)[i] for lt in lifetimes])
    print_table(
        "Fig. 9 (middle): required density ratio vs error duration",
        ["area", "Q3DE"] + [f"base x{f}" for f in factors], rows)

    # Shorter bursts shrink the baseline's requirement toward Q3DE's.
    for i in range(len(AREAS)):
        vals = [base_curve(lt)[i] for lt in lifetimes
                if base_curve(lt)[i] is not None]
        assert vals == sorted(vals, reverse=True)


@pytest.mark.benchmark(group="fig9")
def bench_fig9_frequency_panel(benchmark):
    """Right panel: both architectures vs anomaly-frequency factor."""
    factors = [1.0, 0.1, 0.01]
    frequencies = [BASE_FREQUENCY_HZ * f for f in factors]

    def run():
        return _panel({"use_q3de": [True, False],
                       "frequency_hz": frequencies})

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    def curve(q3de, freq):
        return curves[tuple(sorted({"use_q3de": q3de,
                                    "frequency_hz": freq}.items()))]

    rows = []
    for i, area in enumerate(AREAS):
        row = [area]
        for freq in frequencies:
            row += [curve(True, freq)[i], curve(False, freq)[i]]
        rows.append(row)
    header = ["area"]
    for f in factors:
        header += [f"Q3DE x{f}", f"base x{f}"]
    print_table(
        "Fig. 9 (right): required density ratio vs anomaly frequency",
        header, rows)

    # Q3DE advantage shrinks as rays get rarer.
    for freq in frequencies:
        for q, b in zip(curve(True, freq), curve(False, freq), strict=True):
            if q is not None and b is not None:
                assert q <= b * 1.01


def smoke() -> None:
    """One tiny grid point (bench_smoke marker: import-rot guard)."""
    spec = campaigns.ScalingSpec(areas=(4.0,), horizon_cycles=200_000)
    result = campaigns.run(spec)
    assert len(result.detail) == 1
    assert campaigns.spec_from_json(campaigns.spec_to_json(spec)) == spec