"""Result store + incremental refinement: the serving-layer contracts.

Two invariants under test (docs/CONTRACTS.md):

* a refined campaign — a spec's shard seeded from a sibling's, then run
  to completion — is bit-identical to an uninterrupted single run of
  the larger request, per ``(seed, batch_size)``;
* the content-addressed result store never *errors* on damaged state:
  any malformation is a cache miss, i.e. a recompute.
"""

import dataclasses
import json

import numpy as np

from repro import campaigns
from repro.campaigns.checkpoint import CheckpointStore
from repro.campaigns.refine import (find_refinement_base, seed_refinement,
                                    shots_field)
from repro.campaigns.store import ResultStore


def _memory_spec(**overrides):
    kwargs = dict(distance=5, p=2e-2, samples=96, seed=17, batch_size=16)
    kwargs.update(overrides)
    return campaigns.MemorySpec(**kwargs)


def _assert_outcome_equal(refined, fresh):
    """Bit-equality on everything except process-local cache stats."""
    for key, value in fresh.estimates.items():
        np.testing.assert_equal(refined.estimates[key], value)
    stats_only = {"cache_hits", "cache_misses", "cache_evictions"}
    for key, value in fresh.counts.items():
        if key not in stats_only:
            assert refined.counts[key] == value, key


class TestShotFields:
    def test_refinable_kinds(self):
        assert shots_field(_memory_spec()) == "samples"
        assert shots_field(campaigns.EndToEndSpec(
            distance=5, p=1e-2, shots=8, onset=30, cycles=60, c_win=20,
            n_th=4, seed=29)) == "shots"
        assert shots_field(campaigns.DetectionSpec(
            distance=5, p=1e-3, p_ano=0.05, anomaly_size=2, c_win=40,
            trials=6)) == "trials"

    def test_unrefinable_kinds(self):
        assert shots_field(campaigns.ThroughputSpec(
            num_instructions=10, strike_prob_per_slot=1e-4,
            strike_duration_slots=5)) is None


class TestRefinementBitEquality:
    def test_memory_grow(self, tmp_path):
        small, big = _memory_spec(samples=64), _memory_spec(samples=128)
        campaigns.run(small, checkpoint=tmp_path)
        fresh = campaigns.run(big)
        refined = campaigns.run(big, checkpoint=tmp_path, refine=True)
        assert refined.provenance.resumed_chunks == 4  # 64 / 16
        _assert_outcome_equal(refined, fresh)

    def test_detection_grow(self, tmp_path):
        base = dict(distance=5, p=5e-3, p_ano=0.4, anomaly_size=2,
                    c_win=30, n_th=2, seed=23, batch_size=3)
        campaigns.run(campaigns.DetectionSpec(trials=9, **base),
                      checkpoint=tmp_path)
        big = campaigns.DetectionSpec(trials=15, **base)
        fresh = campaigns.run(big)
        refined = campaigns.run(big, checkpoint=tmp_path, refine=True)
        assert refined.provenance.resumed_chunks == 3
        _assert_outcome_equal(refined, fresh)

    def test_endtoend_grow(self, tmp_path):
        base = dict(distance=5, p=1e-2, onset=30, cycles=60, c_win=20,
                    n_th=4, seed=29, batch_size=4)
        campaigns.run(campaigns.EndToEndSpec(shots=8, **base),
                      checkpoint=tmp_path)
        big = campaigns.EndToEndSpec(shots=16, **base)
        fresh = campaigns.run(big)
        refined = campaigns.run(big, checkpoint=tmp_path, refine=True)
        assert refined.provenance.resumed_chunks == 2
        _assert_outcome_equal(refined, fresh)

    def test_shrink_request_uses_prefix(self, tmp_path):
        # Refinement also serves the *smaller* request: every chunk of
        # the small plan is a full-size chunk of the big shard.
        campaigns.run(_memory_spec(samples=128), checkpoint=tmp_path)
        small = _memory_spec(samples=64)
        fresh = campaigns.run(small)
        refined = campaigns.run(small, checkpoint=tmp_path, refine=True)
        assert refined.provenance.resumed_chunks == 4
        _assert_outcome_equal(refined, fresh)

    def test_partial_tail_chunk_is_recomputed(self, tmp_path):
        # 72 = 4 full chunks of 16 + one ragged chunk of 8: the ragged
        # record does not match the bigger plan's chunk size, so only
        # the full chunks seed and the tail is recomputed.
        campaigns.run(_memory_spec(samples=72), checkpoint=tmp_path)
        big = _memory_spec(samples=128)
        fresh = campaigns.run(big)
        refined = campaigns.run(big, checkpoint=tmp_path, refine=True)
        assert refined.provenance.resumed_chunks == 4
        _assert_outcome_equal(refined, fresh)

    def test_unpinned_spec_adopts_recorded_batch(self, tmp_path):
        campaigns.run(_memory_spec(samples=64), checkpoint=tmp_path)
        big = _memory_spec(samples=128, batch_size=None)
        refined = campaigns.run(big, checkpoint=tmp_path, refine=True)
        assert refined.provenance.resumed_chunks == 4
        # Bit-equality holds per (seed, batch_size): compare against a
        # fresh run pinned at the recorded size.
        _assert_outcome_equal(refined,
                              campaigns.run(_memory_spec(samples=128)))


class TestRefinementDegradesToFreshRun:
    def test_no_sibling_is_a_noop(self, tmp_path):
        spec = _memory_spec()
        assert seed_refinement(CheckpointStore(tmp_path), spec) == 0
        fresh = campaigns.run(spec)
        refined = campaigns.run(spec, checkpoint=tmp_path, refine=True)
        assert refined.provenance.resumed_chunks == 0
        _assert_outcome_equal(refined, fresh)

    def test_existing_target_shard_wins(self, tmp_path):
        # Plain resume owns a shard that already exists: seeding must
        # not clobber it.
        store = CheckpointStore(tmp_path)
        campaigns.run(_memory_spec(samples=64), checkpoint=tmp_path)
        big = _memory_spec(samples=128)
        assert seed_refinement(store, big) == 4
        before = store.shard(big).path.read_text()
        assert seed_refinement(store, big) == 0
        assert store.shard(big).path.read_text() == before

    def test_pinned_batch_mismatch_skips(self, tmp_path):
        campaigns.run(_memory_spec(samples=64, batch_size=16),
                      checkpoint=tmp_path)
        big = _memory_spec(samples=128, batch_size=32)
        assert find_refinement_base(CheckpointStore(tmp_path), big) is None
        assert seed_refinement(CheckpointStore(tmp_path), big) == 0

    def test_different_campaign_is_not_a_sibling(self, tmp_path):
        campaigns.run(_memory_spec(samples=64, p=1e-2),
                      checkpoint=tmp_path)
        big = _memory_spec(samples=128)  # p differs
        assert find_refinement_base(CheckpointStore(tmp_path), big) is None

    def test_corrupt_sibling_is_skipped(self, tmp_path):
        small = _memory_spec(samples=64)
        campaigns.run(small, checkpoint=tmp_path)
        path = CheckpointStore(tmp_path).shard(small).path
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["crc"] ^= 1
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        big = _memory_spec(samples=128)
        assert seed_refinement(CheckpointStore(tmp_path), big) == 0
        fresh = campaigns.run(big)
        refined = campaigns.run(big, checkpoint=tmp_path, refine=True)
        _assert_outcome_equal(refined, fresh)

    def test_prefers_largest_aligned_sibling(self, tmp_path):
        store = CheckpointStore(tmp_path)
        campaigns.run(_memory_spec(samples=32), checkpoint=tmp_path)
        campaigns.run(_memory_spec(samples=80), checkpoint=tmp_path)
        big = _memory_spec(samples=128)
        base = find_refinement_base(store, big)
        assert base is not None
        assert dataclasses.asdict(base.spec)["samples"] == 80
        assert seed_refinement(store, big) == 5  # 80 / 16


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        spec = _memory_spec(samples=32)
        result = campaigns.run(spec)
        store = ResultStore(tmp_path)
        record = store.put(spec, result)
        assert store.get(spec) == record
        assert store.get_hash(campaigns.spec_hash(spec)) == record
        assert record["result"] == result.to_dict()
        assert not list(tmp_path.glob(".*tmp*"))  # no leftover temp files

    def test_miss_on_unknown(self, tmp_path):
        assert ResultStore(tmp_path).get(_memory_spec()) is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        spec = _memory_spec(samples=32)
        ResultStore(tmp_path, version="1.0").put(spec, campaigns.run(spec))
        assert ResultStore(tmp_path, version="1.0").get(spec) is not None
        assert ResultStore(tmp_path, version="2.0").get(spec) is None

    def test_corruption_is_a_miss_not_a_crash(self, tmp_path):
        spec = _memory_spec(samples=32)
        store = ResultStore(tmp_path)
        store.put(spec, campaigns.run(spec))
        path = store.path(campaigns.spec_hash(spec))

        path.write_text("{ not json")
        assert store.get(spec) is None

        record = store.put(spec, campaigns.run(spec))
        record["result"]["counts"]["samples"] += 1  # flip a bit, keep crc
        path.write_text(json.dumps(record))
        assert store.get(spec) is None  # CRC catches it

        path.write_text(json.dumps({"type": "banana"}))
        assert store.get(spec) is None
