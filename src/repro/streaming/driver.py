"""Online streaming detection/decode driver with latency accounting.

The batch kernels sample a whole campaign tensor and scan it after the
fact; hardware cannot.  This module runs the same phenomenological
model *online*: syndrome rounds are drawn one at a time, the windowed
anomaly detector (:class:`repro.streaming.window.RoundWindow`) and the
incremental syndrome extractor (:class:`SyndromeStream`) update with
O(d^2) state per round, and the bucketed decoder fires once when the
trial's exposure window closes.  No whole-campaign ``(T, ...)`` tensor
ever exists — peak live rounds is bounded by ``c_win``.

The reproducibility contract extends here as the *offline≡streaming
equivalence invariant*: for a given per-round uniform stream (one rng
seed), :meth:`StreamingTrialDriver.run` and :func:`replay_offline`
(which materializes the identical stream and runs the offline windowed
scan from :mod:`repro.sim.batch`) produce bit-identical outcomes —
false-positive flags, event cycle, flagged-node mask, estimated region,
and every decoded parity.  ``tests/test_streaming.py`` sweeps this.

Note the streaming draw order is *per round* (round ``t`` draws its
``v, h, m`` then the region overwrites), not the batch kernels'
whole-tensor order — the two are distributionally identical but consume
the uniform stream differently, so streaming outcomes are certified
against :func:`replay_offline`, not against the batch kernels.

Wall-clock accounting: each round's detector update is timed with an
injectable ``clock`` (``time.perf_counter`` by default), feeding the
p50/p99 per-round latency and sustained rounds/sec that
``benchmarks/bench_streaming_latency.py`` publishes and
:class:`repro.hwmodel.pipeline.StreamSLO` judges.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.statistics import (SyndromeStatistics, detection_threshold,
                                   expected_activity_rate)
from repro.decoding.batched import (ScratchArena, batched_cut_parities,
                                    streaming_cut_parity)
from repro.decoding.graph import SyndromeLattice
from repro.decoding.weights import DistanceModel, relative_anomalous_weight
from repro.noise.models import AnomalousRegion, build_anomalous_masks
from repro.sim.endtoend import estimate_strike_region
from repro.streaming.window import RoundWindow

Clock = Callable[[], float]


class RoundSampler:
    """Per-round sampling of the phenomenological noise stream.

    Round ``t`` draws its base ``v, h, m`` uniforms in that order
    (``rng.random(shape) < p``), then — while the anomalous region is
    active — overwrites the masked cells, again in v/h/m order.  One
    round consumes a fixed, t-independent number of uniforms plus the
    region overwrites, so the stream can be replayed exactly.
    """

    def __init__(self, distance: int, p: float, p_ano: float,
                 region: Optional[AnomalousRegion]):
        d = distance
        self.distance = d
        self.p = p
        self.p_ano = p_ano
        self.region = region
        self._shapes = ((d, d), (d - 1, d - 1), (d - 1, d))
        self._masks = (build_anomalous_masks(d, region)
                       if region is not None else None)

    def draw(self, t: int, rng: np.random.Generator
             ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample round ``t``'s ``(v_t, h_t, m_t)`` flip layers (bool)."""
        v, h, m = (rng.random(shape) < self.p for shape in self._shapes)
        if (self._masks is not None and self.region is not None
                and self.region.active_at(t)):
            for arr, mask in zip((v, h, m), self._masks, strict=True):
                arr[mask] = rng.random(int(mask.sum())) < self.p_ano
        return v, h, m


class SyndromeStream:
    """Incremental per-round active-node extraction.

    Bounded state: the mod-2 cumulative flip sums (``cum_v``/``cum_h``),
    the previous noisy syndrome layer, the last measurement-error layer,
    and the running north-cut parity — O(d^2) regardless of stream
    length.  Round ``t``'s returned activity layer equals layer ``t`` of
    :meth:`repro.decoding.graph.SyndromeLattice.per_cycle_activity` on
    the accumulated stream, bit for bit (same uint8 mod-2 algebra,
    folded one round at a time instead of one cumsum per tensor).
    """

    def __init__(self, distance: int):
        d = distance
        self.distance = d
        self._cum_v = np.zeros((d, d), dtype=np.uint8)
        self._cum_h = np.zeros((d - 1, d - 1), dtype=np.uint8)
        self._prev_noisy = np.zeros((d - 1, d), dtype=np.uint8)
        #: measurement-error layer of the most recent round (``m[t]``) —
        #: after truncation at ``stop`` this IS the final perfect
        #: round's difference layer (the truncation identity).
        self.last_m = np.zeros((d - 1, d), dtype=np.uint8)
        #: north-cut error parity of all rounds pushed so far.
        self.north_parity = 0
        self.rounds = 0

    def push(self, v_t: np.ndarray, h_t: np.ndarray,
             m_t: np.ndarray) -> np.ndarray:
        """Fold in one round; returns its uint8 activity layer."""
        self._cum_v ^= v_t.astype(np.uint8)
        self._cum_h ^= h_t.astype(np.uint8)
        true_t = self._cum_v[:-1, :] ^ self._cum_v[1:, :]
        true_t[:, :-1] ^= self._cum_h
        true_t[:, 1:] ^= self._cum_h
        noisy_t = true_t ^ m_t.astype(np.uint8)
        activity = noisy_t ^ self._prev_noisy
        self._prev_noisy = noisy_t
        self.last_m = m_t.astype(np.uint8)
        self.north_parity ^= int(v_t[0, :].sum()) & 1
        self.rounds += 1
        return activity


@dataclass(frozen=True)
class StreamResult:
    """Outcome of one streamed (or replayed-offline) trial."""

    false_positive: bool
    detected: bool
    event_cycle: int            # -1 on a miss
    latency_cycles: int         # event_cycle - onset; -1 on a miss
    stop: int                   # cycle the exposure window closed at
    flag_mask: Optional[np.ndarray]   # over-map at the flag window
    estimated: Optional[AnomalousRegion]
    position_error: float       # node-grid distance; nan on a miss
    naive_failure: int
    detected_failure: int
    oracle_failure: int
    peak_live_rounds: int
    round_latencies_s: Optional[np.ndarray] = None  # None for replays

    def outcomes(self) -> dict:
        """The seed-determined fields — what offline≡streaming compares.

        Excludes the wall clocks and the memory high-water mark, which
        are execution-strategy facts, not outcomes of the stream.
        """
        return {
            "false_positive": self.false_positive,
            "detected": self.detected,
            "event_cycle": self.event_cycle,
            "latency_cycles": self.latency_cycles,
            "stop": self.stop,
            "flag_mask": self.flag_mask,
            "estimated": self.estimated,
            "position_error": self.position_error,
            "naive_failure": self.naive_failure,
            "detected_failure": self.detected_failure,
            "oracle_failure": self.oracle_failure,
        }


class StreamingTrialDriver:
    """One online trial: rounds in, detection + decoded parities out.

    A trial streams up to ``cycles`` rounds.  The anomalous region
    strikes at ``onset`` (drawn uniformly in space per trial, exactly as
    the batch kernels draw it).  The windowed detector scans live with
    the scan-tail semantics of the offline kernels: window fires before
    ``onset`` → false positive (scanning continues); first fire at or
    after ``onset`` → detection, after which the exposure closes at
    ``stop = min(cycles, event_cycle + distance)`` and the bucketed
    decoder scores the truncated stream (naive / detected / oracle
    matchings, as in the end-to-end kernel).
    """

    def __init__(self, distance: int, p: float, p_ano: float,
                 anomaly_size: int, onset: int, cycles: int, c_win: int,
                 n_th: int, alpha: float = 0.01,
                 arena: Optional[ScratchArena] = None):
        if cycles < 1:
            raise ValueError("cycles must be >= 1")
        if not 0 <= onset < cycles:
            raise ValueError("onset must lie inside [0, cycles)")
        if c_win < 1:
            raise ValueError("c_win must be >= 1")
        self.distance = distance
        self.p = p
        self.p_ano = p_ano
        self.anomaly_size = anomaly_size
        self.onset = onset
        self.cycles = cycles
        self.c_win = c_win
        self.n_th = n_th
        self.alpha = alpha
        stats = SyndromeStatistics.from_activity_rate(
            expected_activity_rate(p))
        self.v_th = detection_threshold(stats, c_win, alpha)
        self.w_ano = relative_anomalous_weight(p, p_ano)
        self._naive_model = DistanceModel(distance)
        self.arena = arena if arena is not None else ScratchArena()

    # ------------------------------------------------------------------
    def run(self, rng: np.random.Generator,
            clock: Clock = time.perf_counter) -> StreamResult:
        """Stream one trial to completion.

        ``rng`` determines the trial fully (region placement, then the
        per-round stream).  ``clock`` is injectable so equivalence tests
        can run with a free clock; the default is the monotonic
        high-resolution timer the latency bench publishes from.
        """
        d = self.distance
        region = AnomalousRegion.random(d, self.anomaly_size, rng,
                                        t_lo=self.onset)
        sampler = RoundSampler(d, self.p, self.p_ano, region)
        stream = SyndromeStream(d)
        window = RoundWindow(self.c_win, (d - 1, d))
        node_chunks: list[np.ndarray] = []
        false_positive = False
        event_cycle = -1
        estimated: Optional[AnomalousRegion] = None
        flag_mask: Optional[np.ndarray] = None
        position_error = float("nan")
        stop = self.cycles
        latencies = np.empty(self.cycles, dtype=np.float64)

        t = 0
        while t < stop:
            tic = clock()
            v_t, h_t, m_t = sampler.draw(t, rng)
            activity = stream.push(v_t, h_t, m_t)
            coords = np.argwhere(activity != 0)
            if len(coords):
                node_chunks.append(np.concatenate(
                    [np.full((len(coords), 1), t, dtype=coords.dtype),
                     coords], axis=1))
            if window.push(activity) and event_cycle < 0:
                if window.n_over(self.v_th) > self.n_th:
                    if t < self.onset:
                        false_positive = True
                    else:
                        over = window.over(self.v_th)
                        event_cycle = t
                        flag_mask = np.asarray(over).copy()
                        flag_r, flag_c = np.nonzero(flag_mask)
                        row = int(np.median(flag_r))
                        col = int(np.median(flag_c))
                        estimated = estimate_strike_region(
                            d, self.anomaly_size, row, col,
                            max(0, event_cycle - self.c_win))
                        centre_r = region.row_lo + \
                            (self.anomaly_size - 1) / 2.0
                        centre_c = region.col_lo + \
                            (self.anomaly_size - 1) / 2.0
                        position_error = math.hypot(row - centre_r,
                                                    col - centre_c)
                        stop = min(self.cycles, event_cycle + d)
            latencies[t] = clock() - tic
            t += 1

        nodes = self._close(stream, node_chunks, stop)
        naive, detected_p, oracle = self._decode(nodes, region, estimated)
        err = stream.north_parity
        return StreamResult(
            false_positive=false_positive,
            detected=event_cycle >= 0,
            event_cycle=event_cycle,
            latency_cycles=(event_cycle - self.onset
                            if event_cycle >= 0 else -1),
            stop=stop,
            flag_mask=flag_mask,
            estimated=estimated,
            position_error=position_error,
            naive_failure=err ^ naive,
            detected_failure=err ^ detected_p,
            oracle_failure=err ^ oracle,
            peak_live_rounds=window.peak_live_rounds,
            round_latencies_s=latencies[:stop].copy(),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _close(stream: SyndromeStream, node_chunks: list[np.ndarray],
               stop: int) -> np.ndarray:
        """Active nodes of the truncated stream plus the final round.

        The final perfect measurement round contributes exactly the last
        noisy round's measurement-error layer (the truncation identity
        the packed kernels are certified on), so its nodes are read off
        ``stream.last_m`` at layer ``t = stop`` with no resampling.
        """
        final = np.argwhere(stream.last_m != 0)
        if len(final):
            node_chunks = node_chunks + [np.concatenate(
                [np.full((len(final), 1), stop, dtype=final.dtype),
                 final], axis=1)]
        if not node_chunks:
            return np.zeros((0, 3), dtype=np.int64)
        return np.concatenate(node_chunks, axis=0)

    def _decode(self, nodes: np.ndarray, region: AnomalousRegion,
                estimated: Optional[AnomalousRegion]
                ) -> tuple[int, int, int]:
        """(naive, detected, oracle) matching parities for one stream."""
        naive = int(batched_cut_parities(self._naive_model, [nodes],
                                         arena=self.arena)[0])
        oracle = streaming_cut_parity(self.distance, region, nodes,
                                      self.w_ano, arena=self.arena)
        if estimated is None:
            return naive, naive, oracle
        detected = streaming_cut_parity(self.distance, estimated, nodes,
                                        self.w_ano, arena=self.arena)
        return naive, detected, oracle


def replay_offline(driver: StreamingTrialDriver,
                   rng: np.random.Generator) -> StreamResult:
    """The offline windowed scan over the identical round stream.

    Draws the same per-round uniform sequence as
    :meth:`StreamingTrialDriver.run` (same rng state evolution for every
    round the streaming path processes), materializes the full
    ``(T, ...)`` tensors, and scores them with the *offline* primitives:
    the batched cumsum window scan, whole-tensor
    ``SyndromeLattice.detection_events`` / ``error_cut_parity``, and the
    same bucketed decode.  This is the equivalence target for the
    offline≡streaming invariant — outcomes must match
    :meth:`StreamingTrialDriver.run` bit for bit per seed.
    """
    from repro.sim.batch import _windowed_over

    d, cycles, c_win = driver.distance, driver.cycles, driver.c_win
    region = AnomalousRegion.random(d, driver.anomaly_size, rng,
                                    t_lo=driver.onset)
    sampler = RoundSampler(d, driver.p, driver.p_ano, region)
    v = np.empty((cycles, d, d), dtype=bool)
    h = np.empty((cycles, d - 1, d - 1), dtype=bool)
    m = np.empty((cycles, d - 1, d), dtype=bool)
    for t in range(cycles):
        v[t], h[t], m[t] = sampler.draw(t, rng)

    lattice = SyndromeLattice(d)
    activity = lattice.per_cycle_activity(v, h, m)
    over, n_over = _windowed_over(activity, c_win, driver.v_th)

    # Windowed index k corresponds to cycle t = k + c_win - 1.
    pre = max(0, driver.onset - (c_win - 1))
    false_positive = bool(np.any(n_over[:pre] > driver.n_th))
    fired = np.flatnonzero(n_over[pre:] > driver.n_th)
    event_cycle = -1
    estimated: Optional[AnomalousRegion] = None
    flag_mask: Optional[np.ndarray] = None
    position_error = float("nan")
    stop = cycles
    if len(fired):
        event_cycle = int(fired[0]) + pre + c_win - 1
        flag_mask = over[event_cycle - (c_win - 1)].copy()
        flag_r, flag_c = np.nonzero(flag_mask)
        row, col = int(np.median(flag_r)), int(np.median(flag_c))
        estimated = estimate_strike_region(
            d, driver.anomaly_size, row, col,
            max(0, event_cycle - c_win))
        centre_r = region.row_lo + (driver.anomaly_size - 1) / 2.0
        centre_c = region.col_lo + (driver.anomaly_size - 1) / 2.0
        position_error = math.hypot(row - centre_r, col - centre_c)
        stop = min(cycles, event_cycle + d)

    nodes = lattice.detection_events(v[:stop], h[:stop], m[:stop])
    err = int(lattice.error_cut_parity(v[:stop]))
    naive, detected_p, oracle = driver._decode(nodes, region, estimated)
    return StreamResult(
        false_positive=false_positive,
        detected=event_cycle >= 0,
        event_cycle=event_cycle,
        latency_cycles=(event_cycle - driver.onset
                        if event_cycle >= 0 else -1),
        stop=stop,
        flag_mask=flag_mask,
        estimated=estimated,
        position_error=position_error,
        naive_failure=err ^ naive,
        detected_failure=err ^ detected_p,
        oracle_failure=err ^ oracle,
        peak_live_rounds=stop,   # the offline scan holds the whole stream
        round_latencies_s=None,
    )


# ----------------------------------------------------------------------
# Latency accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LatencyStats:
    """Per-round wall-clock summary of a streamed run."""

    rounds: int
    p50_us: float
    p99_us: float
    mean_us: float
    rounds_per_sec: float


@dataclass(frozen=True)
class StreamingPerformance:
    """Campaign-level summary of a batch of streamed trials.

    The detection/decode counters mirror
    :class:`repro.sim.detection.DetectionPerformance` /
    :class:`repro.sim.endtoend.EndToEndResult` so streamed campaigns
    read like their offline counterparts; ``latency`` adds the
    per-round wall-clock envelope and ``peak_live_rounds`` the memory
    high-water mark (bounded by ``c_win`` by construction).
    """

    trials: int
    false_positives: int
    detections: int
    naive_failures: int
    detected_failures: int
    oracle_failures: int
    mean_latency: float          # detection latency, code cycles
    mean_position_error: float
    latency: LatencyStats        # per-round wall clocks
    peak_live_rounds: int
    results: tuple[StreamResult, ...]

    @property
    def false_positive_rate(self) -> float:
        return self.false_positives / self.trials

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.detections / self.trials


def latency_stats(latencies_s: np.ndarray) -> LatencyStats:
    """Summarize per-round wall clocks (seconds in, µs + rate out)."""
    lat = np.asarray(latencies_s, dtype=np.float64)
    if not len(lat):
        raise ValueError("no round latencies to summarize")
    total = float(lat.sum())
    return LatencyStats(
        rounds=len(lat),
        p50_us=float(np.percentile(lat, 50) * 1e6),
        p99_us=float(np.percentile(lat, 99) * 1e6),
        mean_us=float(lat.mean() * 1e6),
        rounds_per_sec=(len(lat) / total if total > 0 else float("inf")),
    )
