"""Tests for the temporal code-expansion controller (Sec. V)."""

import pytest

from repro.core.expansion import (
    ExpansionController,
    required_expanded_distance,
)


class TestRequiredDistance:
    def test_formula(self):
        assert required_expanded_distance(11, 4) == 19

    def test_doubling_suffices_for_small_anomalies(self):
        # The paper doubles d; that exceeds d + 2 d_ano when 2 d_ano << d.
        d, d_ano = 21, 4
        assert 2 * d >= required_expanded_distance(d, d_ano)


class TestController:
    def test_default_expansion_doubles(self):
        ctl = ExpansionController(default_distance=11)
        assert ctl.expanded_distance == 22

    def test_request_expands_on_tick(self):
        ctl = ExpansionController(default_distance=11)
        ctl.request(qubit=0, cycle=100, keep_cycles=1000)
        changed = ctl.tick(100)
        assert changed == [0]
        assert ctl.state_of(0).current_distance == 22

    def test_expansion_expires(self):
        ctl = ExpansionController(default_distance=11)
        ctl.request(0, 100, keep_cycles=50)
        ctl.tick(100)
        assert ctl.tick(149) == []
        assert ctl.state_of(0).is_expanded
        changed = ctl.tick(150)
        assert changed == [0]
        assert ctl.state_of(0).current_distance == 11

    def test_reexpansion_extends_keep_time(self):
        ctl = ExpansionController(default_distance=11)
        ctl.request(0, 100, keep_cycles=100)
        ctl.tick(100)
        ctl.request(0, 150, keep_cycles=100)
        ctl.tick(150)
        assert ctl.tick(210) == []  # would have expired at 200
        assert ctl.state_of(0).is_expanded
        assert ctl.tick(250) == [0]

    def test_blocked_expansion_stays_queued(self):
        ctl = ExpansionController(default_distance=11,
                                  space_available=lambda q: False)
        ctl.request(0, 100, keep_cycles=100)
        assert ctl.tick(100) == []
        assert not ctl.state_of(0).is_expanded
        assert len(ctl.queue) == 1

    def test_blocked_expansion_commits_once_space_frees(self):
        allowed = {"ok": False}
        ctl = ExpansionController(
            default_distance=11,
            space_available=lambda q: allowed["ok"])
        ctl.request(0, 100, keep_cycles=100)
        ctl.tick(100)
        allowed["ok"] = True
        assert ctl.tick(101) == [0]

    def test_independent_qubits(self):
        ctl = ExpansionController(default_distance=9)
        ctl.request(3, 10, keep_cycles=100)
        ctl.tick(10)
        assert ctl.state_of(3).is_expanded
        assert not ctl.state_of(5).is_expanded

    def test_protection_effective_after_latency(self):
        ctl = ExpansionController(default_distance=11)
        ctl.request(0, 100, keep_cycles=10_000)
        ctl.tick(100)
        latency = ctl.expansion_latency
        assert not ctl.protection_effective_at(0, 100 + latency - 1)
        assert ctl.protection_effective_at(0, 100 + latency)

    def test_invalid_expanded_distance(self):
        with pytest.raises(ValueError):
            ExpansionController(default_distance=11, expanded_distance=9)
