"""Batched shot engine vs the sequential per-shot path.

Times the Fig. 8 workload (the repo's heaviest Monte-Carlo hot path) at
equal sample counts through both engines and prints the speedup table.
The acceptance bar for the batch engine is >= 5x on the Fig. 8 point
set; ``REPRO_WORKERS > 1`` additionally exercises the process pool.

The batched results are also cross-checked for determinism (same seed,
same counts) — speed must not cost reproducibility.
"""

import time

import numpy as np
import pytest

from repro.noise import AnomalousRegion
from repro.sim.memory import MemoryExperiment

from _common import mc_samples, mc_workers, print_table

DISTANCES = [9, 13]
PHYSICAL_RATES = [8e-3, 1.5e-2, 2.5e-2]
ANOMALY_SIZE = 4


def _points():
    """The Fig. 8 rate grid: free / naive / informed per (d, p)."""
    points = []
    for d in DISTANCES:
        region = AnomalousRegion.centered(d, ANOMALY_SIZE)
        for p in PHYSICAL_RATES:
            points.append((f"d={d} p={p} free", d, p, None, False))
            points.append((f"d={d} p={p} naive", d, p, region, False))
            points.append((f"d={d} p={p} rollback", d, p, region, True))
    return points


def _campaign(samples: int, workers: int) -> tuple[float, list[int]]:
    start = time.perf_counter()
    failures = []
    for idx, (_, d, p, region, informed) in enumerate(_points()):
        exp = MemoryExperiment(d, p, region=region, informed=informed)
        est = exp.run(samples, np.random.default_rng(idx),
                      workers=workers, seed=idx)
        failures.append(est.failures)
    return time.perf_counter() - start, failures


@pytest.mark.benchmark(group="batch")
def bench_batch_engine_speedup(benchmark):
    """Whole Fig. 8 grid: sequential vs batched at equal samples."""
    samples = mc_samples()
    workers = max(1, mc_workers())

    def run():
        seq_time, _ = _campaign(samples, workers=0)
        bat_time, bat_failures = _campaign(samples, workers=workers)
        rep_time, rep_failures = _campaign(samples, workers=workers)
        return seq_time, bat_time, bat_failures, rep_failures

    seq_time, bat_time, bat_failures, rep_failures = benchmark.pedantic(
        run, rounds=1, iterations=1)
    speedup = seq_time / bat_time

    print_table(
        f"Batch engine speedup (Fig. 8 grid, {samples} samples/point, "
        f"workers={workers})",
        ["engine", "wall clock (s)", "speedup"],
        [["sequential (workers=0)", f"{seq_time:.2f}", "1.0x"],
         ["batched", f"{bat_time:.2f}", f"{speedup:.1f}x"]])

    # Reproducibility: the same seeds must give the same counts.
    assert bat_failures == rep_failures
    # The acceptance bar: the batch engine pays for itself >= 5x.
    assert speedup >= 5.0, f"batch speedup {speedup:.2f}x < 5x"


@pytest.mark.benchmark(group="batch")
def bench_batch_single_point_timing(benchmark):
    """Time the heaviest single point (d=13, p=2.5e-2, informed)."""
    samples = mc_samples()
    exp = MemoryExperiment(13, 2.5e-2,
                           region=AnomalousRegion.centered(13, ANOMALY_SIZE),
                           informed=True)
    est = benchmark.pedantic(
        exp.run, args=(samples,),
        kwargs=dict(workers=max(1, mc_workers()), seed=5),
        rounds=1, iterations=1)
    assert est.samples == samples
