"""Tests for the cross-PR bench trajectory guard."""

import importlib.util
import json
import pathlib
import subprocess
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def cb():
    spec = importlib.util.spec_from_file_location(
        "compare_bench", BENCH_DIR / "compare_bench.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _doc(**sections):
    env = {"samples": 200, "scale": 1.0, "workers": 1, "backend": "numpy"}
    return {"bench": "batch",
            "sections": {name: dict(payload, env=dict(env))
                         for name, payload in sections.items()}}


class TestClassify:
    def test_directions(self, cb):
        assert cb.classify("decode_stage.throughput_ratio") == "higher"
        assert cb.classify("campaign.speedup_vs_sequential.bits") == "higher"
        assert cb.classify("storage_ratio_min") == "higher"
        assert cb.classify("campaign.wall_clock_s.sequential") == "lower"
        assert cb.classify("e2e.pershot_total_s") == "lower"
        assert cb.classify("fig08.per_cycle_rates.d9") == "drift"

    def test_sweep_labels_are_not_engine_bars(self, cb):
        """Regression: fig07's p_ano/p sweep labels must read as domain
        drift, not fatal higher-is-better bars — a detection unit that
        *improves* (smaller window, lower latency) must never fail CI."""
        assert cb.classify("required_window.ratio_10") == "drift"
        assert cb.classify("mean_latency_cycles.pano_over_p_10") == "drift"

    def test_latency_leaves_are_lower_better(self, cb):
        """Streaming latency percentiles are judged lower-is-better."""
        assert cb.classify(
            "streaming_latency.p50_round_latency_us") == "lower"
        assert cb.classify(
            "streaming_latency.p99_round_latency_us") == "lower"
        assert cb.classify("mean_round_latency_us") == "lower"

    def test_per_us_rates_stay_throughput_shaped(self, cb):
        """Regression: ``matches_per_us`` (table4) is a *throughput*
        whose leaf happens to end in ``_us`` — the latency class must
        not claim it, or a faster matcher would fail CI."""
        assert cb.classify(
            "table4_resources.configs.40_-_BASE.matches_per_us") == "drift"
        assert cb.classify(
            "table4_sw_matching.modelled_matches_per_us") == "drift"
        assert cb.classify("table4_sw_matching.sw_matches_per_sec") == "drift"
        assert cb.classify("streaming_latency.rounds_per_sec") == "drift"


class TestCompare:
    def test_identical_docs_clean(self, cb):
        doc = _doc(decode_stage={"throughput_ratio": 3.2})
        regs, drifts, _ = cb.compare(doc, doc)
        assert regs == [] and drifts == []

    def test_ratio_regression_flagged(self, cb):
        base = _doc(decode_stage={"throughput_ratio": 3.2})
        fresh = _doc(decode_stage={"throughput_ratio": 2.0})
        regs, _, _ = cb.compare(fresh, base, tolerance=0.2)
        assert len(regs) == 1 and "throughput_ratio" in regs[0]

    def test_ratio_within_tolerance_passes(self, cb):
        base = _doc(decode_stage={"throughput_ratio": 3.2})
        fresh = _doc(decode_stage={"throughput_ratio": 2.9})
        regs, _, _ = cb.compare(fresh, base, tolerance=0.2)
        assert regs == []

    def test_improvement_never_flags(self, cb):
        base = _doc(decode_stage={"throughput_ratio": 3.2})
        fresh = _doc(decode_stage={"throughput_ratio": 9.0})
        regs, drifts, _ = cb.compare(fresh, base)
        assert regs == [] and drifts == []

    def test_wall_clock_needs_all_metrics(self, cb):
        base = _doc(campaign={"wall_clock_s": {"sequential": 10.0}})
        fresh = _doc(campaign={"wall_clock_s": {"sequential": 30.0}})
        assert cb.compare(fresh, base)[0] == []
        regs, _, _ = cb.compare(fresh, base, all_metrics=True)
        assert len(regs) == 1

    def test_latency_regression_flagged_under_all_metrics(self, cb):
        base = _doc(streaming_latency={"p99_round_latency_us": 40.0})
        fresh = _doc(streaming_latency={"p99_round_latency_us": 90.0})
        assert cb.compare(fresh, base)[0] == []
        regs, _, _ = cb.compare(fresh, base, all_metrics=True)
        assert len(regs) == 1 and "p99_round_latency_us" in regs[0]

    def test_latency_improvement_never_flags(self, cb):
        base = _doc(streaming_latency={"p99_round_latency_us": 40.0})
        fresh = _doc(streaming_latency={"p99_round_latency_us": 5.0})
        regs, drifts, _ = cb.compare(fresh, base, all_metrics=True)
        assert regs == [] and drifts == []

    def test_certification_flag_flip_is_fatal(self, cb):
        base = _doc(decode_stage={"campaign_failures_bit_equal": True})
        fresh = _doc(decode_stage={"campaign_failures_bit_equal": False})
        regs, _, _ = cb.compare(fresh, base)
        assert len(regs) == 1 and "flipped" in regs[0]

    def test_domain_drift_is_informational(self, cb):
        base = _doc(fig08={"per_cycle_rates": {"d9": 1e-3}})
        fresh = _doc(fig08={"per_cycle_rates": {"d9": 5e-3}})
        regs, drifts, _ = cb.compare(fresh, base)
        assert regs == [] and len(drifts) == 1

    def test_env_mismatch_skips_section(self, cb):
        base = _doc(decode_stage={"throughput_ratio": 3.2})
        fresh = _doc(decode_stage={"throughput_ratio": 1.0})
        fresh["sections"]["decode_stage"]["env"]["samples"] = 5
        regs, _, notes = cb.compare(fresh, base)
        assert regs == []
        assert any("env mismatch" in n for n in notes)
        regs, _, _ = cb.compare(fresh, base, ignore_env=True)
        assert len(regs) == 1

    def test_missing_and_new_sections_noted(self, cb):
        base = _doc(decode_stage={"throughput_ratio": 3.2})
        fresh = _doc(e2e_decode_stage={"throughput_ratio": 3.4})
        regs, _, notes = cb.compare(fresh, base)
        assert regs == []
        assert any("missing from fresh" in n for n in notes)
        assert any("no baseline yet" in n for n in notes)

    def test_points_compared_by_label(self, cb):
        base = _doc(decode_stage={
            "points": [{"point": "d=9 p=0.008", "pershot_s": 1.0}]})
        fresh = _doc(decode_stage={
            "points": [{"point": "d=9 p=0.008", "pershot_s": 9.0}]})
        regs, _, _ = cb.compare(fresh, base, all_metrics=True)
        assert len(regs) == 1 and "d=9_p=0.008" in regs[0]


class TestCli:
    def _run(self, tmp_path, fresh, base, *flags):
        fp = tmp_path / "fresh.json"
        bp = tmp_path / "base.json"
        fp.write_text(json.dumps(fresh))
        bp.write_text(json.dumps(base))
        return subprocess.run(
            [sys.executable, str(BENCH_DIR / "compare_bench.py"),
             str(fp), str(bp), *flags],
            capture_output=True, text=True)

    def test_clean_run_exits_zero(self, tmp_path):
        doc = _doc(decode_stage={"throughput_ratio": 3.2})
        proc = self._run(tmp_path, doc, doc)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no regressions" in proc.stdout

    def test_regression_exits_one(self, tmp_path):
        base = _doc(decode_stage={"throughput_ratio": 3.2})
        fresh = _doc(decode_stage={"throughput_ratio": 1.5})
        proc = self._run(tmp_path, fresh, base)
        assert proc.returncode == 1
        assert "[REGRESSION]" in proc.stdout

    def test_tolerance_knob(self, tmp_path):
        base = _doc(decode_stage={"throughput_ratio": 3.2})
        fresh = _doc(decode_stage={"throughput_ratio": 1.8})
        proc = self._run(tmp_path, fresh, base, "--tolerance", "0.6")
        assert proc.returncode == 0

    def test_unreadable_file_exits_two(self, tmp_path):
        doc = _doc()
        fp = tmp_path / "fresh.json"
        fp.write_text(json.dumps(doc))
        proc = subprocess.run(
            [sys.executable, str(BENCH_DIR / "compare_bench.py"),
             str(fp), str(tmp_path / "nope.json")],
            capture_output=True, text=True)
        assert proc.returncode == 2
