"""Fig. 8: decoder re-execution — logical error rates and effective
code-distance reduction.

Paper setup: anomaly sizes 2 and 4; for each distance, three curves:
MBBE-free, with MBBE decoded naively ("without rollback"), and with MBBE
decoded with anomaly-aware weights ("with rollback").  The bottom panels
convert rate ratios into effective code-distance reductions via Eq. (4),
which should approach 2*d_ano (naive) and d_ano (rollback).

Expected shape: rollback curves sit between MBBE-free and naive, and the
Eq. (4) reduction is roughly twice as large without rollback.
"""

import time

import pytest

from repro import campaigns
from repro.analysis.firstorder import effective_distance_reduction
from repro.noise import AnomalousRegion

from _common import emit_json, mc_samples, mc_workers, print_table

DISTANCES = [9, 13]
PHYSICAL_RATES = [8e-3, 1.5e-2, 2.5e-2]
ANOMALY_SIZES = [2, 4]


def _rate(d, p, samples, region=None, informed=False, seed=0):
    """One Fig. 8 grid point as a declarative ``MemorySpec`` campaign."""
    spec = campaigns.MemorySpec(distance=d, p=p, samples=samples,
                                region=region, informed=informed,
                                seed=seed)
    executor = campaigns.default_executor(mc_workers())
    return campaigns.run(spec, executor=executor).estimates["per_cycle"]


@pytest.mark.benchmark(group="fig8")
def bench_fig8_rollback_improvement(benchmark):
    """Regenerate the Fig. 8 rate curves for both anomaly sizes."""
    samples = mc_samples()

    def run():
        start = time.perf_counter()
        table = {}
        for d_ano in ANOMALY_SIZES:
            for d in DISTANCES:
                region = AnomalousRegion.centered(d, d_ano)
                for p in PHYSICAL_RATES:
                    base_seed = hash((d_ano, d, p)) % (2 ** 31)
                    table[(d_ano, d, p)] = (
                        _rate(d, p, samples, seed=base_seed),
                        _rate(d, p, samples, region, False, base_seed + 1),
                        _rate(d, p, samples, region, True, base_seed + 2),
                    )
        return table, time.perf_counter() - start

    table, wall = benchmark.pedantic(run, rounds=1, iterations=1)

    emit_json("batch", "fig08_rollback", {
        "samples_per_point": samples,
        "wall_clock_s": wall,
        "per_cycle_rates": {
            f"dano{d_ano}_d{d}_p{p}_{kind}": rate
            for (d_ano, d, p), rates in table.items()
            for kind, rate in zip(("free", "naive", "rollback"), rates, strict=True)},
    })
    for d_ano in ANOMALY_SIZES:
        rows = []
        for d in DISTANCES:
            for p in PHYSICAL_RATES:
                free, naive, rolled = table[(d_ano, d, p)]
                rows.append([d, p, free, naive, rolled])
        print_table(
            f"Fig. 8 (top, d_ano={d_ano}): p_L per cycle",
            ["d", "p", "MBBE free", "without rollback", "with rollback"],
            rows)

    # Shape: rollback never worse than naive at the lowest p (where the
    # first-order analysis dominates); MBBE free is the floor.
    for d_ano in ANOMALY_SIZES:
        for d in DISTANCES:
            free, naive, rolled = table[(d_ano, d, PHYSICAL_RATES[0])]
            assert free <= naive + 1e-9
            if naive > 20 / mc_samples():  # resolved by the sampling depth
                assert rolled <= naive * 1.25


@pytest.mark.benchmark(group="fig8")
def bench_fig8_distance_reduction(benchmark):
    """Regenerate the Fig. 8 bottom panels (Eq. 4 reductions).

    The paper notes this estimator carries large uncertainty (they plot
    only points with standard error below four and still see values above
    the asymptotic 2*d_ano / d_ano).  At bench-scale sampling the robust,
    checkable shape is *relative*: the rollback reduction must be smaller
    than the naive reduction, i.e. re-execution recovers roughly half the
    lost distance.  Absolute convergence needs the paper's >= 1e5-sample,
    small-p regime (see EXPERIMENTS.md).
    """
    samples = max(4 * mc_samples(), 1000)
    d, p = 9, 8e-3  # below the greedy decoder's effective threshold

    def run():
        out = {}
        free_d = _rate(d, p, samples, seed=11)
        free_dm2 = _rate(d - 2, p, samples, seed=12)
        for d_ano in ANOMALY_SIZES:
            region = AnomalousRegion.centered(d, d_ano)
            naive = _rate(d, p, samples, region, False, seed=13 + d_ano)
            rolled = _rate(d, p, samples, region, True, seed=17 + d_ano)
            out[d_ano] = (
                effective_distance_reduction(naive, free_d, free_dm2),
                effective_distance_reduction(rolled, free_d, free_dm2),
            )
        return out

    reductions = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[d_ano, f"{2 * d_ano}", f"{red[0]:.2f}",
             f"{d_ano}", f"{red[1]:.2f}"]
            for d_ano, red in reductions.items()]
    print_table(
        f"Fig. 8 (bottom, d={d}, p={p}): effective distance reduction",
        ["d_ano", "asymptote naive (2*d_ano)", "measured naive",
         "asymptote rollback (d_ano)", "measured rollback"],
        rows)

    # Shape: reductions positive; rollback loses less distance than naive.
    for d_ano, (naive_red, rolled_red) in reductions.items():
        assert naive_red > 0
        assert rolled_red <= naive_red
    # Bigger anomalies cost more distance.
    assert (reductions[ANOMALY_SIZES[1]][0]
            >= reductions[ANOMALY_SIZES[0]][0] - 1.0)


def smoke() -> None:
    """One tiny grid point (bench_smoke marker: import-rot guard)."""
    region = AnomalousRegion.centered(5, 2)
    rate = _rate(5, 2.5e-2, 8, region, informed=True, seed=3)
    assert 0.0 <= rate <= 1.0
