"""Batched shot engine vs the sequential per-shot path.

Times the Fig. 8 workload (the repo's heaviest Monte-Carlo hot path) at
equal sample counts through the sequential engine, the float batch
engine and the bit-packed batch engine, and prints the speedup table.
The acceptance bars: the batch engine pays for itself >= 5x over the
sequential path; the bit-packed sampling + syndrome-extraction stage
delivers >= 3x additional throughput over the float stage with per-shot
sample storage cut ~50x (8 bytes per sampled bit materialized by the
float64 draw vs one bit per bit plus a fixed 64-shot scratch block);
and the cross-shot bucketed decode engine delivers >= 3x decode-stage
throughput over the PR 2 per-shot decode loop on the same grid.

The batched results are also cross-checked for determinism and for the
certification contracts: same ``(seed, batch_size)`` must give
*bit-identical* failure counts through ``packing="bits"`` vs
``packing="none"`` and through ``decode="batched"`` vs
``decode="pershot"`` — speed must not cost reproducibility.

Stage throughputs and speedup ratios accumulate in ``BENCH_batch.json``
(see benchmarks/README.md for the schema) so the perf trajectory stays
machine-readable across PRs.
"""

import time
import tracemalloc

import numpy as np
import pytest

from repro.decoding.graph import SyndromeLattice
from repro.noise import AnomalousRegion
from repro.noise.models import PACKED_SAMPLE_CHUNK, PhenomenologicalNoise
from repro.sim import bitops
from repro.sim.batch import (BatchShotRunner, EndToEndShotKernel,
                             MemoryShotKernel)
from repro.sim.memory import MemoryExperiment

from _common import emit_json, mc_samples, mc_workers, print_table, scale

DISTANCES = [9, 13]
PHYSICAL_RATES = [8e-3, 1.5e-2, 2.5e-2]
ANOMALY_SIZE = 4


def _points():
    """The Fig. 8 rate grid: free / naive / informed per (d, p)."""
    points = []
    for d in DISTANCES:
        region = AnomalousRegion.centered(d, ANOMALY_SIZE)
        for p in PHYSICAL_RATES:
            points.append((f"d={d} p={p} free", d, p, None, False))
            points.append((f"d={d} p={p} naive", d, p, region, False))
            points.append((f"d={d} p={p} rollback", d, p, region, True))
    return points


def _campaign(samples: int, workers: int,
              packing: str = "bits") -> tuple[float, list[int]]:
    start = time.perf_counter()
    failures = []
    for idx, (_, d, p, region, informed) in enumerate(_points()):
        exp = MemoryExperiment(d, p, region=region, informed=informed)
        est = exp.run(samples, np.random.default_rng(idx),
                      workers=workers, seed=idx, packing=packing)
        failures.append(est.failures)
    return time.perf_counter() - start, failures


@pytest.mark.benchmark(group="batch")
def bench_batch_engine_speedup(benchmark):
    """Whole Fig. 8 grid: sequential vs batched (float and bit-packed)."""
    samples = mc_samples()
    workers = max(1, mc_workers())

    def run():
        seq_time, _ = _campaign(samples, workers=0)
        flt_time, flt_failures = _campaign(samples, workers, packing="none")
        bit_time, bit_failures = _campaign(samples, workers, packing="bits")
        rep_time, rep_failures = _campaign(samples, workers, packing="bits")
        return (seq_time, flt_time, bit_time,
                flt_failures, bit_failures, rep_failures)

    (seq_time, flt_time, bit_time, flt_failures, bit_failures,
     rep_failures) = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        f"Batch engine speedup (Fig. 8 grid, {samples} samples/point, "
        f"workers={workers})",
        ["engine", "wall clock (s)", "speedup"],
        [["sequential (workers=0)", f"{seq_time:.2f}", "1.0x"],
         ["batched float (packing=none)", f"{flt_time:.2f}",
          f"{seq_time / flt_time:.1f}x"],
         ["batched bit-packed (packing=bits)", f"{bit_time:.2f}",
          f"{seq_time / bit_time:.1f}x"]])

    # Reproducibility: the same seeds must give the same counts, and the
    # packed backend must be bit-identical to the float reference.
    assert bit_failures == rep_failures
    assert bit_failures == flt_failures, \
        "packed backend broke the bit-identical certification contract"
    # The acceptance bar: the batch engine pays for itself >= 5x.
    speedup = seq_time / min(flt_time, bit_time)
    emit_json("batch", "campaign", {
        "samples_per_point": samples,
        "workers": workers,
        "wall_clock_s": {"sequential": seq_time, "batched_float": flt_time,
                         "batched_bits": bit_time},
        "speedup_vs_sequential": {
            "batched_float": seq_time / flt_time,
            "batched_bits": seq_time / bit_time},
        "failures_bit_equal": True,
    })
    assert speedup >= 5.0, f"batch speedup {speedup:.2f}x < 5x"


def _float_stage(noise: PhenomenologicalNoise, lattice: SyndromeLattice,
                 shots: int, cycles: int, rng) -> None:
    v, h, m = noise.sample_batch(shots, cycles, rng)
    lattice.detection_events_batch(v, h, m)
    lattice.error_cut_parity(v)


def _packed_stage(noise: PhenomenologicalNoise, lattice: SyndromeLattice,
                  shots: int, cycles: int, rng) -> None:
    v, h, m = noise.sample_batch_packed(shots, cycles, rng)
    lattice.detection_events_packed(v, h, m)
    lattice.error_cut_parity_packed(v)


def _time_and_peak(fn, repeats: int = 3) -> tuple[float, int]:
    fn(0)  # warm-up (allocators, ufunc dispatch)
    start = time.perf_counter()
    for r in range(repeats):
        fn(r)
    elapsed = (time.perf_counter() - start) / repeats
    tracemalloc.start()
    fn(0)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return elapsed, peak


@pytest.mark.benchmark(group="batch")
def bench_packed_sampling_stage(benchmark):
    """Sampling + syndrome extraction: float vs bit-packed backend.

    This is the stage the bit-packed backend rewrites (the matching
    itself is shared, shot by shot, between both backends), measured at
    a campaign-scale batch on the Fig. 8 grid.  Bars: >= 3x aggregate
    throughput, ~50x smaller per-shot sample storage (reported model:
    8 B float64 draw + 1 B bool stored per sampled bit, against 1 bit
    stored plus the fixed 64-shot scratch block), and the measured
    whole-stage peak (which also carries the active-node coordinate
    arrays both backends hand to the decoder) >= 10x smaller.
    """
    # Batch size of a paper-scale packed campaign, not the MC depth knob.
    # The storage model amortizes the fixed 64-shot scratch block over
    # the batch, so REPRO_SCALE may grow the batch but never shrink it
    # below the regime the ~50x claim (and its assertion) is about.
    shots = max(8192, int(8192 * scale()))
    rows = []
    float_total = packed_total = 0.0
    mem_ratios = []
    storage_ratios = []

    def run():
        nonlocal float_total, packed_total
        for d in DISTANCES:
            p = PHYSICAL_RATES[-1]  # activity, not rate, drives the stage
            noise = PhenomenologicalNoise(
                d, p, 0.5, AnomalousRegion.centered(d, ANOMALY_SIZE))
            lattice = SyndromeLattice(d)
            flt_t, flt_peak = _time_and_peak(
                lambda r, noise=noise, lattice=lattice, d=d:
                    _float_stage(noise, lattice, shots, d,
                                 np.random.default_rng(r)))
            bit_t, bit_peak = _time_and_peak(
                lambda r, noise=noise, lattice=lattice, d=d:
                    _packed_stage(noise, lattice, shots, d,
                                  np.random.default_rng(r)))
            float_total += flt_t
            packed_total += bit_t
            mem_ratios.append(flt_peak / bit_peak)

            # Per-shot sample storage model, from real array sizes.
            bits_per_shot = d * (d * d + (d - 1) ** 2 + (d - 1) * d)
            float_bytes = 9.0 * bits_per_shot  # 8 B draw + 1 B stored
            packed_bytes = (bits_per_shot / 8.0
                            + 9.0 * bits_per_shot
                            * PACKED_SAMPLE_CHUNK / shots)
            storage_ratios.append(float_bytes / packed_bytes)
            rows.append([f"d={d} p={p}",
                         f"{flt_t * 1e3:.0f} / {bit_t * 1e3:.0f}",
                         f"{flt_t / bit_t:.1f}x",
                         f"{flt_peak / 1e6:.0f} / {bit_peak / 1e6:.1f}",
                         f"{flt_peak / bit_peak:.0f}x",
                         f"{float_bytes / 1e3:.0f} / "
                         f"{packed_bytes / 1e3:.2f}",
                         f"{float_bytes / packed_bytes:.0f}x"])

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        f"Bit-packed sampling + extraction stage ({shots} shots/batch)",
        ["point", "float/bits (ms)", "speedup",
         "peak float/bits (MB)", "peak ratio",
         "sample KB/shot float/bits", "storage ratio"],
        rows)

    throughput = float_total / packed_total
    emit_json("batch", "packed_sampling_stage", {
        "shots_per_batch": shots,
        "throughput_ratio": throughput,
        "storage_ratio_min": min(storage_ratios),
        "measured_peak_ratio_min": min(mem_ratios),
    })
    assert throughput >= 3.0, \
        f"packed stage throughput {throughput:.2f}x < 3x"
    assert min(storage_ratios) >= 40.0, \
        f"sample storage reduction {min(storage_ratios):.0f}x < ~50x"
    assert min(mem_ratios) >= 10.0, \
        f"measured stage peak reduction {min(mem_ratios):.0f}x < 10x"


def _decode_stage_data(d, p, region, informed, shots, seed):
    """Sample + extract one packed chunk and build both kernels."""
    kernels = {}
    for mode in ("pershot", "batched"):
        k = MemoryShotKernel(d, p, region=region, informed=informed,
                             decode=mode)
        k.prepare()
        kernels[mode] = k
    noise, lattice, _, _ = kernels["batched"]._state
    v, h, m = noise.sample_batch_packed(shots, d,
                                        np.random.default_rng(seed))
    coords, vals, bounds = lattice.detection_events_packed(v, h, m)
    parity_words = lattice.error_cut_parity_packed(v)
    return kernels, lattice, coords, vals, bounds, parity_words


def _decode_stage_pershot(kernel, lattice, coords, vals, bounds,
                          parity_words, shots):
    """The PR 2 decode loop: per-shot lane unpack + per-shot matching."""
    out = np.empty(shots, dtype=np.int8)
    for s in range(shots):
        nodes = lattice.shot_nodes(coords, vals, bounds, s)
        out[s] = bitops.lane_bit(parity_words, s) ^ kernel._cut_parity(nodes)
    return out


def _decode_stage_batched(kernel, lattice, coords, vals, parity_words,
                          shots):
    """The bucketed engine: bulk node gather + cross-shot decode."""
    nodes, offsets = lattice.shot_nodes_bulk(coords, vals, shots)
    nodes_list = [nodes[offsets[s]:offsets[s + 1]] for s in range(shots)]
    err = bitops.unpack_shots(parity_words, shots).astype(np.int8)
    return err ^ kernel._cut_parities(nodes_list)


@pytest.mark.benchmark(group="batch")
def bench_decode_stage_speedup(benchmark):
    """Decode stage: bucketed batched engine vs the PR 2 per-shot loop.

    Same packed chunk, same models, outputs asserted bit-equal; the
    acceptance bar is >= 3x aggregate decode-stage throughput on the
    Fig. 8 grid (NumPy backend).  Campaign failure counts are also
    asserted bit-equal through ``decode="batched"`` vs ``"pershot"``
    for the same ``(seed, batch_size)``.
    """
    shots = max(1024, int(1024 * scale()))
    repeats = 5
    rows = []
    points = []
    pershot_total = batched_total = 0.0

    def run():
        nonlocal pershot_total, batched_total
        for idx, (label, d, p, region, informed) in enumerate(_points()):
            (kernels, lattice, coords, vals, bounds,
             parity_words) = _decode_stage_data(
                d, p, region, informed, shots, seed=idx)
            best = {}
            for mode in ("pershot", "batched"):
                kern = kernels[mode]
                times = []
                for _ in range(repeats):
                    start = time.perf_counter()
                    if mode == "pershot":
                        out = _decode_stage_pershot(
                            kern, lattice, coords, vals, bounds,
                            parity_words, shots)
                    else:
                        out = _decode_stage_batched(
                            kern, lattice, coords, vals, parity_words,
                            shots)
                    times.append(time.perf_counter() - start)
                # min over repeats: the least-interference estimate on
                # a noisy shared machine, applied to both engines alike
                best[mode] = (min(times), out)
            t_ps, out_ps = best["pershot"]
            t_bt, out_bt = best["batched"]
            assert np.array_equal(out_ps, out_bt), \
                f"batched decode diverged from per-shot on {label}"
            pershot_total += t_ps
            batched_total += t_bt
            points.append({"point": label, "pershot_s": t_ps,
                           "batched_s": t_bt})
            rows.append([label, f"{t_ps * 1e3:.0f}", f"{t_bt * 1e3:.0f}",
                         f"{t_ps / t_bt:.1f}x"])

    benchmark.pedantic(run, rounds=1, iterations=1)

    ratio = pershot_total / batched_total
    print_table(
        f"Decode stage: per-shot loop vs bucketed engine "
        f"({shots} shots/chunk, best of {repeats})",
        ["point", "per-shot (ms)", "batched (ms)", "speedup"],
        rows + [["TOTAL", f"{pershot_total * 1e3:.0f}",
                 f"{batched_total * 1e3:.0f}", f"{ratio:.1f}x"]])

    # Campaign-level certification: same (seed, batch_size), same counts.
    fails = {}
    for mode in ("pershot", "batched"):
        kernel = MemoryShotKernel(
            13, PHYSICAL_RATES[-1],
            region=AnomalousRegion.centered(13, ANOMALY_SIZE),
            informed=True, decode=mode)
        res = BatchShotRunner(kernel, batch_size=256, seed=71,
                              packing="bits").run(1024)
        fails[mode] = int(np.count_nonzero(res.outcomes))
    assert fails["pershot"] == fails["batched"], \
        "batched campaign diverged from the per-shot packed path"

    emit_json("batch", "decode_stage", {
        "shots_per_chunk": shots,
        "repeats_min_of": repeats,
        "pershot_total_s": pershot_total,
        "batched_total_s": batched_total,
        "throughput_ratio": ratio,
        "campaign_failures_bit_equal": True,
        "points": points,
    })
    assert ratio >= 3.0, f"decode-stage throughput {ratio:.2f}x < 3x"


def _e2e_kernels(d, p, mode_list, onset, cycles, c_win):
    """Both decode-mode kernels for one Fig. 8 end-to-end point."""
    kernels = {}
    for mode in mode_list:
        k = EndToEndShotKernel(d, p, 0.5, anomaly_size=ANOMALY_SIZE,
                               onset=onset, cycles=cycles, c_win=c_win,
                               n_th=8, alpha=0.01, decode=mode)
        k.prepare()
        kernels[mode] = k
    return kernels


@pytest.mark.benchmark(group="batch")
def bench_e2e_decode_stage_speedup(benchmark):
    """End-to-end decode stage: region-bucketed engine vs per-shot loop.

    The campaign's naive/oracle/detected triple used to decode shot by
    shot because every shot carries its own strike region (true and
    estimated, with per-shot onsets).  The region-aware engine folds
    those boxes into its bucket tensors, so the whole chunk decodes in
    a handful of vectorized passes.  Same chunk, same models, outputs
    asserted bit-equal; the acceptance bar is >= 3x aggregate
    decode-stage throughput on the Fig. 8 end-to-end grid.
    """
    shots = max(128, int(128 * scale()))
    repeats = 3
    onset, c_win = 60, 40
    rows = []
    points = []
    pershot_total = batched_total = 0.0

    def run():
        nonlocal pershot_total, batched_total
        for idx, d in enumerate(DISTANCES):
            for p in PHYSICAL_RATES:
                label = f"d={d} p={p}"
                kernels = _e2e_kernels(d, p, ("pershot", "batched"),
                                       onset, onset + 2 * d, c_win)
                chunk = kernels["batched"]._chunk_packed(
                    shots, np.random.default_rng(idx))
                best = {}
                for mode in ("pershot", "batched"):
                    kern = kernels[mode]
                    times = []
                    for _ in range(repeats):
                        start = time.perf_counter()
                        out = kern._assemble(*chunk)
                        times.append(time.perf_counter() - start)
                    # min over repeats: least-interference estimate,
                    # applied to both engines alike
                    best[mode] = (min(times), out)
                t_ps, out_ps = best["pershot"]
                t_bt, out_bt = best["batched"]
                assert np.array_equal(out_ps, out_bt), \
                    f"region-bucketed decode diverged on {label}"
                pershot_total += t_ps
                batched_total += t_bt
                points.append({"point": label, "pershot_s": t_ps,
                               "batched_s": t_bt})
                rows.append([label, f"{t_ps * 1e3:.0f}",
                             f"{t_bt * 1e3:.0f}",
                             f"{t_ps / t_bt:.1f}x"])

    benchmark.pedantic(run, rounds=1, iterations=1)

    ratio = pershot_total / batched_total
    print_table(
        f"End-to-end decode stage: per-shot loop vs region-bucketed "
        f"engine ({shots} shots/chunk, best of {repeats})",
        ["point", "per-shot (ms)", "batched (ms)", "speedup"],
        rows + [["TOTAL", f"{pershot_total * 1e3:.0f}",
                 f"{batched_total * 1e3:.0f}", f"{ratio:.1f}x"]])

    # Campaign-level certification: same (seed, batch_size), same rows.
    camp = {}
    for mode in ("pershot", "batched"):
        kernel = EndToEndShotKernel(
            9, PHYSICAL_RATES[0], 0.5, anomaly_size=ANOMALY_SIZE,
            onset=onset, cycles=onset + 18, c_win=c_win, n_th=8,
            alpha=0.01, decode=mode)
        res = BatchShotRunner(kernel, batch_size=64, seed=71,
                              packing="bits").run(192)
        camp[mode] = res.outcomes
    assert np.array_equal(camp["pershot"], camp["batched"]), \
        "region-bucketed campaign diverged from the per-shot path"

    emit_json("batch", "e2e_decode_stage", {
        "shots_per_chunk": shots,
        "repeats_min_of": repeats,
        "pershot_total_s": pershot_total,
        "batched_total_s": batched_total,
        "throughput_ratio": ratio,
        "campaign_rows_bit_equal": True,
        "points": points,
    })
    assert ratio >= 3.0, \
        f"e2e decode-stage throughput {ratio:.2f}x < 3x"


@pytest.mark.benchmark(group="batch")
def bench_batch_single_point_timing(benchmark):
    """Time the heaviest single point (d=13, p=2.5e-2, informed)."""
    samples = mc_samples()
    exp = MemoryExperiment(13, 2.5e-2,
                           region=AnomalousRegion.centered(13, ANOMALY_SIZE),
                           informed=True)
    est = benchmark.pedantic(
        exp.run, args=(samples,),
        kwargs=dict(workers=max(1, mc_workers()), seed=5),
        rounds=1, iterations=1)
    assert est.samples == samples


def smoke() -> None:
    """One tiny grid point per engine path (bench_smoke marker)."""
    exp = MemoryExperiment(5, 2.5e-2,
                           region=AnomalousRegion.centered(5, 2),
                           informed=True)
    bits = exp.run(32, workers=1, seed=3, packing="bits")
    none = exp.run(32, workers=1, seed=3, packing="none")
    assert bits.failures == none.failures
    kernels, lattice, coords, vals, bounds, parity_words = \
        _decode_stage_data(5, 2.5e-2, AnomalousRegion.centered(5, 2),
                           True, 40, seed=1)
    ps = _decode_stage_pershot(kernels["pershot"], lattice, coords, vals,
                               bounds, parity_words, 40)
    bt = _decode_stage_batched(kernels["batched"], lattice, coords, vals,
                               parity_words, 40)
    assert np.array_equal(ps, bt)
    e2e = _e2e_kernels(5, 2.5e-2, ("pershot", "batched"), 20, 36, 12)
    chunk = e2e["batched"]._chunk_packed(24, np.random.default_rng(2))
    assert np.array_equal(e2e["pershot"]._assemble(*chunk),
                          e2e["batched"]._assemble(*chunk))
