"""Table III: memory overheads of the Q3DE buffers.

Paper setting: d = 31, p = 1e-3, c_win = 300.  Expected rows:
syndrome queue ~623 kbit, active node counter ~16 kbit, matching queue
~24 kbit; the syndrome queue is ~10x the MBBE-free baseline (2 d^3).
"""

import pytest

from repro.arch.memory_overhead import MemoryOverheadModel

from _common import emit_json, print_table

PAPER_KBIT = {
    "syndrome_queue": 623.0,
    "active_node_counter": 16.0,
    "matching_queue": 24.0,
}


@pytest.mark.benchmark(group="table3")
def bench_table3_memory_overheads(benchmark):
    model = benchmark(MemoryOverheadModel, distance=31, c_win=300)

    rows_kbit = model.rows_kbit()
    rows = [[unit.replace("_", " "), f"{kbit:.1f}",
             f"{PAPER_KBIT[unit]:.0f}"]
            for unit, kbit in rows_kbit.items()]
    rows.append(["(baseline 2d^3 queue)",
                 f"{model.baseline_syndrome_queue_bits() / 1000:.1f}",
                 "58"])
    print_table("Table III: memory per logical qubit (d=31, c_win=300)",
                ["unit", "measured kbit", "paper kbit"], rows)

    emit_json("batch", "table3_memory", {
        "kbit": dict(rows_kbit),
        "baseline_syndrome_queue_kbit":
            model.baseline_syndrome_queue_bits() / 1000,
        # x-baseline factor, deliberately not named *_ratio: it is a
        # fixed closed form, not a perf bar the comparator should gate.
        "syndrome_overhead_x": model.overhead_ratio(),
    })
    for unit, kbit in rows_kbit.items():
        assert kbit == pytest.approx(PAPER_KBIT[unit], rel=0.05)
    assert model.overhead_ratio() == pytest.approx(10, rel=0.15)


@pytest.mark.benchmark(group="table3")
def bench_table3_live_buffers_agree(benchmark):
    """The closed forms must match the actual buffer data structures."""
    from repro.arch.buffers import (MatchingQueue, SyndromeQueue,
                                    optimal_batch_cycles)

    def build():
        d, c_win = 31, 300
        queue = SyndromeQueue((d - 1, d),
                              c_win + optimal_batch_cycles(c_win))
        mq = MatchingQueue(c_win)
        return queue.memory_bits(), mq.memory_bits((d - 1) * d)

    sq_bits, mq_bits = benchmark(build)
    model = MemoryOverheadModel(31, 300)
    assert sq_bits == pytest.approx(model.syndrome_queue_bits(), rel=0.05)
    assert mq_bits == pytest.approx(model.matching_queue_bits(), rel=0.1)


def smoke() -> None:
    """One tiny grid point (bench_smoke marker: import-rot guard)."""
    model = MemoryOverheadModel(distance=31, c_win=300)
    assert model.overhead_ratio() > 1
