"""Deterministic fault injection for the distributed work queue.

Chaos testing is only worth having if a failing schedule can be
replayed exactly, so everything here is frozen data plus virtual time —
no threads, no wall clock, no randomness:

* :class:`FaultPlan` — a declarative schedule of :class:`FaultEvent`\\ s,
  each matching a named injection point in the worker (``claim``,
  ``computed``, ``write``, ``heartbeat``) against ``(chunk, attempt,
  worker)`` and prescribing an action: ``crash``, ``stall``, ``torn``,
  ``corrupt``, ``duplicate`` or ``skip``.  Plans round-trip through
  JSON (``python -m repro worker --fault-plan plan.json`` replays one
  against real worker processes).
* :class:`FaultInjector` — matches fire() calls against the plan,
  decrementing each event's ``times`` budget and logging what fired.
* :class:`VirtualClock` — the shared time source; only ``advance()``
  moves it, so lease expiry and backoff deadlines are functions of the
  schedule alone.
* :class:`WorkerPoolSim` — an in-process pool of real
  :class:`~repro.campaigns.distributed.Worker` objects, pumped one
  step each from the supervisor's ``idle_hook``.  Workers share the
  virtual clock; a crash removes the worker (its lease left dangling,
  its heartbeats frozen), a stall advances time mid-chunk and resumes
  later — every recovery path in the supervisor is reachable from a
  single thread, deterministically.

The chaos suite (``tests/test_distributed.py``) runs a campaign under
every fault plan in its matrix and asserts the result is bit-identical
to an uninterrupted :class:`~repro.campaigns.executors.InlineExecutor`
run — the at-least-once-dispatch / idempotent-merge-by-chunk-index
invariant made checkable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.campaigns.distributed import (Worker, WorkerCrashed,
                                         WorkQueueExecutor)

#: Injection points, in worker execution order.
POINTS = ("claim", "computed", "write", "heartbeat")

#: Actions valid at each point.
ACTIONS = {
    "claim": ("crash", "stall"),
    "computed": ("crash", "stall"),
    "write": ("crash", "torn", "corrupt", "duplicate"),
    "heartbeat": ("skip",),
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: where it hits, whom it hits, what it does.

    ``chunk``/``attempt``/``worker`` are match filters — ``None``
    matches anything — and ``times`` is how many matching firings the
    event spends before going inert.  ``seconds`` parameterises
    ``stall``; ``fraction`` is where a ``torn`` write cuts the record.
    """

    point: str
    action: str
    chunk: Optional[int] = None
    attempt: Optional[int] = None
    worker: Optional[str] = None
    times: int = 1
    seconds: float = 0.0
    fraction: float = 0.5

    def __post_init__(self):
        if self.point not in POINTS:
            raise ValueError(f"unknown fault point {self.point!r}; "
                             f"expected one of {POINTS}")
        if self.action not in ACTIONS[self.point]:
            raise ValueError(
                f"action {self.action!r} is not valid at {self.point!r} "
                f"(valid: {ACTIONS[self.point]})")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if not 0.0 < self.fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        if self.seconds < 0.0:
            raise ValueError("seconds must be >= 0")

    def to_dict(self) -> dict:
        return {k: v for k, v in self.__dict__.items()}

    @staticmethod
    def from_dict(doc: dict) -> "FaultEvent":
        return FaultEvent(**doc)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, replayable schedule of faults."""

    events: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))

    def to_dict(self) -> dict:
        return {"events": [event.to_dict() for event in self.events]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @staticmethod
    def from_dict(doc: dict) -> "FaultPlan":
        return FaultPlan(tuple(FaultEvent.from_dict(e)
                               for e in doc.get("events", ())))

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        return FaultPlan.from_dict(json.loads(text))

    @staticmethod
    def load(path: Union[str, Path]) -> "FaultPlan":
        return FaultPlan.from_json(Path(path).read_text(encoding="utf-8"))


class FaultInjector:
    """Match fire() calls against a plan; spend each event's budget."""

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan if plan is not None else FaultPlan()
        self._remaining = [event.times for event in self.plan.events]
        #: Log of fired events: ``(point, chunk, attempt, worker, action)``.
        self.fired: list = []

    def fire(self, point: str, *, chunk: Optional[int],
             attempt: Optional[int], worker: str) -> Optional[FaultEvent]:
        """The first live matching event, or ``None`` to proceed cleanly."""
        for pos, event in enumerate(self.plan.events):
            if self._remaining[pos] <= 0 or event.point != point:
                continue
            if event.chunk is not None and event.chunk != chunk:
                continue
            if event.attempt is not None and event.attempt != attempt:
                continue
            if event.worker is not None and event.worker != worker:
                continue
            self._remaining[pos] -= 1
            self.fired.append((point, chunk, attempt, worker, event.action))
            return event
        return None


class VirtualClock:
    """Seconds that move only when the harness says so."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time only moves forward")
        self.now += float(seconds)


@dataclass
class WorkerPoolSim:
    """A single-threaded simulated worker pool on virtual time.

    ``pump()`` is one scheduler quantum: advance the clock one tick,
    then give every live worker a heartbeat (unless it is stalled
    mid-chunk — a preempted worker cannot heartbeat; that is what makes
    its lease expire) and one step.  Passed as the supervisor's
    ``idle_hook``, it interleaves worker progress with supervisor
    reconciliation deterministically.
    """

    queue_dir: Union[str, Path]
    workers: int = 2
    plan: Optional[FaultPlan] = None
    tick_s: float = 1.0
    clock: VirtualClock = field(default_factory=VirtualClock)

    def __post_init__(self):
        self.injector = FaultInjector(self.plan)
        self.pool = [Worker(self.queue_dir, f"sim{pos}", clock=self.clock,
                            faults=self.injector)
                     for pos in range(self.workers)]
        #: Workers removed by an injected crash.
        self.crashed: list = []

    def pump(self) -> None:
        self.clock.advance(self.tick_s)
        for worker in list(self.pool):
            try:
                if not worker.busy:
                    worker.heartbeat()
                worker.step()
            except WorkerCrashed:
                self.pool.remove(worker)
                self.crashed.append(worker)

    def executor(self, *, lease_s: float = 5.0, max_attempts: int = 3,
                 backoff_base_s: float = 0.5, backoff_cap_s: float = 2.0,
                 worker_grace_s: float = 3.0,
                 inline_fallback: bool = True) -> WorkQueueExecutor:
        """A supervisor wired to this sim (virtual clock, pump as idle)."""
        return WorkQueueExecutor(
            self.queue_dir, lease_s=lease_s, max_attempts=max_attempts,
            backoff_base_s=backoff_base_s, backoff_cap_s=backoff_cap_s,
            worker_grace_s=worker_grace_s, inline_fallback=inline_fallback,
            clock=self.clock, idle_hook=self.pump)
