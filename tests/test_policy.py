"""Tests for reaction policies and non-cosmic-ray burst sources."""

import numpy as np
import pytest

from repro.arch.qubit_plane import BlockState, QubitPlane
from repro.core.policy import (
    ReactionPolicy,
    ReactionPolicyEngine,
)
from repro.noise.leakage import (
    BurstEvent,
    BurstProcess,
    BurstSource,
    RECOMMENDED_POLICY,
    ion_trap_processes,
)


class TestPolicies:
    def test_ignore_does_nothing(self):
        plane = QubitPlane(11, 11)
        engine = ReactionPolicyEngine(plane, ReactionPolicy.IGNORE)
        out = engine.react(0, slot=0, duration_slots=100)
        assert out.succeeded
        assert not plane.is_expanded(0)
        assert plane.logical_positions[0] == (1, 1)

    def test_expand_policy_grows_qubit(self):
        plane = QubitPlane(11, 11)
        engine = ReactionPolicyEngine(plane, ReactionPolicy.EXPAND)
        out = engine.react(0, slot=0, duration_slots=100)
        assert out.succeeded
        assert plane.is_expanded(0)

    def test_relocate_moves_to_healthy_block(self):
        plane = QubitPlane(11, 11)
        engine = ReactionPolicyEngine(plane, ReactionPolicy.RELOCATE)
        plane.strike(1, 1, until_slot=100)  # hit qubit 0
        out = engine.react(0, slot=0, duration_slots=100)
        assert out.succeeded
        assert out.new_position is not None
        assert out.new_position != (1, 1)
        new_block = plane.block(*out.new_position)
        assert new_block.state is BlockState.LOGICAL
        assert new_block.logical_id == 0
        assert plane.logical_positions[0] == out.new_position

    def test_relocate_leaves_anomalous_vacancy_behind(self):
        plane = QubitPlane(11, 11)
        engine = ReactionPolicyEngine(plane, ReactionPolicy.RELOCATE)
        plane.strike(1, 1, until_slot=100)
        engine.react(0, slot=0, duration_slots=100)
        old = plane.block(1, 1)
        assert old.state is BlockState.ANOMALOUS
        assert old.logical_id is None
        assert not plane.routable(1, 1, slot=50)

    def test_relocate_avoids_anomalous_destinations(self):
        plane = QubitPlane(11, 11)
        engine = ReactionPolicyEngine(plane, ReactionPolicy.RELOCATE)
        # Poison every neighbour of qubit 0 except a distant cell.
        for cell in [(0, 1), (1, 0), (2, 1), (1, 2), (0, 0), (2, 2),
                     (0, 2), (2, 0)]:
            plane.strike(*cell, until_slot=100)
        out = engine.react(0, slot=0, duration_slots=100)
        assert out.succeeded
        r, c = out.new_position
        assert not plane.is_anomalous(r, c, slot=0)

    def test_relocate_fails_when_plane_saturated(self):
        plane = QubitPlane(3, 3)
        for r in range(3):
            for c in range(3):
                if plane.block(r, c).state is BlockState.VACANT:
                    plane.strike(r, c, until_slot=1000)
        engine = ReactionPolicyEngine(plane, ReactionPolicy.RELOCATE)
        out = engine.react(0, slot=0, duration_slots=100)
        assert not out.succeeded


class TestBurstSources:
    def test_recommended_policies_cover_all_sources(self):
        assert set(RECOMMENDED_POLICY) == set(BurstSource)

    def test_cosmic_rays_expand_others_relocate(self):
        assert (RECOMMENDED_POLICY[BurstSource.COSMIC_RAY]
                is ReactionPolicy.EXPAND)
        assert (RECOMMENDED_POLICY[BurstSource.ATOM_LOSS]
                is ReactionPolicy.RELOCATE)

    def test_event_region_conversion(self):
        event = BurstEvent(BurstSource.LEAKAGE, cycle=100, row=2, col=3,
                           size=1, duration_cycles=500)
        region = event.region()
        assert region.t_lo == 100
        assert region.t_hi == 600
        assert region.contains_node(2, 3)
        assert not region.contains_node(3, 3)

    def test_process_rate_scaling(self):
        rng = np.random.default_rng(0)
        quiet = BurstProcess(BurstSource.LEAKAGE, 1e-6, 1, 100, 8, 9,
                             rng=rng)
        loud = BurstProcess(BurstSource.LEAKAGE, 1e-3, 1, 100, 8, 9,
                            rng=np.random.default_rng(0))
        cycles = 1_000_000
        assert len(loud.sample(cycles)) > len(quiet.sample(cycles))

    def test_events_sorted_and_placed(self):
        proc = BurstProcess(BurstSource.ATOM_LOSS, 1e-4, 2, 100, 8, 9,
                            rng=np.random.default_rng(1))
        events = proc.sample(200_000)
        assert events == sorted(events, key=lambda e: e.cycle)
        for e in events:
            assert 0 <= e.row <= 6
            assert 0 <= e.col <= 7

    def test_ion_trap_reference_processes(self):
        procs = ion_trap_processes(20, 21, np.random.default_rng(2))
        sources = {p.source for p in procs}
        assert BurstSource.LEAKAGE in sources
        assert BurstSource.CRYSTAL_SCRAMBLE in sources
        # Leakage dominates the arrival rates for ion traps.
        leak = next(p for p in procs if p.source is BurstSource.LEAKAGE)
        assert all(leak.rate_per_cycle >= p.rate_per_cycle
                   for p in procs)

    def test_invalid_process_rejected(self):
        with pytest.raises(ValueError):
            BurstProcess(BurstSource.LEAKAGE, -1.0, 1, 100, 8, 9)
        with pytest.raises(ValueError):
            BurstProcess(BurstSource.LEAKAGE, 1e-5, 0, 100, 8, 9)
