"""Chaos suite for the distributed work queue.

The contract under test (docs/CONTRACTS.md): dispatch is at-least-once,
the merge is idempotent by chunk index, and therefore under *every*
fault schedule in the matrix — worker crashes, stalls past lease
expiry, torn and corrupt record writes, duplicate deliveries, total
worker loss — a campaign completes with estimates and counts
bit-identical to an uninterrupted :class:`InlineExecutor` run of the
same ``(seed, batch_size)``, while the supervisor's accounting records
the recovery work honestly.

Everything runs single-threaded on virtual time
(:mod:`repro.campaigns.faults`), so a failing schedule replays exactly.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import campaigns
from repro.campaigns.distributed import (WorkQueue, WorkQueueError,
                                         WorkQueueExecutor, backoff_delay)
from repro.campaigns.faults import (FaultEvent, FaultInjector, FaultPlan,
                                    VirtualClock, WorkerPoolSim)

SPEC = campaigns.MemorySpec(distance=3, p=2e-2, samples=48, seed=9,
                            batch_size=8)  # 6 chunks


@pytest.fixture(scope="module")
def inline_result():
    return campaigns.run(SPEC, executor=campaigns.InlineExecutor())


def _hard_counts(result):
    """Counts minus cache counters (which measure scheduling, not
    physics — a sim worker's kernel reuse pattern legitimately differs
    from the inline kernel's)."""
    return {k: v for k, v in result.counts.items()
            if not k.startswith("cache")}


def _run_under(plan, tmp_path, workers=2, **executor_kw):
    sim = WorkerPoolSim(tmp_path / "q", workers=workers, plan=plan)
    result = campaigns.run(SPEC, executor=sim.executor(**executor_kw))
    return result, sim


# ----------------------------------------------------------------------
# The chaos matrix
# ----------------------------------------------------------------------
CHAOS_MATRIX = {
    "crash-mid-chunk": (
        FaultPlan((FaultEvent(point="computed", action="crash", chunk=1),)),
        {"expired_leases": 1, "re_dispatched": 1, "dead_workers": 1},
    ),
    "stall-past-lease": (
        FaultPlan((FaultEvent(point="claim", action="stall", chunk=2,
                              seconds=20.0),)),
        {"expired_leases": 1, "re_dispatched": 1},
    ),
    "corrupt-record": (
        FaultPlan((FaultEvent(point="write", action="corrupt", chunk=0),)),
        {"corrupt_records": 1},
    ),
    "torn-record": (
        FaultPlan((FaultEvent(point="write", action="torn", chunk=3),)),
        {"corrupt_records": 1},
    ),
    "duplicate-delivery": (
        FaultPlan((FaultEvent(point="write", action="duplicate", chunk=1),)),
        {"duplicates": 1},
    ),
    "crash-on-write": (
        FaultPlan((FaultEvent(point="write", action="crash", chunk=4),)),
        {"expired_leases": 1, "dead_workers": 1},
    ),
    "total-worker-loss": (
        FaultPlan((FaultEvent(point="claim", action="crash"),
                   FaultEvent(point="claim", action="crash"))),
        {"dead_workers": 2, "drained_inline": 6},
    ),
    "poison-chunk": (
        FaultPlan((FaultEvent(point="write", action="corrupt", chunk=2,
                              times=10),)),
        {"quarantined": 1, "corrupt_records": 3},
    ),
    "heartbeat-loss": (
        FaultPlan((FaultEvent(point="heartbeat", action="skip",
                              worker="sim1", times=100),)),
        {},
    ),
    "compound": (
        FaultPlan((FaultEvent(point="computed", action="crash", chunk=0),
                   FaultEvent(point="write", action="corrupt", chunk=3),
                   FaultEvent(point="write", action="duplicate", chunk=5),)),
        {"expired_leases": 1, "corrupt_records": 1, "duplicates": 1},
    ),
}


@pytest.mark.chaos
@pytest.mark.parametrize("name", sorted(CHAOS_MATRIX))
def test_chaos_bit_identical_to_inline(name, tmp_path, inline_result):
    plan, floors = CHAOS_MATRIX[name]
    result, _ = _run_under(plan, tmp_path)
    assert result.estimates == inline_result.estimates
    assert _hard_counts(result) == _hard_counts(inline_result)
    acct = result.provenance.supervisor
    assert acct is not None and acct["dispatched"] >= 6
    for counter, floor in floors.items():
        assert acct[counter] >= floor, (
            f"{name}: expected {counter} >= {floor}, got {acct}")


@pytest.mark.chaos
def test_chaos_replay_is_deterministic(tmp_path, inline_result):
    plan, _ = CHAOS_MATRIX["compound"]
    first, sim1 = _run_under(plan, tmp_path / "a")
    second, sim2 = _run_under(plan, tmp_path / "b")
    assert first.estimates == second.estimates == inline_result.estimates
    assert first.provenance.supervisor == second.provenance.supervisor
    assert sim1.injector.fired == sim2.injector.fired


def test_clean_queue_run_reports_no_recovery(tmp_path, inline_result):
    result, sim = _run_under(None, tmp_path)
    assert result.estimates == inline_result.estimates
    acct = result.provenance.supervisor
    assert acct["dispatched"] == 6 and acct["re_dispatched"] == 0
    assert acct["workers_seen"] == 2 and acct["quarantined"] == 0
    assert result.provenance.executor.startswith("work-queue(")
    # Supervisor accounting reaches the JSON wire format.
    assert json.loads(result.to_json())["provenance"]["supervisor"] == acct


def test_pool_never_appears_drains_inline(tmp_path, inline_result):
    clock = VirtualClock()
    ex = WorkQueueExecutor(tmp_path / "q", worker_grace_s=3.0,
                           clock=clock,
                           idle_hook=lambda: clock.advance(1.0))
    result = campaigns.run(SPEC, executor=ex)
    assert result.estimates == inline_result.estimates
    assert _hard_counts(result) == _hard_counts(inline_result)
    assert result.provenance.supervisor["drained_inline"] == 6


def test_pool_never_appears_without_fallback_raises(tmp_path):
    clock = VirtualClock()
    ex = WorkQueueExecutor(tmp_path / "q", worker_grace_s=3.0,
                           inline_fallback=False, clock=clock,
                           idle_hook=lambda: clock.advance(1.0))
    with pytest.raises(WorkQueueError, match="no live workers"):
        campaigns.run(SPEC, executor=ex)


def test_checkpoint_resume_through_queue(tmp_path, inline_result):
    class StopAfter(campaigns.InlineExecutor):
        def __init__(self, limit):
            super().__init__()
            self.limit = limit

        def run_chunks(self, kernel, packing, tasks):
            for done, out in enumerate(
                    super().run_chunks(kernel, packing, tasks)):
                if done >= self.limit:
                    raise KeyboardInterrupt
                yield out

    ckpt = tmp_path / "ckpt"
    with pytest.raises(KeyboardInterrupt):
        campaigns.run(SPEC, executor=StopAfter(2), checkpoint=ckpt)
    sim = WorkerPoolSim(tmp_path / "q", workers=2)
    resumed = campaigns.run(SPEC, executor=sim.executor(), checkpoint=ckpt)
    assert resumed.provenance.resumed_chunks == 2
    assert resumed.estimates == inline_result.estimates
    assert _hard_counts(resumed) == _hard_counts(inline_result)


def test_queue_cleanup_withdraws_tasks_keeps_results(tmp_path):
    result, sim = _run_under(
        FaultPlan((FaultEvent(point="write", action="duplicate", chunk=5),)),
        tmp_path)
    queue = WorkQueue(tmp_path / "q")
    assert queue.task_files() == []
    assert queue.lease_files() == []


# ----------------------------------------------------------------------
# Pieces
# ----------------------------------------------------------------------
class TestPieces:
    def test_name_grammar_round_trips(self):
        name = WorkQueue.task_name("abc123", 7, 2)
        assert WorkQueue.parse_task_name(name) == ("abc123", 7, 2)
        rname = WorkQueue.result_name("abc123", 7)
        assert WorkQueue.parse_result_name(rname) == ("abc123", 7)
        with pytest.raises(ValueError):
            WorkQueue.parse_task_name("garbage")

    def test_backoff_is_deterministic_bounded_and_growing(self):
        delays = [backoff_delay("h", 3, attempt, 0.25, 4.0)
                  for attempt in (2, 3, 4, 5, 6, 7)]
        assert delays == [backoff_delay("h", 3, attempt, 0.25, 4.0)
                          for attempt in (2, 3, 4, 5, 6, 7)]
        for attempt, delay in zip((2, 3, 4, 5, 6, 7), delays):
            raw = min(4.0, 0.25 * 2 ** (attempt - 2))
            assert 0.5 * raw <= delay < 1.5 * raw
        assert backoff_delay("h", 3, 2, 0.25, 4.0) != \
            backoff_delay("h", 4, 2, 0.25, 4.0)

    def test_fault_plan_round_trips_through_json(self):
        plan = FaultPlan((FaultEvent(point="write", action="torn", chunk=3,
                                     fraction=0.25),
                          FaultEvent(point="claim", action="stall",
                                     seconds=9.0, times=2)))
        assert FaultPlan.from_json(plan.to_json()) == plan

    @pytest.mark.parametrize("kwargs", [
        dict(point="nowhere", action="crash"),
        dict(point="claim", action="torn"),
        dict(point="write", action="stall"),
        dict(point="heartbeat", action="crash"),
        dict(point="claim", action="crash", times=0),
        dict(point="write", action="torn", fraction=1.5),
    ])
    def test_fault_event_rejects(self, kwargs):
        with pytest.raises(ValueError):
            FaultEvent(**kwargs)

    def test_injector_spends_budget_and_filters(self):
        plan = FaultPlan((FaultEvent(point="claim", action="crash",
                                     chunk=1, worker="w1"),))
        injector = FaultInjector(plan)
        assert injector.fire("claim", chunk=0, attempt=1, worker="w1") is None
        assert injector.fire("claim", chunk=1, attempt=1, worker="w2") is None
        event = injector.fire("claim", chunk=1, attempt=1, worker="w1")
        assert event is not None and event.action == "crash"
        assert injector.fire("claim", chunk=1, attempt=2, worker="w1") is None
        assert injector.fired == [("claim", 1, 1, "w1", "crash")]

    def test_unbound_run_chunks_refuses(self, tmp_path):
        ex = WorkQueueExecutor(tmp_path / "q")
        with pytest.raises(WorkQueueError, match="bind"):
            next(iter(ex.run_chunks(None, "bits", [])))

    def test_executor_knob_validation(self, tmp_path):
        with pytest.raises(ValueError):
            WorkQueueExecutor(tmp_path, lease_s=0)
        with pytest.raises(ValueError):
            WorkQueueExecutor(tmp_path, max_attempts=0)
        with pytest.raises(ValueError):
            WorkQueueExecutor(tmp_path, backoff_base_s=2.0,
                              backoff_cap_s=1.0)

    def test_parse_executor_queue_syntax(self, tmp_path):
        from repro.campaigns.cli import parse_executor
        ex = parse_executor(f"queue:{tmp_path / 'q'}")
        assert isinstance(ex, WorkQueueExecutor)
        assert ex.queue.root == tmp_path / "q"


# ----------------------------------------------------------------------
# The real thing: worker subprocesses over a shared directory
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestRealWorkers:
    def _spawn(self, queue_dir, *extra):
        src = str(Path(__file__).resolve().parent.parent / "src")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", str(queue_dir),
             "--poll", "0.05", "--idle-exit", "15", *extra],
            env=dict(os.environ, PYTHONPATH=src),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)

    def test_subprocess_worker_bit_identical(self, tmp_path, inline_result):
        queue_dir = tmp_path / "q"
        proc = self._spawn(queue_dir, "--id", "real0")
        try:
            ex = WorkQueueExecutor(queue_dir, lease_s=30.0,
                                   worker_grace_s=90.0, poll_s=0.05)
            result = campaigns.run(SPEC, executor=ex)
        finally:
            WorkQueue(queue_dir).request_stop()
            out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        assert result.estimates == inline_result.estimates
        assert _hard_counts(result) == _hard_counts(inline_result)
        acct = result.provenance.supervisor
        assert acct["workers_seen"] >= 1
        assert acct["drained_inline"] == 0

    def test_subprocess_worker_replays_fault_plan(self, tmp_path):
        # A crash-on-first-claim plan kills the real worker process with
        # the dedicated exit code; the queue is left recoverable.
        queue_dir = tmp_path / "q"
        plan = FaultPlan((FaultEvent(point="claim", action="crash"),))
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan.to_json(), encoding="utf-8")
        # Enqueue one real task by hand, then hand the queue to the
        # doomed worker.
        from repro.campaigns.distributed import TASK_FORMAT
        queue = WorkQueue(queue_dir)
        queue.ensure()
        digest = campaigns.spec_hash(SPEC)
        doc = {"format": TASK_FORMAT, "type": "task", "spec_hash": digest,
               "spec": campaigns.spec_to_dict(SPEC), "index": 0, "size": 8,
               "batch_size": 8, "attempt": 1}
        name = WorkQueue.task_name(digest, 0, 1)
        (queue.tasks / name).write_text(json.dumps(doc), encoding="utf-8")
        proc = self._spawn(queue_dir, "--id", "doomed",
                           "--fault-plan", str(plan_path))
        out, err = proc.communicate(timeout=90)
        assert proc.returncode == 3, (out, err)
        assert "crashed" in err
        # The claim survived as a recoverable lease for the supervisor.
        assert [p.name for p in queue.lease_files()] == [f"{name}.doomed"]
