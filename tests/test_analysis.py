"""Tests for the analytic models: Eq. (1), first-order cases, Eq. (4)."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.effective_rate import (
    effective_logical_error_rate,
    mbbe_increase_ratio,
)
from repro.analysis.firstorder import (
    effective_distance_reduction,
    min_normal_flips,
    predicted_reduction,
    reduction_standard_error,
)


class TestEffectiveRate:
    def test_eq1_formula(self):
        rate = effective_logical_error_rate(1e-8, 1e-4, 1.0, 25e-3)
        assert rate == pytest.approx(0.975e-8 + 0.025e-4)

    def test_paper_motivation_100x(self):
        """Sec. III: the MBBE term raises the effective rate ~100x."""
        p_l = 1e-9
        p_l_ano = 4e-6  # d=21-ish under an anomaly
        ratio = mbbe_increase_ratio(p_l, p_l_ano, frequency_hz=1.0,
                                    lifetime_s=25e-3)
        assert 10 < ratio < 1000

    def test_no_rays_leaves_rate(self):
        assert effective_logical_error_rate(1e-8, 1.0, 0.0, 25e-3) == 1e-8

    def test_invalid_duty_rejected(self):
        with pytest.raises(ValueError):
            effective_logical_error_rate(1e-8, 1e-4, 100.0, 1.0)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            effective_logical_error_rate(2.0, 0.5, 1.0, 1e-3)
        with pytest.raises(ValueError):
            mbbe_increase_ratio(0.0, 0.5, 1.0, 1e-3)

    @given(st.floats(1e-12, 1e-2), st.floats(1e-12, 1e-2),
           st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_rate_between_components(self, p_l, p_l_ano, f, tau):
        if f * tau > 1.0:
            return
        rate = effective_logical_error_rate(p_l, p_l_ano, f, tau)
        eps = 1e-12
        assert min(p_l, p_l_ano) - eps <= rate <= max(p_l, p_l_ano) + eps


class TestFirstOrderCases:
    def test_case1_no_anomaly(self):
        assert min_normal_flips(21) == 11

    def test_case2_naive_decoding(self):
        assert min_normal_flips(21, 4) == 7  # 11 - 4

    def test_case3_informed_decoding(self):
        assert min_normal_flips(21, 4, informed=True) == 9  # (17//2)+1

    def test_informed_at_least_naive(self):
        for d in (9, 15, 21):
            for d_ano in (1, 2, 3, 4):
                assert (min_normal_flips(d, d_ano, informed=True)
                        >= min_normal_flips(d, d_ano))

    def test_floor_at_one(self):
        assert min_normal_flips(5, 10) == 1

    def test_predicted_reductions(self):
        assert predicted_reduction(4, informed=False) == 8
        assert predicted_reduction(4, informed=True) == 4

    def test_reduction_consistent_with_flip_counts(self):
        """2 * (flips_without - flips_with_anomaly) = distance reduction."""
        d = 21
        for d_ano in (1, 2, 3, 4):
            naive_loss = 2 * (min_normal_flips(d)
                              - min_normal_flips(d, d_ano))
            assert naive_loss == predicted_reduction(d_ano, informed=False)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            min_normal_flips(1)
        with pytest.raises(ValueError):
            min_normal_flips(5, -1)


class TestEq4:
    def test_round_trip_with_synthetic_scaling(self):
        """Feed Eq. (4) rates from the ideal scaling law; recover 2 d_ano."""
        p_over_pth = 0.2
        d, d_ano = 21, 3

        def p_l(d_eff):
            return 0.1 * p_over_pth ** (d_eff // 2 + 1)

        reduction = effective_distance_reduction(
            p_l_ano=p_l(d - 2 * d_ano), p_l=p_l(d), p_l_minus2=p_l(d - 2))
        assert reduction == pytest.approx(2 * d_ano, abs=0.01)

    def test_zero_reduction_when_rates_equal(self):
        assert effective_distance_reduction(1e-5, 1e-5, 1e-4) == 0.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            effective_distance_reduction(0.0, 1e-5, 1e-4)

    def test_rejects_flat_scaling(self):
        with pytest.raises(ValueError):
            effective_distance_reduction(1e-3, 1e-5, 1e-5)

    def test_standard_error_positive_and_scales(self):
        se_small = reduction_standard_error(
            1e-3, 1e-5, 1e-5, 1e-7, 1e-4, 1e-6)
        se_large = reduction_standard_error(
            1e-3, 5e-4, 1e-5, 5e-6, 1e-4, 5e-5)
        assert 0 < se_small < se_large
