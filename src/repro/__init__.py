"""repro: a reproduction of Q3DE (Suzuki et al., MICRO 2022).

Q3DE is a fault-tolerant quantum computing architecture that tolerates
multi-bit burst errors (MBBEs) from cosmic-ray strikes through three
mechanisms: in-situ anomaly DEtection from syndrome statistics, dynamic
code DEformation (temporal code-distance expansion), and optimized error
DEcoding (rollback + anomaly-aware re-execution).

Public API highlights
---------------------
* :class:`repro.surface_code.PlanarSurfaceCode` -- code layout/stabilizers.
* :class:`repro.noise.PhenomenologicalNoise`, :class:`repro.noise.CosmicRayModel`
  -- the paper's noise and MBBE models.
* :class:`repro.decoding.GreedyDecoder`, :class:`repro.decoding.MWPMDecoder`
  -- matching decoders over uniform or anomaly-aware distances.
* :class:`repro.core.AnomalyDetectionUnit` -- MBBE detection (Sec. IV).
* :class:`repro.core.Q3DEControlUnit` -- the integrated control unit.
* :mod:`repro.campaigns` -- **the** way to run experiments: declarative
  specs, one ``run()``, pluggable executors, checkpoint/resume
  (``python -m repro run spec.json`` from the shell).
* :class:`repro.sim.MemoryExperiment` -- logical-error Monte Carlo
  (legacy shim over :mod:`repro.campaigns`).
* :mod:`repro.scaling`, :mod:`repro.arch.throughput`, :mod:`repro.hwmodel`
  -- the Fig. 9 / Fig. 10 / Table IV evaluations.
"""

from repro.surface_code import PlanarSurfaceCode
from repro.noise import AnomalousRegion, PhenomenologicalNoise, CosmicRayModel
from repro.decoding import (
    SyndromeLattice,
    DistanceModel,
    GreedyDecoder,
    MWPMDecoder,
)
from repro.core import (
    AnomalyDetectionUnit,
    SyndromeStatistics,
    Q3DEControlUnit,
    Q3DEConfig,
)
from repro.sim import MemoryExperiment

__version__ = "1.1.0"

from repro import campaigns  # noqa: E402  (needs __version__ for provenance)
from repro import config  # noqa: E402

__all__ = [
    "PlanarSurfaceCode",
    "AnomalousRegion",
    "PhenomenologicalNoise",
    "CosmicRayModel",
    "SyndromeLattice",
    "DistanceModel",
    "GreedyDecoder",
    "MWPMDecoder",
    "AnomalyDetectionUnit",
    "SyndromeStatistics",
    "Q3DEControlUnit",
    "Q3DEConfig",
    "MemoryExperiment",
    "campaigns",
    "config",
    "__version__",
]
