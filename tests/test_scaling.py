"""Tests for the Fig. 9 scalability model."""

import numpy as np
import pytest

from repro.scaling.model import (
    ScalingParameters,
    average_logical_error_rate,
    density_curve,
    required_density,
)


@pytest.fixture
def params():
    # Smaller horizon keeps tests fast; rates are time averages so the
    # shape is unchanged.
    return ScalingParameters(horizon_cycles=20_000_000)


class TestLogicalRateModel:
    def test_rate_decreases_with_distance(self, params):
        assert params.logical_rate(21) < params.logical_rate(11)

    def test_rate_formula(self, params):
        # d_eff = 11: floor(12/2) = 6 halvings of 10x each.
        assert params.logical_rate(11) == pytest.approx(0.1 * 0.1 ** 6)

    def test_degenerate_distance_saturates(self, params):
        assert params.logical_rate(0) == 1.0

    def test_code_distance_scales_with_budget(self, params):
        assert params.code_distance(1, 1) == 11
        assert params.code_distance(4, 1) == 22
        assert params.code_distance(1, 4) == 22

    def test_anomaly_grows_with_density(self, params):
        assert params.anomaly_qubits(1) == 4
        assert params.anomaly_qubits(4) == 8


class TestAverageRate:
    def test_no_rays_equals_base_rate(self, params):
        from dataclasses import replace
        quiet = replace(params, frequency_hz=0.0)
        rate = average_logical_error_rate(quiet, 1.0, 1.0, use_q3de=False)
        assert rate == pytest.approx(quiet.logical_rate(11))

    def test_q3de_never_worse_than_baseline(self, params):
        for area, density in [(1, 4), (2, 2), (4, 8)]:
            base = average_logical_error_rate(
                params, area, density, use_q3de=False,
                rng=np.random.default_rng(0))
            q3de = average_logical_error_rate(
                params, area, density, use_q3de=True,
                rng=np.random.default_rng(0))
            assert q3de <= base + 1e-30

    def test_rays_increase_average_rate(self, params):
        from dataclasses import replace
        quiet = replace(params, frequency_hz=0.0)
        noisy_rate = average_logical_error_rate(
            params, 1.0, 4.0, use_q3de=False,
            rng=np.random.default_rng(1))
        quiet_rate = average_logical_error_rate(
            quiet, 1.0, 4.0, use_q3de=False)
        assert noisy_rate > quiet_rate


class TestRequiredDensity:
    def test_q3de_needs_less_density(self, params):
        base = required_density(params, area_ratio=4.0, use_q3de=False)
        q3de = required_density(params, area_ratio=4.0, use_q3de=True)
        assert base is not None and q3de is not None
        assert q3de <= base

    def test_density_falls_with_area_without_rays(self):
        from dataclasses import replace
        quiet = ScalingParameters(frequency_hz=0.0,
                                  horizon_cycles=1_000_000)
        d_small = required_density(quiet, 1.0, use_q3de=False)
        d_large = required_density(quiet, 8.0, use_q3de=False)
        assert d_small is not None and d_large is not None
        assert d_large < d_small

    def test_curve_matches_pointwise(self, params):
        areas = [2.0, 8.0]
        curve = density_curve(params, areas, use_q3de=True, seed=0)
        assert curve == [required_density(params, a, True, seed=0)
                         for a in areas]

    def test_unreachable_target_returns_none(self):
        # Enormous anomaly at tiny max density: no solution.
        params = ScalingParameters(anomaly_size=64,
                                   horizon_cycles=1_000_000)
        assert required_density(params, 1.0, use_q3de=False,
                                max_density=1.5) is None
