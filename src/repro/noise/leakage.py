"""Non-cosmic-ray burst-error sources (paper Sec. IX-B).

Trapped ions and neutral atoms do not sit on a substrate, so cosmic rays
barely matter -- but they have their own MBBE mechanisms, which Q3DE's
detection/reaction machinery handles with small changes:

* **atom loss** -- a trapped atom escapes; its error rate is effectively
  50 % until it is reloaded (a *single-qubit* burst for neutral atoms; a
  whole Coulomb-crystal scramble for ions, i.e. a true MBBE);
* **leakage** -- the qubit transitions to a state outside the
  computational space (~1e-5 per gate today), again 50 % error until
  re-pumped;
* **calibration drift** -- stray-field changes degrade a region until
  re-calibration, which requires *relocating* the logical qubit rather
  than expanding it.

Each source is modelled as a Poisson arrival process that emits
:class:`BurstEvent` records compatible with
:class:`~repro.noise.models.AnomalousRegion`, plus the reaction policy
the paper recommends for it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.policy import ReactionPolicy
from repro.noise.models import AnomalousRegion


class BurstSource(enum.Enum):
    COSMIC_RAY = "cosmic_ray"
    ATOM_LOSS = "atom_loss"
    CRYSTAL_SCRAMBLE = "crystal_scramble"
    LEAKAGE = "leakage"
    CALIBRATION_DRIFT = "calibration_drift"


#: The paper's recommended reaction per source (Sec. IX).
RECOMMENDED_POLICY = {
    BurstSource.COSMIC_RAY: ReactionPolicy.EXPAND,
    BurstSource.ATOM_LOSS: ReactionPolicy.RELOCATE,    # must reload
    BurstSource.CRYSTAL_SCRAMBLE: ReactionPolicy.RELOCATE,
    BurstSource.LEAKAGE: ReactionPolicy.RELOCATE,      # must re-pump
    BurstSource.CALIBRATION_DRIFT: ReactionPolicy.RELOCATE,
}


@dataclass(frozen=True)
class BurstEvent:
    """One burst: where, when, how wide, how noisy, and from what."""

    source: BurstSource
    cycle: int
    row: int
    col: int
    size: int
    duration_cycles: int
    p_ano: float = 0.5

    def region(self, t_hi: Optional[int] = None) -> AnomalousRegion:
        """The event as an anomalous region for decoding/simulation."""
        end = (self.cycle + self.duration_cycles
               if t_hi is None else t_hi)
        return AnomalousRegion(self.row, self.col, self.size,
                               t_lo=self.cycle, t_hi=end)

    @property
    def recommended_policy(self) -> ReactionPolicy:
        return RECOMMENDED_POLICY[self.source]


@dataclass
class BurstProcess:
    """Poisson arrivals of one burst source over a node lattice.

    Args:
        source: what kind of burst this is.
        rate_per_cycle: arrival probability per code cycle (per lattice).
        size: burst extent in qubits across (1 for loss/leakage).
        duration_cycles: how long the burst degrades the region.
        rows, cols: lattice extent for positions.
    """

    source: BurstSource
    rate_per_cycle: float
    size: int
    duration_cycles: int
    rows: int
    cols: int
    p_ano: float = 0.5
    rng: np.random.Generator = field(
        default_factory=np.random.default_rng, repr=False)

    def __post_init__(self) -> None:
        if self.rate_per_cycle < 0:
            raise ValueError("rate must be non-negative")
        if self.size < 1 or self.duration_cycles < 1:
            raise ValueError("size and duration must be positive")

    def sample(self, total_cycles: int) -> list[BurstEvent]:
        """Events landing inside the window, sorted by cycle."""
        count = int(self.rng.poisson(self.rate_per_cycle * total_cycles))
        events = []
        for _ in range(count):
            events.append(BurstEvent(
                source=self.source,
                cycle=int(self.rng.integers(0, total_cycles)),
                row=int(self.rng.integers(
                    0, max(1, self.rows - self.size + 1))),
                col=int(self.rng.integers(
                    0, max(1, self.cols - self.size + 1))),
                size=self.size,
                duration_cycles=self.duration_cycles,
                p_ano=self.p_ano,
            ))
        return sorted(events, key=lambda e: e.cycle)


def ion_trap_processes(rows: int, cols: int,
                       rng: Optional[np.random.Generator] = None,
                       cycle_s: float = 1e-4,
                       ) -> list[BurstProcess]:
    """Sec. IX-B reference processes for a trapped-ion lattice.

    Order-of-magnitude device anchors (not fits):

    * atom loss about once per two weeks per trap (Dubielzig et al.);
    * crystal scrambles an order rarer, but wiping a whole ion chain;
    * leakage out of the qubit space ~1e-5 per gate, suppressed by
      leakage-reduction circuitry to an effective ~1e-7 per qubit per
      cycle of residual burst starts;
    * calibration drift on the scale of hours.

    ``cycle_s`` converts per-second physics to per-cycle rates (ion code
    cycles are ~100 us, not the 1 us of superconducting qubits).
    """
    # reprolint: disable=RL001 -- rng=None is the caller's explicit
    # opt-out of reproducibility (exploratory use; no campaign runs this)
    rng = rng if rng is not None else np.random.default_rng()
    sites = rows * cols
    per_site_loss_hz = 1.0 / (14 * 86_400)      # once per two weeks
    drift_hz = 1.0 / (4 * 3_600)                # every few hours
    return [
        BurstProcess(BurstSource.ATOM_LOSS,
                     per_site_loss_hz * sites * cycle_s, 1, 200_000,
                     rows, cols, rng=rng),
        BurstProcess(BurstSource.CRYSTAL_SCRAMBLE,
                     0.1 * per_site_loss_hz * sites * cycle_s,
                     max(rows, cols), 500_000, rows, cols, rng=rng),
        BurstProcess(BurstSource.LEAKAGE, 1e-7 * sites, 1, 50_000,
                     rows, cols, rng=rng),
        BurstProcess(BurstSource.CALIBRATION_DRIFT,
                     drift_hz * cycle_s, 3, 1_000_000,
                     rows, cols, rng=rng),
    ]
