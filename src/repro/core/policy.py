"""Reaction policies to a detected MBBE (paper Sec. V-A).

Besides the code expansion that Q3DE defaults to, the paper lists
alternative fault-tolerant reactions whose best choice "relies on the
policy of qubit allocations":

* ``EXPAND``   -- grow the code distance in place (Sec. V, the default);
* ``RELOCATE`` -- move the affected logical qubit to a healthy area
  (required for, e.g., trapped-ion reloading or recalibration, Sec. IX);
* ``IGNORE``   -- rely on decoder re-execution alone.

:class:`ReactionPolicyEngine` applies a policy to a
:class:`~repro.arch.qubit_plane.QubitPlane`; relocation performs a
lattice-surgery-style move into the nearest healthy vacant block.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.arch.qubit_plane import BlockState, QubitPlane


class ReactionPolicy(enum.Enum):
    EXPAND = "expand"
    RELOCATE = "relocate"
    IGNORE = "ignore"


@dataclass(frozen=True)
class ReactionOutcome:
    """What the policy did for one struck logical qubit."""

    policy: ReactionPolicy
    qubit: int
    succeeded: bool
    new_position: Optional[tuple[int, int]] = None
    latency_slots: int = 0


class ReactionPolicyEngine:
    """Applies a reaction policy on the qubit plane."""

    def __init__(self, plane: QubitPlane,
                 policy: ReactionPolicy = ReactionPolicy.EXPAND):
        self.plane = plane
        self.policy = policy

    # ------------------------------------------------------------------
    def react(self, qubit: int, slot: int,
              duration_slots: int) -> ReactionOutcome:
        """Handle a strike on a logical qubit's block."""
        if self.policy is ReactionPolicy.IGNORE:
            return ReactionOutcome(self.policy, qubit, succeeded=True)
        if self.policy is ReactionPolicy.EXPAND:
            ok = self.plane.expand_logical(qubit, slot)
            return ReactionOutcome(self.policy, qubit, succeeded=ok,
                                   latency_slots=1)
        return self._relocate(qubit, slot)

    # ------------------------------------------------------------------
    def _relocate(self, qubit: int, slot: int) -> ReactionOutcome:
        """Move the qubit to the nearest healthy vacant block (BFS).

        The move itself is a lattice-surgery teleport: one slot of
        latency, during which source, destination, and the path between
        them are reserved.
        """
        start = self.plane.logical_positions[qubit]
        target = self._nearest_healthy_vacant(start, slot)
        if target is None:
            return ReactionOutcome(ReactionPolicy.RELOCATE, qubit,
                                   succeeded=False)
        src_block = self.plane.block(*start)
        dst_block = self.plane.block(*target)
        # The vacated block keeps its anomaly timer; it becomes a vacant
        # (and currently anomalous) block the scheduler will avoid.
        src_block.state = (BlockState.ANOMALOUS
                           if src_block.anomalous_until > slot
                           else BlockState.VACANT)
        src_block.logical_id = None
        dst_block.state = BlockState.LOGICAL
        dst_block.logical_id = qubit
        self.plane.logical_positions[qubit] = target
        self.plane.reserve([start, target], until_slot=slot + 1)
        return ReactionOutcome(ReactionPolicy.RELOCATE, qubit,
                               succeeded=True, new_position=target,
                               latency_slots=1)

    def _nearest_healthy_vacant(
            self, start: tuple[int, int],
            slot: int) -> Optional[tuple[int, int]]:
        seen = {start}
        queue = deque([start])
        while queue:
            cell = queue.popleft()
            if cell != start and self.plane.routable(*cell, slot):
                return cell
            for nxt in self.plane.neighbors(*cell):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return None
