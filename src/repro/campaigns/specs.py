"""Frozen, JSON-round-trippable campaign specifications.

A *spec* is the complete, serializable description of one experiment:
what to simulate, how deep, with which engine knobs, from which seed.
Specs are frozen dataclasses validated at construction, so an invalid
campaign fails before any compute is spent, and :func:`spec_hash` gives
every spec a stable identity that keys its checkpoint shards and
provenance block.

Seven kinds cover the paper's evaluations:

* :class:`MemorySpec`     — logical-memory Monte Carlo (Figs. 3/8).
* :class:`EndToEndSpec`   — detect/estimate/re-decode strikes (Fig. 8's
  closed loop).
* :class:`DetectionSpec`  — detection-unit tuning trials (Fig. 7).
* :class:`ScenarioSpec`   — a :class:`repro.scenarios.Scenario` (multi
  strike, heterogeneous/drifting base rate) driven through the memory,
  end-to-end, or detection shot engine.
* :class:`StreamingSpec`  — online round-by-round detection with
  per-round latency SLOs (the paper's real-time operating mode).
* :class:`ScalingSpec`    — required-density curves (Fig. 9; analytic
  event-driven model, no shot engine).
* :class:`ThroughputSpec` — instruction throughput (Fig. 10).

:class:`Sweep` wraps any spec with parameter axes and expands into the
grid of per-point specs, each with a deterministically derived seed.

The JSON wire format is ``{"kind": "<kind>", ...fields}``; regions
serialize as field dicts, and ``"centered"`` is accepted as a
declarative region that resolves against the spec's own ``distance`` at
run time (so a distance sweep keeps one base spec).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Union

from repro.noise.models import AnomalousRegion
from repro.scenarios.model import Scenario
from repro.sim.batch import DECODE_MODES, PACKING_MODES

#: Largest campaign seed (the engine draws seeds below 2**63).
MAX_SEED = 2 ** 63


class SpecError(ValueError):
    """A campaign spec failed validation or (de)serialization."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _check_common(spec) -> None:
    _check(isinstance(spec.seed, int) and 0 <= spec.seed < MAX_SEED,
           f"seed must be an int in [0, 2**63), got {spec.seed!r}")
    if getattr(spec, "batch_size", None) is not None:
        _check(spec.batch_size >= 1, "batch_size must be >= 1")
    if hasattr(spec, "packing"):
        _check(spec.packing in PACKING_MODES,
               f"packing must be one of {PACKING_MODES}")
    _check(0.0 <= spec.p <= 1.0, "p must be a probability")
    _check(spec.distance >= 3, "distance must be >= 3")


def _check_region(region, anomaly_size: int) -> None:
    _check(region is None or isinstance(region, AnomalousRegion)
           or region == "centered",
           "region must be None, an AnomalousRegion, or 'centered'")
    _check(anomaly_size >= 1, "anomaly_size must be >= 1")


@dataclass(frozen=True)
class MemorySpec:
    """One logical-memory campaign (see :class:`repro.sim.MemoryExperiment`).

    ``region`` may be an :class:`AnomalousRegion`, ``None`` (MBBE free),
    or the string ``"centered"`` — a region of ``anomaly_size`` centered
    on this spec's lattice, resolved at run time so the same base spec
    sweeps cleanly over ``distance``.
    """

    kind = "memory"

    distance: int
    p: float
    samples: int
    region: Union[AnomalousRegion, str, None] = None
    anomaly_size: int = 4
    p_ano: float = 0.5
    decoder: str = "greedy"
    informed: bool = False
    cycles: Optional[int] = None
    seed: int = 0
    batch_size: Optional[int] = None
    target_rel_width: Optional[float] = None
    packing: str = "bits"
    decode: str = "batched"

    def __post_init__(self) -> None:
        _check_common(self)
        _check(self.samples >= 1, "samples must be >= 1")
        _check(0.0 <= self.p_ano <= 1.0, "p_ano must be a probability")
        _check(self.decoder in ("greedy", "mwpm"),
               "decoder must be 'greedy' or 'mwpm'")
        _check(self.cycles is None or self.cycles >= 1,
               "cycles must be >= 1")
        _check(self.decode in DECODE_MODES,
               f"decode must be one of {DECODE_MODES}")
        _check(self.target_rel_width is None or self.target_rel_width > 0,
               "target_rel_width must be positive")
        _check_region(self.region, self.anomaly_size)

    def resolve_region(self) -> Optional[AnomalousRegion]:
        """The concrete region this campaign simulates."""
        if self.region == "centered":
            return AnomalousRegion.centered(self.distance, self.anomaly_size)
        return self.region


@dataclass(frozen=True)
class EndToEndSpec:
    """One detect/estimate/re-decode campaign
    (see :class:`repro.sim.EndToEndExperiment`)."""

    kind = "endtoend"

    distance: int
    p: float
    shots: int
    p_ano: float = 0.5
    anomaly_size: int = 4
    onset: int = 150
    cycles: int = 300
    c_win: int = 100
    n_th: int = 8
    alpha: float = 0.01
    seed: int = 0
    batch_size: Optional[int] = None
    packing: str = "bits"
    decode: str = "batched"

    def __post_init__(self) -> None:
        _check_common(self)
        _check(self.shots >= 1, "shots must be >= 1")
        _check(0.0 <= self.p_ano <= 1.0, "p_ano must be a probability")
        _check(self.anomaly_size >= 1, "anomaly_size must be >= 1")
        _check(0 <= self.onset < self.cycles,
               "the strike must land inside the run")
        _check(self.c_win >= 1, "c_win must be >= 1")
        _check(self.n_th >= 0, "n_th must be >= 0")
        _check(0.0 < self.alpha < 1.0, "alpha must be in (0, 1)")
        _check(self.decode in DECODE_MODES,
               f"decode must be one of {DECODE_MODES}")


@dataclass(frozen=True)
class DetectionSpec:
    """One detection-unit tuning campaign
    (see :func:`repro.sim.run_detection_trials`)."""

    kind = "detection"

    distance: int
    p: float
    p_ano: float
    anomaly_size: int
    c_win: int
    n_th: int = 20
    alpha: float = 0.01
    trials: int = 20
    normal_cycles: Optional[int] = None
    post_cycles: Optional[int] = None
    seed: int = 0
    batch_size: Optional[int] = None
    packing: str = "bits"
    scan: str = "batched"

    def __post_init__(self) -> None:
        _check_common(self)
        _check(self.trials >= 1, "trials must be >= 1")
        _check(0.0 <= self.p_ano <= 1.0, "p_ano must be a probability")
        _check(self.anomaly_size >= 1, "anomaly_size must be >= 1")
        _check(self.c_win >= 1, "c_win must be >= 1")
        _check(self.n_th >= 0, "n_th must be >= 0")
        _check(0.0 < self.alpha < 1.0, "alpha must be in (0, 1)")
        for name in ("normal_cycles", "post_cycles"):
            value = getattr(self, name)
            _check(value is None or value >= 1, f"{name} must be >= 1")
        _check(self.scan in DECODE_MODES,
               f"scan must be one of {DECODE_MODES}")

    def resolved_cycles(self) -> tuple[int, int]:
        """``(normal_cycles, post_cycles)`` with the legacy defaults."""
        normal = (self.normal_cycles if self.normal_cycles is not None
                  else 2 * self.c_win)
        post = (self.post_cycles if self.post_cycles is not None
                else 4 * self.c_win)
        return normal, post


#: Shot engines a :class:`ScenarioSpec` may drive.
SCENARIO_MODES = ("memory", "endtoend", "detection")


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario campaign: a strike timeline through a shot engine.

    A :class:`repro.scenarios.Scenario` — any number of strike events
    (overlapping or back-to-back), an optional per-qubit base-rate
    field, an optional temporal drift profile — is driven through one of
    the three chunked shot engines selected by ``mode``:

    * ``"memory"``    — logical-error Monte Carlo; events must carry
      fixed positions (the noise model applies them chunk-wide).
    * ``"endtoend"``  — detect/estimate/re-decode; events without
      positions are re-drawn per shot, and ``cycles`` must be given
      explicitly (the timeline, not a single onset, sets the horizon).
    * ``"detection"`` — detection-unit trials; the pre-strike window is
      the first event's onset and the exposure runs ``post_cycles``
      beyond it.

    The degenerate single-fixed-event, uniform-base scenario is
    contractually bit-identical per ``(seed, batch_size)`` to the
    legacy ``region``-field specs (see CONTRACTS.md).
    """

    kind = "scenario"

    distance: int
    p: float
    shots: int
    scenario: Scenario = Scenario()
    mode: str = "memory"
    decoder: str = "greedy"
    informed: bool = False
    cycles: Optional[int] = None
    c_win: int = 100
    n_th: int = 8
    alpha: float = 0.01
    post_cycles: Optional[int] = None
    seed: int = 0
    batch_size: Optional[int] = None
    target_rel_width: Optional[float] = None
    packing: str = "bits"
    decode: str = "batched"

    def __post_init__(self) -> None:
        if isinstance(self.scenario, dict):
            try:
                object.__setattr__(self, "scenario",
                                   Scenario.from_dict(self.scenario))
            except (TypeError, ValueError) as exc:
                raise SpecError(f"invalid scenario: {exc}") from exc
        _check(isinstance(self.scenario, Scenario),
               "scenario must be a Scenario (or its wire dict)")
        _check_common(self)
        _check(self.shots >= 1, "shots must be >= 1")
        _check(self.mode in SCENARIO_MODES,
               f"mode must be one of {SCENARIO_MODES}")
        _check(self.decoder in ("greedy", "mwpm"),
               "decoder must be 'greedy' or 'mwpm'")
        _check(self.cycles is None or self.cycles >= 1,
               "cycles must be >= 1")
        _check(self.c_win >= 1, "c_win must be >= 1")
        _check(self.n_th >= 0, "n_th must be >= 0")
        _check(0.0 < self.alpha < 1.0, "alpha must be in (0, 1)")
        _check(self.post_cycles is None or self.post_cycles >= 1,
               "post_cycles must be >= 1")
        _check(self.decode in DECODE_MODES,
               f"decode must be one of {DECODE_MODES}")
        _check(self.target_rel_width is None or self.target_rel_width > 0,
               "target_rel_width must be positive")
        scenario = self.scenario
        if scenario.rate_field is not None:
            _check(scenario.rate_field_distance == self.distance,
                   f"scenario rate_field is for distance "
                   f"{scenario.rate_field_distance}, spec says "
                   f"{self.distance}")
        if self.mode == "memory":
            _check(scenario.fixed,
                   "memory-mode scenarios need fixed event positions")
            _check(self.post_cycles is None,
                   "post_cycles is a detection-mode knob")
        else:
            _check(len(scenario.events) >= 1,
                   f"{self.mode}-mode scenarios need at least one event")
            if self.mode == "endtoend":
                _check(self.cycles is not None,
                       "endtoend mode needs explicit cycles (the "
                       "timeline, not a single onset, sets the horizon)")
                _check(scenario.first_onset < self.cycles,
                       "the first strike must land inside the run")
                _check(self.post_cycles is None,
                       "post_cycles is a detection-mode knob")
            else:
                _check(self.cycles is None,
                       "detection mode derives cycles from the first "
                       "onset and post_cycles")
                _check(scenario.first_onset >= 1,
                       "detection scenarios need a pre-strike window "
                       "(first onset >= 1)")

    def resolved_cycles(self) -> tuple[int, int]:
        """Detection-mode ``(normal_cycles, post_cycles)``.

        The pre-strike window *is* the first event's onset; the post
        window defaults to the legacy ``4 * c_win``.
        """
        post = (self.post_cycles if self.post_cycles is not None
                else 4 * self.c_win)
        return self.scenario.first_onset, post

    def total_cycles(self) -> int:
        """The exposure this campaign simulates, whatever the mode."""
        if self.mode == "memory":
            return self.cycles if self.cycles is not None else self.distance
        if self.mode == "endtoend":
            assert self.cycles is not None  # validated at construction
            return self.cycles
        normal, post = self.resolved_cycles()
        return normal + post


@dataclass(frozen=True)
class StreamingSpec:
    """One online streaming campaign (see :mod:`repro.streaming`).

    The detection geometry mirrors :class:`DetectionSpec` (``onset`` is
    ``normal_cycles``, exposure runs ``normal + post`` rounds), but the
    trials execute round by round through the streaming driver, and the
    campaign's headline result is the per-round latency envelope —
    p50/p99 wall clock and sustained rounds/sec — judged against the
    ``code_cycle_us`` SLO (:class:`repro.hwmodel.pipeline.StreamSLO`).
    No ``batch_size``/``packing`` knobs: the stream is inherently
    one-round-at-a-time, and trials always run inline (wall clocks must
    time the round loop, not a worker pool).
    """

    kind = "streaming"

    distance: int
    p: float
    p_ano: float = 0.5
    anomaly_size: int = 4
    c_win: int = 100
    n_th: int = 8
    alpha: float = 0.01
    trials: int = 20
    normal_cycles: Optional[int] = None
    post_cycles: Optional[int] = None
    code_cycle_us: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        _check_common(self)
        _check(self.trials >= 1, "trials must be >= 1")
        _check(0.0 <= self.p_ano <= 1.0, "p_ano must be a probability")
        _check(self.anomaly_size >= 1, "anomaly_size must be >= 1")
        _check(self.c_win >= 1, "c_win must be >= 1")
        _check(self.n_th >= 0, "n_th must be >= 0")
        _check(0.0 < self.alpha < 1.0, "alpha must be in (0, 1)")
        for name in ("normal_cycles", "post_cycles"):
            value = getattr(self, name)
            _check(value is None or value >= 1, f"{name} must be >= 1")
        _check(self.code_cycle_us > 0, "code_cycle_us must be positive")

    def resolved_cycles(self) -> tuple[int, int]:
        """``(normal_cycles, post_cycles)`` with the legacy defaults."""
        normal = (self.normal_cycles if self.normal_cycles is not None
                  else 2 * self.c_win)
        post = (self.post_cycles if self.post_cycles is not None
                else 4 * self.c_win)
        return normal, post


@dataclass(frozen=True)
class ScalingSpec:
    """One Fig. 9 required-density curve (analytic event-driven model).

    No shot engine behind this one — the curve is the
    :func:`repro.scaling.model.density_curve` evaluation with the given
    parameter overrides — but running it through the same entry point
    gives it the same provenance, sweep, and CLI treatment as the
    Monte-Carlo campaigns.
    """

    kind = "scaling"

    areas: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
    use_q3de: bool = True
    anomaly_size: int = 4
    frequency_hz: float = 0.1
    lifetime_s: float = 25e-3
    c_lat: int = 30
    horizon_cycles: int = 100_000_000
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "areas", tuple(self.areas))
        _check(len(self.areas) >= 1, "need at least one chip area")
        _check(all(a > 0 for a in self.areas), "areas must be positive")
        _check(self.anomaly_size >= 1, "anomaly_size must be >= 1")
        _check(self.frequency_hz >= 0, "frequency_hz must be >= 0")
        _check(self.lifetime_s > 0, "lifetime_s must be positive")
        _check(self.c_lat >= 1, "c_lat must be >= 1")
        _check(self.horizon_cycles >= 1, "horizon_cycles must be >= 1")
        _check(isinstance(self.seed, int) and 0 <= self.seed < MAX_SEED,
               "seed must be an int in [0, 2**63)")


@dataclass(frozen=True)
class ThroughputSpec:
    """One Fig. 10 instruction-throughput run
    (see :func:`repro.arch.throughput.simulate_throughput`)."""

    kind = "throughput"

    architecture: str = "q3de"
    num_instructions: int = 1000
    strike_prob_per_slot: float = 0.0
    strike_duration_slots: int = 100
    rows: int = 11
    cols: int = 11
    max_slots: int = 100_000
    seed: int = 7

    def __post_init__(self) -> None:
        _check(self.architecture in ("mbbe_free", "baseline", "q3de"),
               f"unknown architecture {self.architecture!r}")
        _check(self.num_instructions >= 1, "num_instructions must be >= 1")
        _check(0.0 <= self.strike_prob_per_slot <= 1.0,
               "strike_prob_per_slot must be a probability")
        _check(self.strike_duration_slots >= 1,
               "strike_duration_slots must be >= 1")
        _check(self.rows >= 1 and self.cols >= 1,
               "plane dimensions must be >= 1")
        _check(self.max_slots >= 1, "max_slots must be >= 1")
        _check(isinstance(self.seed, int) and 0 <= self.seed < MAX_SEED,
               "seed must be an int in [0, 2**63)")


#: Spec kinds by their wire name (Sweep handled separately).
SPEC_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (MemorySpec, EndToEndSpec, DetectionSpec, ScenarioSpec,
                StreamingSpec, ScalingSpec, ThroughputSpec)
}

CampaignSpec = Union[MemorySpec, EndToEndSpec, DetectionSpec, ScenarioSpec,
                     StreamingSpec, ScalingSpec, ThroughputSpec]


@dataclass(frozen=True)
class Sweep:
    """A parameter grid over one base spec.

    ``axes`` maps field names of ``base`` to value sequences; the sweep
    expands to the cartesian product in axis-declaration order (last
    axis fastest).  Unless ``derive_seeds`` is off, every point gets its
    own seed derived deterministically from the base seed and the
    point's overrides, so grid points are statistically independent yet
    fully reproducible from the sweep's JSON alone.
    """

    kind = "sweep"

    base: CampaignSpec
    axes: dict = field(default_factory=dict)
    derive_seeds: bool = True

    def __post_init__(self) -> None:
        _check(not isinstance(self.base, Sweep), "sweeps do not nest")
        _check(type(self.base) in SPEC_KINDS.values(),
               f"base must be a campaign spec, got {type(self.base)!r}")
        object.__setattr__(
            self, "axes",
            {name: tuple(values) for name, values in self.axes.items()})
        names = {f.name for f in dataclasses.fields(self.base)}
        for name, values in self.axes.items():
            _check(name in names,
                   f"axis {name!r} is not a field of {type(self.base).__name__}")
            _check(len(values) >= 1, f"axis {name!r} is empty")

    def __len__(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def points(self) -> Iterator[tuple[dict, CampaignSpec]]:
        """Yield ``(overrides, spec)`` per grid point, in grid order."""
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            overrides = dict(zip(names, combo, strict=True))
            spec = dataclasses.replace(self.base, **overrides)
            if self.derive_seeds:
                spec = dataclasses.replace(
                    spec, seed=derive_seed(self.base.seed, overrides))
            yield overrides, spec

    def specs(self) -> list[CampaignSpec]:
        return [spec for _, spec in self.points()]


def derive_seed(base_seed: int, overrides: dict) -> int:
    """A stable per-point seed from the base seed and the overrides.

    SHA-256 over the canonical JSON of ``(base_seed, sorted overrides)``
    — deterministic across processes and Python versions (no reliance on
    ``hash()``), so a sweep's points are reproducible from its spec.
    """
    doc = json.dumps([base_seed, _jsonify(overrides)], sort_keys=True,
                     separators=(",", ":"), allow_nan=False)
    digest = hashlib.sha256(doc.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % MAX_SEED


# ----------------------------------------------------------------------
# JSON wire format
# ----------------------------------------------------------------------
def _jsonify(value: Any) -> Any:
    if isinstance(value, AnomalousRegion):
        return {name: getattr(value, name)
                for name in ("row_lo", "col_lo", "size", "t_lo", "t_hi")}
    if isinstance(value, Scenario):
        return value.to_dict()
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def spec_to_dict(spec) -> dict:
    """The spec's wire dict: ``{"kind": ..., ...fields}``."""
    if isinstance(spec, Sweep):
        return {"kind": Sweep.kind,
                "base": spec_to_dict(spec.base),
                "axes": _jsonify(spec.axes),
                "derive_seeds": spec.derive_seeds}
    if type(spec) not in SPEC_KINDS.values():
        raise SpecError(f"not a campaign spec: {type(spec)!r}")
    doc = {"kind": spec.kind}
    for f in dataclasses.fields(spec):
        doc[f.name] = _jsonify(getattr(spec, f.name))
    return doc


def spec_from_dict(doc: dict):
    """Rebuild a spec (or :class:`Sweep`) from its wire dict."""
    if not isinstance(doc, dict):
        raise SpecError(f"spec document must be an object, got {type(doc)!r}")
    kind = doc.get("kind")
    if kind == Sweep.kind:
        base = spec_from_dict(doc.get("base"))
        axes = doc.get("axes", {})
        if not isinstance(axes, dict):
            raise SpecError("sweep axes must be an object")
        if "region" in axes:
            axes = dict(axes)
            axes["region"] = [_parse_region(v) for v in axes["region"]]
        return Sweep(base=base, axes=axes,
                     derive_seeds=bool(doc.get("derive_seeds", True)))
    cls = SPEC_KINDS.get(kind)
    if cls is None:
        raise SpecError(
            f"unknown spec kind {kind!r} (choices: "
            f"{sorted(SPEC_KINDS) + [Sweep.kind]})")
    names = {f.name for f in dataclasses.fields(cls)}
    kwargs = {}
    for name, value in doc.items():
        if name == "kind":
            continue
        if name not in names:
            raise SpecError(f"{cls.__name__} has no field {name!r}")
        if name == "region":
            value = _parse_region(value)
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:  # missing required fields
        raise SpecError(f"invalid {cls.__name__}: {exc}") from exc


def _parse_region(value):
    if value is None or isinstance(value, (AnomalousRegion, str)):
        return value
    if isinstance(value, dict):
        try:
            return AnomalousRegion(**value)
        except (TypeError, ValueError) as exc:
            raise SpecError(f"invalid region {value!r}: {exc}") from exc
    raise SpecError(f"invalid region {value!r}")


def spec_to_json(spec, indent: Optional[int] = None) -> str:
    """Serialize a spec/sweep to its canonical JSON string."""
    return json.dumps(spec_to_dict(spec), sort_keys=True, indent=indent,
                      allow_nan=False)


def spec_from_json(text: str):
    """Parse a spec/sweep from JSON text."""
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise SpecError(f"spec is not valid JSON: {exc}") from exc
    return spec_from_dict(doc)


def spec_hash(spec) -> str:
    """A 16-hex-digit stable identity for the spec.

    SHA-256 of the canonical (sorted-key, compact) JSON; keys checkpoint
    shard files and appears in every provenance block.  Two specs hash
    equal iff their wire dicts are equal — defaults are serialized
    explicitly, so adding a field with a new default changes the hash
    (by design: results may change too).
    """
    doc = json.dumps(spec_to_dict(spec), sort_keys=True,
                     separators=(",", ":"), allow_nan=False)
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]
