"""Fig. 3: logical error rates with and without an MBBE.

Paper setup: distances 9/15/21, anomaly size 4, p_ano = 0.5, logical
Pauli-X error rate per cycle from d-cycle idling.  Expected shape: the
MBBE raises the curves by orders of magnitude (more at lower p), but the
crossing point (threshold) is unchanged.

Reduced defaults (REPRO_SAMPLES to deepen): distances 9/13/17 and a
five-point p sweep keep the bench under a few minutes.

The whole figure is one declarative campaign per curve family: a
``Sweep`` of ``MemorySpec`` over (distance, p) run through
``repro.campaigns.run`` — so this bench doubles as an API smoke test,
and its grid is reproducible from the spec JSON alone.
"""

import time

import pytest

from repro import campaigns

from _common import emit_json, mc_samples, mc_workers, print_table

DISTANCES = [9, 13, 17]
PHYSICAL_RATES = [6e-3, 1e-2, 2e-2, 3e-2, 4e-2]
ANOMALY_SIZE = 4


def _family_sweep(with_mbbe: bool, samples: int) -> campaigns.Sweep:
    """The declarative grid for one curve family (clean or struck)."""
    base = campaigns.MemorySpec(
        distance=DISTANCES[0], p=PHYSICAL_RATES[0], samples=samples,
        region="centered" if with_mbbe else None,
        anomaly_size=ANOMALY_SIZE,
        seed=1042 if with_mbbe else 1024)
    return campaigns.Sweep(base, axes={"distance": DISTANCES,
                                       "p": PHYSICAL_RATES})


def _sweep(with_mbbe: bool, samples: int) -> dict[tuple[int, float], float]:
    executor = campaigns.default_executor(mc_workers())
    result = campaigns.run(_family_sweep(with_mbbe, samples),
                           executor=executor)
    return {(o["distance"], o["p"]): r.estimates["per_cycle"]
            for o, r in result.points}


@pytest.mark.benchmark(group="fig3")
def bench_fig3_logical_error_rates(benchmark):
    """Regenerate both Fig. 3 curve families and check their shape."""
    samples = mc_samples()

    def run():
        start = time.perf_counter()
        out = _sweep(False, samples), _sweep(True, samples)
        return out + (time.perf_counter() - start,)

    clean, dirty, wall = benchmark.pedantic(run, rounds=1, iterations=1)

    emit_json("batch", "fig03_mbbe_impact", {
        "samples_per_point": samples,
        "wall_clock_s": wall,
        "per_cycle_rates": {
            f"d{d}_p{p}_{family}": rates[(d, p)]
            for family, rates in (("clean", clean), ("mbbe", dirty))
            for d in DISTANCES for p in PHYSICAL_RATES},
    })
    rows = []
    for p in PHYSICAL_RATES:
        row = [p]
        for d in DISTANCES:
            row.append(clean[(d, p)])
        for d in DISTANCES:
            row.append(dirty[(d, p)])
        rows.append(row)
    print_table(
        "Fig. 3: logical error rate per cycle (MBBE-free | with MBBE)",
        ["p"] + [f"d={d}" for d in DISTANCES]
        + [f"d={d}+MBBE" for d in DISTANCES],
        rows)

    # Shape checks: MBBE hurts; at low p larger d helps in the clean case.
    p_low = PHYSICAL_RATES[0]
    for d in DISTANCES:
        assert dirty[(d, p_low)] >= clean[(d, p_low)]
    assert clean[(DISTANCES[-1], p_low)] <= clean[(DISTANCES[0], p_low)]


def smoke() -> None:
    """One tiny grid point (bench_smoke marker: import-rot guard)."""
    spec = campaigns.MemorySpec(distance=5, p=2e-2, samples=8,
                                region="centered", anomaly_size=2, seed=0)
    result = campaigns.run(spec, executor=campaigns.InlineExecutor())
    assert 0.0 <= result.estimates["per_cycle"] <= 1.0
    # The sweep expands and round-trips through JSON.
    sweep = _family_sweep(True, samples=8)
    assert campaigns.spec_from_json(campaigns.spec_to_json(sweep)) == sweep