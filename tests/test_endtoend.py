"""Tests for the detection-driven end-to-end experiment."""

import numpy as np
import pytest

from repro.sim.endtoend import EndToEndExperiment, EndToEndResult

from reference_engines import reference_run_shot


@pytest.fixture(scope="module")
def campaign():
    """One shared medium-size campaign (module-scoped: it is the slow
    part, and every assertion reads the same aggregate)."""
    exp = EndToEndExperiment(13, 0.005, anomaly_size=4, onset=120,
                             cycles=300, c_win=80, n_th=8)
    return exp.run(40, np.random.default_rng(99))


class TestResultType:
    def test_rates_keys(self):
        res = EndToEndResult(10, 5, 3, 2, detections=9, mean_latency=12.0)
        assert set(res.rates()) == {"naive", "detected", "oracle"}
        assert res.detection_rate == 0.9

    def test_invalid_onset_rejected(self):
        with pytest.raises(ValueError):
            EndToEndExperiment(9, 0.01, onset=300, cycles=300)

    def test_zero_shots_rejected(self):
        exp = EndToEndExperiment(9, 0.01, onset=10, cycles=50)
        with pytest.raises(ValueError):
            exp.run(0)


@pytest.mark.slow
class TestCampaign:
    def test_detection_usually_fires(self, campaign):
        assert campaign.detection_rate > 0.8

    def test_latency_is_positive_and_bounded(self, campaign):
        assert 0 <= campaign.mean_latency < 240

    def test_detected_decoding_beats_naive(self, campaign):
        rates = campaign.rates()
        assert rates["detected"] <= rates["naive"]

    def test_oracle_is_the_floor(self, campaign):
        rates = campaign.rates()
        # Detection estimates the region within a node or two, so the
        # detected decoder should track the oracle closely (within the
        # campaign's statistical resolution).
        assert rates["oracle"] <= rates["naive"]
        assert rates["detected"] <= rates["oracle"] + 0.25


class TestPreOnsetFalsePositive:
    """Regression for the discard bug: a pre-onset false positive used
    to leave its detection mask in place, which could blind the unit to
    the real strike at the same position for mask_cycles."""

    @staticmethod
    def _unit_and_streams():
        from repro.core.anomaly import AnomalyDetectionUnit
        from repro.core.statistics import (SyndromeStatistics,
                                           expected_activity_rate)
        shape = (8, 9)
        stats = SyndromeStatistics.from_activity_rate(
            expected_activity_rate(0.005))
        unit = AnomalyDetectionUnit(shape, stats, c_win=40, n_th=6,
                                    alpha=0.01)
        burst = np.zeros(shape, dtype=np.int32)
        burst[2:6, 2:6] = 1  # a hot 4x4 patch trips > n_th counters
        quiet = np.zeros(shape, dtype=np.int32)
        return unit, burst, quiet

    def _drive(self, clear_discarded_masks: bool) -> bool:
        """Replay the EndToEndExperiment loop semantics: a transient
        burst before onset (discarded), then the real strike at the same
        position.  Returns whether the real strike was detected."""
        unit, burst, quiet = self._unit_and_streams()
        onset = 120
        stream = ([burst] * 50 + [quiet] * 70  # transient false positive
                  + [burst] * 80)              # the real strike
        for t, activity in enumerate(stream):
            evt = unit.observe(activity)
            if evt is None:
                continue
            if evt.cycle < onset:
                if clear_discarded_masks:
                    unit.clear_masks()
                continue
            return True
        return False

    def test_fixed_discard_keeps_strike_detectable(self):
        assert self._drive(clear_discarded_masks=True)

    def test_stale_mask_would_have_blinded_the_unit(self):
        """The scenario is a real discriminator: without the fix the
        mask from the discarded event suppresses the true detection."""
        assert not self._drive(clear_discarded_masks=False)

    def test_clear_masks_resets_only_masks(self):
        unit, burst, _ = self._unit_and_streams()
        for _ in range(45):
            unit.observe(burst)
        assert (unit._mask_until >= 0).any()
        counts_before = unit.counts.copy()
        cycle_before = unit.cycle
        unit.clear_masks()
        assert (unit._mask_until == -1).all()
        assert np.array_equal(unit.counts, counts_before)
        assert unit.cycle == cycle_before


class TestSingleShot:
    def test_shot_returns_judgements(self):
        exp = EndToEndExperiment(9, 0.008, onset=100, cycles=200,
                                 c_win=80, n_th=8)
        naive, detected, oracle, latency = reference_run_shot(
            exp, np.random.default_rng(3))
        for value in (naive, detected, oracle):
            assert value in (0, 1)
        assert latency is None or latency >= 0
